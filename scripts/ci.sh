#!/usr/bin/env bash
# The full CI gauntlet, runnable locally. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> cargo build --examples --benches"
cargo build --examples --benches

echo "==> cargo bench --no-run (benches must always compile)"
cargo bench --no-run

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> golden output: jetty-repro all --scale 0.02 --threads 2 vs tests/golden/all_scale002.txt"
target/release/jetty-repro all --scale 0.02 --threads 2 | diff -u tests/golden/all_scale002.txt -

echo "==> golden output: jetty-repro protocols --scale 0.02 --threads 2 vs tests/golden/protocols_scale002.txt"
target/release/jetty-repro protocols --scale 0.02 --threads 2 | diff -u tests/golden/protocols_scale002.txt -

echo "==> sweep smoke: jetty-repro sweep --scale 0.02 --threads 2"
target/release/jetty-repro sweep --scale 0.02 --threads 2 >/dev/null

echo "==> JSON validity: renderer output parsed by the in-tree rust parser (no shell tools)"
cargo test -q -p jetty-experiments --test renderers json_ -- --nocapture

echo "CI green."
