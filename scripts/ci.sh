#!/usr/bin/env bash
# The full CI gauntlet, runnable locally. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q (JETTY_SIMD=scalar, then auto, then sharded)"
cargo build --release
# The whole suite runs at both kernel dispatch levels: forced-scalar
# proves the portable kernels alone, auto adds the AVX2 twins on hosts
# that have them (and is identical to scalar elsewhere). A third leg
# fans the snoop replay out to two shards — any scheduling sensitivity
# in the deterministic bus-order merge fails loudly here.
JETTY_SIMD=scalar cargo test -q
JETTY_SIMD=auto cargo test -q
JETTY_SIMD=auto JETTY_SHARDS=2 cargo test -q

echo "==> cargo build --examples --benches"
cargo build --examples --benches

echo "==> cargo bench --no-run (benches must always compile)"
cargo bench --no-run

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# Golden stdout must be byte-identical at every kernel dispatch level and
# every shard count — the SIMD layer and the intra-run replay fan-out are
# implementation details, never observable ones.
for simd in scalar auto; do
  for shards in 1 2; do
    echo "==> golden output (JETTY_SIMD=$simd JETTY_SHARDS=$shards): jetty-repro all --scale 0.02 --threads 2 vs tests/golden/all_scale002.txt"
    JETTY_SIMD=$simd JETTY_SHARDS=$shards target/release/jetty-repro all --scale 0.02 --threads 2 | diff -u tests/golden/all_scale002.txt -

    echo "==> golden output (JETTY_SIMD=$simd JETTY_SHARDS=$shards): jetty-repro protocols --scale 0.02 --threads 2 vs tests/golden/protocols_scale002.txt"
    JETTY_SIMD=$simd JETTY_SHARDS=$shards target/release/jetty-repro protocols --scale 0.02 --threads 2 | diff -u tests/golden/protocols_scale002.txt -
  done
done

echo "==> sweep smoke: jetty-repro sweep --scale 0.02 --threads 2"
target/release/jetty-repro sweep --scale 0.02 --threads 2 >/dev/null

echo "==> JSON validity: renderer output parsed by the in-tree rust parser (no shell tools)"
cargo test -q -p jetty-experiments --test renderers json_ -- --nocapture

echo "==> run store smoke: record twice, list, diff clean"
STORE_DIR=$(mktemp -d)
STORE="$STORE_DIR/ci.store"
# Pinned metadata keeps the two records byte-comparable (and matches the
# committed reference record's identity fields).
for i in 1 2; do
  JETTY_STORE_NOW=0 JETTY_GIT_REV=reference JETTY_STORE_TIMING_MS=1000 \
    target/release/jetty-repro all --scale 0.02 --threads 2 --store "$STORE" >/dev/null
done
target/release/jetty-repro runs --store "$STORE" >/dev/null
target/release/jetty-repro diff 1 2 --store "$STORE" >/dev/null

echo "==> fault matrix: cargo test -q -p jetty-experiments --test fault_injection"
cargo test -q -p jetty-experiments --test fault_injection

echo "==> fault smoke: one injected suite failure must degrade gracefully"
# The 8-way suite of `all` is killed by the fault harness; the invocation
# must exit with the partial code (2), keep every surviving table
# byte-identical to the golden file, and report the failure in a final
# failures table. (suite-fail, not suite-panic: the release profile
# aborts on panic, so panic containment is proven by the fault-matrix
# test above, which spawns the unwinding test-profile binary.)
FAULT_DIR=$(mktemp -d)
set +e
JETTY_FAULT=suite-fail@cpus8-scale0.02-sb-moesi-paperbank22 \
  target/release/jetty-repro all --scale 0.02 --threads 2 >"$FAULT_DIR/partial.txt"
FAULT_EXIT=$?
set -e
[ "$FAULT_EXIT" -eq 2 ] || { echo "fault smoke: want exit 2, got $FAULT_EXIT"; exit 1; }
grep -q "== Failed suites" "$FAULT_DIR/partial.txt"
grep -q "injected fault: suite-fail" "$FAULT_DIR/partial.txt"
# Strip the failed 8-way block from the golden file and the failures
# block from the partial output: the remainder must match byte for byte.
awk '/^== /{keep = !/8-way SMP summary/} keep' tests/golden/all_scale002.txt >"$FAULT_DIR/golden-surviving.txt"
awk '/^== /{keep = !/Failed suites/} keep' "$FAULT_DIR/partial.txt" >"$FAULT_DIR/partial-surviving.txt"
diff -u "$FAULT_DIR/golden-surviving.txt" "$FAULT_DIR/partial-surviving.txt"
rm -rf "$FAULT_DIR"

echo "==> strict store listing: tail damage is an error under --strict"
STRICT_DIR=$(mktemp -d)
STRICT="$STRICT_DIR/strict.store"
JETTY_STORE_NOW=0 JETTY_GIT_REV=reference JETTY_STORE_TIMING_MS=1000 \
  target/release/jetty-repro table1 --store "$STRICT" >/dev/null
target/release/jetty-repro runs --strict --store "$STRICT" >/dev/null
printf 'JREC 000000ff' >>"$STRICT"
if target/release/jetty-repro runs --strict --store "$STRICT" >/dev/null 2>&1; then
  echo "runs --strict must fail on a damaged tail"; exit 1
fi
rm -rf "$STRICT_DIR"

echo "==> cross-run regression gate: fresh run vs tests/golden/reference_scale002.store"
# The committed reference pins timing_ms=1500 — a budget, not a
# measurement: a fresh release scale-0.02 run takes ~700 ms on the pinned
# host, so the 10% band fires past 1650 ms (~2.2x typical) while every
# output cell is still compared exactly.
GATE="$STORE_DIR/gate.store"
JETTY_STORE_NOW=0 JETTY_GIT_REV=reference \
  target/release/jetty-repro all --scale 0.02 --threads 2 --store "$GATE" >/dev/null
target/release/jetty-repro diff \
  "tests/golden/reference_scale002.store:1" "$GATE:latest" --timing-band 10
rm -rf "$STORE_DIR"

echo "CI green."
