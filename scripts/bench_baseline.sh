#!/usr/bin/env bash
# Regenerates BENCH_baseline.json: wall-clock timings of representative
# jetty-repro invocations, so successive PRs have a perf trajectory to
# compare against. Schema 6 keeps the schema-5 measurements (host thread
# count, serial + parallel full reproduction, the MOESI/MESI/MSI protocol
# sweep, the declarative sweep grid and its suite-cache hit rate, the
# hot-path criterion throughputs), adds the run store: the cost of a
# recorded invocation (`all --scale 0.02 --store`), the `diff` of two
# recorded runs, and the store bench's append/scan throughputs — and
# preserves the previous file's full-scale value under "previous" so the
# before/after of perf work stays on record.
# Usage: scripts/bench_baseline.sh [reps]
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"
BIN=target/release/jetty-repro
THREADS="$(nproc)"

# The before: whatever the current baseline file reports, carried forward.
prev_schema=$(grep -o '"schema": [0-9]*' BENCH_baseline.json 2>/dev/null | head -1 | grep -o '[0-9]*' || echo null)
prev_full=$(grep -o '"repro_all_full_scale_ms": [0-9]*' BENCH_baseline.json 2>/dev/null | head -1 | grep -o '[0-9]*$' || echo null)

cargo build --release --bin jetty-repro >/dev/null

# time_ms <args...> -> echoes best-of-REPS milliseconds
time_ms() {
    local best=""
    for _ in $(seq "$REPS"); do
        local start end ms
        start=$(date +%s%N)
        "$BIN" "$@" >/dev/null
        end=$(date +%s%N)
        ms=$(( (end - start) / 1000000 ))
        if [[ -z "$best" || "$ms" -lt "$best" ]]; then best="$ms"; fi
    done
    echo "$best"
}

# Everything but the parallel entry pins --threads 1 so the values stay
# comparable with the schema-1 serial trajectory on any host.
static_ms=$(time_ms table1 fig2 table4)
smoke_ms=$(time_ms table2 table3 --scale 0.1 --threads 1)
energy_ms=$(time_ms fig6 --scale 0.1 --threads 1)
protocols_ms=$(time_ms protocols --scale 0.1 --threads 1)
protocols_parallel_ms=$(time_ms protocols --scale 0.1 --threads "$THREADS")
sweep_ms=$(time_ms sweep --scale 0.1 --threads 1)
sweep_parallel_ms=$(time_ms sweep --scale 0.1 --threads "$THREADS")
# The grid's suite-cache hit rate, from the [sweep] stderr summary.
sweep_hit_rate=$("$BIN" sweep --scale 0.1 --threads "$THREADS" 2>&1 >/dev/null \
    | grep -o 'hit rate [0-9.]*%' | grep -o '[0-9.]*')
full_ms=$(time_ms all --scale 1.0 --threads 1)
full_parallel_ms=$(time_ms all --scale 1.0 --threads "$THREADS")

# Run-store surfaces: a recorded invocation (simulation + append), and a
# diff of two recorded runs (two scans + cell-by-cell compare).
STORE_TMP=$(mktemp -d)
STORE_FILE="$STORE_TMP/baseline.store"
store_record_ms=$(time_ms all --scale 0.02 --threads 1 --store "$STORE_FILE")
"$BIN" all --scale 0.02 --threads 1 --store "$STORE_FILE" >/dev/null
store_diff_ms=$(time_ms diff 1 2 --store "$STORE_FILE")
rm -rf "$STORE_TMP"

# Hot-path criterion throughputs (Melem/s; the bench prints
# "hotpath/<name> ... X.XXX Melem/s").
hotpath_out=$(cargo bench --bench hotpath 2>/dev/null | grep '^hotpath/')
hp() {
    echo "$hotpath_out" | grep "^hotpath/$1 " | awk '{print $(NF-1)}'
}
l2_probe=$(hp l2_snoop_probe)
l2_fill=$(hp l2_fill_evict)
fastmap=$(hp version_map_fastmap)
stdmap=$(hp version_map_std_hashmap)

# Store criterion throughputs (append in Melem/s of cells, scan in MB/s).
store_out=$(cargo bench --bench store 2>/dev/null | grep '^store/')
store_append=$(echo "$store_out" | grep '^store/append_record ' | awk '{print $(NF-1)}')
store_scan=$(echo "$store_out" | grep '^store/scan_100_records ' | awk '{print $(NF-1)}')

cat > BENCH_baseline.json <<EOF
{
  "schema": 6,
  "tool": "scripts/bench_baseline.sh",
  "reps": $REPS,
  "threads": $THREADS,
  "metric": "best-of-reps wall-clock milliseconds, release build",
  "toolchain": "$(rustc --version)",
  "benchmarks": {
    "repro_static_tables_ms": $static_ms,
    "repro_table2_table3_scale0.1_ms": $smoke_ms,
    "repro_fig6_scale0.1_ms": $energy_ms,
    "repro_protocols_scale0.1_ms": $protocols_ms,
    "repro_protocols_scale0.1_parallel_ms": $protocols_parallel_ms,
    "repro_sweep_scale0.1_ms": $sweep_ms,
    "repro_sweep_scale0.1_parallel_ms": $sweep_parallel_ms,
    "sweep_cache_hit_rate_pct": $sweep_hit_rate,
    "repro_all_full_scale_ms": $full_ms,
    "repro_all_full_scale_parallel_ms": $full_parallel_ms,
    "repro_all_scale0.02_store_ms": $store_record_ms,
    "store_diff_ms": $store_diff_ms
  },
  "hotpath_melems_per_s": {
    "l2_snoop_probe": $l2_probe,
    "l2_fill_evict": $l2_fill,
    "version_map_fastmap": $fastmap,
    "version_map_std_hashmap": $stdmap
  },
  "store": {
    "append_record_melems_per_s": $store_append,
    "scan_100_records_mb_per_s": $store_scan
  },
  "previous": {
    "schema": $prev_schema,
    "repro_all_full_scale_ms": $prev_full
  }
}
EOF

echo "Wrote BENCH_baseline.json:"
cat BENCH_baseline.json
