#!/usr/bin/env bash
# Regenerates BENCH_baseline.json: wall-clock timings of representative
# jetty-repro invocations, so successive PRs have a perf trajectory to
# compare against. Schema 10 keeps the earlier measurements (host thread
# count, serial + parallel full reproduction, the MOESI/MESI/MSI protocol
# sweep, the declarative sweep grid and its suite-cache hit rate, the
# batched-replay and trace-generation hot paths, the SIMD kernel layer,
# the run-store surfaces) and hardens the wall-clock protocol: every
# timed command gets one untimed warm-up invocation first (page cache,
# CPU governor and branch predictors settle before the clock starts —
# schema 9's 22 s full-scale spread was almost entirely a cold first
# rep), and each entry records the median alongside the best-of-reps
# minimum and the max-min spread, so a skewed rep is visible instead of
# silently polluting the min. The previous file's full-scale value is
# preserved under "previous" so the before/after of perf work stays on
# record. Full-scale wall-clock on this host still drifts run-to-run;
# compare best-of-reps against best-of-reps measured the same day before
# reading anything into a delta (see "full_scale_note").
# Usage: scripts/bench_baseline.sh [reps]   (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
BIN=target/release/jetty-repro
THREADS="$(nproc)"

# The before: whatever the current baseline file reports, carried forward.
prev_schema=$(grep -o '"schema": [0-9]*' BENCH_baseline.json 2>/dev/null | head -1 | grep -o '[0-9]*' || echo null)
prev_full=$(grep -o '"repro_all_full_scale_ms": [0-9]*' BENCH_baseline.json 2>/dev/null | head -1 | grep -o '[0-9]*$' || echo null)

cargo build --release --bin jetty-repro >/dev/null

# time_ms <args...> -> sets TM_MIN / TM_MEDIAN / TM_SPREAD (milliseconds
# across REPS, after one untimed warm-up invocation).
time_ms() {
    "$BIN" "$@" >/dev/null
    local samples=""
    for _ in $(seq "$REPS"); do
        local start end
        start=$(date +%s%N)
        "$BIN" "$@" >/dev/null
        end=$(date +%s%N)
        samples="$samples$(( (end - start) / 1000000 ))"$'\n'
    done
    local sorted
    sorted=$(printf '%s' "$samples" | sort -n)
    TM_MIN=$(echo "$sorted" | head -1)
    TM_MEDIAN=$(echo "$sorted" | sed -n "$(( (REPS + 1) / 2 ))p")
    TM_SPREAD=$(( $(echo "$sorted" | tail -1) - TM_MIN ))
}

# Everything but the parallel entries pins --threads 1 so the values stay
# comparable with the schema-1 serial trajectory on any host.
time_ms table1 fig2 table4;                          static_ms=$TM_MIN;  static_median=$TM_MEDIAN; static_spread=$TM_SPREAD
time_ms table2 table3 --scale 0.1 --threads 1;       smoke_ms=$TM_MIN;   smoke_median=$TM_MEDIAN; smoke_spread=$TM_SPREAD
time_ms fig6 --scale 0.1 --threads 1;                energy_ms=$TM_MIN;  energy_median=$TM_MEDIAN; energy_spread=$TM_SPREAD
time_ms protocols --scale 0.1 --threads 1;           protocols_ms=$TM_MIN; protocols_median=$TM_MEDIAN; protocols_spread=$TM_SPREAD
time_ms protocols --scale 0.1 --threads "$THREADS";  protocols_parallel_ms=$TM_MIN; protocols_parallel_median=$TM_MEDIAN; protocols_parallel_spread=$TM_SPREAD
time_ms sweep --scale 0.1 --threads 1;               sweep_ms=$TM_MIN;   sweep_median=$TM_MEDIAN; sweep_spread=$TM_SPREAD
time_ms sweep --scale 0.1 --threads "$THREADS";      sweep_parallel_ms=$TM_MIN; sweep_parallel_median=$TM_MEDIAN; sweep_parallel_spread=$TM_SPREAD
# The grid's suite-cache hit rate, from the [sweep] stderr summary.
sweep_hit_rate=$("$BIN" sweep --scale 0.1 --threads "$THREADS" 2>&1 >/dev/null \
    | grep -o 'hit rate [0-9.]*%' | grep -o '[0-9.]*')
time_ms all --scale 1.0 --threads 1;                 full_ms=$TM_MIN;    full_median=$TM_MEDIAN; full_spread=$TM_SPREAD
time_ms all --scale 1.0 --threads 1 --shards 2;      full_sharded_ms=$TM_MIN; full_sharded_median=$TM_MEDIAN; full_sharded_spread=$TM_SPREAD
time_ms all --scale 1.0 --threads "$THREADS";        full_parallel_ms=$TM_MIN; full_parallel_median=$TM_MEDIAN; full_parallel_spread=$TM_SPREAD

# Run-store surfaces: a recorded invocation (simulation + append), and a
# diff of two recorded runs (two scans + cell-by-cell compare).
STORE_TMP=$(mktemp -d)
STORE_FILE="$STORE_TMP/baseline.store"
time_ms all --scale 0.02 --threads 1 --store "$STORE_FILE"
store_record_ms=$TM_MIN; store_record_median=$TM_MEDIAN; store_record_spread=$TM_SPREAD
"$BIN" all --scale 0.02 --threads 1 --store "$STORE_FILE" >/dev/null
time_ms diff 1 2 --store "$STORE_FILE"
store_diff_ms=$TM_MIN; store_diff_median=$TM_MEDIAN; store_diff_spread=$TM_SPREAD
rm -rf "$STORE_TMP"

# Hot-path criterion throughputs (Melem/s; the bench prints
# "hotpath/<name> ... X.XXX Melem/s").
hotpath_out=$(cargo bench --bench hotpath 2>/dev/null | grep '^hotpath/')
hp() {
    echo "$hotpath_out" | grep "^hotpath/$1 " | awk '{print $(NF-1)}'
}
l2_probe=$(hp l2_snoop_probe)
l2_fill=$(hp l2_fill_evict)
fastmap=$(hp version_map_fastmap)
stdmap=$(hp version_map_std_hashmap)
batch_ej=$(hp batch_probe_exclude)
batch_ij=$(hp batch_probe_include)
batch_hybrid=$(hp batch_probe_hybrid)
trace_chunk=$(hp trace_fill_chunk)

# SIMD kernel criterion throughputs (Melem/s), both dispatch levels. On
# hosts without AVX2 only the _scalar series exists; those entries are
# recorded as null rather than faked.
kernels_out=$(cargo bench --bench kernels 2>/dev/null | grep '^kernels/')
kn() {
    local v
    v=$(echo "$kernels_out" | grep "^kernels/$1 " | awk '{print $(NF-1)}')
    echo "${v:-null}"
}
find_key_scalar=$(kn find_key_scalar)
find_key_avx2=$(kn find_key_avx2)
ej_replay_scalar=$(kn ej_replay_scalar)
ej_replay_avx2=$(kn ej_replay_avx2)
pbit_scalar=$(kn pbit_test_many_scalar)
pbit_avx2=$(kn pbit_test_many_avx2)
l2_many_scalar=$(kn snoop_probe_many_scalar)
l2_many_avx2=$(kn snoop_probe_many_avx2)

# Intra-run sharding criterion throughputs (Melem/s of references): the
# serial fast path against the scoped fan-out at 2 and 4 shards. On a
# single-core host the sharded series measures pure spawn/merge overhead.
shard_out=$(cargo bench --bench shard_merge 2>/dev/null | grep '^shard_merge/')
sm() {
    local v
    v=$(echo "$shard_out" | grep "^shard_merge/$1 " | awk '{print $(NF-1)}')
    echo "${v:-null}"
}
replay_shards_1=$(sm replay_shards_1)
replay_shards_2=$(sm replay_shards_2)
replay_shards_4=$(sm replay_shards_4)

# Store criterion throughputs (append in Melem/s of cells, scan in MB/s).
store_out=$(cargo bench --bench store 2>/dev/null | grep '^store/')
store_append=$(echo "$store_out" | grep '^store/append_record ' | awk '{print $(NF-1)}')
store_scan=$(echo "$store_out" | grep '^store/scan_100_records ' | awk '{print $(NF-1)}')

cat > BENCH_baseline.json <<EOF
{
  "schema": 10,
  "tool": "scripts/bench_baseline.sh",
  "reps": $REPS,
  "threads": $THREADS,
  "metric": "wall-clock milliseconds after one untimed warm-up rep: best-of-reps (min) and median, with max-min spread, release build",
  "toolchain": "$(rustc --version)",
  "simd": "$("$BIN" table2 --scale 0.02 --threads 1 2>&1 >/dev/null | grep -o 'kernel dispatch: [a-z2]*' | awk '{print $3}' || echo unknown)",
  "benchmarks": {
    "repro_static_tables_ms": $static_ms,
    "repro_static_tables_median_ms": $static_median,
    "repro_static_tables_spread_ms": $static_spread,
    "repro_table2_table3_scale0.1_ms": $smoke_ms,
    "repro_table2_table3_scale0.1_median_ms": $smoke_median,
    "repro_table2_table3_scale0.1_spread_ms": $smoke_spread,
    "repro_fig6_scale0.1_ms": $energy_ms,
    "repro_fig6_scale0.1_median_ms": $energy_median,
    "repro_fig6_scale0.1_spread_ms": $energy_spread,
    "repro_protocols_scale0.1_ms": $protocols_ms,
    "repro_protocols_scale0.1_median_ms": $protocols_median,
    "repro_protocols_scale0.1_spread_ms": $protocols_spread,
    "repro_protocols_scale0.1_parallel_ms": $protocols_parallel_ms,
    "repro_protocols_scale0.1_parallel_median_ms": $protocols_parallel_median,
    "repro_protocols_scale0.1_parallel_spread_ms": $protocols_parallel_spread,
    "repro_sweep_scale0.1_ms": $sweep_ms,
    "repro_sweep_scale0.1_median_ms": $sweep_median,
    "repro_sweep_scale0.1_spread_ms": $sweep_spread,
    "repro_sweep_scale0.1_parallel_ms": $sweep_parallel_ms,
    "repro_sweep_scale0.1_parallel_median_ms": $sweep_parallel_median,
    "repro_sweep_scale0.1_parallel_spread_ms": $sweep_parallel_spread,
    "sweep_cache_hit_rate_pct": $sweep_hit_rate,
    "repro_all_full_scale_ms": $full_ms,
    "repro_all_full_scale_median_ms": $full_median,
    "repro_all_full_scale_spread_ms": $full_spread,
    "repro_all_full_scale_shards2_ms": $full_sharded_ms,
    "repro_all_full_scale_shards2_median_ms": $full_sharded_median,
    "repro_all_full_scale_shards2_spread_ms": $full_sharded_spread,
    "repro_all_full_scale_parallel_ms": $full_parallel_ms,
    "repro_all_full_scale_parallel_median_ms": $full_parallel_median,
    "repro_all_full_scale_parallel_spread_ms": $full_parallel_spread,
    "repro_all_scale0.02_store_ms": $store_record_ms,
    "repro_all_scale0.02_store_median_ms": $store_record_median,
    "repro_all_scale0.02_store_spread_ms": $store_record_spread,
    "store_diff_ms": $store_diff_ms,
    "store_diff_median_ms": $store_diff_median,
    "store_diff_spread_ms": $store_diff_spread
  },
  "hotpath_melems_per_s": {
    "l2_snoop_probe": $l2_probe,
    "l2_fill_evict": $l2_fill,
    "version_map_fastmap": $fastmap,
    "version_map_std_hashmap": $stdmap,
    "batch_probe_exclude": $batch_ej,
    "batch_probe_include": $batch_ij,
    "batch_probe_hybrid": $batch_hybrid,
    "trace_fill_chunk": $trace_chunk
  },
  "kernels_melems_per_s": {
    "find_key_scalar": $find_key_scalar,
    "find_key_avx2": $find_key_avx2,
    "ej_replay_scalar": $ej_replay_scalar,
    "ej_replay_avx2": $ej_replay_avx2,
    "pbit_test_many_scalar": $pbit_scalar,
    "pbit_test_many_avx2": $pbit_avx2,
    "snoop_probe_many_scalar": $l2_many_scalar,
    "snoop_probe_many_avx2": $l2_many_avx2
  },
  "shard_merge_melems_per_s": {
    "replay_shards_1": $replay_shards_1,
    "replay_shards_2": $replay_shards_2,
    "replay_shards_4": $replay_shards_4
  },
  "full_scale_note": "schema 10 (intra-run sharding + compacted L2 hot records) measured interleaved best-of-5 against the schema-9 binary at full scale, --threads 1: 19184 ms new vs 19058 ms old (+0.7%, parity — a second same-day session measured 20792 vs 20939 the other way; this host's run-to-run spread is 3+ s, so only the paired minima are meaningful). The compaction shows up in the microbenches instead: packing tag+valid+state into one u128 hot record per block and decoding the state nibble through a branchless 4-entry table (no reachable panic path) lets LLVM autovectorise the probe loops — same-moment A/B moved hotpath/l2_snoop_probe from ~234 to ~1350 Melem/s and l2_state from ~134 to ~1360 Melem/s at best-of-run minima. The sharded full-scale leg (repro_all_full_scale_shards2) runs on this 1-core host, where the engine's oversubscription cap clamps --shards 2 down to one slice — the multi-core sharding speedup is untestable here; shard_merge_melems_per_s records per-shard-count replay throughput for when a multi-core host regenerates this file (byte-identity at every shard count is CI-enforced either way).",
  "store": {
    "append_record_melems_per_s": $store_append,
    "scan_100_records_mb_per_s": $store_scan
  },
  "previous": {
    "schema": $prev_schema,
    "repro_all_full_scale_ms": $prev_full
  }
}
EOF

echo "Wrote BENCH_baseline.json:"
cat BENCH_baseline.json
