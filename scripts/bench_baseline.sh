#!/usr/bin/env bash
# Regenerates BENCH_baseline.json: wall-clock timings of representative
# jetty-repro invocations, so successive PRs have a perf trajectory to
# compare against. Schema 3 records the host thread count, times the full
# reproduction both sequentially (--threads 1) and on the parallel engine
# (--threads <nproc>), and adds the MOESI/MESI/MSI protocol sweep (three
# suites through the engine). Usage: scripts/bench_baseline.sh [reps]
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"
BIN=target/release/jetty-repro
THREADS="$(nproc)"

cargo build --release --bin jetty-repro >/dev/null

# time_ms <args...> -> echoes best-of-REPS milliseconds
time_ms() {
    local best=""
    for _ in $(seq "$REPS"); do
        local start end ms
        start=$(date +%s%N)
        "$BIN" "$@" >/dev/null
        end=$(date +%s%N)
        ms=$(( (end - start) / 1000000 ))
        if [[ -z "$best" || "$ms" -lt "$best" ]]; then best="$ms"; fi
    done
    echo "$best"
}

# Everything but the parallel entry pins --threads 1 so the values stay
# comparable with the schema-1 serial trajectory on any host.
static_ms=$(time_ms table1 fig2 table4)
smoke_ms=$(time_ms table2 table3 --scale 0.1 --threads 1)
energy_ms=$(time_ms fig6 --scale 0.1 --threads 1)
protocols_ms=$(time_ms protocols --scale 0.1 --threads 1)
protocols_parallel_ms=$(time_ms protocols --scale 0.1 --threads "$THREADS")
full_ms=$(time_ms all --scale 1.0 --threads 1)
full_parallel_ms=$(time_ms all --scale 1.0 --threads "$THREADS")

cat > BENCH_baseline.json <<EOF
{
  "schema": 3,
  "tool": "scripts/bench_baseline.sh",
  "reps": $REPS,
  "threads": $THREADS,
  "metric": "best-of-reps wall-clock milliseconds, release build",
  "toolchain": "$(rustc --version)",
  "benchmarks": {
    "repro_static_tables_ms": $static_ms,
    "repro_table2_table3_scale0.1_ms": $smoke_ms,
    "repro_fig6_scale0.1_ms": $energy_ms,
    "repro_protocols_scale0.1_ms": $protocols_ms,
    "repro_protocols_scale0.1_parallel_ms": $protocols_parallel_ms,
    "repro_all_full_scale_ms": $full_ms,
    "repro_all_full_scale_parallel_ms": $full_parallel_ms
  }
}
EOF

echo "Wrote BENCH_baseline.json:"
cat BENCH_baseline.json
