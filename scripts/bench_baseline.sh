#!/usr/bin/env bash
# Regenerates BENCH_baseline.json: wall-clock timings of representative
# jetty-repro invocations, so successive PRs have a perf trajectory to
# compare against. Schema 8 keeps the schema-7 measurements (host thread
# count, serial + parallel full reproduction, the MOESI/MESI/MSI protocol
# sweep, the declarative sweep grid and its suite-cache hit rate, the
# batched-replay and trace-generation hot paths, the run-store surfaces)
# and adds the SIMD kernel layer: per-kernel criterion throughputs at
# both dispatch levels (the `kernels/` group) and, for every wall-clock
# entry, the best-of-reps minimum plus its observed spread (max - min
# across reps) so the noise floor of each number is on record — and
# preserves the previous file's full-scale value under "previous" so the
# before/after of perf work stays on record. Full-scale wall-clock on
# this host drifts run-to-run by ~15%; compare best-of-reps against
# best-of-reps measured the same day before reading anything into a
# delta (see "full_scale_note").
# Usage: scripts/bench_baseline.sh [reps]   (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
BIN=target/release/jetty-repro
THREADS="$(nproc)"

# The before: whatever the current baseline file reports, carried forward.
prev_schema=$(grep -o '"schema": [0-9]*' BENCH_baseline.json 2>/dev/null | head -1 | grep -o '[0-9]*' || echo null)
prev_full=$(grep -o '"repro_all_full_scale_ms": [0-9]*' BENCH_baseline.json 2>/dev/null | head -1 | grep -o '[0-9]*$' || echo null)

cargo build --release --bin jetty-repro >/dev/null

# time_ms <args...> -> sets TM_MIN / TM_SPREAD (milliseconds across REPS)
time_ms() {
    local best="" worst=""
    for _ in $(seq "$REPS"); do
        local start end ms
        start=$(date +%s%N)
        "$BIN" "$@" >/dev/null
        end=$(date +%s%N)
        ms=$(( (end - start) / 1000000 ))
        if [[ -z "$best" || "$ms" -lt "$best" ]]; then best="$ms"; fi
        if [[ -z "$worst" || "$ms" -gt "$worst" ]]; then worst="$ms"; fi
    done
    TM_MIN="$best"
    TM_SPREAD=$(( worst - best ))
}

# Everything but the parallel entries pins --threads 1 so the values stay
# comparable with the schema-1 serial trajectory on any host.
time_ms table1 fig2 table4;                          static_ms=$TM_MIN;  static_spread=$TM_SPREAD
time_ms table2 table3 --scale 0.1 --threads 1;       smoke_ms=$TM_MIN;   smoke_spread=$TM_SPREAD
time_ms fig6 --scale 0.1 --threads 1;                energy_ms=$TM_MIN;  energy_spread=$TM_SPREAD
time_ms protocols --scale 0.1 --threads 1;           protocols_ms=$TM_MIN; protocols_spread=$TM_SPREAD
time_ms protocols --scale 0.1 --threads "$THREADS";  protocols_parallel_ms=$TM_MIN; protocols_parallel_spread=$TM_SPREAD
time_ms sweep --scale 0.1 --threads 1;               sweep_ms=$TM_MIN;   sweep_spread=$TM_SPREAD
time_ms sweep --scale 0.1 --threads "$THREADS";      sweep_parallel_ms=$TM_MIN; sweep_parallel_spread=$TM_SPREAD
# The grid's suite-cache hit rate, from the [sweep] stderr summary.
sweep_hit_rate=$("$BIN" sweep --scale 0.1 --threads "$THREADS" 2>&1 >/dev/null \
    | grep -o 'hit rate [0-9.]*%' | grep -o '[0-9.]*')
time_ms all --scale 1.0 --threads 1;                 full_ms=$TM_MIN;    full_spread=$TM_SPREAD
time_ms all --scale 1.0 --threads "$THREADS";        full_parallel_ms=$TM_MIN; full_parallel_spread=$TM_SPREAD

# Run-store surfaces: a recorded invocation (simulation + append), and a
# diff of two recorded runs (two scans + cell-by-cell compare).
STORE_TMP=$(mktemp -d)
STORE_FILE="$STORE_TMP/baseline.store"
time_ms all --scale 0.02 --threads 1 --store "$STORE_FILE"
store_record_ms=$TM_MIN; store_record_spread=$TM_SPREAD
"$BIN" all --scale 0.02 --threads 1 --store "$STORE_FILE" >/dev/null
time_ms diff 1 2 --store "$STORE_FILE"
store_diff_ms=$TM_MIN; store_diff_spread=$TM_SPREAD
rm -rf "$STORE_TMP"

# Hot-path criterion throughputs (Melem/s; the bench prints
# "hotpath/<name> ... X.XXX Melem/s").
hotpath_out=$(cargo bench --bench hotpath 2>/dev/null | grep '^hotpath/')
hp() {
    echo "$hotpath_out" | grep "^hotpath/$1 " | awk '{print $(NF-1)}'
}
l2_probe=$(hp l2_snoop_probe)
l2_fill=$(hp l2_fill_evict)
fastmap=$(hp version_map_fastmap)
stdmap=$(hp version_map_std_hashmap)
batch_ej=$(hp batch_probe_exclude)
batch_ij=$(hp batch_probe_include)
batch_hybrid=$(hp batch_probe_hybrid)
trace_chunk=$(hp trace_fill_chunk)

# SIMD kernel criterion throughputs (Melem/s), both dispatch levels. On
# hosts without AVX2 only the _scalar series exists; those entries are
# recorded as null rather than faked.
kernels_out=$(cargo bench --bench kernels 2>/dev/null | grep '^kernels/')
kn() {
    local v
    v=$(echo "$kernels_out" | grep "^kernels/$1 " | awk '{print $(NF-1)}')
    echo "${v:-null}"
}
find_key_scalar=$(kn find_key_scalar)
find_key_avx2=$(kn find_key_avx2)
ej_replay_scalar=$(kn ej_replay_scalar)
ej_replay_avx2=$(kn ej_replay_avx2)
pbit_scalar=$(kn pbit_test_many_scalar)
pbit_avx2=$(kn pbit_test_many_avx2)
l2_many_scalar=$(kn snoop_probe_many_scalar)
l2_many_avx2=$(kn snoop_probe_many_avx2)

# Store criterion throughputs (append in Melem/s of cells, scan in MB/s).
store_out=$(cargo bench --bench store 2>/dev/null | grep '^store/')
store_append=$(echo "$store_out" | grep '^store/append_record ' | awk '{print $(NF-1)}')
store_scan=$(echo "$store_out" | grep '^store/scan_100_records ' | awk '{print $(NF-1)}')

cat > BENCH_baseline.json <<EOF
{
  "schema": 8,
  "tool": "scripts/bench_baseline.sh",
  "reps": $REPS,
  "threads": $THREADS,
  "metric": "best-of-reps wall-clock milliseconds (min) with max-min spread, release build",
  "toolchain": "$(rustc --version)",
  "simd": "$("$BIN" table2 --scale 0.02 --threads 1 2>&1 >/dev/null | grep -o 'kernel dispatch: [a-z2]*' | awk '{print $3}' || echo unknown)",
  "benchmarks": {
    "repro_static_tables_ms": $static_ms,
    "repro_static_tables_spread_ms": $static_spread,
    "repro_table2_table3_scale0.1_ms": $smoke_ms,
    "repro_table2_table3_scale0.1_spread_ms": $smoke_spread,
    "repro_fig6_scale0.1_ms": $energy_ms,
    "repro_fig6_scale0.1_spread_ms": $energy_spread,
    "repro_protocols_scale0.1_ms": $protocols_ms,
    "repro_protocols_scale0.1_spread_ms": $protocols_spread,
    "repro_protocols_scale0.1_parallel_ms": $protocols_parallel_ms,
    "repro_protocols_scale0.1_parallel_spread_ms": $protocols_parallel_spread,
    "repro_sweep_scale0.1_ms": $sweep_ms,
    "repro_sweep_scale0.1_spread_ms": $sweep_spread,
    "repro_sweep_scale0.1_parallel_ms": $sweep_parallel_ms,
    "repro_sweep_scale0.1_parallel_spread_ms": $sweep_parallel_spread,
    "sweep_cache_hit_rate_pct": $sweep_hit_rate,
    "repro_all_full_scale_ms": $full_ms,
    "repro_all_full_scale_spread_ms": $full_spread,
    "repro_all_full_scale_parallel_ms": $full_parallel_ms,
    "repro_all_full_scale_parallel_spread_ms": $full_parallel_spread,
    "repro_all_scale0.02_store_ms": $store_record_ms,
    "repro_all_scale0.02_store_spread_ms": $store_record_spread,
    "store_diff_ms": $store_diff_ms,
    "store_diff_spread_ms": $store_diff_spread
  },
  "hotpath_melems_per_s": {
    "l2_snoop_probe": $l2_probe,
    "l2_fill_evict": $l2_fill,
    "version_map_fastmap": $fastmap,
    "version_map_std_hashmap": $stdmap,
    "batch_probe_exclude": $batch_ej,
    "batch_probe_include": $batch_ij,
    "batch_probe_hybrid": $batch_hybrid,
    "trace_fill_chunk": $trace_chunk
  },
  "kernels_melems_per_s": {
    "find_key_scalar": $find_key_scalar,
    "find_key_avx2": $find_key_avx2,
    "ej_replay_scalar": $ej_replay_scalar,
    "ej_replay_avx2": $ej_replay_avx2,
    "pbit_test_many_scalar": $pbit_scalar,
    "pbit_test_many_avx2": $pbit_avx2,
    "snoop_probe_many_scalar": $l2_many_scalar,
    "snoop_probe_many_avx2": $l2_many_avx2
  },
  "full_scale_note": "schema 8 (SIMD replay kernels) measured best-of-5 19596 ms vs the schema-7 binary's 19442 ms re-measured interleaved the same day (per-binary spreads 1.5-2 s) — parity on end-to-end wall-clock, not a win: the full-scale hot path is memory-bound on the simulated L2 arrays, and the batched replay the kernels vectorise is a minority of total time. (The 18819 ms recorded by schema 7 was the same binary on a quieter day — host drift, as ever.) The steady-state filter microbenchmarks are where the kernels show up: same-moment interleaved A/B against the schema-7 binary moved batch_probe_exclude from ~157 to ~217 Melem/s (+38%), batch_probe_include from ~184 to ~197 Melem/s (+7%), and batch_probe_hybrid from ~95 to ~102 Melem/s (+7%) at their best-of-run minima on the AVX2 path. Full-scale runs on this host vary ~15% run-to-run; only same-day A/B comparisons are meaningful.",
  "store": {
    "append_record_melems_per_s": $store_append,
    "scan_100_records_mb_per_s": $store_scan
  },
  "previous": {
    "schema": $prev_schema,
    "repro_all_full_scale_ms": $prev_full
  }
}
EOF

echo "Wrote BENCH_baseline.json:"
cat BENCH_baseline.json
