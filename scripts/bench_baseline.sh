#!/usr/bin/env bash
# Regenerates BENCH_baseline.json: wall-clock timings of representative
# jetty-repro invocations, so successive PRs have a perf trajectory to
# compare against. Schema 7 keeps the schema-6 measurements (host thread
# count, serial + parallel full reproduction, the MOESI/MESI/MSI protocol
# sweep, the declarative sweep grid and its suite-cache hit rate, the
# hot-path and store criterion throughputs, the run-store surfaces) and
# adds the chunked-runner hot paths: batched filter replay
# (`batch_probe_{exclude,include,hybrid}`) and streamed trace generation
# (`trace_fill_chunk`) — and preserves the previous file's full-scale
# value under "previous" so the before/after of perf work stays on
# record. Full-scale wall-clock on this host drifts run-to-run by ~15%;
# compare best-of-reps against best-of-reps measured the same day before
# reading anything into a delta (see "full_scale_note").
# Usage: scripts/bench_baseline.sh [reps]
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"
BIN=target/release/jetty-repro
THREADS="$(nproc)"

# The before: whatever the current baseline file reports, carried forward.
prev_schema=$(grep -o '"schema": [0-9]*' BENCH_baseline.json 2>/dev/null | head -1 | grep -o '[0-9]*' || echo null)
prev_full=$(grep -o '"repro_all_full_scale_ms": [0-9]*' BENCH_baseline.json 2>/dev/null | head -1 | grep -o '[0-9]*$' || echo null)

cargo build --release --bin jetty-repro >/dev/null

# time_ms <args...> -> echoes best-of-REPS milliseconds
time_ms() {
    local best=""
    for _ in $(seq "$REPS"); do
        local start end ms
        start=$(date +%s%N)
        "$BIN" "$@" >/dev/null
        end=$(date +%s%N)
        ms=$(( (end - start) / 1000000 ))
        if [[ -z "$best" || "$ms" -lt "$best" ]]; then best="$ms"; fi
    done
    echo "$best"
}

# Everything but the parallel entry pins --threads 1 so the values stay
# comparable with the schema-1 serial trajectory on any host.
static_ms=$(time_ms table1 fig2 table4)
smoke_ms=$(time_ms table2 table3 --scale 0.1 --threads 1)
energy_ms=$(time_ms fig6 --scale 0.1 --threads 1)
protocols_ms=$(time_ms protocols --scale 0.1 --threads 1)
protocols_parallel_ms=$(time_ms protocols --scale 0.1 --threads "$THREADS")
sweep_ms=$(time_ms sweep --scale 0.1 --threads 1)
sweep_parallel_ms=$(time_ms sweep --scale 0.1 --threads "$THREADS")
# The grid's suite-cache hit rate, from the [sweep] stderr summary.
sweep_hit_rate=$("$BIN" sweep --scale 0.1 --threads "$THREADS" 2>&1 >/dev/null \
    | grep -o 'hit rate [0-9.]*%' | grep -o '[0-9.]*')
full_ms=$(time_ms all --scale 1.0 --threads 1)
full_parallel_ms=$(time_ms all --scale 1.0 --threads "$THREADS")

# Run-store surfaces: a recorded invocation (simulation + append), and a
# diff of two recorded runs (two scans + cell-by-cell compare).
STORE_TMP=$(mktemp -d)
STORE_FILE="$STORE_TMP/baseline.store"
store_record_ms=$(time_ms all --scale 0.02 --threads 1 --store "$STORE_FILE")
"$BIN" all --scale 0.02 --threads 1 --store "$STORE_FILE" >/dev/null
store_diff_ms=$(time_ms diff 1 2 --store "$STORE_FILE")
rm -rf "$STORE_TMP"

# Hot-path criterion throughputs (Melem/s; the bench prints
# "hotpath/<name> ... X.XXX Melem/s").
hotpath_out=$(cargo bench --bench hotpath 2>/dev/null | grep '^hotpath/')
hp() {
    echo "$hotpath_out" | grep "^hotpath/$1 " | awk '{print $(NF-1)}'
}
l2_probe=$(hp l2_snoop_probe)
l2_fill=$(hp l2_fill_evict)
fastmap=$(hp version_map_fastmap)
stdmap=$(hp version_map_std_hashmap)
batch_ej=$(hp batch_probe_exclude)
batch_ij=$(hp batch_probe_include)
batch_hybrid=$(hp batch_probe_hybrid)
trace_chunk=$(hp trace_fill_chunk)

# Store criterion throughputs (append in Melem/s of cells, scan in MB/s).
store_out=$(cargo bench --bench store 2>/dev/null | grep '^store/')
store_append=$(echo "$store_out" | grep '^store/append_record ' | awk '{print $(NF-1)}')
store_scan=$(echo "$store_out" | grep '^store/scan_100_records ' | awk '{print $(NF-1)}')

cat > BENCH_baseline.json <<EOF
{
  "schema": 7,
  "tool": "scripts/bench_baseline.sh",
  "reps": $REPS,
  "threads": $THREADS,
  "metric": "best-of-reps wall-clock milliseconds, release build",
  "toolchain": "$(rustc --version)",
  "benchmarks": {
    "repro_static_tables_ms": $static_ms,
    "repro_table2_table3_scale0.1_ms": $smoke_ms,
    "repro_fig6_scale0.1_ms": $energy_ms,
    "repro_protocols_scale0.1_ms": $protocols_ms,
    "repro_protocols_scale0.1_parallel_ms": $protocols_parallel_ms,
    "repro_sweep_scale0.1_ms": $sweep_ms,
    "repro_sweep_scale0.1_parallel_ms": $sweep_parallel_ms,
    "sweep_cache_hit_rate_pct": $sweep_hit_rate,
    "repro_all_full_scale_ms": $full_ms,
    "repro_all_full_scale_parallel_ms": $full_parallel_ms,
    "repro_all_scale0.02_store_ms": $store_record_ms,
    "store_diff_ms": $store_diff_ms
  },
  "hotpath_melems_per_s": {
    "l2_snoop_probe": $l2_probe,
    "l2_fill_evict": $l2_fill,
    "version_map_fastmap": $fastmap,
    "version_map_std_hashmap": $stdmap,
    "batch_probe_exclude": $batch_ej,
    "batch_probe_include": $batch_ij,
    "batch_probe_hybrid": $batch_hybrid,
    "trace_fill_chunk": $trace_chunk
  },
  "full_scale_note": "schema 6 recorded 20740 ms against schema 5's 15017 ms; re-measuring both binaries back-to-back (best-of-5 each) gave 19010 ms (schema 6 HEAD) vs 18242 ms (schema 5 HEAD) with overlapping ranges — the schema-6 jump was host/environment drift, not a code regression. Full-scale runs on this host vary ~15% run-to-run; only same-day A/B comparisons are meaningful. The schema-7 chunked/batched runner measures at parity with the re-measured 19010 ms pre-batching baseline: the batched replay raises steady-state filter throughput (batch_probe_exclude ~150 Melem/s) and chunk-size tuning recovers the flush overhead (8Ki chunks cost ~22.2 s, 64Ki ~19.0 s), but end-to-end the single-core hot path is memory-bound on the simulated L2 arrays, not on per-event dispatch.",
  "store": {
    "append_record_melems_per_s": $store_append,
    "scan_100_records_mb_per_s": $store_scan
  },
  "previous": {
    "schema": $prev_schema,
    "repro_all_full_scale_ms": $prev_full
  }
}
EOF

echo "Wrote BENCH_baseline.json:"
cat BENCH_baseline.json
