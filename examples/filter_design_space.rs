//! Filter design-space exploration: sweep storage budget against coverage
//! and energy on one workload, printing a Pareto-style table.
//!
//! This is the kind of study a downstream adopter would run before taping
//! out a JETTY: how much SRAM buys how much coverage, and when does the
//! filter's own energy start eating the savings?
//!
//! ```sh
//! cargo run --release --example filter_design_space
//! ```

use jetty::core::FilterSpec;
use jetty::energy::{AccessMode, SmpEnergyModel};
use jetty::experiments::{run_app, RunOptions};
use jetty::workloads::apps;

fn main() {
    // A spread of configurations from tiny to the paper's largest.
    let specs = vec![
        FilterSpec::exclude(8, 2),
        FilterSpec::exclude(32, 4),
        FilterSpec::vector_exclude(32, 4, 8),
        FilterSpec::include(6, 5, 6),
        FilterSpec::include(8, 4, 7),
        FilterSpec::include(10, 4, 7),
        FilterSpec::hybrid_scalar(8, 4, 7, 16, 2),
        FilterSpec::hybrid_scalar(9, 4, 7, 32, 4),
        FilterSpec::hybrid_scalar(10, 4, 7, 32, 4),
        FilterSpec::hybrid_vector(10, 4, 7, 32, 4, 8),
    ];

    // Barnes: the paper's hardest workload for small filters.
    let app = apps::barnes();
    println!("design-space sweep on {} ({} refs at scale 0.3)\n", app.name, app.accesses);
    let options = RunOptions::paper().with_scale(0.3).with_specs(specs);
    let result = run_app(&app, &options);
    let model = SmpEnergyModel::paper_node();

    println!(
        "{:<26} {:>10} {:>9} {:>12} {:>12}",
        "filter", "storage", "coverage", "snoop-E red.", "L2-E red."
    );
    let mut rows: Vec<_> = result.reports.iter().collect();
    rows.sort_by_key(|r| r.storage_bits);
    for report in rows {
        let snoop = model.snoop_energy_reduction(&result.run, report, AccessMode::Serial);
        let total = model.total_energy_reduction(&result.run, report, AccessMode::Serial);
        println!(
            "{:<26} {:>9}b {:>8.1}% {:>11.1}% {:>11.1}%",
            report.label,
            report.storage_bits,
            100.0 * report.coverage(),
            100.0 * snoop,
            100.0 * total,
        );
    }
    println!(
        "\nNote the knee: hybrids dominate standalone filters per bit of \
         storage,\nand past the knee extra SRAM buys little — the paper's \
         (IJ-9x4x7, EJ-32x4)\nsits right at it."
    );
}
