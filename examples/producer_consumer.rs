//! Producer/consumer walkthrough — the sharing pattern from the paper's
//! Figure 1, instrumented step by step.
//!
//! CPU1 consumes what CPU2 produces; CPU3 is an innocent bystander whose
//! L2 tag array burns energy on every snoop unless a JETTY filters it.
//! This example walks the exact Figure 1 scenario and shows which snoops
//! each JETTY variant catches.
//!
//! ```sh
//! cargo run --example producer_consumer
//! ```

use jetty::core::FilterSpec;
use jetty::sim::{Op, System, SystemConfig};

fn main() {
    // One of each family on every node, observing the same bus.
    let specs = [
        FilterSpec::exclude(32, 4),
        FilterSpec::include(9, 4, 7),
        FilterSpec::hybrid_scalar(9, 4, 7, 32, 4),
    ];
    let mut smp = System::new(SystemConfig::paper_4way(), &specs);

    let addr_a = 0x4000u64; // the shared buffer "a" of Figure 1

    println!("Figure 1 walkthrough (CPU2 produces, CPU1 consumes, CPU3 idles):\n");

    // Action 0: the producer creates the data (BusRdX; everyone misses).
    let out = smp.access(2, Op::Write, addr_a);
    println!("CPU2 writes a  -> bus: {:?}", out.bus);

    // Action 1-3: the consumer reads; the producer supplies; CPU3's snoop
    // misses and wastes a tag probe unless filtered.
    let out = smp.access(1, Op::Read, addr_a);
    println!("CPU1 reads a   -> bus: {:?} (producer supplies, CPU3 snoop-misses)", out.bus);

    // The loop: producer rewrites (invalidating the consumer), consumer
    // re-reads. CPU0 and CPU3 snoop every transaction and always miss.
    for _ in 0..1000 {
        smp.access(2, Op::Write, addr_a);
        smp.access(1, Op::Read, addr_a);
        // Background private work keeps all CPUs busy.
        smp.access(0, Op::Read, 0x100_0000);
        smp.access(3, Op::Read, 0x200_0000);
    }

    let run = smp.run_stats();
    println!("\nbus transactions        : {}", run.system.transactions());
    println!("remote-hit distribution : {:?}", run.system.remote_hit_hist);
    println!(
        "snoops / would-miss     : {} / {}",
        run.nodes.snoops_seen, run.nodes.snoop_would_miss
    );

    println!("\n{:<24} {:>9} {:>10}", "filter", "filtered", "coverage");
    for report in smp.filter_reports() {
        println!("{:<24} {:>9} {:>9.1}%", report.label, report.filtered, 100.0 * report.coverage());
    }
    println!(
        "\nThe EJ thrives here: the bystanders see the same block miss over \
         and over.\nThe IJ guarantees the rest; the hybrid unites them."
    );
}
