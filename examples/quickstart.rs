//! Quickstart: attach the paper's best JETTY to a 4-way SMP, run a small
//! producer/consumer workload, and print coverage plus energy savings.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jetty::core::FilterSpec;
use jetty::energy::{AccessMode, SmpEnergyModel};
use jetty::sim::{Op, System, SystemConfig};

fn main() {
    // One filter bank entry per configuration we want to compare.
    let specs = [
        FilterSpec::hybrid_scalar(10, 4, 7, 32, 4), // the paper's best
        FilterSpec::include(9, 4, 7),
        FilterSpec::exclude(32, 4),
    ];
    let mut smp = System::new(SystemConfig::paper_4way(), &specs);

    // CPU 0 produces a buffer; CPU 1 consumes it; CPUs 2 and 3 crunch
    // private data. Every bus transaction snoops all other caches — the
    // bystanders' snoops all miss and are JETTY's prey.
    let buffer = 0x10_0000u64;
    for i in 0..20_000u64 {
        let unit = (i % 512) * 32;
        smp.access(0, Op::Write, buffer + unit);
        smp.access(1, Op::Read, buffer + unit);
        smp.access(2, Op::Read, 0x200_0000 + (i % 8192) * 32);
        smp.access(3, Op::Read, 0x300_0000 + (i % 8192) * 32);
    }

    let run = smp.run_stats();
    println!("bus transactions : {}", run.system.transactions());
    println!(
        "snoop misses     : {} ({:.1}% of snoops)",
        run.nodes.snoop_would_miss,
        100.0 * run.snoop_miss_fraction_of_snoops()
    );

    let model = SmpEnergyModel::paper_node();
    println!("\n{:<24} {:>9} {:>14} {:>14}", "filter", "coverage", "snoop-E saved", "L2-E saved");
    for report in smp.filter_reports() {
        let snoop = model.snoop_energy_reduction(&run, &report, AccessMode::Serial);
        let total = model.total_energy_reduction(&run, &report, AccessMode::Serial);
        println!(
            "{:<24} {:>8.1}% {:>13.1}% {:>13.1}%",
            report.label,
            100.0 * report.coverage(),
            100.0 * snoop,
            100.0 * total
        );
    }
}
