//! Throughput-engine scenario (paper §1): an SMP running *independent*
//! programs per processor. The paper predicts JETTY's savings "will be
//! larger when an SMP is used mostly as a throughput-engine (i.e., running
//! several independent programs) rather than as a parallel-engine",
//! because essentially every snoop misses.
//!
//! This example runs four disjoint private workloads (no sharing at all),
//! then the paper's parallel suite, and compares the best hybrid's
//! coverage and energy reductions.
//!
//! ```sh
//! cargo run --release --example throughput_server
//! ```

use jetty::core::FilterSpec;
use jetty::energy::{AccessMode, SmpEnergyModel};
use jetty::experiments::{run_suite, RunOptions};
use jetty::sim::{MemRef, Op, System, SystemConfig};
use jetty::workloads::{AppProfile, PaperStats, RegionLayout, SegmentSpec, TraceGen};

/// A pure throughput workload: every CPU runs its own program in its own
/// arena; nothing is shared, so every snoop is filterable.
fn throughput_profile() -> AppProfile {
    AppProfile {
        name: "Throughput",
        abbrev: "tp",
        input_desc: "4 independent programs",
        paper: PaperStats {
            accesses_m: 0.0,
            ma_mbytes: 0.0,
            l1_hit: 0.97,
            l2_hit: 0.5,
            snoop_accesses_m: 0.0,
            remote_hits: [1.0, 0.0, 0.0, 0.0],
            snoop_miss_of_snoops: 1.0,
            snoop_miss_of_all: 0.5,
        },
        accesses: 2_000_000,
        seed: 0x7069,
        segments: vec![SegmentSpec::Private {
            weight: 1.0,
            hot_bytes: 24 * 1024,
            warm_bytes: 256 * 1024,
            cold_bytes: 2 * 1024 * 1024,
            p_hot: 0.96,
            p_warm: 0.02,
            write_frac: 0.3,
            layout: RegionLayout::Arena,
        }],
    }
}

fn main() {
    let best = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4);
    let model = SmpEnergyModel::paper_node();

    // --- Throughput engine ---
    let mut smp = System::new(SystemConfig::paper_4way().without_checks(), &[best]);
    let trace: Vec<MemRef> = TraceGen::new(&throughput_profile(), 4, 1.0).collect();
    smp.run(trace.iter().copied());
    let run = smp.run_stats();
    let report = &smp.filter_reports()[0];
    println!("=== throughput engine (independent programs) ===");
    println!("snoop misses    : {:.1}% of snoops", 100.0 * run.snoop_miss_fraction_of_snoops());
    println!("coverage        : {:.1}%", 100.0 * report.coverage());
    println!(
        "energy saved    : {:.1}% of snoop-side, {:.1}% of all L2 (serial)",
        100.0 * model.snoop_energy_reduction(&run, report, AccessMode::Serial),
        100.0 * model.total_energy_reduction(&run, report, AccessMode::Serial),
    );
    let writes = trace.iter().filter(|r| r.op == Op::Write).count();
    println!("trace           : {} refs, {} stores", trace.len(), writes);

    // --- Parallel engine: the paper's suite, averaged ---
    println!("\n=== parallel engine (the paper's ten applications, scale 0.2) ===");
    let options = RunOptions::paper().with_scale(0.2).with_specs(vec![best]);
    let runs = run_suite(&options);
    let label = best.label();
    let mut cov_sum = 0.0;
    let mut save_sum = 0.0;
    for r in &runs {
        let rep = r.report(&label).expect("bank contains the best hybrid");
        cov_sum += rep.coverage();
        save_sum += model.total_energy_reduction(&r.run, rep, AccessMode::Serial);
    }
    let n = runs.len() as f64;
    println!("avg coverage    : {:.1}%", 100.0 * cov_sum / n);
    println!("avg L2-E saved  : {:.1}% (serial)", 100.0 * save_sum / n);
    println!("\nThe throughput engine saves more, exactly as §1 predicts.");
}
