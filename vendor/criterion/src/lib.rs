//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so this vendored crate
//! implements the benchmarking surface the workspace's `benches/` use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`throughput`, [`Bencher::iter`] and
//! [`Bencher::iter_batched_ref`], plus the [`criterion_group!`] /
//! [`criterion_main!`] macros (`harness = false` targets).
//!
//! Measurement model: each benchmark runs one warm-up invocation and then
//! `sample_size` timed samples, reporting the mean, minimum and maximum
//! wall-clock time per iteration (and element throughput when configured).
//! There is no statistical analysis, outlier rejection or HTML report —
//! the numbers are honest `std::time::Instant` wall-clock means, which is
//! enough to track the workspace's perf trajectory release-to-release.
//!
//! CLI behaviour: benchmark binaries accept and ignore the flags Cargo and
//! the real criterion pass around (`--bench`, substring filters); with
//! `--test` each benchmark body runs exactly once so `cargo test --benches`
//! stays fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Number of timed samples when a group never calls `sample_size`.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// How work is handed to [`Bencher::iter_batched_ref`] — retained for API
/// compatibility; this stub sets up one input per timed sample regardless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch in real criterion.
    LargeInput,
    /// Exactly one input per iteration.
    PerIteration,
}

/// Declares how much work one iteration performs so throughput can be
/// reported alongside latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Per-benchmark timing state handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    fn new(sample_size: usize, test_mode: bool) -> Self {
        Self { samples: Vec::new(), sample_size, test_mode }
    }

    fn timed_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size.max(1)
        }
    }

    /// Times `routine`, running one warm-up plus `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.test_mode {
            let _ = routine(); // warm-up
        }
        for _ in 0..self.timed_samples() {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` over a mutable reference to a fresh `setup()` value
    /// per sample; setup time is excluded from the measurement.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        if !self.test_mode {
            let mut input = setup();
            let _ = routine(&mut input); // warm-up
        }
        for _ in 0..self.timed_samples() {
            let mut input = setup();
            let start = Instant::now();
            let out = routine(&mut input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let mut line = format!(
            "{id:<48} mean {:>12} ns   [min {} ns, max {} ns, n={}]",
            mean.as_nanos(),
            min.as_nanos(),
            max.as_nanos(),
            self.samples.len()
        );
        if let Some(tp) = throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let secs = mean.as_secs_f64();
            if secs > 0.0 && count > 0 {
                line.push_str(&format!("   {:.3} M{unit}/s", count as f64 / secs / 1e6));
            }
        }
        println!("{line}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags Cargo / the real criterion CLI pass through.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Self { test_mode, filter }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.selected(id) {
            return;
        }
        let mut bencher = Bencher::new(sample_size, self.test_mode);
        f(&mut bencher);
        bencher.report(id, throughput);
    }

    /// Benchmarks `f` under `id` with the default sample size.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, DEFAULT_SAMPLE_SIZE, None, &mut f);
        self
    }

    /// Opens a named group whose benchmarks share sample-size and
    /// throughput settings.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// The final configuration step of `criterion_group!`'s default config.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks (`group_name/bench_name` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` as `group/id`.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion.run_one(&id, sample_size, throughput, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects benchmark functions into one runnable group:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` benchmark target:
/// `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(3, false);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut runs = 0;
        let mut b = Bencher::new(50, true);
        b.iter_batched_ref(
            || 0u64,
            |x| {
                runs += 1;
                *x += 1;
                *x
            },
            BatchSize::SmallInput,
        );
        assert_eq!(runs, 1);
        assert_eq!(b.samples.len(), 1);
    }
}
