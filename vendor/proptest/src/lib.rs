//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   integer ranges, tuples, and boxed strategies;
//! * [`arbitrary::any`] for primitive types;
//! * [`collection::vec`] with a `Range<usize>` length;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Semantics: each `#[test]` inside [`proptest!`] runs its body
//! `config.cases` times over inputs drawn from a generator seeded
//! deterministically from the test's name and the case index, so failures
//! reproduce run-to-run. There is **no shrinking** — a failing case panics
//! with the ordinary assertion message. Set the `PROPTEST_CASES`
//! environment variable to override the case count globally.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-run configuration.

    /// Controls how many random cases each property test executes.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random input cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// The case count, honouring the `PROPTEST_CASES` override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use core::ops::Range;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// The random source handed to strategies (a deterministic SmallRng).
    #[derive(Clone, Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Derives a generator from a test identifier and case index.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index, so each
            // property sees a distinct but reproducible stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            Self(SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        fn u64_below(&mut self, bound: u64) -> u64 {
            self.0.gen_range(0..bound)
        }

        fn f64(&mut self) -> f64 {
            self.0.gen::<f64>()
        }

        fn word(&mut self) -> u64 {
            self.0.gen::<u64>()
        }
    }

    /// A generator of random values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy simply draws a value from the [`TestRng`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.u64_below(span) as i128) as $t
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
    }

    /// Weighted union of strategies over one value type; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    }

    impl<V> Union<V> {
        /// An empty union; arms are added with [`Union::push`].
        pub fn empty() -> Self {
            Self { arms: Vec::new() }
        }

        /// Adds an arm drawn with probability `weight / total_weight`.
        pub fn push<S>(&mut self, weight: u32, strategy: S)
        where
            S: Strategy<Value = V> + 'static,
        {
            assert!(weight > 0, "prop_oneof! weights must be positive");
            self.arms.push((weight, Box::new(strategy)));
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one arm");
            let mut pick = rng.u64_below(total);
            for (w, strategy) in &self.arms {
                if pick < *w as u64 {
                    return strategy.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Uniform `f64` in `[0, 1)` — handy for probability-style inputs.
    #[derive(Clone, Copy, Debug)]
    pub struct UnitF64;

    impl Strategy for UnitF64 {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.f64()
        }
    }

    /// Full-width word strategy backing [`any`](crate::arbitrary::any).
    #[derive(Clone, Copy, Debug)]
    pub struct AnyWord<T>(pub(crate) core::marker::PhantomData<T>);

    macro_rules! impl_any_word {
        ($($t:ty),+) => {$(
            impl Strategy for AnyWord<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.word() as $t
                }
            }
        )+};
    }

    impl_any_word!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyWord<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.word() & 1 == 1
        }
    }

    impl Strategy for AnyWord<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.f64()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use core::marker::PhantomData;

    use crate::strategy::AnyWord;

    /// Returns the canonical strategy for `T` (full value range for
    /// integers, fair coin for `bool`, unit interval for `f64`).
    pub fn any<T>() -> AnyWord<T> {
        AnyWord(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use core::ops::Range;

    use crate::strategy::{Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from `len` and elements
    /// from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..400)`: vectors of 1..400 generated elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range for collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, glob-imported.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias letting tests write `prop::collection::vec(..)`.
    pub use crate as prop;
}

/// Weighted choice between strategies producing one value type:
/// `prop_oneof![3 => s1, 2 => s2]` picks `s1` 3/5ths of the time.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::empty();
        $(union.push($weight as u32, $strategy);)+
        union
    }};
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// `assert!` that names the failing property (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. Each `#[test]` body runs `cases` times over
/// inputs drawn from its strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config = $config;
            let cases = config.effective_cases();
            for case in 0..cases as u64 {
                let mut rng =
                    $crate::strategy::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $pat = (&$strategy).generate(&mut rng);)+
                $body
            }
        }

        $crate::__proptest_tests!(config = $config; $($rest)*);
    };
}
