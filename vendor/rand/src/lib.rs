//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored crate provides the (small) subset of the rand 0.8 API the
//! workspace actually uses:
//!
//! * [`rngs::SmallRng`] — a deterministic xoshiro256++ generator seeded
//!   through splitmix64, mirroring the real `SmallRng` on 64-bit targets;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`, [`Rng::gen_range`] over
//!   half-open integer ranges, and [`Rng::gen_bool`].
//!
//! Streams are deterministic for a given seed, which is all the workload
//! generators require (the workspace never asks for cryptographic
//! randomness). If the build ever regains registry access, swapping this
//! path dependency back to crates.io `rand = "0.8"` is API-compatible for
//! every call site in the tree.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integers that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Multiply-shift bounding; the tiny modulo bias of the naive
                // approach is irrelevant for trace synthesis but this is
                // bias-free for spans below 2^64 anyway (Lemire's method
                // without the rejection step, fine for simulation use).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as u128).wrapping_add(hi as u128)) as $t
            }
        }
    )+};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform integer from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the real `SmallRng` on 64-bit
    /// targets), seeded through splitmix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
