//! End-to-end integration tests: workloads through the checked SMP with
//! full filter banks, asserting the paper's qualitative results.

use jetty::core::FilterSpec;
use jetty::energy::{AccessMode, SmpEnergyModel};
use jetty::experiments::{average, run_app, run_suite, RunOptions};
use jetty::sim::{System, SystemConfig};
use jetty::workloads::{apps, TraceGen};

/// Scale used by these tests: large enough for steady state, small enough
/// to keep the suite fast.
const SCALE: f64 = 0.05;

fn checked_options(specs: Vec<FilterSpec>) -> RunOptions {
    let mut options = RunOptions::paper().with_scale(SCALE).with_specs(specs);
    options.check = true;
    options
}

#[test]
fn full_suite_respects_filter_safety_under_checking() {
    // Every app, full paper bank, full runtime verification: MOESI
    // invariants, inclusion, version coherence and the filter-safety
    // assertion all hold or this panics.
    let runs = run_suite(&checked_options(FilterSpec::paper_bank()));
    assert_eq!(runs.len(), 10);
    for r in &runs {
        assert!(
            r.run.nodes.snoop_would_miss > 0,
            "{} produced no filterable snoops",
            r.profile.name
        );
    }
}

#[test]
fn coverage_orderings_match_the_paper() {
    let runs = run_suite(&checked_options(FilterSpec::paper_bank()));

    // Hybrid coverage dominates its include component on every app
    // (the IJ component behaves identically inside the hybrid).
    for r in &runs {
        for (ij, hj) in [
            ("IJ-10x4x7", "(IJ-10x4x7, EJ-32x4)"),
            ("IJ-9x4x7", "(IJ-9x4x7, EJ-32x4)"),
            ("IJ-8x4x7", "(IJ-8x4x7, EJ-16x2)"),
        ] {
            assert!(
                r.coverage(hj) >= r.coverage(ij) - 1e-9,
                "{}: {} ({:.3}) below {} ({:.3})",
                r.profile.name,
                hj,
                r.coverage(hj),
                ij,
                r.coverage(ij)
            );
        }
    }

    // Bigger EJs cover at least as much as smaller ones on average.
    let avg = |label: &str| average(&runs, |r| r.coverage(label));
    assert!(avg("EJ-32x4") > avg("EJ-8x2"));
    assert!(avg("EJ-32x4") >= avg("EJ-16x2") - 0.02);

    // Bigger IJs dominate smaller ones on average (adjacent sizes can be
    // close at short scales, so compare across a clear size gap).
    assert!(avg("IJ-10x4x7") > avg("IJ-6x5x6"));
    assert!(avg("IJ-9x4x7") > avg("IJ-6x5x6"));
    assert!(avg("IJ-10x4x7") >= avg("IJ-8x4x7") - 0.02);

    // The paper's headline: the best hybrid covers most would-miss snoops.
    assert!(
        avg("(IJ-10x4x7, EJ-32x4)") > 0.6,
        "best hybrid average coverage {:.3} too low",
        avg("(IJ-10x4x7, EJ-32x4)")
    );
}

#[test]
fn raytrace_ij_catches_nearly_all_and_ej_about_half() {
    // §4.3.3: "for raytrace, IJ captures virtually all snoops that miss
    // while EJ captures only about half."
    // (At the full scale the IJ reaches ~0.99; this short-trace test keeps
    // a margin for cold-start misses the IJ cannot know about.)
    let run = run_app(&apps::raytrace(), &checked_options(FilterSpec::paper_bank()));
    assert!(run.coverage("IJ-10x4x7") > 0.8, "rt IJ {:.3}", run.coverage("IJ-10x4x7"));
    let ej = run.coverage("EJ-32x4");
    assert!((0.25..=0.75).contains(&ej), "rt EJ should be near half, got {ej:.3}");
    assert!(run.coverage("IJ-10x4x7") > ej + 0.2, "IJ must clearly beat EJ on raytrace");
}

#[test]
fn energy_reductions_are_positive_and_ordered() {
    let best = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4);
    let runs = run_suite(&checked_options(vec![best]));
    let model = SmpEnergyModel::paper_node();
    let label = best.label();
    for r in &runs {
        let report = r.report(&label).expect("bank");
        let serial_snoop = model.snoop_energy_reduction(&r.run, report, AccessMode::Serial);
        let serial_total = model.total_energy_reduction(&r.run, report, AccessMode::Serial);
        let parallel_snoop = model.snoop_energy_reduction(&r.run, report, AccessMode::Parallel);
        let parallel_total = model.total_energy_reduction(&r.run, report, AccessMode::Parallel);
        assert!(serial_snoop > 0.0, "{}: no snoop-side savings", r.profile.name);
        assert!(serial_total > 0.0, "{}: no total savings", r.profile.name);
        // Figure 6: parallel organisations save more, and snoop-side
        // reductions exceed whole-L2 reductions.
        assert!(parallel_snoop > serial_snoop, "{}", r.profile.name);
        assert!(parallel_total > serial_total, "{}", r.profile.name);
        assert!(serial_snoop > serial_total, "{}", r.profile.name);
    }
}

#[test]
fn filters_do_not_perturb_the_simulation() {
    // A run with a full bank and a run with no filters produce identical
    // protocol statistics: JETTY is transparent.
    let profile = apps::fft();
    let with = run_app(&profile, &checked_options(FilterSpec::paper_bank()));
    let without = run_app(&profile, &checked_options(Vec::new()));
    assert_eq!(with.run.nodes, without.run.nodes);
    assert_eq!(with.run.system, without.run.system);
}

#[test]
fn eight_way_smp_has_more_filterable_traffic() {
    // §4.3.4: on an 8-way SMP snoop misses are a larger share of all L2
    // accesses than on the 4-way.
    let spec = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4);
    let four = run_suite(&RunOptions::paper().with_scale(SCALE).with_specs(vec![spec]));
    let eight =
        run_suite(&RunOptions::paper().with_scale(SCALE).with_cpus(8).with_specs(vec![spec]));
    let share4 = average(&four, |r| r.run.snoop_miss_fraction_of_all());
    let share8 = average(&eight, |r| r.run.snoop_miss_fraction_of_all());
    assert!(share8 > share4, "8-way snoop-miss share {share8:.3} not above 4-way {share4:.3}");
}

#[test]
fn non_subblocked_l2_reduces_ej_coverage() {
    // Subblocking is a large part of EJ's food supply (§4.3.1): without
    // it, the sibling-subblock repeat snoops disappear.
    let mut options = checked_options(vec![FilterSpec::exclude(32, 4)]);
    let sb = run_suite(&options);
    options.non_subblocked = true;
    let nsb = run_suite(&options);
    let cov_sb = average(&sb, |r| r.coverage("EJ-32x4"));
    let cov_nsb = average(&nsb, |r| r.coverage("EJ-32x4"));
    assert!(cov_nsb < cov_sb, "NSB EJ coverage {cov_nsb:.3} not below subblocked {cov_sb:.3}");
}

#[test]
fn trace_generation_is_deterministic_end_to_end() {
    let profile = apps::ocean();
    let spec = FilterSpec::include(8, 4, 7);
    let mut a = System::new(SystemConfig::paper_4way().without_checks(), &[spec]);
    let mut b = System::new(SystemConfig::paper_4way().without_checks(), &[spec]);
    a.run(TraceGen::new(&profile, 4, SCALE));
    b.run(TraceGen::new(&profile, 4, SCALE));
    assert_eq!(a.run_stats().nodes, b.run_stats().nodes);
    assert_eq!(a.filter_reports()[0].filtered, b.filter_reports()[0].filtered);
}

#[test]
fn include_jetty_mirrors_l2_population_after_full_runs() {
    let profile = apps::unstructured();
    let mut smp = System::new(SystemConfig::paper_4way(), &[FilterSpec::include(10, 4, 7)]);
    smp.run(TraceGen::new(&profile, 4, SCALE));
    smp.verify_inclusion();
    smp.verify_filter_consistency();
}
