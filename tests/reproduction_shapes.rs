//! Reproduction-shape tests: the relative results the paper reports must
//! hold for the regenerated tables and figures (absolute values may differ
//! — our substrate is a synthetic-trace simulator, not WWT2).

use jetty::core::{FilterSpec, IncludeConfig};
use jetty::energy::{figure2_panel, table1_rows, AnalyticInputs, TechParams};
use jetty::experiments::figures::{self, Fig6Panel};
use jetty::experiments::{average, run_suite, tables, RunOptions};

const SCALE: f64 = 0.05;

#[test]
fn table1_fractions_match_published_values() {
    let rows = table1_rows();
    // 1 MB part: 23% with pads in the denominator, 28% without.
    assert!((rows[1].l2_fraction() - 0.23).abs() < 0.01);
    assert!((rows[1].l2_fraction_without_pads() - 0.28).abs() < 0.011);
}

#[test]
fn figure2_reference_point_and_shape() {
    let tech = TechParams::default();
    let m32 = AnalyticInputs::for_block_size(4, 32, &tech);
    // §2.1's reference point: ~33% at L=0.5, R=0.1 for 32-byte lines.
    let reference = m32.snoop_miss_fraction(0.5, 0.1);
    assert!(
        (0.2..=0.45).contains(&reference),
        "reference point {reference:.3} too far from the paper's 33%"
    );
    // The panel's top-left corner approaches the paper's ~50% axis top.
    let corner = m32.snoop_miss_fraction(0.0, 0.0);
    assert!((0.35..=0.65).contains(&corner), "corner {corner:.3}");
    // 32-byte panels sit above 64-byte panels everywhere meaningful.
    let p32 = figure2_panel(4, 32, 10, &tech);
    let p64 = figure2_panel(4, 64, 10, &tech);
    for (c32, c64) in p32.curves.iter().zip(&p64.curves) {
        for (a, b) in c32.points.iter().zip(&c64.points) {
            assert!(a.1 >= b.1 - 1e-9, "32B panel dipped below 64B at {:?}", a.0);
        }
    }
}

#[test]
fn table3_aggregates_match_paper_shape() {
    let runs = run_suite(&RunOptions::paper().with_scale(SCALE).with_specs(vec![]));
    // Paper averages: 79.6% of snoops find no remote copy; 91% of
    // snoop-induced tag accesses miss; misses are 55% of all L2 accesses.
    let rh0 =
        average(&runs, |r| r.run.system.remote_hit_fractions().first().copied().unwrap_or(0.0));
    let miss_of_snoops = average(&runs, |r| r.run.snoop_miss_fraction_of_snoops());
    let miss_of_all = average(&runs, |r| r.run.snoop_miss_fraction_of_all());
    assert!((0.6..=0.95).contains(&rh0), "remote-hit-0 average {rh0:.3} (paper 0.796)");
    assert!(
        (0.8..=1.0).contains(&miss_of_snoops),
        "snoop-miss share {miss_of_snoops:.3} (paper 0.91)"
    );
    assert!(
        (0.35..=0.7).contains(&miss_of_all),
        "miss share of all accesses {miss_of_all:.3} (paper 0.55)"
    );
    // The table renders with one row per app plus the average.
    assert_eq!(tables::table3(&runs).len(), 11);
}

#[test]
fn table4_storage_is_monotone_and_matches_formulas() {
    let configs = [
        IncludeConfig::new(10, 4, 7),
        IncludeConfig::new(9, 4, 7),
        IncludeConfig::new(8, 4, 7),
        IncludeConfig::new(7, 5, 6),
        IncludeConfig::new(6, 5, 6),
    ];
    // Storage decreases monotonically down the table, as in Table 4.
    for pair in configs.windows(2) {
        assert!(pair[0].storage_bytes() > pair[1].storage_bytes());
    }
    // The largest config's counters: 4 x 1024 x 14 bits = 7168 bytes
    // (paper's total column), plus 512 bytes of p-bits.
    assert_eq!(configs[0].cnt_storage_bits() / 8, 7168);
    assert_eq!(configs[0].pbit_storage_bits() / 8, 512);
}

#[test]
fn figure_tables_render_for_the_full_suite() {
    let runs = run_suite(&RunOptions::paper().with_scale(SCALE));
    for table in [
        figures::fig4a(&runs),
        figures::fig4b(&runs),
        figures::fig5a(&runs),
        figures::fig5b(&runs),
        figures::fig6(&runs, Fig6Panel::SnoopSerial),
        figures::fig6(&runs, Fig6Panel::AllSerial),
        figures::fig6(&runs, Fig6Panel::SnoopParallel),
        figures::fig6(&runs, Fig6Panel::AllParallel),
    ] {
        assert_eq!(table.len(), 11, "expected 10 apps + AVG:\n{}", table.render());
    }
}

#[test]
fn figure6_energy_orderings() {
    let runs = run_suite(&RunOptions::paper().with_scale(SCALE));
    let model = jetty::energy::SmpEnergyModel::paper_node();
    let best = "(IJ-10x4x7, EJ-32x4)";
    // Serial snoop-side reduction averaged over apps is substantial
    // (paper: 56%); whole-L2 is smaller (paper: 30%); parallel beats
    // serial (paper: 63% / 41%).
    let snoop_serial = average(&runs, |r| {
        model.snoop_energy_reduction(
            &r.run,
            r.report(best).unwrap(),
            jetty::energy::AccessMode::Serial,
        )
    });
    let all_serial = average(&runs, |r| {
        model.total_energy_reduction(
            &r.run,
            r.report(best).unwrap(),
            jetty::energy::AccessMode::Serial,
        )
    });
    let snoop_parallel = average(&runs, |r| {
        model.snoop_energy_reduction(
            &r.run,
            r.report(best).unwrap(),
            jetty::energy::AccessMode::Parallel,
        )
    });
    assert!(snoop_serial > 0.3, "snoop-side serial reduction {snoop_serial:.3}");
    assert!(all_serial > 0.1, "whole-L2 serial reduction {all_serial:.3}");
    assert!(snoop_serial > all_serial);
    assert!(snoop_parallel > snoop_serial);
}

#[test]
fn vej_mostly_tracks_ej_with_occasional_losses() {
    // Figure 4b: vectors help most apps slightly; they may lose on some
    // (different set-indexing) — so we assert only aggregate closeness.
    let specs = vec![FilterSpec::vector_exclude(32, 4, 8), FilterSpec::exclude(32, 4)];
    let runs = run_suite(&RunOptions::paper().with_scale(SCALE).with_specs(specs));
    let vej = average(&runs, |r| r.coverage("VEJ-32x4-8"));
    let ej = average(&runs, |r| r.coverage("EJ-32x4"));
    assert!(
        (vej - ej).abs() < 0.25,
        "VEJ average {vej:.3} implausibly far from EJ average {ej:.3}"
    );
}
