//! # jetty — reproduction of "JETTY: Filtering Snoops for Reduced Energy
//! Consumption in SMP Servers" (HPCA 2001)
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`core`] — the JETTY snoop filters (Exclude, Vector-Exclude, Include,
//!   Hybrid) and the [`core::SnoopFilter`] trait;
//! * [`sim`] — the bus-based SMP substrate (L1, subblocked L2, writeback
//!   buffer, MOESI coherence, filter banks, runtime checking);
//! * [`energy`] — Kamble–Ghose array energies, CACTI-style banking, the
//!   Appendix-A analytic model and full-run accounting;
//! * [`workloads`] — synthetic SPLASH-2-style trace generators calibrated
//!   to the paper's per-application statistics;
//! * [`experiments`] — the harness regenerating every table and figure
//!   (also available as the `jetty-repro` binary).
//!
//! ## Quick start
//!
//! ```
//! use jetty::core::FilterSpec;
//! use jetty::energy::{AccessMode, SmpEnergyModel};
//! use jetty::sim::{System, SystemConfig};
//! use jetty::workloads::{apps, TraceGen};
//!
//! // The paper's best filter on a 4-way SMP running an LU-like workload.
//! let spec = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4);
//! let mut smp = System::new(SystemConfig::paper_4way().without_checks(), &[spec]);
//! smp.run(TraceGen::new(&apps::lu(), 4, 0.02));
//!
//! let report = &smp.filter_reports()[0];
//! assert!(report.coverage() > 0.5, "the hybrid filters most would-miss snoops");
//!
//! let model = SmpEnergyModel::paper_node();
//! let saved = model.total_energy_reduction(&smp.run_stats(), report, AccessMode::Serial);
//! assert!(saved > 0.0, "JETTY pays for itself");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jetty_core as core;
pub use jetty_energy as energy;
pub use jetty_experiments as experiments;
pub use jetty_sim as sim;
pub use jetty_workloads as workloads;
