//! The [`SnoopFilter`] trait and the activity/geometry reporting that the
//! energy model consumes.
//!
//! A JETTY sits between the shared bus and the backside of a node's L2.
//! Every bus snoop first probes the filter; the filter either *guarantees*
//! that the local L2 holds no copy of the snooped coherence unit
//! ([`Verdict::NotCached`], the snoop is filtered and the L2 tag array is
//! never touched) or answers [`Verdict::MaybeCached`], in which case the
//! L2 tag array is probed as in an unfiltered system.
//!
//! Filters are *speculative but safe*: they may fail to filter a snoop that
//! would miss, but they must never filter a snoop to a unit that is cached
//! (paper §2, requirement 3). The SMP substrate enforces this invariant in
//! checked mode, and the property tests in this crate exercise it directly.

use std::fmt;

use crate::addr::UnitAddr;

/// Outcome of probing a snoop filter.
///
/// # Examples
///
/// ```
/// use jetty_core::Verdict;
///
/// assert!(Verdict::NotCached.is_filtered());
/// assert!(!Verdict::MaybeCached.is_filtered());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The filter guarantees the unit is not present in the local L2;
    /// the snoop-induced tag probe can be skipped.
    NotCached,
    /// The unit may be cached; the L2 tag array must be probed.
    MaybeCached,
}

impl Verdict {
    /// `true` when the verdict filters the snoop (no tag probe needed).
    pub fn is_filtered(self) -> bool {
        matches!(self, Verdict::NotCached)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::NotCached => f.write_str("not-cached"),
            Verdict::MaybeCached => f.write_str("maybe-cached"),
        }
    }
}

/// How much absence a snoop miss proved, reported back to filters so
/// exclude-style structures know what they may safely record.
///
/// With a subblocked L2 a snoop can miss two ways: the whole tag missed
/// (no subblock of the block is present — the common case, and the one
/// that lets an EJ record the entire block) or the tag matched but the
/// snooped subblock was invalid (only that unit is known absent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MissScope {
    /// The entire tag block containing the unit is absent.
    Block,
    /// Only the snooped coherence unit is known absent (tag matched, the
    /// sibling subblock may be present).
    Unit,
}

/// The kind of storage array a filter component is built from, used by the
/// energy model to pick per-access cost formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// An ordinary RAM array read/written one row at a time (IJ p-bit and
    /// cnt arrays, and the EJ/VEJ tag store, which reads one set per probe).
    Sram,
    /// A fully associative match structure (used by the substrate for the
    /// writeback buffer; no JETTY variant in the paper needs a CAM).
    Cam,
}

/// Geometry of one physical storage array inside a filter.
///
/// The energy model turns each spec into a per-access energy using the
/// Kamble–Ghose formulas; the paired [`ArrayActivity`] supplies the access
/// counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArraySpec {
    /// Human-readable label (`"ej.tags"`, `"ij.pbits[2]"`, ...).
    pub label: String,
    /// Number of rows (word lines).
    pub rows: usize,
    /// Bits read or written per access (columns).
    pub bits_per_row: usize,
    /// Array style.
    pub kind: ArrayKind,
}

impl ArraySpec {
    /// Creates a RAM array spec.
    pub fn sram(label: impl Into<String>, rows: usize, bits_per_row: usize) -> Self {
        Self { label: label.into(), rows, bits_per_row, kind: ArrayKind::Sram }
    }

    /// Total storage of this array in bits.
    pub fn storage_bits(&self) -> usize {
        self.rows * self.bits_per_row
    }
}

/// Read/write access counts for one array, aligned index-for-index with the
/// filter's [`SnoopFilter::arrays`] list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArrayActivity {
    /// Number of row reads.
    pub reads: u64,
    /// Number of row writes.
    pub writes: u64,
}

impl ArrayActivity {
    /// Sum of reads and writes.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A filter's accumulated activity since construction (or the last
/// [`SnoopFilter::reset_activity`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FilterActivity {
    /// Per-array access counts, aligned with [`SnoopFilter::arrays`].
    pub arrays: Vec<ArrayActivity>,
    /// Snoop probes observed.
    pub probes: u64,
    /// Snoop probes answered [`Verdict::NotCached`].
    pub filtered: u64,
}

impl FilterActivity {
    /// Creates an activity record with `n` zeroed array slots.
    pub fn with_arrays(n: usize) -> Self {
        Self { arrays: vec![ArrayActivity::default(); n], probes: 0, filtered: 0 }
    }

    /// Fraction of probes filtered, in `[0, 1]`; `0` when no probes occurred.
    pub fn filter_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.filtered as f64 / self.probes as f64
        }
    }
}

/// One deferred filter notification, as logged by the SMP substrate's
/// batched hot path.
///
/// Filters are pure bystanders: their state depends only on the ordered
/// sequence of notifications *they themselves* receive, never on protocol
/// state. The substrate exploits this by logging one compact event per
/// notification while it simulates a chunk of references scalar-fashion,
/// then replaying each node's event list through each filter in turn
/// ([`AnyFilter::apply_batch`](crate::AnyFilter::apply_batch)) — one
/// filter's arrays stay cache-resident across thousands of events instead
/// of a whole bank thrashing per snoop. Replaying the events in order is
/// *exactly* equivalent to the eager calls, including energy accounting.
///
/// # Examples
///
/// ```
/// use jetty_core::{FilterEvent, MissScope, UnitAddr};
///
/// let ev =
///     FilterEvent::Snoop { unit: UnitAddr::new(7), would_hit: false, scope: MissScope::Block };
/// assert!(matches!(ev, FilterEvent::Snoop { .. }));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterEvent {
    /// A bus snoop probed this node: the filter is probed, and — when the
    /// snoop was not filtered and the L2 would miss (`!would_hit`) — the
    /// filter learns the miss via
    /// [`record_snoop_miss`](SnoopFilter::record_snoop_miss) with `scope`.
    /// `would_hit` also drives the safety assertion: a filter that claims
    /// [`Verdict::NotCached`] for a cached unit is unsafe.
    Snoop {
        /// The snooped coherence unit.
        unit: UnitAddr,
        /// Whether the local L2 holds a valid copy (snoop would hit).
        would_hit: bool,
        /// Absence scope proven by the L2 tag probe on a miss.
        scope: MissScope,
    },
    /// The local L2 gained a valid copy ([`on_allocate`](SnoopFilter::on_allocate)).
    Allocate(UnitAddr),
    /// The local L2 lost a valid copy ([`on_deallocate`](SnoopFilter::on_deallocate)).
    Deallocate(UnitAddr),
}

/// A snoop filter in the JETTY family.
///
/// The SMP substrate drives a filter through four notifications:
///
/// 1. [`probe`](SnoopFilter::probe) on every bus snoop destined for this
///    node (reads the filter's arrays);
/// 2. [`record_snoop_miss`](SnoopFilter::record_snoop_miss) when an
///    *unfiltered* snoop subsequently missed in the local L2 (lets
///    exclude-style filters learn);
/// 3. [`on_allocate`](SnoopFilter::on_allocate) when the local L2 gains a
///    valid copy of a coherence unit (fills);
/// 4. [`on_deallocate`](SnoopFilter::on_deallocate) when the local L2 loses
///    one (evictions and snoop invalidations).
///
/// # Safety contract
///
/// After any interleaving of these calls in which every unit's
/// allocate/deallocate events are balanced, `probe(u)` may return
/// [`Verdict::NotCached`] only if `u` is not currently allocated. Filters in
/// this crate uphold the contract structurally; the substrate re-checks it
/// in checked mode.
///
/// # Threading
///
/// `Send` is a supertrait: a filter (and therefore a whole simulated
/// system) can be moved to a worker thread, which is how the parallel
/// experiment engine runs independent simulations concurrently. Filters
/// are still driven single-threaded — `Sync` is *not* required.
pub trait SnoopFilter: fmt::Debug + Send {
    /// Probes the filter for a bus snoop to `addr`.
    fn probe(&mut self, addr: UnitAddr) -> Verdict;

    /// Informs the filter that an unfiltered snoop to `addr` probed the
    /// local L2 tag array and missed, with the proven absence `scope`.
    fn record_snoop_miss(&mut self, addr: UnitAddr, scope: MissScope);

    /// Informs the filter that the local L2 now holds a valid copy of
    /// `addr`.
    fn on_allocate(&mut self, addr: UnitAddr);

    /// Informs the filter that the local L2 no longer holds a valid copy of
    /// `addr`.
    fn on_deallocate(&mut self, addr: UnitAddr);

    /// The physical arrays this filter is built from, for storage/energy
    /// estimation.
    fn arrays(&self) -> Vec<ArraySpec>;

    /// Access counts accumulated so far, aligned with [`arrays`](Self::arrays).
    fn activity(&self) -> FilterActivity;

    /// Clears the accumulated activity counters (state is preserved).
    fn reset_activity(&mut self);

    /// Short configuration name, e.g. `"EJ-32x4"` or `"IJ-10x4x7"`.
    fn name(&self) -> String;

    /// Total storage in bits across all arrays.
    fn storage_bits(&self) -> usize {
        self.arrays().iter().map(ArraySpec::storage_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_filtering() {
        assert!(Verdict::NotCached.is_filtered());
        assert!(!Verdict::MaybeCached.is_filtered());
        assert_eq!(Verdict::NotCached.to_string(), "not-cached");
        assert_eq!(Verdict::MaybeCached.to_string(), "maybe-cached");
    }

    #[test]
    fn array_spec_storage() {
        let spec = ArraySpec::sram("t", 32, 124);
        assert_eq!(spec.storage_bits(), 32 * 124);
        assert_eq!(spec.kind, ArrayKind::Sram);
    }

    #[test]
    fn activity_filter_rate() {
        let mut a = FilterActivity::with_arrays(2);
        assert_eq!(a.filter_rate(), 0.0);
        a.probes = 10;
        a.filtered = 4;
        assert!((a.filter_rate() - 0.4).abs() < 1e-12);
        assert_eq!(a.arrays.len(), 2);
    }

    #[test]
    fn array_activity_total() {
        let a = ArrayActivity { reads: 3, writes: 4 };
        assert_eq!(a.total(), 7);
    }
}
