//! Exclude-Jetty (EJ, paper §3.1): a small set-associative array recording a
//! *subset* of L2 blocks known not to be locally cached.
//!
//! An entry is a `(TAG, present-bit)` pair over **block** addresses (the L2
//! tag granularity). An entry is allocated only when a snoop missed the
//! *entire tag* — with a subblocked L2, that proves every subblock of the
//! block is absent, so filtering any snoop to that block is safe. A local
//! fill of any unit in the block invalidates the record.
//!
//! Block-grain recording is where most of EJ's coverage comes from: the
//! paper notes that "for those applications where there is little or no
//! sharing, locality is primarily the result of subblocking — accesses to
//! the different subblocks within the same L2 block will result in a miss"
//! (§4.3.1). A sequential walk fetches each 64-byte block as two 32-byte
//! subblock misses; the first snoop records the block, the second is
//! filtered. Sharing patterns add more: migratory hand-offs and
//! producer/consumer rewrites re-snoop blocks that third parties recorded
//! as absent moments earlier.

use std::fmt;

use crate::addr::{AddrSpace, UnitAddr};
use crate::filter::{ArrayActivity, ArraySpec, FilterActivity, MissScope, SnoopFilter, Verdict};
use crate::kernels::{self, EjGeom, SimdLevel};

/// Configuration for an [`ExcludeJetty`], the paper's `EJ-SxA` naming.
///
/// # Examples
///
/// ```
/// use jetty_core::ExcludeConfig;
///
/// let cfg = ExcludeConfig::new(32, 4);
/// assert_eq!(cfg.entries(), 128);
/// assert_eq!(cfg.label(), "EJ-32x4");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExcludeConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (entries per set).
    pub ways: usize,
}

impl ExcludeConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or if `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "EJ sets must be a power of two, got {sets}");
        assert!(ways > 0, "EJ associativity must be nonzero");
        Self { sets, ways }
    }

    /// Total entries (`sets * ways`).
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Paper-style label, e.g. `EJ-32x4`.
    pub fn label(&self) -> String {
        format!("EJ-{}x{}", self.sets, self.ways)
    }
}

/// Key word of one `(TAG, present-bit)` record: `tag << 1 | present`.
/// Real keys are far below `u64::MAX` (tags are at most ~34 bits), so the
/// all-ones word marks a never-used way — a probe scans *only* the keys of
/// one set (a 4-way set is 32 contiguous bytes) and touches the LRU stamps
/// on a tag match alone.
const EMPTY_KEY: u64 = u64::MAX;

fn make_key(tag: u64, present: bool) -> u64 {
    tag << 1 | u64::from(present)
}

/// The Exclude-Jetty filter. See the module docs for semantics.
///
/// # Examples
///
/// ```
/// use jetty_core::{AddrSpace, ExcludeConfig, ExcludeJetty, MissScope, SnoopFilter, UnitAddr,
///                  Verdict};
///
/// let mut ej = ExcludeJetty::new(ExcludeConfig::new(8, 2), AddrSpace::default());
/// let unit = UnitAddr::new(0x40);
///
/// // Unknown block: cannot filter.
/// assert_eq!(ej.probe(unit), Verdict::MaybeCached);
/// // The snoop went to the L2 and the whole tag missed; EJ learns.
/// ej.record_snoop_miss(unit, MissScope::Block);
/// // The next snoop to the same block — either subblock — is filtered.
/// assert_eq!(ej.probe(unit), Verdict::NotCached);
/// assert_eq!(ej.probe(UnitAddr::new(0x41)), Verdict::NotCached); // sibling subblock
/// // A local fill invalidates the record.
/// ej.on_allocate(unit);
/// assert_eq!(ej.probe(unit), Verdict::MaybeCached);
/// ```
#[derive(Clone)]
pub struct ExcludeJetty {
    config: ExcludeConfig,
    space: AddrSpace,
    /// Entry keys (`tag << 1 | present`, [`EMPTY_KEY`] = unused way) in
    /// one contiguous array; set `s` occupies
    /// `keys[s * ways .. (s + 1) * ways]`, so a probe scans one run of
    /// adjacent memory instead of chasing a per-set heap pointer.
    keys: Vec<u64>,
    /// LRU stamps, parallel to `keys` (larger = more recent; 0 = never
    /// stamped). Touched only on tag hits and replacements.
    stamps: Vec<u64>,
    clock: u64,
    /// Block-scope `record_snoop_miss` calls since the last reset (each is
    /// exactly one tag write, charged in `activity()`).
    records: u64,
    /// `on_allocate` calls since the last reset (each is exactly one tag
    /// read, charged in `activity()`).
    allocates: u64,
    activity: FilterActivity,
}

impl fmt::Debug for ExcludeJetty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExcludeJetty")
            .field("config", &self.config)
            .field("probes", &self.activity.probes)
            .field("filtered", &self.activity.filtered)
            .finish()
    }
}

impl ExcludeJetty {
    /// Number of arrays reported by [`SnoopFilter::arrays`].
    const ARRAYS: usize = 1;

    /// Creates an Exclude-Jetty for the given address space.
    pub fn new(config: ExcludeConfig, space: AddrSpace) -> Self {
        Self {
            config,
            space,
            keys: vec![EMPTY_KEY; config.entries()],
            stamps: vec![0; config.entries()],
            clock: 0,
            records: 0,
            allocates: 0,
            activity: FilterActivity::with_arrays(Self::ARRAYS),
        }
    }

    /// The configuration this filter was built with.
    pub fn config(&self) -> ExcludeConfig {
        self.config
    }

    /// The address space this filter indexes.
    pub fn space(&self) -> AddrSpace {
        self.space
    }

    fn set_bits(&self) -> u32 {
        self.config.sets.trailing_zeros()
    }

    /// Width of a stored tag in bits: the block address minus the set
    /// index.
    pub fn tag_bits(&self) -> u32 {
        self.space.block_bits().saturating_sub(self.set_bits())
    }

    fn split(&self, addr: UnitAddr) -> (usize, u64) {
        let block = self.space.block_of_unit(addr);
        let set = (block as usize) & (self.config.sets - 1);
        let tag = block >> self.set_bits();
        (set, tag)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn tag_array(&mut self) -> &mut ArrayActivity {
        &mut self.activity.arrays[0]
    }

    /// The contiguous slice of ways backing `set`.
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.config.ways;
        base..base + self.config.ways
    }

    /// Flat index of the way holding `tag` in `set`, if any. Scans keys
    /// only ([`EMPTY_KEY`] can never alias a real tag). The scan is
    /// branchless — every way is compared and the match selected with a
    /// conditional move — because the matching way's position is
    /// data-dependent: an early-exit scan mispredicts on nearly every hit,
    /// and sets are at most a few ways wide anyway. Tags are unique within
    /// a set (records only insert after a failed find), so scan order
    /// cannot change the answer.
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.config.ways;
        let keys = &self.keys[base..base + self.config.ways];
        let mut found = usize::MAX;
        for (way, &k) in keys.iter().enumerate().rev() {
            if k >> 1 == tag {
                found = base + way;
            }
        }
        (found != usize::MAX).then_some(found)
    }

    /// Replays a node's deferred event list through this filter — exactly
    /// equivalent to the substrate's eager per-snoop sequence (probe, then
    /// the safety assertion or [`record_snoop_miss`](SnoopFilter::record_snoop_miss)
    /// on an unfiltered genuine miss), but with the probe/filtered counters
    /// accumulated in registers and charged once per batch, and the key and
    /// stamp arrays staying cache-resident across the whole batch. `node`
    /// only labels the safety panic.
    pub fn apply_batch(&mut self, events: &[crate::FilterEvent], node: usize) {
        self.apply_batch_with(kernels::active_level(), events, node);
    }

    /// [`apply_batch`](ExcludeJetty::apply_batch) with an explicit kernel
    /// level — the differential-test entry point; both levels produce
    /// identical observable state (pinned by the `simd_equivalence`
    /// suite).
    ///
    /// The event chunk goes to a single [`kernels::ej_replay`] call
    /// **as-is** — no gather pass, no scratch copy: the kernel splits
    /// each unit address with this filter's [`EjGeom`] as it goes and
    /// fuses the eager probe+record sequence around one lookup per
    /// snoop, tick order preserved exactly.
    pub fn apply_batch_with(
        &mut self,
        level: SimdLevel,
        events: &[crate::FilterEvent],
        node: usize,
    ) {
        let out = self.replay_events(level, events, &[]);
        if let Some(bad) = out.unsafe_at {
            let crate::FilterEvent::Snoop { unit, .. } = events[bad] else {
                unreachable!("unsafe_at always indexes a snoop event");
            };
            panic!(
                "UNSAFE FILTER: EJ-{}x{} filtered a snoop to cached unit {unit} on node {node}",
                self.config.sets, self.config.ways
            );
        }
    }

    /// The address-split geometry handed to the replay kernel; encodes
    /// exactly the [`split`](ExcludeJetty::split) computation.
    fn geom(&self) -> EjGeom {
        EjGeom {
            block_shift: self.space.block_unit_shift(),
            set_mask: (self.config.sets - 1) as u64,
            set_bits: self.set_bits(),
        }
    }

    /// Replays one [`crate::FilterEvent`] chunk through a single
    /// [`kernels::ej_replay`] call and folds the kernel's counters into
    /// this filter's activity: probe/allocate counts are uniform
    /// tag-read charges, records/filtered/present-bit writes and the
    /// LRU clock come back from the kernel. Shared by the standalone
    /// batch path above and the hybrid's union replay (which passes its
    /// IJ verdict slice); the caller owns the unsafe-filter panic (the
    /// hybrid labels it with its own name).
    pub(crate) fn replay_events(
        &mut self,
        level: SimdLevel,
        events: &[crate::FilterEvent],
        ij_filtered: &[bool],
    ) -> kernels::ReplayOut {
        let geom = self.geom();
        let out = kernels::ej_replay(
            level,
            &mut self.keys,
            &mut self.stamps,
            self.config.ways,
            self.clock,
            geom,
            events,
            ij_filtered,
        );
        self.clock = out.clock;
        self.records += out.records;
        self.allocates += out.allocates;
        self.activity.probes += out.probes;
        self.activity.filtered += out.filtered;
        self.activity.arrays[0].writes += out.writes;
        out
    }

    /// [`probe`](SnoopFilter::probe) with an explicit kernel level for the
    /// way scan — used by the hybrid's batched replay so its EJ side rides
    /// the same dispatch decision. Observably identical to `probe` at
    /// every level.
    pub fn probe_with(&mut self, level: SimdLevel, addr: UnitAddr) -> Verdict {
        self.activity.probes += 1;
        let (set, tag) = self.split(addr);
        let base = set * self.config.ways;
        if let Some(way) = kernels::find_key(level, &self.keys[base..base + self.config.ways], tag)
        {
            let slot = base + way;
            self.stamps[slot] = self.tick();
            if self.keys[slot] & 1 != 0 {
                self.activity.filtered += 1;
                return Verdict::NotCached;
            }
        }
        Verdict::MaybeCached
    }
}

impl SnoopFilter for ExcludeJetty {
    fn probe(&mut self, addr: UnitAddr) -> Verdict {
        // Every probe reads the tag array exactly once, so that read is
        // derived from `probes` in `activity()` instead of paying a
        // counter bump on the snoop hot path.
        self.activity.probes += 1;
        let (set, tag) = self.split(addr);
        if let Some(slot) = self.find(set, tag) {
            // The clock only advances when a stamp is actually assigned:
            // stamps stay strictly monotonic in assignment order, so every
            // LRU comparison is unchanged, and probe misses skip the
            // counter bump.
            self.stamps[slot] = self.tick();
            if self.keys[slot] & 1 != 0 {
                self.activity.filtered += 1;
                return Verdict::NotCached;
            }
        }
        Verdict::MaybeCached
    }

    fn record_snoop_miss(&mut self, addr: UnitAddr, scope: MissScope) {
        // Only a whole-tag miss proves the block absent; a subblock-only
        // miss (tag matched, unit invalid) cannot be recorded at block
        // grain without risking an unsafe filter.
        if scope != MissScope::Block {
            return;
        }
        // Exactly one tag write per recorded miss, deferred to `activity()`.
        self.records += 1;
        let (set, tag) = self.split(addr);
        let stamp = self.tick();
        if let Some(slot) = self.find(set, tag) {
            self.keys[slot] |= 1;
            self.stamps[slot] = stamp;
        } else {
            let range = self.set_range(set);
            let victim = range.clone().min_by_key(|&s| self.stamps[s]).expect("ways is nonzero");
            self.keys[victim] = make_key(tag, true);
            self.stamps[victim] = stamp;
        }
    }

    fn on_allocate(&mut self, addr: UnitAddr) {
        // Any unit arriving in the block makes a block-grain record stale.
        // Exactly one tag read per call, deferred to `activity()`.
        self.allocates += 1;
        let (set, tag) = self.split(addr);
        if let Some(slot) = self.find(set, tag) {
            if self.keys[slot] & 1 != 0 {
                self.keys[slot] &= !1;
                self.tag_array().writes += 1;
            }
        }
    }

    fn on_deallocate(&mut self, _addr: UnitAddr) {
        // A unit leaving the cache never makes an EJ record unsafe; EJ
        // simply waits for the next snoop miss to relearn the block.
    }

    fn arrays(&self) -> Vec<ArraySpec> {
        // One set-associative tag store; a probe reads one set (all ways).
        let entry_bits = self.tag_bits() as usize + 1; // tag + present bit
        vec![ArraySpec::sram("ej.tags", self.config.sets, self.config.ways * entry_bits)]
    }

    fn activity(&self) -> FilterActivity {
        // Materialise the uniform charges deferred on the hot paths: one
        // tag read per probe/allocate, one tag write per recorded miss.
        let mut activity = self.activity.clone();
        activity.arrays[0].reads += activity.probes + self.allocates;
        activity.arrays[0].writes += self.records;
        activity
    }

    fn reset_activity(&mut self) {
        self.records = 0;
        self.allocates = 0;
        self.activity = FilterActivity::with_arrays(Self::ARRAYS);
    }

    fn name(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ej(sets: usize, ways: usize) -> ExcludeJetty {
        ExcludeJetty::new(ExcludeConfig::new(sets, ways), AddrSpace::default())
    }

    #[test]
    fn cold_filter_never_filters() {
        let mut f = ej(32, 4);
        for i in 0..1000 {
            assert_eq!(f.probe(UnitAddr::new(i * 37)), Verdict::MaybeCached);
        }
        assert_eq!(f.activity().filtered, 0);
        assert_eq!(f.activity().probes, 1000);
    }

    #[test]
    fn learns_block_from_full_tag_miss() {
        let mut f = ej(8, 2);
        // Units 122/123 are the two subblocks of block 61.
        let u0 = UnitAddr::new(122);
        let u1 = UnitAddr::new(123);
        assert_eq!(f.probe(u0), Verdict::MaybeCached);
        f.record_snoop_miss(u0, MissScope::Block);
        // Both subblocks of the block are now filtered.
        assert_eq!(f.probe(u0), Verdict::NotCached);
        assert_eq!(f.probe(u1), Verdict::NotCached);
    }

    #[test]
    fn unit_scope_misses_are_not_recorded() {
        let mut f = ej(8, 2);
        let u = UnitAddr::new(122);
        f.record_snoop_miss(u, MissScope::Unit);
        assert_eq!(f.probe(u), Verdict::MaybeCached);
    }

    #[test]
    fn local_allocate_invalidates_block_record() {
        let mut f = ej(8, 2);
        let u0 = UnitAddr::new(200);
        let sibling = UnitAddr::new(201);
        f.record_snoop_miss(u0, MissScope::Block);
        assert_eq!(f.probe(sibling), Verdict::NotCached);
        // The sibling subblock arrives locally: the whole record dies.
        f.on_allocate(sibling);
        assert_eq!(f.probe(u0), Verdict::MaybeCached);
        assert_eq!(f.probe(sibling), Verdict::MaybeCached);
    }

    #[test]
    fn deallocate_does_not_create_records() {
        let mut f = ej(8, 2);
        let u = UnitAddr::new(7);
        f.on_deallocate(u);
        assert_eq!(f.probe(u), Verdict::MaybeCached);
    }

    #[test]
    fn lru_replacement_evicts_oldest() {
        let mut f = ej(1, 2);
        // Distinct blocks: unit addresses 0, 2, 4 (blocks 0, 1, 2).
        let a = UnitAddr::new(0);
        let b = UnitAddr::new(2);
        let c = UnitAddr::new(4);
        f.record_snoop_miss(a, MissScope::Block);
        f.record_snoop_miss(b, MissScope::Block);
        // `a` is refreshed by a probe; `b` becomes LRU.
        assert_eq!(f.probe(a), Verdict::NotCached);
        f.record_snoop_miss(c, MissScope::Block);
        assert_eq!(f.probe(a), Verdict::NotCached);
        assert_eq!(f.probe(b), Verdict::MaybeCached);
        assert_eq!(f.probe(c), Verdict::NotCached);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut f = ej(4, 1);
        for block in 0..4u64 {
            f.record_snoop_miss(UnitAddr::new(block * 2), MissScope::Block);
        }
        for block in 0..4u64 {
            assert_eq!(f.probe(UnitAddr::new(block * 2)), Verdict::NotCached);
        }
    }

    #[test]
    fn geometry_matches_paper_largest_config() {
        // EJ-32x4 over a 34-bit block address: tag = 29 bits, 30-bit
        // entries.
        let f = ej(32, 4);
        assert_eq!(f.tag_bits(), 29);
        let arrays = f.arrays();
        assert_eq!(arrays.len(), 1);
        assert_eq!(arrays[0].rows, 32);
        assert_eq!(arrays[0].bits_per_row, 4 * 30);
        assert_eq!(f.storage_bits(), 32 * 4 * 30);
    }

    #[test]
    fn activity_counts_reads_and_writes() {
        let mut f = ej(8, 2);
        let u = UnitAddr::new(5);
        f.probe(u); // 1 read
        f.record_snoop_miss(u, MissScope::Block); // 1 write
        f.on_allocate(u); // 1 read + 1 write (record was present)
        let act = f.activity();
        assert_eq!(act.arrays[0].reads, 2);
        assert_eq!(act.arrays[0].writes, 2);
        assert_eq!(act.probes, 1);
    }

    #[test]
    fn reset_activity_preserves_state() {
        let mut f = ej(8, 2);
        let u = UnitAddr::new(11);
        f.record_snoop_miss(u, MissScope::Block);
        f.reset_activity();
        assert_eq!(f.activity().probes, 0);
        assert_eq!(f.probe(u), Verdict::NotCached);
    }

    #[test]
    fn name_and_config_roundtrip() {
        let f = ej(16, 2);
        assert_eq!(f.name(), "EJ-16x2");
        assert_eq!(f.config().entries(), 32);
    }

    #[test]
    fn sequential_walk_filters_second_subblock() {
        // The paper's main EJ locality source: a remote CPU walks
        // sequentially; each 64B block produces two snoops; the second is
        // filtered.
        let mut f = ej(32, 4);
        let mut filtered = 0;
        for unit in 0..256u64 {
            if f.probe(UnitAddr::new(unit)).is_filtered() {
                filtered += 1;
            } else {
                f.record_snoop_miss(UnitAddr::new(unit), MissScope::Block);
            }
        }
        assert_eq!(filtered, 128, "exactly every second subblock snoop is filtered");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = ExcludeConfig::new(12, 2);
    }
}
