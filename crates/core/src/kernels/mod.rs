//! Runtime-dispatched SIMD kernels for the batched snoop replay.
//!
//! The chunked runner (ARCHITECTURE §2a) funnels every hot probe loop
//! through `apply_batch`, which hands each node's whole
//! [`FilterEvent`] chunk to **one kernel call** — no gather pass, no
//! scratch copy: the kernel consumes the event array in place, splits
//! addresses with the filter's [`EjGeom`]/[`VejGeom`] shift/mask
//! geometry as it goes, and fuses find + probe + record around a single
//! lookup per snoop. The per-call dispatch cost amortises over
//! thousands of events and the replay loop compiles as a single AVX2
//! function. This
//! module supplies those loops in two interchangeable implementations:
//! a portable scalar one (`scalar`, the reference semantics) and an
//! AVX2 one (`avx2`, `std::arch::x86_64`), selected **once per
//! process**:
//!
//! * `JETTY_SIMD=scalar` / `JETTY_SIMD=avx2` force a path (forcing AVX2
//!   on a host without it warns and falls back to scalar);
//! * `JETTY_SIMD=auto` or unset picks AVX2 when
//!   `is_x86_feature_detected!("avx2")` says the host has it;
//! * any other value warns and behaves like `auto` — the same
//!   precedence shape as `JETTY_THREADS`.
//!
//! Dispatch is **per-kernel** within a level: an AVX2 level runs the
//! AVX2 replay and batch-probe kernels, but the standalone
//! [`find_key`]/[`find_tag`] entries always run the scalar loop, where
//! the tiny set windows make the vector setup a net loss (the lane
//! find stays inlined — and profitable — inside the AVX2 replay
//! loops). `*_with` variants bypass the override for differential
//! tests.
//!
//! The resolved choice is logged to stderr once (`[simd] …`) so stored
//! runs can attribute timing drift to dispatch changes, and surfaces in
//! `--timings` as a `kernel=` tag.
//!
//! # Why the lane compares need no empty-way masking
//!
//! EJ keys (`tag << 1 | present`) and VEJ tags mark never-used ways with
//! the all-ones sentinel (`u64::MAX`). Real tags are bounded by the
//! address space (at most ~34 bits), so a sentinel can never compare
//! equal to a probe tag: the 4×u64 `_mm256_cmpeq_epi64` sweep over a set
//! window is alias-free without masking out empty ways. Likewise IJ's
//! packed p-bit bitmap and the L2 hot-record array are plain dense
//! arrays indexed by masked address bits, so gathers stay in bounds by
//! construction (asserted in the safe wrappers below).
//!
//! # Safety structure
//!
//! This module and its `avx2` submodule are the **only** places in
//! `jetty-core` that may use `unsafe` (the crate denies `unsafe_code`
//! elsewhere, plus `unsafe_op_in_unsafe_fn` everywhere). The AVX2
//! kernels are safe `#[target_feature(enable = "avx2")]` functions:
//! inside them, value intrinsics are safe, and the few pointer
//! operations (unaligned loads, gathers) sit in small `unsafe` blocks
//! whose bounds are established by slice-length checks or wrapper
//! assertions. Calling an AVX2 kernel from the dispatchers here is the
//! one remaining unsafe operation, and it is sound by construction: an
//! AVX2-flavoured [`SimdLevel`] can only be obtained from
//! [`SimdLevel::avx2`], which returns one *after* runtime detection
//! succeeded.

// Kernel signatures pass the filter geometry as flat scalars (shifts,
// masks, widths) rather than bundling them into structs: the arguments
// mirror the paper's array parameters one-to-one and keep the hot call
// ABI register-only.
#![allow(clippy::too_many_arguments)]

#[cfg(target_arch = "x86_64")]
mod avx2;
mod scalar;

use std::sync::OnceLock;

use crate::filter::FilterEvent;

pub use scalar::{L2_BLOCK_PRESENT, L2_META_VALID_MASK, L2_SUB_VALID};

/// Capability token naming a kernel implementation.
///
/// The inner representation is private so the AVX2 variant cannot be
/// conjured from thin air: [`SimdLevel::SCALAR`] is always available,
/// while an AVX2 level exists only via [`SimdLevel::avx2`] (runtime
/// detection). Every kernel entry point takes an explicit level, so
/// differential tests and benches can force either path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimdLevel(Level);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Level {
    Scalar,
    Avx2,
}

impl SimdLevel {
    /// The portable scalar kernels — always available, reference
    /// semantics for the differential tests.
    pub const SCALAR: SimdLevel = SimdLevel(Level::Scalar);

    /// The AVX2 kernels, if this host supports them. Returning the
    /// token only after `is_x86_feature_detected!("avx2")` succeeds is
    /// what makes the dispatchers' unsafe calls sound.
    pub fn avx2() -> Option<SimdLevel> {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(SimdLevel(Level::Avx2));
        }
        None
    }

    /// `true` when this level runs the AVX2 kernels.
    pub fn is_avx2(self) -> bool {
        matches!(self.0, Level::Avx2)
    }

    /// Stable lowercase name (`"scalar"` / `"avx2"`) used by the
    /// `[simd]` log line and the `--timings` `kernel=` tag.
    pub fn name(self) -> &'static str {
        match self.0 {
            Level::Scalar => "scalar",
            Level::Avx2 => "avx2",
        }
    }
}

/// Kernel family named by [`resolve_simd`] — the pure decision, *before*
/// the capability check that [`active_level`] performs. Kept separate
/// from [`SimdLevel`] so the precedence rules are unit-testable with a
/// pretend `avx2_available` without ever minting a capability token the
/// host cannot honour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// Portable scalar kernels.
    Scalar,
    /// AVX2 kernels.
    Avx2,
}

/// Outcome of the `JETTY_SIMD` resolution (pure; mirrors the
/// `JETTY_THREADS` decision struct in the experiment engine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimdDecision {
    /// The kernel family to use.
    pub choice: KernelChoice,
    /// The `JETTY_SIMD` value, when present but not one of
    /// `auto`/`avx2`/`scalar` (warned about, then treated as `auto`).
    pub invalid_env: Option<String>,
    /// `true` when `JETTY_SIMD=avx2` was requested but the host lacks
    /// AVX2 (warned about, then scalar).
    pub forced_unavailable: bool,
    /// `true` when a valid `JETTY_SIMD` value decided the outcome
    /// (including an explicit `auto`).
    pub from_env: bool,
}

/// Precedence: a valid `JETTY_SIMD` wins (`avx2` downgrading with a
/// warning when unavailable); otherwise auto-detection.
pub fn resolve_simd(env: Option<&str>, avx2_available: bool) -> SimdDecision {
    let auto = if avx2_available { KernelChoice::Avx2 } else { KernelChoice::Scalar };
    let mut invalid_env = None;
    if let Some(v) = env {
        match v.trim() {
            "scalar" => {
                return SimdDecision {
                    choice: KernelChoice::Scalar,
                    invalid_env: None,
                    forced_unavailable: false,
                    from_env: true,
                }
            }
            "avx2" => {
                return SimdDecision {
                    choice: auto,
                    invalid_env: None,
                    forced_unavailable: !avx2_available,
                    from_env: true,
                }
            }
            "auto" => {
                return SimdDecision {
                    choice: auto,
                    invalid_env: None,
                    forced_unavailable: false,
                    from_env: true,
                }
            }
            other => invalid_env = Some(other.to_string()),
        }
    }
    SimdDecision { choice: auto, invalid_env, forced_unavailable: false, from_env: false }
}

/// The process-wide kernel level: `JETTY_SIMD` resolved against runtime
/// detection on first use, then cached. Logs the decision (and any
/// warnings) to stderr exactly once so every run records which kernels
/// produced its numbers.
pub fn active_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let env = std::env::var("JETTY_SIMD").ok();
        let available = SimdLevel::avx2().is_some();
        let decision = resolve_simd(env.as_deref(), available);
        if let Some(v) = &decision.invalid_env {
            eprintln!(
                "warning: ignoring invalid JETTY_SIMD={v:?} (want auto, avx2, or scalar); \
                 auto-detecting kernels"
            );
        }
        if decision.forced_unavailable {
            eprintln!(
                "warning: JETTY_SIMD=avx2 requested but this host lacks AVX2; \
                 using scalar kernels"
            );
        }
        let level = match decision.choice {
            KernelChoice::Scalar => SimdLevel::SCALAR,
            // Re-checked against detection rather than trusted: the
            // choice is pure data, the token is a capability.
            KernelChoice::Avx2 => SimdLevel::avx2().unwrap_or(SimdLevel::SCALAR),
        };
        let source = if decision.from_env {
            "JETTY_SIMD override"
        } else if available {
            "auto-detected"
        } else {
            "auto: no avx2"
        };
        eprintln!("[simd] kernel dispatch: {} ({source})", level.name());
        level
    })
}

/// Address-split geometry of an Exclude-Jetty, precomputed so the
/// replay kernel can turn a raw unit address into (set, tag) with two
/// shifts and a mask — no per-event method calls back into the filter.
#[derive(Clone, Copy, Debug)]
pub struct EjGeom {
    /// Right-shift turning a raw unit address into a block address.
    pub block_shift: u32,
    /// `sets - 1`: the set-index mask applied to the block address.
    pub set_mask: u64,
    /// `log2(sets)`: the tag shift.
    pub set_bits: u32,
}

/// Address-split geometry of a Vector-Exclude-Jetty: like [`EjGeom`]
/// with a present-vector lane peeled off the block address first.
#[derive(Clone, Copy, Debug)]
pub struct VejGeom {
    /// Right-shift turning a raw unit address into a block address.
    pub block_shift: u32,
    /// `vector_len - 1`: the lane mask applied to the block address.
    pub lane_mask: u64,
    /// `log2(vector_len)`: the chunk shift.
    pub lane_bits: u32,
    /// `sets - 1`: the set-index mask applied to the chunk address.
    pub set_mask: u64,
    /// `log2(sets)`: the tag shift.
    pub set_bits: u32,
}

/// Result of replaying one event chunk through an EJ/VEJ kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayOut {
    /// Snoop events in the chunk (uniform tag-read probe charges).
    pub probes: u64,
    /// Allocate events in the chunk (uniform tag-read charges).
    pub allocates: u64,
    /// Snoops this component itself answered `NotCached`.
    pub filtered: u64,
    /// Snoops filtered by this component *or* by the paired IJ verdict
    /// slice — the hybrid's union verdict count. Equals `filtered` for
    /// standalone replays.
    pub union_filtered: u64,
    /// Block records inserted or refreshed.
    pub records: u64,
    /// Tag-array writes caused by allocate events clearing a present
    /// bit/lane.
    pub writes: u64,
    /// The LRU clock after the chunk.
    pub clock: u64,
    /// Index (into the event chunk) of the first snoop whose union
    /// verdict filtered a `would_hit` event — an unsafe-filter bug the
    /// caller must turn into the standard panic (the kernel stops
    /// there, exactly where the eager path would have panicked).
    pub unsafe_at: Option<usize>,
}

/// Result of replaying one event chunk through the IJ kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IjReplayOut {
    /// Snoop events in the chunk (uniform p-bit-read probe charges).
    pub probes: u64,
    /// Allocate events in the chunk (uniform counter-RMW charges).
    pub allocates: u64,
    /// Deallocate events in the chunk (uniform counter-RMW charges).
    pub deallocates: u64,
    /// Snoops the Include-Jetty answered `NotCached` (each also pushed
    /// as `true` into the verdict vector).
    pub filtered: u64,
    /// Index of the first snoop that filtered a `would_hit` event. The
    /// kernel keeps going (the hybrid's EJ/VEJ pass is the panic
    /// authority and must see every verdict); a standalone IJ replay
    /// panics on it after the call, and any state mutated past that
    /// point is unobservable behind the panic.
    pub unsafe_at: Option<usize>,
}

macro_rules! dispatch {
    ($level:expr, $name:ident ( $($arg:expr),* $(,)? )) => {
        match $level.0 {
            Level::Scalar => scalar::$name($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: an AVX2 `SimdLevel` is only constructible through
            // `SimdLevel::avx2()`, which returns one after
            // `is_x86_feature_detected!("avx2")` succeeded on this
            // host, so the target-feature contract holds.
            #[allow(unsafe_code)]
            Level::Avx2 => unsafe { avx2::$name($($arg),*) },
            #[cfg(not(target_arch = "x86_64"))]
            Level::Avx2 => unreachable!("AVX2 level cannot exist off x86_64"),
        }
    };
}

/// Lowest way index in an EJ set window whose key matches `tag`
/// (`key >> 1 == tag`; the all-ones empty key never aliases a real
/// tag). `keys` is one set's contiguous key window.
///
/// Dispatch is per-kernel: the *standalone* find always runs the scalar
/// loop regardless of `level` — set windows are 2–4 ways, so the AVX2
/// lane setup dominates and the vector path measures ~4x slower
/// (BENCH schema 9: 534 vs 1965 Melem/s). The lane find stays
/// profitable only where it is inlined inside the AVX2 replay loops,
/// which keep it. Use [`find_key_with`] to force an implementation.
pub fn find_key(_level: SimdLevel, keys: &[u64], tag: u64) -> Option<usize> {
    scalar::find_key_ej(keys, tag)
}

/// [`find_key`] with the per-kernel override bypassed: runs exactly the
/// implementation `level` names, for differential tests and benches
/// that pin the scalar and AVX2 finds against each other.
pub fn find_key_with(level: SimdLevel, keys: &[u64], tag: u64) -> Option<usize> {
    dispatch!(level, find_key_ej(keys, tag))
}

/// Lowest way index in a VEJ set window whose tag equals `tag` (the
/// all-ones empty tag never aliases a real chunk tag). Always the
/// scalar loop, like [`find_key`] (same per-kernel rationale).
pub fn find_tag(_level: SimdLevel, tags: &[u64], tag: u64) -> Option<usize> {
    scalar::find_key_vej(tags, tag)
}

/// [`find_tag`] with the per-kernel override bypassed; see
/// [`find_key_with`].
pub fn find_tag_with(level: SimdLevel, tags: &[u64], tag: u64) -> Option<usize> {
    dispatch!(level, find_key_vej(tags, tag))
}

/// Replays one [`FilterEvent`] chunk against an Exclude-Jetty's flat
/// `keys`/`stamps` arrays, splitting each unit address with `geom` as
/// it goes. Snoops: find (kernel scan), LRU stamp on hit,
/// filtered/record bookkeeping, first-minimum victim scan on recordable
/// misses — bit-for-bit the logic of the eager probe + record sequence.
/// Allocates: find + clear the present bit (counted in
/// [`ReplayOut::writes`]). Deallocates: a no-op.
///
/// `ij_filtered` is the hybrid's IJ verdict slice, parallel to
/// `events` (one `bool` per event, `true` only for IJ-filtered
/// snoops); pass an empty slice for a standalone replay. An
/// IJ-filtered snoop is treated as already filtered: it cannot record,
/// and it counts toward [`ReplayOut::union_filtered`] and the
/// unsafe-filter check.
///
/// # Panics
///
/// Panics if `ways` is zero, the arrays' lengths differ from
/// `sets * ways` per `geom`, or `ij_filtered` is neither empty nor
/// parallel to `events`.
pub fn ej_replay(
    level: SimdLevel,
    keys: &mut [u64],
    stamps: &mut [u64],
    ways: usize,
    clock: u64,
    geom: EjGeom,
    events: &[FilterEvent],
    ij_filtered: &[bool],
) -> ReplayOut {
    assert!(ways > 0, "EJ replay needs a nonzero associativity");
    assert_eq!(keys.len(), stamps.len(), "EJ keys and stamps must be parallel");
    assert_eq!(
        keys.len(),
        (geom.set_mask as usize + 1) * ways,
        "EJ arrays must hold sets * ways entries"
    );
    assert!(
        ij_filtered.is_empty() || ij_filtered.len() == events.len(),
        "IJ verdict slice must be empty or parallel to the event chunk"
    );
    dispatch!(level, ej_replay(keys, stamps, ways, clock, geom, events, ij_filtered))
}

/// Replays one [`FilterEvent`] chunk against a Vector-Exclude-Jetty's
/// flat `tags`/`vectors`/`stamps` arrays (the [`ej_replay`] logic with
/// a present-vector lane test in place of the present bit; `geom`
/// additionally peels the lane off the block address).
///
/// # Panics
///
/// Panics if `ways` is zero, the arrays' lengths differ from
/// `sets * ways` per `geom`, or `ij_filtered` is neither empty nor
/// parallel to `events`.
pub fn vej_replay(
    level: SimdLevel,
    tags: &mut [u64],
    vectors: &mut [u64],
    stamps: &mut [u64],
    ways: usize,
    clock: u64,
    geom: VejGeom,
    events: &[FilterEvent],
    ij_filtered: &[bool],
) -> ReplayOut {
    assert!(ways > 0, "VEJ replay needs a nonzero associativity");
    assert_eq!(tags.len(), vectors.len(), "VEJ tags and vectors must be parallel");
    assert_eq!(tags.len(), stamps.len(), "VEJ tags and stamps must be parallel");
    assert_eq!(
        tags.len(),
        (geom.set_mask as usize + 1) * ways,
        "VEJ arrays must hold sets * ways entries"
    );
    assert!(
        ij_filtered.is_empty() || ij_filtered.len() == events.len(),
        "IJ verdict slice must be empty or parallel to the event chunk"
    );
    dispatch!(level, vej_replay(tags, vectors, stamps, ways, clock, geom, events, ij_filtered))
}

/// Replays one [`FilterEvent`] chunk against an Include-Jetty's
/// `counts`/`pbits` arrays. Snoops batch-test the packed p-bit bitmap
/// (4 units per AVX2 iteration within each run of consecutive snoops,
/// skipping remaining sub-arrays once every lane is decided absent);
/// allocates/deallocates perform the counter read-modify-writes in
/// event order, accumulating the data-dependent p-bit writes per
/// sub-array into `pbit_writes`. When `verdicts` is `Some`, one verdict
/// per event is appended (`true` only for IJ-filtered snoops), keeping
/// it parallel to `events` for the hybrid's EJ/VEJ pass; standalone
/// callers pass `None` and the kernels skip verdict recording entirely
/// (the counters and `unsafe_at` carry everything a lone IJ needs).
///
/// # Panics
///
/// Panics unless `sub_arrays >= 1`, `index_bits < 32`, `counts` holds
/// exactly `sub_arrays << index_bits` entries covered by `pbits`, and
/// `pbit_writes` has one slot per sub-array — the bounds that keep the
/// AVX2 gathers in range. Also panics (via the kernels) on counter
/// saturation/underflow, exactly like the eager
/// allocate/deallocate paths.
pub fn ij_replay(
    level: SimdLevel,
    counts: &mut [u16],
    pbits: &mut [u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    events: &[FilterEvent],
    verdicts: Option<&mut Vec<bool>>,
    pbit_writes: &mut [u64],
) -> IjReplayOut {
    assert!(sub_arrays >= 1, "IJ needs at least one sub-array");
    assert!(index_bits < 32, "IJ index width out of range");
    assert_eq!(
        counts.len(),
        (sub_arrays as usize) << index_bits,
        "IJ counts must hold sub_arrays << index_bits entries"
    );
    assert!(
        pbits.len() * 64 >= counts.len(),
        "p-bit bitmap too small for {sub_arrays} sub-arrays of 2^{index_bits} entries"
    );
    assert_eq!(pbit_writes.len(), sub_arrays as usize, "one p-bit write counter per sub-array");
    dispatch!(
        level,
        ij_replay(counts, pbits, index_bits, sub_arrays, skip, events, verdicts, pbit_writes)
    )
}

/// Batch-tests IJ's packed p-bit bitmap for a run of snoop unit
/// addresses, appending one `bool` per unit to `absent` (`true` = some
/// selected p-bit is clear, i.e. the unit is guaranteed absent).
/// Sub-array `i` is indexed by bits `[i*skip, i*skip + index_bits)` of
/// the unit; its entry `idx` lives at packed bit `(i << index_bits) |
/// idx` of `pbits`.
///
/// # Panics
///
/// Panics unless `sub_arrays >= 1`, `index_bits < 32`, and `pbits`
/// holds all `sub_arrays << index_bits` bits — the bounds that keep the
/// AVX2 gathers in range.
pub fn pbit_test_many(
    level: SimdLevel,
    pbits: &[u64],
    units: &[u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    absent: &mut Vec<bool>,
) {
    assert!(sub_arrays >= 1, "IJ needs at least one sub-array");
    assert!(index_bits < 32, "IJ index width out of range");
    assert!(
        pbits.len() * 64 >= (sub_arrays as usize) << index_bits,
        "p-bit bitmap too small for {sub_arrays} sub-arrays of 2^{index_bits} entries"
    );
    dispatch!(level, pbit_test_many(pbits, units, index_bits, sub_arrays, skip, absent))
}

/// Batch L2 snoop probe over the compacted hot array (one `u128` record
/// per set: tag in the low 64 bits, valid mask + packed state nibbles
/// in the high 64), appending one flag byte per unit to `out`
/// ([`L2_BLOCK_PRESENT`] / [`L2_SUB_VALID`]). One 16-byte record load
/// answers both snoop questions, so a probe touches a single cache
/// line instead of two separate arrays.
///
/// # Panics
///
/// Panics unless `sub_bits <= 3` (the valid mask is the low 8 bits of
/// the record's meta half), `index_bits < 48`, and `hot` holds
/// `1 << index_bits` records — the bounds that keep the AVX2 gathers
/// in range.
pub fn snoop_probe_many(
    level: SimdLevel,
    hot: &[u128],
    units: &[u64],
    sub_bits: u32,
    index_bits: u32,
    out: &mut Vec<u8>,
) {
    assert!(sub_bits <= 3, "valid mask is eight bits of the hot record's meta half");
    assert!(index_bits < 48, "L2 index width out of range");
    assert!(hot.len() >= 1usize << index_bits, "L2 hot array smaller than the index space");
    dispatch!(level, l2_probe_many(hot, units, sub_bits, index_bits, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_takes_precedence() {
        for avail in [false, true] {
            let d = resolve_simd(Some("scalar"), avail);
            assert_eq!(d.choice, KernelChoice::Scalar, "avail={avail}");
            assert!(d.from_env && d.invalid_env.is_none() && !d.forced_unavailable);
        }
        let d = resolve_simd(Some("avx2"), true);
        assert_eq!(d.choice, KernelChoice::Avx2);
        assert!(d.from_env && !d.forced_unavailable);
        // Values are trimmed like JETTY_THREADS.
        assert_eq!(resolve_simd(Some(" scalar "), true).choice, KernelChoice::Scalar);
    }

    #[test]
    fn forcing_avx2_without_hardware_downgrades_with_a_flag() {
        let d = resolve_simd(Some("avx2"), false);
        assert_eq!(d.choice, KernelChoice::Scalar);
        assert!(d.forced_unavailable, "the downgrade must be loud");
        assert!(d.invalid_env.is_none());
    }

    #[test]
    fn auto_and_unset_follow_detection() {
        for env in [None, Some("auto")] {
            assert_eq!(resolve_simd(env, true).choice, KernelChoice::Avx2, "env={env:?}");
            assert_eq!(resolve_simd(env, false).choice, KernelChoice::Scalar, "env={env:?}");
            assert!(!resolve_simd(env, true).forced_unavailable);
        }
        assert!(resolve_simd(Some("auto"), true).from_env);
        assert!(!resolve_simd(None, true).from_env);
    }

    #[test]
    fn invalid_values_warn_and_fall_back_to_auto() {
        for bad in ["", "AVX2", "sse", "1"] {
            let d = resolve_simd(Some(bad), true);
            assert_eq!(d.choice, KernelChoice::Avx2, "JETTY_SIMD={bad:?}");
            assert_eq!(d.invalid_env.as_deref(), Some(bad.trim()));
            assert!(!d.from_env);
        }
    }

    #[test]
    fn level_tokens_report_their_names() {
        assert_eq!(SimdLevel::SCALAR.name(), "scalar");
        assert!(!SimdLevel::SCALAR.is_avx2());
        if let Some(l) = SimdLevel::avx2() {
            assert_eq!(l.name(), "avx2");
            assert!(l.is_avx2());
        }
        assert!(["scalar", "avx2"].contains(&active_level().name()));
    }

    /// Every kernel pair, smoke-compared on both levels when the host
    /// has AVX2 (the exhaustive comparison lives in the
    /// `simd_equivalence` proptest).
    #[test]
    fn avx2_kernels_match_scalar_on_a_smoke_input() {
        let Some(avx2) = SimdLevel::avx2() else {
            eprintln!("note: AVX2 unavailable; kernel smoke comparison skipped");
            return;
        };
        // find over a sentinel-padded window, all widths 1..=9.
        for ways in 1..=9usize {
            let mut keys = vec![u64::MAX; ways];
            if ways > 1 {
                keys[ways / 2] = 77u64 << 1 | 1;
            }
            keys[ways - 1] = 42u64 << 1;
            for tag in [0u64, 42, 77, u64::MAX >> 1] {
                assert_eq!(
                    find_key_with(SimdLevel::SCALAR, &keys, tag),
                    find_key_with(avx2, &keys, tag),
                    "ways={ways} tag={tag}"
                );
                assert_eq!(
                    find_tag_with(SimdLevel::SCALAR, &keys, tag),
                    find_tag_with(avx2, &keys, tag),
                    "ways={ways} tag={tag}"
                );
                // The public entries ignore the level (per-kernel
                // dispatch: standalone find is always scalar).
                assert_eq!(
                    find_key(avx2, &keys, tag),
                    find_key_with(SimdLevel::SCALAR, &keys, tag),
                );
                assert_eq!(
                    find_tag(avx2, &keys, tag),
                    find_tag_with(SimdLevel::SCALAR, &keys, tag),
                );
            }
        }
        // p-bit batch over a mixed bitmap, including a non-multiple-of-4
        // tail.
        let pbits: Vec<u64> = (0..8).map(|i| 0x5555_5555_5555_5555u64.rotate_left(i)).collect();
        let units: Vec<u64> = (0..13).map(|i| i * 0x9E37_79B9u64).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        pbit_test_many(SimdLevel::SCALAR, &pbits, &units, 7, 4, 11, &mut a);
        pbit_test_many(avx2, &pbits, &units, 7, 4, 11, &mut b);
        assert_eq!(a, b);
        // L2 probe over a small populated cache image: tag in the low
        // record half, valid mask in the low meta bits of the high half.
        let sets = 1usize << 5;
        let hot: Vec<u128> = (0..sets as u64)
            .map(|i| {
                let tag = i * 3 % 7;
                let mask = if i % 3 == 0 { 0 } else { i & L2_META_VALID_MASK };
                tag as u128 | ((mask as u128) << 64)
            })
            .collect();
        let units: Vec<u64> = (0..23).map(|i| i * 0x0123_4567u64 % (1 << 12)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        snoop_probe_many(SimdLevel::SCALAR, &hot, &units, 1, 5, &mut a);
        snoop_probe_many(avx2, &hot, &units, 1, 5, &mut b);
        assert_eq!(a, b);
    }
}
