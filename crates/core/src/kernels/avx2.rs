//! AVX2 implementations of the replay kernels.
//!
//! Every function here is a safe `#[target_feature(enable = "avx2")]`
//! function: the dispatcher in [`super`] is the only caller from
//! non-AVX2 contexts, and its `unsafe` call is justified by the
//! [`super::SimdLevel`] capability token (constructed only after
//! runtime detection). Within this file the remaining `unsafe` blocks
//! are the pointer intrinsics — unaligned loads bounded by slice-length
//! checks, and gathers whose index ranges the dispatcher asserts.
//!
//! The set-window scans need no empty-way masking because the EJ/VEJ
//! sentinel words (`u64::MAX`) can never equal a real tag (see the
//! module docs in [`super`]); `_mm256_cmpeq_epi64` against the
//! broadcast needle is therefore exact.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_andnot_si256, _mm256_castsi256_pd,
    _mm256_cmpeq_epi64, _mm256_i64gather_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
    _mm256_or_si256, _mm256_set1_epi64x, _mm256_set_epi64x, _mm256_setzero_si256,
    _mm256_sllv_epi64, _mm256_srl_epi64, _mm256_srli_epi64, _mm256_testz_si256, _mm_cvtsi64_si128,
};

use super::{scalar, EjGeom, IjReplayOut, ReplayOut, VejGeom, L2_BLOCK_PRESENT, L2_SUB_VALID};
use crate::filter::{FilterEvent, MissScope};
use scalar::L2_META_VALID_MASK;

/// 4-lane find over a set window: compares `keys[w] >> SHIFT` against
/// `tag` (`SHIFT` is 1 for EJ keys, 0 for VEJ tags) and returns the
/// lowest matching way. Full 4-wide chunks use one unaligned load, a
/// lane compare, and a movemask; the sub-4 tail falls back to a scalar
/// first-match scan (loading past the window would read the next set).
/// Both halves return the lowest index, matching the scalar twin's
/// keep-lowest reverse scan.
#[target_feature(enable = "avx2")]
#[inline]
fn find_lanes<const SHIFT: i32>(keys: &[u64], tag: u64) -> Option<usize> {
    let needle = _mm256_set1_epi64x(tag as i64);
    let mut i = 0;
    while i + 4 <= keys.len() {
        // SAFETY: `i + 4 <= keys.len()` keeps the 32-byte unaligned
        // load inside the slice.
        let v = unsafe { _mm256_loadu_si256(keys.as_ptr().add(i).cast::<__m256i>()) };
        let eq = _mm256_cmpeq_epi64(_mm256_srli_epi64::<SHIFT>(v), needle);
        let hits = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
        if hits != 0 {
            return Some(i + hits.trailing_zeros() as usize);
        }
        i += 4;
    }
    keys[i..].iter().position(|&k| k >> SHIFT == tag).map(|p| i + p)
}

/// AVX2 twin of [`scalar::find_key_ej`].
#[target_feature(enable = "avx2")]
pub(super) fn find_key_ej(keys: &[u64], tag: u64) -> Option<usize> {
    find_lanes::<1>(keys, tag)
}

/// AVX2 twin of [`scalar::find_key_vej`].
#[target_feature(enable = "avx2")]
pub(super) fn find_key_vej(tags: &[u64], tag: u64) -> Option<usize> {
    find_lanes::<0>(tags, tag)
}

/// AVX2 twin of [`scalar::ej_replay`]: the identical replay loop, with
/// the way scan compiled as the lane compare above (inlined — this
/// whole function body is AVX2 code, so the per-event find costs no
/// cross-feature call).
#[target_feature(enable = "avx2")]
pub(super) fn ej_replay(
    keys: &mut [u64],
    stamps: &mut [u64],
    ways: usize,
    clock: u64,
    geom: EjGeom,
    events: &[FilterEvent],
    ij_filtered: &[bool],
) -> ReplayOut {
    let mut out = ReplayOut { clock, ..ReplayOut::default() };
    for (i, e) in events.iter().enumerate() {
        match *e {
            FilterEvent::Snoop { unit, would_hit, scope } => {
                out.probes += 1;
                let block = unit.raw() >> geom.block_shift;
                let base = (block & geom.set_mask) as usize * ways;
                let tag = block >> geom.set_bits;
                let keys = &mut keys[base..base + ways];
                let stamps = &mut stamps[base..base + ways];
                let ijf = !ij_filtered.is_empty() && ij_filtered[i];
                let recordable = !would_hit && scope == MissScope::Block && !ijf;
                let mut ej_filtered = false;
                if let Some(way) = find_lanes::<1>(keys, tag) {
                    out.clock += 1;
                    stamps[way] = out.clock;
                    if keys[way] & 1 != 0 {
                        ej_filtered = true;
                        out.filtered += 1;
                    } else if recordable {
                        out.records += 1;
                        keys[way] |= 1;
                        out.clock += 1;
                        stamps[way] = out.clock;
                    }
                } else if recordable {
                    out.records += 1;
                    out.clock += 1;
                    let mut victim = 0;
                    let mut oldest = stamps[0];
                    for (w, &st) in stamps.iter().enumerate().skip(1) {
                        if st < oldest {
                            oldest = st;
                            victim = w;
                        }
                    }
                    keys[victim] = tag << 1 | 1;
                    stamps[victim] = out.clock;
                }
                if ej_filtered || ijf {
                    out.union_filtered += 1;
                    if would_hit {
                        out.unsafe_at = Some(i);
                        return out;
                    }
                }
            }
            FilterEvent::Allocate(unit) => {
                out.allocates += 1;
                let block = unit.raw() >> geom.block_shift;
                let base = (block & geom.set_mask) as usize * ways;
                let tag = block >> geom.set_bits;
                let keys = &mut keys[base..base + ways];
                if let Some(way) = find_lanes::<1>(keys, tag) {
                    if keys[way] & 1 != 0 {
                        keys[way] &= !1;
                        out.writes += 1;
                    }
                }
            }
            FilterEvent::Deallocate(_) => {}
        }
    }
    out
}

/// AVX2 twin of [`scalar::vej_replay`].
#[target_feature(enable = "avx2")]
pub(super) fn vej_replay(
    tags: &mut [u64],
    vectors: &mut [u64],
    stamps: &mut [u64],
    ways: usize,
    clock: u64,
    geom: VejGeom,
    events: &[FilterEvent],
    ij_filtered: &[bool],
) -> ReplayOut {
    let mut out = ReplayOut { clock, ..ReplayOut::default() };
    for (i, e) in events.iter().enumerate() {
        match *e {
            FilterEvent::Snoop { unit, would_hit, scope } => {
                out.probes += 1;
                let block = unit.raw() >> geom.block_shift;
                let bit = 1u64 << (block & geom.lane_mask);
                let chunk = block >> geom.lane_bits;
                let base = (chunk & geom.set_mask) as usize * ways;
                let tag = chunk >> geom.set_bits;
                let tags = &mut tags[base..base + ways];
                let vectors = &mut vectors[base..base + ways];
                let stamps = &mut stamps[base..base + ways];
                let ijf = !ij_filtered.is_empty() && ij_filtered[i];
                let recordable = !would_hit && scope == MissScope::Block && !ijf;
                let mut ej_filtered = false;
                if let Some(way) = find_lanes::<0>(tags, tag) {
                    out.clock += 1;
                    stamps[way] = out.clock;
                    if vectors[way] & bit != 0 {
                        ej_filtered = true;
                        out.filtered += 1;
                    } else if recordable {
                        out.records += 1;
                        vectors[way] |= bit;
                        out.clock += 1;
                        stamps[way] = out.clock;
                    }
                } else if recordable {
                    out.records += 1;
                    out.clock += 1;
                    let mut victim = 0;
                    let mut oldest = stamps[0];
                    for (w, &st) in stamps.iter().enumerate().skip(1) {
                        if st < oldest {
                            oldest = st;
                            victim = w;
                        }
                    }
                    tags[victim] = tag;
                    vectors[victim] = bit;
                    stamps[victim] = out.clock;
                }
                if ej_filtered || ijf {
                    out.union_filtered += 1;
                    if would_hit {
                        out.unsafe_at = Some(i);
                        return out;
                    }
                }
            }
            FilterEvent::Allocate(unit) => {
                out.allocates += 1;
                let block = unit.raw() >> geom.block_shift;
                let bit = 1u64 << (block & geom.lane_mask);
                let chunk = block >> geom.lane_bits;
                let base = (chunk & geom.set_mask) as usize * ways;
                let tag = chunk >> geom.set_bits;
                let tags = &mut tags[base..base + ways];
                let vectors = &mut vectors[base..base + ways];
                if let Some(way) = find_lanes::<0>(tags, tag) {
                    if vectors[way] & bit != 0 {
                        vectors[way] &= !bit;
                        out.writes += 1;
                    }
                }
            }
            FilterEvent::Deallocate(_) => {}
        }
    }
    out
}

/// Absent mask (one bit per lane, bit set = guaranteed absent) for four
/// unit addresses against the packed p-bit bitmap: one gather + compare
/// per sub-array, accumulating presence, and — like the scalar early
/// exit on the first clear p-bit — skipping the remaining sub-arrays as
/// soon as every lane is already decided absent (the observable result
/// and the uniform probe-derived energy charge are identical either
/// way).
#[target_feature(enable = "avx2")]
#[inline]
fn pbit_lanes4(pbits: &[u64], u: __m256i, index_bits: u32, sub_arrays: u32, skip: u32) -> u32 {
    let idx_mask = _mm256_set1_epi64x(((1u64 << index_bits) - 1) as i64);
    let ones = _mm256_set1_epi64x(1);
    let low6 = _mm256_set1_epi64x(63);
    // Sub-array 0 peeled: its index needs no shift and no sub-array
    // offset, and on sparse filters its clear p-bits decide every lane
    // (the common early exit), so the hot first probe stays minimal.
    let slot0 = _mm256_and_si256(u, idx_mask);
    let word0 = _mm256_srli_epi64::<6>(slot0);
    let bit0 = _mm256_sllv_epi64(ones, _mm256_and_si256(slot0, low6));
    // SAFETY: `slot0` is masked to `index_bits` bits, below
    // `sub_arrays << index_bits`, and the dispatcher asserted `pbits`
    // holds that many bits — each gathered word index is in bounds.
    let words0 = unsafe { _mm256_i64gather_epi64::<8>(pbits.as_ptr().cast::<i64>(), word0) };
    let mut present = _mm256_cmpeq_epi64(_mm256_and_si256(words0, bit0), bit0);
    for a in 1..sub_arrays {
        if _mm256_testz_si256(present, present) == 1 {
            break;
        }
        // Shift counts >= 64 yield zero, matching the scalar `lo >= 64`
        // guard.
        let shift = _mm_cvtsi64_si128((a * skip) as i64);
        let idx = _mm256_and_si256(_mm256_srl_epi64(u, shift), idx_mask);
        let slot = _mm256_or_si256(idx, _mm256_set1_epi64x(((a as u64) << index_bits) as i64));
        let word = _mm256_srli_epi64::<6>(slot);
        let bit = _mm256_sllv_epi64(ones, _mm256_and_si256(slot, low6));
        // SAFETY: as for sub-array 0 — `idx` is masked to `index_bits`
        // bits, so every lane's `slot` stays below
        // `sub_arrays << index_bits` and within `pbits`.
        let words = unsafe { _mm256_i64gather_epi64::<8>(pbits.as_ptr().cast::<i64>(), word) };
        let set = _mm256_cmpeq_epi64(_mm256_and_si256(words, bit), bit);
        present = _mm256_and_si256(present, set);
    }
    !(_mm256_movemask_pd(_mm256_castsi256_pd(present)) as u32) & 0xF
}

/// Raw unit address and would-hit flag of a snoop event; only called on
/// indices a run scan has already established to be snoops.
#[inline]
fn snoop_parts(e: &FilterEvent) -> (u64, u32) {
    if let FilterEvent::Snoop { unit, would_hit, .. } = *e {
        (unit.raw(), u32::from(would_hit))
    } else {
        (0, 0)
    }
}

/// AVX2 twin of [`scalar::ij_replay`]: each maximal run of consecutive
/// snoops is tested four units per iteration through [`pbit_lanes4`]
/// (units packed straight from the event chunk with one `set` per
/// quad), with a scalar tail; allocates/deallocates run the (rare,
/// data-dependent) scalar counter read-modify-writes in event order.
#[target_feature(enable = "avx2")]
pub(super) fn ij_replay(
    counts: &mut [u16],
    pbits: &mut [u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    events: &[FilterEvent],
    verdicts: Option<&mut Vec<bool>>,
    pbit_writes: &mut [u64],
) -> IjReplayOut {
    match verdicts {
        Some(v) => ij_replay_impl::<true>(
            counts,
            pbits,
            index_bits,
            sub_arrays,
            skip,
            events,
            v,
            pbit_writes,
        ),
        None => ij_replay_impl::<false>(
            counts,
            pbits,
            index_bits,
            sub_arrays,
            skip,
            events,
            &mut Vec::new(),
            pbit_writes,
        ),
    }
}

/// [`ij_replay`] body, monomorphised over whether verdicts are recorded
/// so the standalone path carries no per-event push. The would-hit flags
/// of each quad are packed into a lane mask alongside the units, so the
/// unsafe-filter check is one `and` + `trailing_zeros` instead of
/// re-reading the events.
#[target_feature(enable = "avx2")]
fn ij_replay_impl<const RECORD: bool>(
    counts: &mut [u16],
    pbits: &mut [u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    events: &[FilterEvent],
    verdicts: &mut Vec<bool>,
    pbit_writes: &mut [u64],
) -> IjReplayOut {
    let mut out = IjReplayOut::default();
    let mut i = 0;
    while i < events.len() {
        match events[i] {
            FilterEvent::Snoop { .. } => {
                let mut end = i + 1;
                while end < events.len() && matches!(events[end], FilterEvent::Snoop { .. }) {
                    end += 1;
                }
                out.probes += (end - i) as u64;
                let quads = events[i..end].chunks_exact(4);
                let mut k = i;
                for quad in quads {
                    let (u0, w0) = snoop_parts(&quad[0]);
                    let (u1, w1) = snoop_parts(&quad[1]);
                    let (u2, w2) = snoop_parts(&quad[2]);
                    let (u3, w3) = snoop_parts(&quad[3]);
                    // `_mm256_set_epi64x` takes lanes high-to-low:
                    // events[k] lands in lane 0.
                    let u = _mm256_set_epi64x(u3 as i64, u2 as i64, u1 as i64, u0 as i64);
                    let would_hit = w0 | (w1 << 1) | (w2 << 2) | (w3 << 3);
                    let absent = pbit_lanes4(pbits, u, index_bits, sub_arrays, skip);
                    if RECORD {
                        for lane in 0..4u32 {
                            verdicts.push(absent & (1 << lane) != 0);
                        }
                    }
                    out.filtered += u64::from(absent.count_ones());
                    let bad = absent & would_hit;
                    if bad != 0 && out.unsafe_at.is_none() {
                        out.unsafe_at = Some(k + bad.trailing_zeros() as usize);
                    }
                    k += 4;
                }
                while k < end {
                    if let FilterEvent::Snoop { unit, would_hit, .. } = events[k] {
                        let a =
                            scalar::pbit_absent(pbits, unit.raw(), index_bits, sub_arrays, skip);
                        if RECORD {
                            verdicts.push(a);
                        }
                        if a {
                            out.filtered += 1;
                            if would_hit && out.unsafe_at.is_none() {
                                out.unsafe_at = Some(k);
                            }
                        }
                    }
                    k += 1;
                }
                i = end;
            }
            FilterEvent::Allocate(unit) => {
                out.allocates += 1;
                if RECORD {
                    verdicts.push(false);
                }
                scalar::ij_allocate(
                    counts,
                    pbits,
                    index_bits,
                    sub_arrays,
                    skip,
                    unit.raw(),
                    pbit_writes,
                );
                i += 1;
            }
            FilterEvent::Deallocate(unit) => {
                out.deallocates += 1;
                if RECORD {
                    verdicts.push(false);
                }
                scalar::ij_deallocate(
                    counts,
                    pbits,
                    index_bits,
                    sub_arrays,
                    skip,
                    unit.raw(),
                    pbit_writes,
                );
                i += 1;
            }
        }
    }
    out
}

/// AVX2 twin of [`scalar::pbit_test_many`]: four units per iteration
/// through [`pbit_lanes4`], scalar tail for the last `len % 4` units.
#[target_feature(enable = "avx2")]
pub(super) fn pbit_test_many(
    pbits: &[u64],
    units: &[u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    absent: &mut Vec<bool>,
) {
    let mut i = 0;
    while i + 4 <= units.len() {
        // SAFETY: `i + 4 <= units.len()` keeps the 32-byte unaligned
        // load inside the slice.
        let u = unsafe { _mm256_loadu_si256(units.as_ptr().add(i).cast::<__m256i>()) };
        let m = pbit_lanes4(pbits, u, index_bits, sub_arrays, skip);
        for lane in 0..4 {
            absent.push(m & (1 << lane) != 0);
        }
        i += 4;
    }
    for &u in &units[i..] {
        absent.push(scalar::pbit_absent(pbits, u, index_bits, sub_arrays, skip));
    }
}

/// AVX2 twin of [`scalar::l2_probe_many`]: four snoop addresses per
/// iteration, splitting sub/index/tag with lane shifts and gathering
/// each set's 16-byte hot record — viewed as a pair of `u64` words
/// (tag at `2*idx`, meta at `2*idx + 1` on little-endian x86) — so the
/// per-event pointer chase becomes streaming loads.
#[target_feature(enable = "avx2")]
pub(super) fn l2_probe_many(
    hot: &[u128],
    units: &[u64],
    sub_bits: u32,
    index_bits: u32,
    out: &mut Vec<u8>,
) {
    let sub_mask = _mm256_set1_epi64x(((1u64 << sub_bits) - 1) as i64);
    let idx_mask = _mm256_set1_epi64x(((1u64 << index_bits) - 1) as i64);
    let ones = _mm256_set1_epi64x(1);
    let valid_mask = _mm256_set1_epi64x(L2_META_VALID_MASK as i64);
    let zero = _mm256_setzero_si256();
    let sub_shift = _mm_cvtsi64_si128(sub_bits as i64);
    let idx_shift = _mm_cvtsi64_si128(index_bits as i64);
    let mut i = 0;
    while i + 4 <= units.len() {
        // SAFETY: `i + 4 <= units.len()` keeps the 32-byte unaligned
        // load inside the slice.
        let u = unsafe { _mm256_loadu_si256(units.as_ptr().add(i).cast::<__m256i>()) };
        let sub = _mm256_and_si256(u, sub_mask);
        let block = _mm256_srl_epi64(u, sub_shift);
        let idx = _mm256_and_si256(block, idx_mask);
        let tag = _mm256_srl_epi64(block, idx_shift);
        // Word indices into the u64 view of `hot`: tag word at 2*idx,
        // meta word right after it.
        let tag_word = _mm256_add_epi64(idx, idx);
        let meta_word = _mm256_or_si256(tag_word, ones);
        // SAFETY: `idx` is masked to `index_bits` bits and the
        // dispatcher asserted `hot` holds `1 << index_bits` records =
        // `2 << index_bits` u64 words, so `2*idx + 1` is in bounds for
        // every lane.
        let t = unsafe { _mm256_i64gather_epi64::<8>(hot.as_ptr().cast::<i64>(), tag_word) };
        // SAFETY: as above — the meta word of the same in-bounds record.
        let m = unsafe { _mm256_i64gather_epi64::<8>(hot.as_ptr().cast::<i64>(), meta_word) };
        let v = _mm256_and_si256(m, valid_mask);
        let block_present =
            _mm256_andnot_si256(_mm256_cmpeq_epi64(v, zero), _mm256_cmpeq_epi64(t, tag));
        let sub_bit = _mm256_sllv_epi64(ones, sub);
        let sub_valid = _mm256_andnot_si256(
            _mm256_cmpeq_epi64(_mm256_and_si256(v, sub_bit), zero),
            block_present,
        );
        let bp = _mm256_movemask_pd(_mm256_castsi256_pd(block_present)) as u32;
        let sv = _mm256_movemask_pd(_mm256_castsi256_pd(sub_valid)) as u32;
        for lane in 0..4 {
            let mut flags = 0u8;
            if bp & (1 << lane) != 0 {
                flags |= L2_BLOCK_PRESENT;
            }
            if sv & (1 << lane) != 0 {
                flags |= L2_SUB_VALID;
            }
            out.push(flags);
        }
        i += 4;
    }
    for &u in &units[i..] {
        out.push(scalar::l2_probe(hot, u, sub_bits, index_bits));
    }
}
