//! Portable scalar twins of every SIMD kernel.
//!
//! These are the *reference semantics*: the AVX2 implementations in
//! [`super::avx2`] must be observation-identical to these loops on every
//! input (pinned by `tests/simd_equivalence.rs`), and they are what the
//! dispatcher runs when AVX2 is absent or `JETTY_SIMD=scalar` forces them.
//! Each is written exactly like the loop it replaced in the filter or L2
//! code, so forcing scalar dispatch reproduces the pre-kernel binary's
//! behaviour instruction-for-instruction where it matters (order of
//! comparisons, lowest-index match selection, early exits).

use super::{EjGeom, IjReplayOut, ReplayOut, VejGeom};
use crate::filter::{FilterEvent, MissScope};

/// Lowest way index in `keys` whose Exclude-Jetty key matches `tag`
/// (`key >> 1 == tag`; the all-ones empty key can never match a real tag).
///
/// The branchless reverse scan keeps the lowest-index match, exactly like
/// the historical `ExcludeJetty::find` loop.
#[inline]
pub(super) fn find_key_ej(keys: &[u64], tag: u64) -> Option<usize> {
    let mut found = usize::MAX;
    for (way, &k) in keys.iter().enumerate().rev() {
        if k >> 1 == tag {
            found = way;
        }
    }
    (found != usize::MAX).then_some(found)
}

/// Lowest way index in `tags` equal to `tag` (Vector-Exclude-Jetty find;
/// the all-ones empty tag can never match a real chunk tag).
#[inline]
pub(super) fn find_key_vej(tags: &[u64], tag: u64) -> Option<usize> {
    let mut found = usize::MAX;
    for (way, &t) in tags.iter().enumerate().rev() {
        if t == tag {
            found = way;
        }
    }
    (found != usize::MAX).then_some(found)
}

/// Replays one [`FilterEvent`] chunk against an Exclude-Jetty's flat
/// `keys`/`stamps` arrays — the reference loop the AVX2 twin must match.
/// Per snoop: split the unit address with `geom` (two shifts + a mask),
/// find the way (lowest match), stamp the LRU clock on a hit, count the
/// filtered/union-filtered snoop (stopping at the first unsafe one,
/// where the eager path would have panicked), set the present bit or
/// insert via a first-minimum victim scan on recordable misses that
/// nothing filtered. Per allocate: find + clear the present bit. A
/// deallocate never changes EJ state.
pub(super) fn ej_replay(
    keys: &mut [u64],
    stamps: &mut [u64],
    ways: usize,
    clock: u64,
    geom: EjGeom,
    events: &[FilterEvent],
    ij_filtered: &[bool],
) -> ReplayOut {
    let mut out = ReplayOut { clock, ..ReplayOut::default() };
    for (i, e) in events.iter().enumerate() {
        match *e {
            FilterEvent::Snoop { unit, would_hit, scope } => {
                out.probes += 1;
                let block = unit.raw() >> geom.block_shift;
                let base = (block & geom.set_mask) as usize * ways;
                let tag = block >> geom.set_bits;
                let keys = &mut keys[base..base + ways];
                let stamps = &mut stamps[base..base + ways];
                let ijf = !ij_filtered.is_empty() && ij_filtered[i];
                let recordable = !would_hit && scope == MissScope::Block && !ijf;
                let mut ej_filtered = false;
                if let Some(way) = find_key_ej(keys, tag) {
                    out.clock += 1;
                    stamps[way] = out.clock;
                    if keys[way] & 1 != 0 {
                        ej_filtered = true;
                        out.filtered += 1;
                    } else if recordable {
                        out.records += 1;
                        keys[way] |= 1;
                        out.clock += 1;
                        stamps[way] = out.clock;
                    }
                } else if recordable {
                    out.records += 1;
                    out.clock += 1;
                    // First-minimum scan == `min_by_key` over the set.
                    let mut victim = 0;
                    let mut oldest = stamps[0];
                    for (w, &st) in stamps.iter().enumerate().skip(1) {
                        if st < oldest {
                            oldest = st;
                            victim = w;
                        }
                    }
                    keys[victim] = tag << 1 | 1;
                    stamps[victim] = out.clock;
                }
                if ej_filtered || ijf {
                    out.union_filtered += 1;
                    if would_hit {
                        out.unsafe_at = Some(i);
                        return out;
                    }
                }
            }
            FilterEvent::Allocate(unit) => {
                out.allocates += 1;
                let block = unit.raw() >> geom.block_shift;
                let base = (block & geom.set_mask) as usize * ways;
                let tag = block >> geom.set_bits;
                let keys = &mut keys[base..base + ways];
                if let Some(way) = find_key_ej(keys, tag) {
                    if keys[way] & 1 != 0 {
                        keys[way] &= !1;
                        out.writes += 1;
                    }
                }
            }
            FilterEvent::Deallocate(_) => {}
        }
    }
    out
}

/// Replays one [`FilterEvent`] chunk against a Vector-Exclude-Jetty's
/// flat `tags`/`vectors`/`stamps` arrays (the [`ej_replay`] logic with a
/// present-vector lane test in place of the present bit; `geom` peels
/// the lane off the block address first).
pub(super) fn vej_replay(
    tags: &mut [u64],
    vectors: &mut [u64],
    stamps: &mut [u64],
    ways: usize,
    clock: u64,
    geom: VejGeom,
    events: &[FilterEvent],
    ij_filtered: &[bool],
) -> ReplayOut {
    let mut out = ReplayOut { clock, ..ReplayOut::default() };
    for (i, e) in events.iter().enumerate() {
        match *e {
            FilterEvent::Snoop { unit, would_hit, scope } => {
                out.probes += 1;
                let block = unit.raw() >> geom.block_shift;
                let bit = 1u64 << (block & geom.lane_mask);
                let chunk = block >> geom.lane_bits;
                let base = (chunk & geom.set_mask) as usize * ways;
                let tag = chunk >> geom.set_bits;
                let tags = &mut tags[base..base + ways];
                let vectors = &mut vectors[base..base + ways];
                let stamps = &mut stamps[base..base + ways];
                let ijf = !ij_filtered.is_empty() && ij_filtered[i];
                let recordable = !would_hit && scope == MissScope::Block && !ijf;
                let mut ej_filtered = false;
                if let Some(way) = find_key_vej(tags, tag) {
                    out.clock += 1;
                    stamps[way] = out.clock;
                    if vectors[way] & bit != 0 {
                        ej_filtered = true;
                        out.filtered += 1;
                    } else if recordable {
                        out.records += 1;
                        vectors[way] |= bit;
                        out.clock += 1;
                        stamps[way] = out.clock;
                    }
                } else if recordable {
                    out.records += 1;
                    out.clock += 1;
                    // First-minimum scan == `min_by_key` over the set.
                    let mut victim = 0;
                    let mut oldest = stamps[0];
                    for (w, &st) in stamps.iter().enumerate().skip(1) {
                        if st < oldest {
                            oldest = st;
                            victim = w;
                        }
                    }
                    tags[victim] = tag;
                    vectors[victim] = bit;
                    stamps[victim] = out.clock;
                }
                if ej_filtered || ijf {
                    out.union_filtered += 1;
                    if would_hit {
                        out.unsafe_at = Some(i);
                        return out;
                    }
                }
            }
            FilterEvent::Allocate(unit) => {
                out.allocates += 1;
                let block = unit.raw() >> geom.block_shift;
                let bit = 1u64 << (block & geom.lane_mask);
                let chunk = block >> geom.lane_bits;
                let base = (chunk & geom.set_mask) as usize * ways;
                let tag = chunk >> geom.set_bits;
                let tags = &mut tags[base..base + ways];
                let vectors = &mut vectors[base..base + ways];
                if let Some(way) = find_key_vej(tags, tag) {
                    if vectors[way] & bit != 0 {
                        vectors[way] &= !bit;
                        out.writes += 1;
                    }
                }
            }
            FilterEvent::Deallocate(_) => {}
        }
    }
    out
}

/// `true` when any of the `sub_arrays` Include-Jetty p-bits selected by
/// `unit` is clear (the unit is guaranteed absent). Sub-array `i` is
/// indexed by bits `[i*skip, i*skip + index_bits)` of the unit address;
/// entry `idx` of sub-array `i` lives at packed bit `(i << index_bits) |
/// idx` of `pbits`. The early exit on the first clear bit matches
/// `IncludeJetty::probe`; the observable outcome (and the uniform energy
/// charge derived from probe counts) is identical either way.
#[inline]
pub(super) fn pbit_absent(
    pbits: &[u64],
    unit: u64,
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
) -> bool {
    let mask = (1u64 << index_bits) - 1;
    for i in 0..sub_arrays {
        let lo = i * skip;
        let idx = if lo >= 64 { 0 } else { (unit >> lo) & mask };
        let slot = ((i as usize) << index_bits) | idx as usize;
        if pbits[slot >> 6] & (1u64 << (slot & 63)) == 0 {
            return true;
        }
    }
    false
}

/// One Include-Jetty allocate: per sub-array, the counter
/// read-modify-write plus the data-dependent p-bit `0 -> 1` transition,
/// counted into `pbit_writes[sub_array]`. Identical sequence (including
/// the saturation assert) to `IncludeJetty::on_allocate`.
pub(super) fn ij_allocate(
    counts: &mut [u16],
    pbits: &mut [u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    unit: u64,
    pbit_writes: &mut [u64],
) {
    let mask = (1u64 << index_bits) - 1;
    for i in 0..sub_arrays {
        let lo = i * skip;
        let idx = if lo >= 64 { 0 } else { (unit >> lo) & mask } as usize;
        let slot = ((i as usize) << index_bits) | idx;
        let count = &mut counts[slot];
        assert!(
            *count < u16::MAX,
            "IJ counter saturated in sub-array {i} entry {idx}: cache population \
             exceeds the u16 counter range for this configuration"
        );
        let was_zero = *count == 0;
        *count += 1;
        if was_zero {
            pbit_writes[i as usize] += 1;
            pbits[slot >> 6] |= 1u64 << (slot & 63);
        }
    }
}

/// One Include-Jetty deallocate: the [`ij_allocate`] sequence in reverse
/// (counter decrement, p-bit `1 -> 0` on the last departure), with the
/// same underflow assert as `IncludeJetty::on_deallocate`.
pub(super) fn ij_deallocate(
    counts: &mut [u16],
    pbits: &mut [u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    unit: u64,
    pbit_writes: &mut [u64],
) {
    let mask = (1u64 << index_bits) - 1;
    for i in 0..sub_arrays {
        let lo = i * skip;
        let idx = if lo >= 64 { 0 } else { (unit >> lo) & mask } as usize;
        let slot = ((i as usize) << index_bits) | idx;
        let count = &mut counts[slot];
        assert!(
            *count > 0,
            "IJ counter underflow in sub-array {i} entry {idx}: \
             deallocate without matching allocate (protocol bug)"
        );
        *count -= 1;
        if *count == 0 {
            pbit_writes[i as usize] += 1;
            pbits[slot >> 6] &= !(1u64 << (slot & 63));
        }
    }
}

/// Replays one [`FilterEvent`] chunk against an Include-Jetty's
/// `counts`/`pbits` arrays. Snoops are pure p-bit tests; with
/// `verdicts: Some`, the absent verdict is pushed per event (the
/// hybrid's EJ pass consumes it; non-snoop events push `false` to keep
/// the vector parallel), while standalone callers pass `None` and skip
/// the bookkeeping. Allocates/deallocates run the counter
/// read-modify-writes in event order. Unlike the EJ/VEJ replays this
/// does **not** stop at the first unsafe filter — the hybrid needs
/// every snoop's verdict regardless (its EJ pass is the panic
/// authority), and for a standalone IJ the caller panics right after
/// the call, so the extra post-panic state is unobservable.
pub(super) fn ij_replay(
    counts: &mut [u16],
    pbits: &mut [u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    events: &[FilterEvent],
    verdicts: Option<&mut Vec<bool>>,
    pbit_writes: &mut [u64],
) -> IjReplayOut {
    match verdicts {
        Some(v) => ij_replay_impl::<true>(
            counts,
            pbits,
            index_bits,
            sub_arrays,
            skip,
            events,
            v,
            pbit_writes,
        ),
        None => ij_replay_impl::<false>(
            counts,
            pbits,
            index_bits,
            sub_arrays,
            skip,
            events,
            &mut Vec::new(),
            pbit_writes,
        ),
    }
}

/// [`ij_replay`] body, monomorphised over whether verdicts are recorded
/// so the standalone path carries no per-event push.
fn ij_replay_impl<const RECORD: bool>(
    counts: &mut [u16],
    pbits: &mut [u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    events: &[FilterEvent],
    verdicts: &mut Vec<bool>,
    pbit_writes: &mut [u64],
) -> IjReplayOut {
    let mut out = IjReplayOut::default();
    for (i, e) in events.iter().enumerate() {
        match *e {
            FilterEvent::Snoop { unit, would_hit, .. } => {
                out.probes += 1;
                let absent = pbit_absent(pbits, unit.raw(), index_bits, sub_arrays, skip);
                if RECORD {
                    verdicts.push(absent);
                }
                if absent {
                    out.filtered += 1;
                    if would_hit && out.unsafe_at.is_none() {
                        out.unsafe_at = Some(i);
                    }
                }
            }
            FilterEvent::Allocate(unit) => {
                out.allocates += 1;
                if RECORD {
                    verdicts.push(false);
                }
                ij_allocate(counts, pbits, index_bits, sub_arrays, skip, unit.raw(), pbit_writes);
            }
            FilterEvent::Deallocate(unit) => {
                out.deallocates += 1;
                if RECORD {
                    verdicts.push(false);
                }
                ij_deallocate(counts, pbits, index_bits, sub_arrays, skip, unit.raw(), pbit_writes);
            }
        }
    }
    out
}

/// Batch twin of [`pbit_absent`] over a run of snoop unit addresses.
pub(super) fn pbit_test_many(
    pbits: &[u64],
    units: &[u64],
    index_bits: u32,
    sub_arrays: u32,
    skip: u32,
    absent: &mut Vec<bool>,
) {
    for &u in units {
        absent.push(pbit_absent(pbits, u, index_bits, sub_arrays, skip));
    }
}

/// Flag byte for one L2 snoop probe: bit 0 = the resident block's tag
/// matches and at least one subblock is valid (`block_present`), bit 1 =
/// the snooped subblock itself is valid (implies bit 0).
pub const L2_BLOCK_PRESENT: u8 = 1;
/// See [`L2_BLOCK_PRESENT`]: the snooped subblock is valid.
pub const L2_SUB_VALID: u8 = 2;

/// Low 8 bits of an L2 hot record's meta half: the packed valid bitmask
/// (bit `sub` ⇔ subblock `sub` valid).
pub const L2_META_VALID_MASK: u64 = 0xFF;

/// One scalar L2 snoop probe over the compacted hot array — one 16-byte
/// record load (tag in the low half, valid mask + packed states in the
/// high half) instead of two separate array reads.
#[inline]
pub(super) fn l2_probe(hot: &[u128], unit: u64, sub_bits: u32, index_bits: u32) -> u8 {
    let sub = unit & ((1u64 << sub_bits) - 1);
    let block_addr = unit >> sub_bits;
    let idx = (block_addr & ((1u64 << index_bits) - 1)) as usize;
    let tag = block_addr >> index_bits;
    let rec = hot[idx];
    let mask = ((rec >> 64) as u64) & L2_META_VALID_MASK;
    let block_present = mask != 0 && rec as u64 == tag;
    let mut flags = 0u8;
    if block_present {
        flags |= L2_BLOCK_PRESENT;
        if mask & (1u64 << sub) != 0 {
            flags |= L2_SUB_VALID;
        }
    }
    flags
}

/// Batch twin of [`l2_probe`] over a run of snoop unit addresses.
pub(super) fn l2_probe_many(
    hot: &[u128],
    units: &[u64],
    sub_bits: u32,
    index_bits: u32,
    out: &mut Vec<u8>,
) {
    for &u in units {
        out.push(l2_probe(hot, u, sub_bits, index_bits));
    }
}
