//! The do-nothing filter: every snoop probes the L2 tag array, exactly as in
//! an unfiltered SMP. Used as the energy baseline and as a sanity check in
//! tests (a `NullFilter` system must behave identically to one with no
//! filter at all).

use crate::addr::UnitAddr;
use crate::filter::{ArraySpec, FilterActivity, MissScope, SnoopFilter, Verdict};

/// A filter that never filters. Baseline for coverage and energy
/// comparisons.
///
/// # Examples
///
/// ```
/// use jetty_core::{NullFilter, SnoopFilter, UnitAddr, Verdict};
///
/// let mut f = NullFilter::new();
/// assert_eq!(f.probe(UnitAddr::new(1)), Verdict::MaybeCached);
/// assert_eq!(f.storage_bits(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct NullFilter {
    probes: u64,
}

impl NullFilter {
    /// Creates a null filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays a node's deferred event list: a null filter only counts the
    /// snoop probes (it never filters and ignores every other event), so
    /// the whole batch reduces to one counter addition.
    pub fn apply_batch(&mut self, events: &[crate::FilterEvent]) {
        self.probes +=
            events.iter().filter(|ev| matches!(ev, crate::FilterEvent::Snoop { .. })).count()
                as u64;
    }
}

impl SnoopFilter for NullFilter {
    fn probe(&mut self, _addr: UnitAddr) -> Verdict {
        self.probes += 1;
        Verdict::MaybeCached
    }

    fn record_snoop_miss(&mut self, _addr: UnitAddr, _scope: MissScope) {}

    fn on_allocate(&mut self, _addr: UnitAddr) {}

    fn on_deallocate(&mut self, _addr: UnitAddr) {}

    fn arrays(&self) -> Vec<ArraySpec> {
        Vec::new()
    }

    fn activity(&self) -> FilterActivity {
        FilterActivity { arrays: Vec::new(), probes: self.probes, filtered: 0 }
    }

    fn reset_activity(&mut self) {
        self.probes = 0;
    }

    fn name(&self) -> String {
        "none".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_filters_and_has_no_storage() {
        let mut f = NullFilter::new();
        for i in 0..10 {
            assert_eq!(f.probe(UnitAddr::new(i)), Verdict::MaybeCached);
        }
        f.record_snoop_miss(UnitAddr::new(0), MissScope::Block);
        f.on_allocate(UnitAddr::new(0));
        f.on_deallocate(UnitAddr::new(0));
        assert_eq!(f.probe(UnitAddr::new(0)), Verdict::MaybeCached);
        let act = f.activity();
        assert_eq!(act.probes, 11);
        assert_eq!(act.filtered, 0);
        assert_eq!(f.storage_bits(), 0);
        assert_eq!(f.name(), "none");
    }

    #[test]
    fn reset_clears_probe_count() {
        let mut f = NullFilter::new();
        f.probe(UnitAddr::new(1));
        f.reset_activity();
        assert_eq!(f.activity().probes, 0);
    }
}
