//! Hybrid-Jetty (HJ, paper §3.3): an Include-Jetty and an Exclude-Jetty
//! probed in parallel.
//!
//! The IJ holds aggregate information about what *is* cached; the EJ tracks
//! a small set of hot units that are *not* cached but that the IJ's coarse
//! superset cannot rule out. A snoop is filtered when **either** component
//! says "not cached" — the union of two safe guarantees is safe.
//!
//! To keep the EJ pointed at exactly the snoops the IJ cannot handle,
//! entries are allocated in the EJ only when the IJ failed to filter them
//! (the substrate reports snoop misses to [`HybridJetty::record_snoop_miss`]
//! only for snoops neither component filtered, and the IJ component ignores
//! them, so the rule falls out naturally). Both components are probed in
//! parallel on every snoop to keep latency off the critical path, so both
//! always pay probe energy.

use std::fmt;

use crate::addr::{AddrSpace, UnitAddr};
use crate::exclude::{ExcludeConfig, ExcludeJetty};
use crate::filter::{ArraySpec, FilterActivity, MissScope, SnoopFilter, Verdict};
use crate::include::{IncludeConfig, IncludeJetty};
use crate::kernels::{self, SimdLevel};
use crate::vector_exclude::{VectorExcludeConfig, VectorExcludeJetty};

/// The exclude-side component of a hybrid: scalar or vectored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExcludePart {
    /// A plain [`ExcludeJetty`].
    Scalar(ExcludeConfig),
    /// A [`VectorExcludeJetty`].
    Vector(VectorExcludeConfig),
}

impl ExcludePart {
    /// Paper-style label of the component.
    pub fn label(&self) -> String {
        match self {
            ExcludePart::Scalar(c) => c.label(),
            ExcludePart::Vector(c) => c.label(),
        }
    }
}

impl From<ExcludeConfig> for ExcludePart {
    fn from(value: ExcludeConfig) -> Self {
        ExcludePart::Scalar(value)
    }
}

impl From<VectorExcludeConfig> for ExcludePart {
    fn from(value: VectorExcludeConfig) -> Self {
        ExcludePart::Vector(value)
    }
}

#[derive(Clone, Debug)]
enum ExcludeEngine {
    Scalar(ExcludeJetty),
    Vector(VectorExcludeJetty),
}

/// Statically dispatches one method call to the live exclude variant (the
/// per-snoop paths must not pay a vtable hop inside the hybrid).
macro_rules! exclude_dispatch {
    ($self:expr, $f:ident ( $($arg:expr),* )) => {
        match $self {
            ExcludeEngine::Scalar(inner) => inner.$f($($arg),*),
            ExcludeEngine::Vector(inner) => inner.$f($($arg),*),
        }
    };
}

/// When the hybrid's exclude component learns about snoop misses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EjAllocation {
    /// The paper's policy: the EJ allocates only when the *whole* hybrid
    /// failed to filter (the IJ acts as a filter on EJ insertions,
    /// §3.3).
    #[default]
    Backup,
    /// Ablation variant: the EJ also allocates when the IJ alone filtered
    /// the snoop — a filtered snoop is a guaranteed miss, so this is safe,
    /// but it spends EJ capacity and write energy on snoops the IJ already
    /// handles.
    Eager,
}

/// Configuration for a [`HybridJetty`]: one IJ plus one EJ/VEJ.
///
/// # Examples
///
/// ```
/// use jetty_core::{ExcludeConfig, HybridConfig, IncludeConfig};
///
/// let cfg = HybridConfig::new(IncludeConfig::new(10, 4, 7), ExcludeConfig::new(32, 4));
/// assert_eq!(cfg.label(), "(IJ-10x4x7, EJ-32x4)");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HybridConfig {
    /// The include component.
    pub include: IncludeConfig,
    /// The exclude component.
    pub exclude: ExcludePart,
    /// EJ allocation policy (the paper uses [`EjAllocation::Backup`]).
    pub ej_allocation: EjAllocation,
}

impl HybridConfig {
    /// Creates a hybrid configuration with the paper's backup allocation
    /// policy.
    pub fn new(include: IncludeConfig, exclude: impl Into<ExcludePart>) -> Self {
        Self { include, exclude: exclude.into(), ej_allocation: EjAllocation::Backup }
    }

    /// Switches to the eager EJ-allocation ablation variant.
    pub fn with_eager_allocation(mut self) -> Self {
        self.ej_allocation = EjAllocation::Eager;
        self
    }

    /// Paper-style label, e.g. `(IJ-10x4x7, EJ-32x4)`; the eager ablation
    /// variant is suffixed `, eager`.
    pub fn label(&self) -> String {
        match self.ej_allocation {
            EjAllocation::Backup => format!("({}, {})", self.include.label(), self.exclude.label()),
            EjAllocation::Eager => {
                format!("({}, {}, eager)", self.include.label(), self.exclude.label())
            }
        }
    }
}

/// The Hybrid-Jetty filter. See the module docs.
///
/// # Examples
///
/// ```
/// use jetty_core::{AddrSpace, ExcludeConfig, HybridConfig, HybridJetty, IncludeConfig,
///                  SnoopFilter, UnitAddr, Verdict};
///
/// let cfg = HybridConfig::new(IncludeConfig::new(8, 4, 7), ExcludeConfig::new(16, 2));
/// let mut hj = HybridJetty::new(cfg, AddrSpace::default());
/// let unit = UnitAddr::new(0xC0FFEE);
///
/// // Empty cache: IJ filters.
/// assert_eq!(hj.probe(unit), Verdict::NotCached);
/// hj.on_allocate(unit);
/// assert_eq!(hj.probe(unit), Verdict::MaybeCached);
/// ```
#[derive(Clone)]
pub struct HybridJetty {
    config: HybridConfig,
    include: IncludeJetty,
    exclude: ExcludeEngine,
    probes: u64,
    filtered: u64,
    /// Reusable gather buffer for the eager-ablation replay: the unit
    /// addresses of one run of consecutive snoop events.
    scratch_units: Vec<u64>,
    /// Reusable IJ verdict buffer: the backup-policy replay fills it
    /// with one verdict per event (shared between the IJ and EJ kernel
    /// passes); the eager ablation pairs it with `scratch_units`.
    scratch_absent: Vec<bool>,
}

impl fmt::Debug for HybridJetty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridJetty")
            .field("config", &self.config)
            .field("probes", &self.probes)
            .field("filtered", &self.filtered)
            .finish()
    }
}

impl HybridJetty {
    /// Creates a Hybrid-Jetty for the given address space.
    pub fn new(config: HybridConfig, space: AddrSpace) -> Self {
        let include = IncludeJetty::new(config.include, space);
        let exclude = match config.exclude {
            ExcludePart::Scalar(c) => ExcludeEngine::Scalar(ExcludeJetty::new(c, space)),
            ExcludePart::Vector(c) => ExcludeEngine::Vector(VectorExcludeJetty::new(c, space)),
        };
        Self {
            config,
            include,
            exclude,
            probes: 0,
            filtered: 0,
            scratch_units: Vec::new(),
            scratch_absent: Vec::new(),
        }
    }

    /// The configuration this filter was built with.
    pub fn config(&self) -> HybridConfig {
        self.config
    }

    /// Read access to the include component (for tests and diagnostics).
    pub fn include_part(&self) -> &IncludeJetty {
        &self.include
    }

    /// Replays a node's deferred event list through the hybrid — exactly
    /// equivalent to the substrate's eager per-snoop sequence (probe, then
    /// the safety assertion or [`record_snoop_miss`](SnoopFilter::record_snoop_miss)
    /// on an unfiltered genuine miss). The hybrid keeps both component
    /// structures hot across the batch; `probe` carries the eager-ablation
    /// side effects, so replay goes through it rather than inlining the
    /// components. `node` only labels the safety panic.
    pub fn apply_batch(&mut self, events: &[crate::FilterEvent], node: usize) {
        self.apply_batch_with(kernels::active_level(), events, node);
    }

    /// [`apply_batch`](HybridJetty::apply_batch) with an explicit kernel
    /// level — the differential-test entry point.
    ///
    /// Under the paper's backup policy the **same** event chunk is
    /// replayed by two kernel calls, with no gather pass: the IJ pass
    /// fills a verdict vector parallel to the chunk (safe to run ahead —
    /// nothing in the hybrid's snoop handling mutates IJ state, and IJ
    /// state never depends on the EJ), then the EJ/VEJ pass reads that
    /// slice to compute union verdicts, records exactly the misses
    /// neither component filtered, and is the panic authority for unsafe
    /// filters. The eager-allocation ablation (which mutates the exclude
    /// part mid-run on IJ-filtered snoops) keeps its per-event replay
    /// below.
    pub fn apply_batch_with(
        &mut self,
        level: SimdLevel,
        events: &[crate::FilterEvent],
        node: usize,
    ) {
        if self.config.ej_allocation == EjAllocation::Backup {
            let mut verdicts = std::mem::take(&mut self.scratch_absent);
            // IJ pass: verdicts + counter RMWs. Its unsafe index is
            // ignored — the EJ pass sees the same verdict slice and owns
            // the union safety check.
            self.include.replay_events(level, events, Some(&mut verdicts));
            let out = exclude_dispatch!(&mut self.exclude, replay_events(level, events, &verdicts));
            self.scratch_absent = verdicts;
            self.probes += out.probes;
            self.filtered += out.union_filtered;
            if let Some(bad) = out.unsafe_at {
                let crate::FilterEvent::Snoop { unit, .. } = events[bad] else {
                    unreachable!("unsafe_at always indexes a snoop event");
                };
                panic!(
                    "UNSAFE FILTER: {} filtered a snoop to cached unit {unit} on node {node}",
                    self.name()
                );
            }
            return;
        }
        let mut units = std::mem::take(&mut self.scratch_units);
        let mut ij_absent = std::mem::take(&mut self.scratch_absent);
        let mut i = 0;
        while i < events.len() {
            match events[i] {
                crate::FilterEvent::Snoop { .. } => {
                    units.clear();
                    ij_absent.clear();
                    let run = i;
                    while let Some(&crate::FilterEvent::Snoop { unit, .. }) = events.get(i) {
                        units.push(unit.raw());
                        i += 1;
                    }
                    self.include.probe_many(level, &units, &mut ij_absent);
                    for (k, &ij_filtered) in ij_absent.iter().enumerate() {
                        let crate::FilterEvent::Snoop { unit, would_hit, scope } = events[run + k]
                        else {
                            unreachable!("gathered run contains only snoop events");
                        };
                        self.probes += 1;
                        let ej = exclude_dispatch!(&mut self.exclude, probe_with(level, unit));
                        if ij_filtered || ej.is_filtered() {
                            // Same eager-ablation sequence as `probe`, per
                            // event and in order (its p-bit read charges
                            // are data-dependent).
                            if self.config.ej_allocation == EjAllocation::Eager && !ej.is_filtered()
                            {
                                let block_units = 1u64 << self.include.space().block_unit_shift();
                                let base = unit.raw() & !(block_units - 1);
                                let block_absent = (0..block_units).all(|off| {
                                    self.include.guarantees_absent(UnitAddr::new(base | off))
                                });
                                let scope =
                                    if block_absent { MissScope::Block } else { MissScope::Unit };
                                exclude_dispatch!(
                                    &mut self.exclude,
                                    record_snoop_miss(unit, scope)
                                );
                            }
                            self.filtered += 1;
                            assert!(
                                !would_hit,
                                "UNSAFE FILTER: {} filtered a snoop to cached unit {unit} on node {node}",
                                self.name()
                            );
                        } else if !would_hit {
                            self.record_snoop_miss(unit, scope);
                        }
                    }
                }
                crate::FilterEvent::Allocate(unit) => {
                    self.on_allocate(unit);
                    i += 1;
                }
                crate::FilterEvent::Deallocate(unit) => {
                    self.on_deallocate(unit);
                    i += 1;
                }
            }
        }
        self.scratch_units = units;
        self.scratch_absent = ij_absent;
    }
}

impl SnoopFilter for HybridJetty {
    fn probe(&mut self, addr: UnitAddr) -> Verdict {
        self.probes += 1;
        // Both components are probed in parallel (latency), so both always
        // pay energy, even when one alone would have filtered.
        let ij = self.include.probe(addr);
        let ej = exclude_dispatch!(&mut self.exclude, probe(addr));
        if ij.is_filtered() || ej.is_filtered() {
            // Eager ablation: a filtered snoop is a guaranteed L2 miss, so
            // the EJ may record it immediately even though the substrate
            // will not report it (the hybrid filtered it). Block-grain
            // recording requires every sibling unit of the block to be
            // IJ-guaranteed absent; the extra p-bit reads are charged.
            if self.config.ej_allocation == EjAllocation::Eager && !ej.is_filtered() {
                let block_units = 1u64 << self.include.space().block_unit_shift();
                let base = addr.raw() & !(block_units - 1);
                let block_absent = (0..block_units)
                    .all(|k| self.include.guarantees_absent(UnitAddr::new(base | k)));
                let scope = if block_absent { MissScope::Block } else { MissScope::Unit };
                exclude_dispatch!(&mut self.exclude, record_snoop_miss(addr, scope));
            }
            self.filtered += 1;
            Verdict::NotCached
        } else {
            Verdict::MaybeCached
        }
    }

    fn record_snoop_miss(&mut self, addr: UnitAddr, scope: MissScope) {
        // Only reached when neither component filtered, i.e. the IJ failed:
        // allocate in the EJ (the IJ ignores snoop misses by construction).
        self.include.record_snoop_miss(addr, scope);
        exclude_dispatch!(&mut self.exclude, record_snoop_miss(addr, scope));
    }

    fn on_allocate(&mut self, addr: UnitAddr) {
        self.include.on_allocate(addr);
        exclude_dispatch!(&mut self.exclude, on_allocate(addr));
    }

    fn on_deallocate(&mut self, addr: UnitAddr) {
        self.include.on_deallocate(addr);
        exclude_dispatch!(&mut self.exclude, on_deallocate(addr));
    }

    fn arrays(&self) -> Vec<ArraySpec> {
        let mut specs = self.include.arrays();
        specs.extend(exclude_dispatch!(&self.exclude, arrays()));
        specs
    }

    fn activity(&self) -> FilterActivity {
        let ij = self.include.activity();
        let ej = exclude_dispatch!(&self.exclude, activity());
        let mut arrays = ij.arrays;
        arrays.extend(ej.arrays);
        FilterActivity { arrays, probes: self.probes, filtered: self.filtered }
    }

    fn reset_activity(&mut self) {
        self.include.reset_activity();
        exclude_dispatch!(&mut self.exclude, reset_activity());
        self.probes = 0;
        self.filtered = 0;
    }

    fn name(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hj() -> HybridJetty {
        HybridJetty::new(
            HybridConfig::new(IncludeConfig::new(8, 4, 7), ExcludeConfig::new(16, 2)),
            AddrSpace::default(),
        )
    }

    #[test]
    fn empty_filter_filters_via_ij() {
        let mut f = hj();
        assert_eq!(f.probe(UnitAddr::new(1)), Verdict::NotCached);
    }

    #[test]
    fn cached_unit_never_filtered() {
        let mut f = hj();
        let u = UnitAddr::new(0x1000);
        f.on_allocate(u);
        assert_eq!(f.probe(u), Verdict::MaybeCached);
    }

    #[test]
    fn ej_catches_what_ij_cannot() {
        let mut f = hj();
        // Alias two addresses in all IJ sub-arrays: with IJ-8x4x7 the
        // highest used bit is 7*3 + 8 = 29, so flip bit 34.
        let cached = UnitAddr::new(0x0BAD_CAFE);
        let alias = UnitAddr::new(0x0BAD_CAFE | (1 << 34));
        f.on_allocate(cached);
        // IJ cannot filter the alias...
        assert_eq!(f.probe(alias), Verdict::MaybeCached);
        // ...but after the L2 reported the miss, the EJ can.
        f.record_snoop_miss(alias, MissScope::Block);
        assert_eq!(f.probe(alias), Verdict::NotCached);
    }

    #[test]
    fn allocate_clears_ej_record() {
        let mut f = hj();
        let cached = UnitAddr::new(0x42);
        let alias = UnitAddr::new(0x42 | (1 << 34));
        f.on_allocate(cached);
        f.record_snoop_miss(alias, MissScope::Block);
        assert_eq!(f.probe(alias), Verdict::NotCached);
        // The alias itself gets cached: EJ record must die, and IJ now has
        // both aliases pinned.
        f.on_allocate(alias);
        assert_eq!(f.probe(alias), Verdict::MaybeCached);
    }

    #[test]
    fn hybrid_filters_union_of_components() {
        let mut f = hj();
        let cached = UnitAddr::new(0x77);
        f.on_allocate(cached);
        f.on_deallocate(cached);
        // After deallocation IJ filters again.
        assert_eq!(f.probe(cached), Verdict::NotCached);
    }

    #[test]
    fn probes_touch_both_components() {
        let mut f = hj();
        f.probe(UnitAddr::new(9));
        let act = f.activity();
        // 4 IJ p-bit arrays (even slots of first 8) read once each + EJ tag
        // array (last slot) read once.
        let n = act.arrays.len();
        assert_eq!(n, 9); // 4 * (pbit + cnt) + 1 EJ tags
        assert_eq!(act.arrays[n - 1].reads, 1);
        for i in 0..4 {
            assert_eq!(act.arrays[2 * i].reads, 1);
        }
        assert_eq!(act.probes, 1);
    }

    #[test]
    fn vector_exclude_part_works() {
        let cfg =
            HybridConfig::new(IncludeConfig::new(8, 4, 7), VectorExcludeConfig::new(32, 4, 8));
        assert_eq!(cfg.label(), "(IJ-8x4x7, VEJ-32x4-8)");
        let mut f = HybridJetty::new(cfg, AddrSpace::default());
        let cached = UnitAddr::new(0x0BAD_CAFE);
        let alias = UnitAddr::new(0x0BAD_CAFE | (1 << 34));
        f.on_allocate(cached);
        f.record_snoop_miss(alias, MissScope::Block);
        assert_eq!(f.probe(alias), Verdict::NotCached);
    }

    #[test]
    fn ij_component_is_unaffected_by_snoop_misses() {
        // IJ coverage inside HJ must equal a standalone IJ fed the same
        // allocate/deallocate stream (the paper's reason HJ >= IJ).
        let mut h = hj();
        let mut standalone = IncludeJetty::new(IncludeConfig::new(8, 4, 7), AddrSpace::default());
        let units: Vec<UnitAddr> = (0..64).map(|i| UnitAddr::new(i * 1237)).collect();
        for (k, &u) in units.iter().enumerate() {
            if k % 3 == 0 {
                h.on_allocate(u);
                standalone.on_allocate(u);
            } else {
                h.record_snoop_miss(u, MissScope::Block);
            }
        }
        for &u in &units {
            let hj_ij_says = h.include_part().clone().probe(u);
            let alone_says = standalone.probe(u);
            assert_eq!(hj_ij_says, alone_says);
        }
    }

    #[test]
    fn reset_activity_zeroes_everything() {
        let mut f = hj();
        f.probe(UnitAddr::new(1));
        f.on_allocate(UnitAddr::new(2));
        f.reset_activity();
        let act = f.activity();
        assert_eq!(act.probes, 0);
        assert!(act.arrays.iter().all(|a| a.total() == 0));
    }

    #[test]
    fn storage_is_sum_of_parts() {
        let f = hj();
        let ij = IncludeJetty::new(IncludeConfig::new(8, 4, 7), AddrSpace::default());
        let ej = ExcludeJetty::new(ExcludeConfig::new(16, 2), AddrSpace::default());
        assert_eq!(f.storage_bits(), ij.storage_bits() + ej.storage_bits());
    }

    #[test]
    fn name_label() {
        assert_eq!(hj().name(), "(IJ-8x4x7, EJ-16x2)");
    }

    #[test]
    fn eager_allocation_learns_from_ij_filtered_snoops() {
        let cfg = HybridConfig::new(IncludeConfig::new(8, 4, 7), ExcludeConfig::new(16, 2))
            .with_eager_allocation();
        assert_eq!(cfg.label(), "(IJ-8x4x7, EJ-16x2, eager)");
        let mut f = HybridJetty::new(cfg, AddrSpace::default());
        let absent = UnitAddr::new(0x99);
        // First probe: IJ filters (empty cache) and the eager EJ records.
        assert_eq!(f.probe(absent), Verdict::NotCached);
        // Make the IJ unable to filter by caching an alias, then verify the
        // EJ still covers the absent unit.
        let alias = UnitAddr::new(0x99 | (1 << 34));
        f.on_allocate(alias);
        assert_eq!(f.probe(absent), Verdict::NotCached, "eager EJ should have recorded");
    }

    #[test]
    fn backup_policy_does_not_learn_from_filtered_snoops() {
        let mut f = hj();
        let absent = UnitAddr::new(0x99);
        assert_eq!(f.probe(absent), Verdict::NotCached); // IJ filters
        let alias = UnitAddr::new(0x99 | (1 << 34));
        f.on_allocate(alias);
        // The backup EJ never saw the miss, and the IJ is now blind.
        assert_eq!(f.probe(absent), Verdict::MaybeCached);
    }
}
