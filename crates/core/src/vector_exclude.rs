//! Vector-Exclude-Jetty (VEJ, paper §3.1 / Figure 3a): an Exclude-Jetty
//! whose entries cover a *chunk* of consecutive L2 blocks via an n-bit
//! present-vector, exploiting spatial locality in the snoop stream.
//!
//! An entry is a `(TAG, present-vector)` pair. The tag covers the block
//! address with the low `log2(vector_len)` bits removed; those low bits
//! select a lane in the present-vector. Lane `i` set means block
//! `(TAG << log2(V)) + i` is known entirely absent. Lanes are set by
//! whole-tag snoop misses and cleared by local fills, so the same safety
//! argument as the plain [`ExcludeJetty`](crate::ExcludeJetty) applies
//! lane-by-lane.
//!
//! Because the set index is taken from the *chunk* address, a VEJ and an EJ
//! with the same sets/ways use different PA bits for indexing — the paper
//! notes this is why VEJ coverage occasionally drops below the matching EJ
//! (set pressure can increase; e.g. Barnes).

use std::fmt;

use crate::addr::{AddrSpace, UnitAddr};
use crate::filter::{ArrayActivity, ArraySpec, FilterActivity, MissScope, SnoopFilter, Verdict};
use crate::kernels::{self, SimdLevel, VejGeom};

/// Configuration for a [`VectorExcludeJetty`], the paper's `VEJ-SxA-V`
/// naming.
///
/// # Examples
///
/// ```
/// use jetty_core::VectorExcludeConfig;
///
/// let cfg = VectorExcludeConfig::new(32, 4, 8);
/// assert_eq!(cfg.label(), "VEJ-32x4-8");
/// assert_eq!(cfg.entries(), 128);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VectorExcludeConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (entries per set).
    pub ways: usize,
    /// Present-vector length in blocks; must be a power of two `>= 2`.
    pub vector_len: usize,
}

impl VectorExcludeConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `vector_len` is not a power of two, if `ways` is
    /// zero, or if `vector_len < 2` (use [`ExcludeConfig`](crate::ExcludeConfig)
    /// for scalar entries).
    pub fn new(sets: usize, ways: usize, vector_len: usize) -> Self {
        assert!(sets.is_power_of_two(), "VEJ sets must be a power of two, got {sets}");
        assert!(ways > 0, "VEJ associativity must be nonzero");
        assert!(
            vector_len.is_power_of_two() && vector_len >= 2,
            "VEJ vector length must be a power of two >= 2, got {vector_len}"
        );
        Self { sets, ways, vector_len }
    }

    /// Total entries (`sets * ways`); each entry covers `vector_len`
    /// blocks.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Paper-style label, e.g. `VEJ-32x4-8`.
    pub fn label(&self) -> String {
        format!("VEJ-{}x{}-{}", self.sets, self.ways, self.vector_len)
    }
}

/// Tag word marking a never-used way. Real chunk tags are at most ~34
/// bits, so the all-ones word cannot alias one — probes scan only the tag
/// array of a set and touch vectors/stamps on a match alone.
const EMPTY_TAG: u64 = u64::MAX;

/// The Vector-Exclude-Jetty filter. See the module docs.
///
/// # Examples
///
/// ```
/// use jetty_core::{AddrSpace, MissScope, SnoopFilter, UnitAddr, Verdict, VectorExcludeConfig,
///                  VectorExcludeJetty};
///
/// let cfg = VectorExcludeConfig::new(8, 2, 4);
/// let mut vej = VectorExcludeJetty::new(cfg, AddrSpace::default());
///
/// // Blocks 100 and 101 (units 200/202) share one chunk with V = 4.
/// vej.record_snoop_miss(UnitAddr::new(200), MissScope::Block);
/// vej.record_snoop_miss(UnitAddr::new(202), MissScope::Block);
/// assert_eq!(vej.probe(UnitAddr::new(200)), Verdict::NotCached);
/// assert_eq!(vej.probe(UnitAddr::new(201)), Verdict::NotCached); // sibling subblock
/// assert_eq!(vej.probe(UnitAddr::new(202)), Verdict::NotCached);
/// // Block 102's lane was never recorded.
/// assert_eq!(vej.probe(UnitAddr::new(204)), Verdict::MaybeCached);
/// ```
#[derive(Clone)]
pub struct VectorExcludeJetty {
    config: VectorExcludeConfig,
    space: AddrSpace,
    /// Entry tags ([`EMPTY_TAG`] = unused way) in one contiguous array;
    /// set `s` occupies `tags[s * ways .. (s + 1) * ways]` (same flat
    /// layout as [`ExcludeJetty`](crate::ExcludeJetty)).
    tags: Vec<u64>,
    /// Present-vectors, parallel to `tags`; bit `i` set = block
    /// `chunk*V + i` known absent.
    vectors: Vec<u64>,
    /// LRU stamps, parallel to `tags` (larger = more recent; 0 = never
    /// stamped).
    stamps: Vec<u64>,
    clock: u64,
    /// Block-scope `record_snoop_miss` calls since the last reset (each is
    /// exactly one tag write, charged in `activity()`).
    records: u64,
    /// `on_allocate` calls since the last reset (each is exactly one tag
    /// read, charged in `activity()`).
    allocates: u64,
    activity: FilterActivity,
}

impl fmt::Debug for VectorExcludeJetty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VectorExcludeJetty")
            .field("config", &self.config)
            .field("probes", &self.activity.probes)
            .field("filtered", &self.activity.filtered)
            .finish()
    }
}

impl VectorExcludeJetty {
    const ARRAYS: usize = 1;

    /// Creates a Vector-Exclude-Jetty for the given address space.
    pub fn new(config: VectorExcludeConfig, space: AddrSpace) -> Self {
        Self {
            config,
            space,
            tags: vec![EMPTY_TAG; config.entries()],
            vectors: vec![0; config.entries()],
            stamps: vec![0; config.entries()],
            clock: 0,
            records: 0,
            allocates: 0,
            activity: FilterActivity::with_arrays(Self::ARRAYS),
        }
    }

    /// The configuration this filter was built with.
    pub fn config(&self) -> VectorExcludeConfig {
        self.config
    }

    fn lane_bits(&self) -> u32 {
        self.config.vector_len.trailing_zeros()
    }

    fn set_bits(&self) -> u32 {
        self.config.sets.trailing_zeros()
    }

    /// Width of a stored tag: block bits minus lane bits minus set bits.
    pub fn tag_bits(&self) -> u32 {
        self.space.block_bits().saturating_sub(self.lane_bits()).saturating_sub(self.set_bits())
    }

    /// Splits a unit address into (set, tag, lane).
    fn split(&self, addr: UnitAddr) -> (usize, u64, u32) {
        let block = self.space.block_of_unit(addr);
        let lane = (block as u32) & (self.config.vector_len as u32 - 1);
        let chunk = block >> self.lane_bits();
        let set = (chunk as usize) & (self.config.sets - 1);
        let tag = chunk >> self.set_bits();
        (set, tag, lane)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn tag_array(&mut self) -> &mut ArrayActivity {
        &mut self.activity.arrays[0]
    }

    /// The contiguous slice of ways backing `set`.
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.config.ways;
        base..base + self.config.ways
    }

    /// Flat index of the way holding `tag` in `set`, if any. Scans tags
    /// only ([`EMPTY_TAG`] can never alias a real chunk tag). Branchless
    /// for the same reason as [`ExcludeJetty`]'s find: the matching way is
    /// data-dependent, so compare-and-select beats an early-exit scan.
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.config.ways;
        let tags = &self.tags[base..base + self.config.ways];
        let mut found = usize::MAX;
        for (way, &t) in tags.iter().enumerate().rev() {
            if t == tag {
                found = base + way;
            }
        }
        (found != usize::MAX).then_some(found)
    }

    /// Replays a node's deferred event list through this filter — exactly
    /// equivalent to the substrate's eager per-snoop sequence (see
    /// [`ExcludeJetty::apply_batch`](crate::ExcludeJetty::apply_batch)),
    /// with counters accumulated in registers and the tag/vector/stamp
    /// arrays cache-resident across the batch. `node` only labels the
    /// safety panic.
    pub fn apply_batch(&mut self, events: &[crate::FilterEvent], node: usize) {
        self.apply_batch_with(kernels::active_level(), events, node);
    }

    /// [`apply_batch`](VectorExcludeJetty::apply_batch) with an explicit
    /// kernel level — the differential-test entry point. The event chunk
    /// goes to a single [`kernels::vej_replay`] call as-is (no gather
    /// pass; the kernel splits each address with this filter's
    /// [`VejGeom`]); see
    /// [`ExcludeJetty::apply_batch_with`](crate::ExcludeJetty::apply_batch_with).
    pub fn apply_batch_with(
        &mut self,
        level: SimdLevel,
        events: &[crate::FilterEvent],
        node: usize,
    ) {
        let out = self.replay_events(level, events, &[]);
        if let Some(bad) = out.unsafe_at {
            let crate::FilterEvent::Snoop { unit, .. } = events[bad] else {
                unreachable!("unsafe_at always indexes a snoop event");
            };
            panic!(
                "UNSAFE FILTER: VEJ-{}x{}-{} filtered a snoop to cached unit {unit} on node {node}",
                self.config.sets, self.config.ways, self.config.vector_len
            );
        }
    }

    /// The address-split geometry handed to the replay kernel; encodes
    /// exactly the [`split`](VectorExcludeJetty::split) computation.
    fn geom(&self) -> VejGeom {
        VejGeom {
            block_shift: self.space.block_unit_shift(),
            lane_mask: (self.config.vector_len - 1) as u64,
            lane_bits: self.lane_bits(),
            set_mask: (self.config.sets - 1) as u64,
            set_bits: self.set_bits(),
        }
    }

    /// Replays one [`crate::FilterEvent`] chunk through a single
    /// [`kernels::vej_replay`] call; counter mapping exactly as in
    /// [`ExcludeJetty::replay_events`](crate::ExcludeJetty) (the caller
    /// owns the unsafe-filter panic).
    pub(crate) fn replay_events(
        &mut self,
        level: SimdLevel,
        events: &[crate::FilterEvent],
        ij_filtered: &[bool],
    ) -> kernels::ReplayOut {
        let geom = self.geom();
        let out = kernels::vej_replay(
            level,
            &mut self.tags,
            &mut self.vectors,
            &mut self.stamps,
            self.config.ways,
            self.clock,
            geom,
            events,
            ij_filtered,
        );
        self.clock = out.clock;
        self.records += out.records;
        self.allocates += out.allocates;
        self.activity.probes += out.probes;
        self.activity.filtered += out.filtered;
        self.activity.arrays[0].writes += out.writes;
        out
    }

    /// [`probe`](SnoopFilter::probe) with an explicit kernel level for the
    /// way scan — used by the hybrid's batched replay. Observably
    /// identical to `probe` at every level.
    pub fn probe_with(&mut self, level: SimdLevel, addr: UnitAddr) -> Verdict {
        self.activity.probes += 1;
        let (set, tag, lane) = self.split(addr);
        let base = set * self.config.ways;
        if let Some(way) = kernels::find_tag(level, &self.tags[base..base + self.config.ways], tag)
        {
            let slot = base + way;
            self.stamps[slot] = self.tick();
            if self.vectors[slot] & (1u64 << lane) != 0 {
                self.activity.filtered += 1;
                return Verdict::NotCached;
            }
        }
        Verdict::MaybeCached
    }
}

impl SnoopFilter for VectorExcludeJetty {
    fn probe(&mut self, addr: UnitAddr) -> Verdict {
        // As in `ExcludeJetty::probe`: the one tag read per probe is
        // derived from `probes` in `activity()`, off the hot path.
        self.activity.probes += 1;
        let (set, tag, lane) = self.split(addr);
        if let Some(slot) = self.find(set, tag) {
            // Tick only when a stamp is assigned (see `ExcludeJetty::probe`
            // — assignment order, and therefore LRU, is unchanged).
            self.stamps[slot] = self.tick();
            if self.vectors[slot] & (1u64 << lane) != 0 {
                self.activity.filtered += 1;
                return Verdict::NotCached;
            }
        }
        Verdict::MaybeCached
    }

    fn record_snoop_miss(&mut self, addr: UnitAddr, scope: MissScope) {
        if scope != MissScope::Block {
            return;
        }
        // Exactly one tag write per recorded miss, deferred to `activity()`.
        self.records += 1;
        let (set, tag, lane) = self.split(addr);
        let stamp = self.tick();
        if let Some(slot) = self.find(set, tag) {
            self.vectors[slot] |= 1u64 << lane;
            self.stamps[slot] = stamp;
        } else {
            let range = self.set_range(set);
            let victim = range.clone().min_by_key(|&s| self.stamps[s]).expect("ways is nonzero");
            self.tags[victim] = tag;
            self.vectors[victim] = 1u64 << lane;
            self.stamps[victim] = stamp;
        }
    }

    fn on_allocate(&mut self, addr: UnitAddr) {
        // Exactly one tag read per call, deferred to `activity()`.
        self.allocates += 1;
        let (set, tag, lane) = self.split(addr);
        if let Some(slot) = self.find(set, tag) {
            if self.vectors[slot] & (1u64 << lane) != 0 {
                self.vectors[slot] &= !(1u64 << lane);
                self.tag_array().writes += 1;
            }
        }
    }

    fn on_deallocate(&mut self, _addr: UnitAddr) {
        // Same reasoning as EJ: losing a unit never invalidates a record.
    }

    fn arrays(&self) -> Vec<ArraySpec> {
        let entry_bits = self.tag_bits() as usize + self.config.vector_len;
        vec![ArraySpec::sram("vej.tags", self.config.sets, self.config.ways * entry_bits)]
    }

    fn activity(&self) -> FilterActivity {
        // Materialise the uniform charges deferred on the hot paths: one
        // tag read per probe/allocate, one tag write per recorded miss.
        let mut activity = self.activity.clone();
        activity.arrays[0].reads += activity.probes + self.allocates;
        activity.arrays[0].writes += self.records;
        activity
    }

    fn reset_activity(&mut self) {
        self.records = 0;
        self.allocates = 0;
        self.activity = FilterActivity::with_arrays(Self::ARRAYS);
    }

    fn name(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vej(sets: usize, ways: usize, v: usize) -> VectorExcludeJetty {
        VectorExcludeJetty::new(VectorExcludeConfig::new(sets, ways, v), AddrSpace::default())
    }

    /// Unit address of block `b` (64-byte blocks = 2 units per block).
    fn block_unit(b: u64) -> UnitAddr {
        UnitAddr::new(b * 2)
    }

    #[test]
    fn lanes_are_independent() {
        let mut f = vej(8, 2, 8);
        let base = 0x100u64; // chunk-aligned block number
        for lane in [0u64, 3, 7] {
            f.record_snoop_miss(block_unit(base + lane), MissScope::Block);
        }
        for lane in 0..8u64 {
            let expected = if [0u64, 3, 7].contains(&lane) {
                Verdict::NotCached
            } else {
                Verdict::MaybeCached
            };
            assert_eq!(f.probe(block_unit(base + lane)), expected, "lane {lane}");
        }
    }

    #[test]
    fn block_record_covers_both_subblocks() {
        let mut f = vej(8, 2, 4);
        f.record_snoop_miss(UnitAddr::new(80), MissScope::Block);
        assert_eq!(f.probe(UnitAddr::new(80)), Verdict::NotCached);
        assert_eq!(f.probe(UnitAddr::new(81)), Verdict::NotCached);
    }

    #[test]
    fn unit_scope_misses_ignored() {
        let mut f = vej(8, 2, 4);
        f.record_snoop_miss(UnitAddr::new(80), MissScope::Unit);
        assert_eq!(f.probe(UnitAddr::new(80)), Verdict::MaybeCached);
    }

    #[test]
    fn allocate_clears_only_its_lane() {
        let mut f = vej(8, 2, 4);
        let b0 = block_unit(0x40);
        let b1 = block_unit(0x41);
        f.record_snoop_miss(b0, MissScope::Block);
        f.record_snoop_miss(b1, MissScope::Block);
        f.on_allocate(b0);
        assert_eq!(f.probe(b0), Verdict::MaybeCached);
        assert_eq!(f.probe(b1), Verdict::NotCached);
    }

    #[test]
    fn spatial_locality_shares_one_entry() {
        let mut f = vej(1, 1, 4);
        for lane in 0..4u64 {
            f.record_snoop_miss(block_unit(lane), MissScope::Block);
        }
        for lane in 0..4u64 {
            assert_eq!(f.probe(block_unit(lane)), Verdict::NotCached);
        }
    }

    #[test]
    fn conflicting_chunk_evicts_lru() {
        let mut f = vej(1, 1, 4);
        f.record_snoop_miss(block_unit(0), MissScope::Block); // chunk 0
        f.record_snoop_miss(block_unit(4), MissScope::Block); // chunk 1 evicts
        assert_eq!(f.probe(block_unit(0)), Verdict::MaybeCached);
        assert_eq!(f.probe(block_unit(4)), Verdict::NotCached);
    }

    #[test]
    fn set_index_uses_chunk_address() {
        let mut f = vej(4, 1, 4);
        f.record_snoop_miss(block_unit(0), MissScope::Block); // set 0
        f.record_snoop_miss(block_unit(4), MissScope::Block); // set 1
        assert_eq!(f.probe(block_unit(0)), Verdict::NotCached);
        assert_eq!(f.probe(block_unit(4)), Verdict::NotCached);
    }

    #[test]
    fn geometry_matches_paper_config() {
        // VEJ-32x4-8 over 34 block bits: lane 3 bits, set 5 bits, tag 26.
        let f = vej(32, 4, 8);
        assert_eq!(f.tag_bits(), 26);
        let arrays = f.arrays();
        assert_eq!(arrays[0].rows, 32);
        assert_eq!(arrays[0].bits_per_row, 4 * (26 + 8));
    }

    #[test]
    fn activity_counting() {
        let mut f = vej(8, 1, 4);
        let u = UnitAddr::new(42);
        f.probe(u);
        f.record_snoop_miss(u, MissScope::Block);
        f.on_allocate(u);
        let a = f.activity();
        assert_eq!(a.arrays[0].reads, 2);
        assert_eq!(a.arrays[0].writes, 2);
        assert_eq!(a.probes, 1);
        assert_eq!(a.filtered, 0);
    }

    #[test]
    fn name_label() {
        assert_eq!(vej(16, 4, 4).name(), "VEJ-16x4-4");
    }

    #[test]
    #[should_panic(expected = "power of two >= 2")]
    fn rejects_vector_len_one() {
        let _ = VectorExcludeConfig::new(8, 2, 1);
    }

    #[test]
    fn cold_probe_is_maybe() {
        let mut f = vej(32, 4, 8);
        assert_eq!(f.probe(UnitAddr::new(0xdead)), Verdict::MaybeCached);
    }
}
