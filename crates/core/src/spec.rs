//! Declarative filter specifications.
//!
//! Experiments enumerate many filter configurations per run; [`FilterSpec`]
//! names a configuration as data so the harness can build one instance per
//! SMP node and label result rows with the paper's naming scheme.

use std::fmt;

use crate::addr::{AddrSpace, UnitAddr};
use crate::exclude::{ExcludeConfig, ExcludeJetty};
use crate::filter::{ArraySpec, FilterActivity, MissScope, SnoopFilter, Verdict};
use crate::hybrid::{EjAllocation, ExcludePart, HybridConfig, HybridJetty};
use crate::include::{IncludeConfig, IncludeJetty};
use crate::null::NullFilter;
use crate::vector_exclude::{VectorExcludeConfig, VectorExcludeJetty};

/// A buildable description of a JETTY configuration.
///
/// # Examples
///
/// ```
/// use jetty_core::{AddrSpace, FilterSpec, SnoopFilter};
///
/// let spec = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4);
/// assert_eq!(spec.label(), "(IJ-10x4x7, EJ-32x4)");
/// let filter = spec.build(AddrSpace::default());
/// assert_eq!(filter.name(), spec.label());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterSpec {
    /// No filtering (baseline).
    Null,
    /// An [`ExcludeJetty`].
    Exclude(ExcludeConfig),
    /// A [`VectorExcludeJetty`].
    VectorExclude(VectorExcludeConfig),
    /// An [`IncludeJetty`].
    Include(IncludeConfig),
    /// A [`HybridJetty`].
    Hybrid(HybridConfig),
}

impl FilterSpec {
    /// Shorthand for an `EJ-SxA` spec.
    pub fn exclude(sets: usize, ways: usize) -> Self {
        FilterSpec::Exclude(ExcludeConfig::new(sets, ways))
    }

    /// Shorthand for a `VEJ-SxA-V` spec.
    pub fn vector_exclude(sets: usize, ways: usize, vector_len: usize) -> Self {
        FilterSpec::VectorExclude(VectorExcludeConfig::new(sets, ways, vector_len))
    }

    /// Shorthand for an `IJ-ExNxS` spec.
    pub fn include(index_bits: u32, sub_arrays: u32, skip: u32) -> Self {
        FilterSpec::Include(IncludeConfig::new(index_bits, sub_arrays, skip))
    }

    /// Shorthand for an `(IJ-ExNxS, EJ-SxA)` hybrid spec.
    pub fn hybrid_scalar(e: u32, n: u32, s: u32, sets: usize, ways: usize) -> Self {
        FilterSpec::Hybrid(HybridConfig::new(
            IncludeConfig::new(e, n, s),
            ExcludeConfig::new(sets, ways),
        ))
    }

    /// Shorthand for an `(IJ-ExNxS, VEJ-SxA-V)` hybrid spec.
    pub fn hybrid_vector(e: u32, n: u32, s: u32, sets: usize, ways: usize, v: usize) -> Self {
        FilterSpec::Hybrid(HybridConfig::new(
            IncludeConfig::new(e, n, s),
            VectorExcludeConfig::new(sets, ways, v),
        ))
    }

    /// Shorthand for the eager-EJ-allocation ablation variant of
    /// [`FilterSpec::hybrid_scalar`].
    pub fn hybrid_scalar_eager(e: u32, n: u32, s: u32, sets: usize, ways: usize) -> Self {
        FilterSpec::Hybrid(
            HybridConfig::new(IncludeConfig::new(e, n, s), ExcludeConfig::new(sets, ways))
                .with_eager_allocation(),
        )
    }

    /// Builds a fresh filter instance for one SMP node.
    ///
    /// The returned box is [`Send`] ([`SnoopFilter`] requires it), so a
    /// built bank — and the simulated system holding it — can be handed to
    /// a worker thread. Hot simulation loops should prefer
    /// [`FilterSpec::build_any`], which dispatches statically.
    pub fn build(&self, space: AddrSpace) -> Box<dyn SnoopFilter> {
        match *self {
            FilterSpec::Null => Box::new(NullFilter::new()),
            FilterSpec::Exclude(c) => Box::new(ExcludeJetty::new(c, space)),
            FilterSpec::VectorExclude(c) => Box::new(VectorExcludeJetty::new(c, space)),
            FilterSpec::Include(c) => Box::new(IncludeJetty::new(c, space)),
            FilterSpec::Hybrid(c) => Box::new(HybridJetty::new(c, space)),
        }
    }

    /// Builds a fresh filter instance as an [`AnyFilter`] value (no heap
    /// box, no vtable): the representation the simulator's per-node banks
    /// store, so every per-snoop probe is a direct, inlinable call on
    /// contiguous memory.
    pub fn build_any(&self, space: AddrSpace) -> AnyFilter {
        match *self {
            FilterSpec::Null => AnyFilter::Null(NullFilter::new()),
            FilterSpec::Exclude(c) => AnyFilter::Exclude(ExcludeJetty::new(c, space)),
            FilterSpec::VectorExclude(c) => {
                AnyFilter::VectorExclude(VectorExcludeJetty::new(c, space))
            }
            FilterSpec::Include(c) => AnyFilter::Include(IncludeJetty::new(c, space)),
            FilterSpec::Hybrid(c) => AnyFilter::Hybrid(HybridJetty::new(c, space)),
        }
    }

    /// Stable machine-readable identifier: lowercase, and free of the
    /// spaces, commas and parentheses the paper-style [`FilterSpec::label`]
    /// uses — safe as a CSV cell, a JSON key, a file name, or a CLI axis
    /// value. Round-trips through [`FilterSpec::from_id`].
    ///
    /// # Examples
    ///
    /// ```
    /// use jetty_core::FilterSpec;
    ///
    /// let spec = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4);
    /// assert_eq!(spec.id(), "hj-ij10x4x7-ej32x4");
    /// assert_eq!(FilterSpec::from_id(&spec.id()), Some(spec));
    /// ```
    pub fn id(&self) -> String {
        match self {
            FilterSpec::Null => "none".to_owned(),
            FilterSpec::Exclude(c) => format!("ej-{}x{}", c.sets, c.ways),
            FilterSpec::VectorExclude(c) => {
                format!("vej-{}x{}-{}", c.sets, c.ways, c.vector_len)
            }
            FilterSpec::Include(c) => {
                format!("ij-{}x{}x{}", c.index_bits, c.sub_arrays, c.skip)
            }
            FilterSpec::Hybrid(c) => {
                let ij = &c.include;
                let ej = match &c.exclude {
                    ExcludePart::Scalar(x) => format!("ej{}x{}", x.sets, x.ways),
                    ExcludePart::Vector(x) => format!("vej{}x{}-{}", x.sets, x.ways, x.vector_len),
                };
                let eager = match c.ej_allocation {
                    EjAllocation::Backup => "",
                    EjAllocation::Eager => "-eager",
                };
                format!("hj-ij{}x{}x{}-{}{}", ij.index_bits, ij.sub_arrays, ij.skip, ej, eager)
            }
        }
    }

    /// Parses a stable identifier produced by [`FilterSpec::id`]
    /// (case-insensitive, surrounding whitespace ignored). Returns `None`
    /// for unknown shapes *and* for invalid geometries (non-power-of-two
    /// set counts, zero ways, out-of-range IJ widths), so CLI surfaces can
    /// report errors instead of panicking in a config constructor.
    pub fn from_id(id: &str) -> Option<Self> {
        let id = id.trim().to_ascii_lowercase();
        if id == "none" {
            return Some(FilterSpec::Null);
        }
        if let Some(rest) = id.strip_prefix("hj-") {
            let (rest, eager) = match rest.strip_suffix("-eager") {
                Some(r) => (r, true),
                None => (rest, false),
            };
            let rest = rest.strip_prefix("ij")?;
            // The IJ dims contain no dashes, so the first `-ej` / `-vej`
            // cleanly separates the two components.
            let (ij_part, ej_part, vector) = if let Some(i) = rest.find("-vej") {
                (&rest[..i], &rest[i + 4..], true)
            } else if let Some(i) = rest.find("-ej") {
                (&rest[..i], &rest[i + 3..], false)
            } else {
                return None;
            };
            let (e, n, s) = parse_ij_dims(ij_part)?;
            let include = IncludeConfig::new(e, n, s);
            let config = if vector {
                let (sets, ways, v) = parse_vej_dims(ej_part)?;
                HybridConfig::new(include, VectorExcludeConfig::new(sets, ways, v))
            } else {
                let (sets, ways) = parse_ej_dims(ej_part)?;
                HybridConfig::new(include, ExcludeConfig::new(sets, ways))
            };
            let config = if eager { config.with_eager_allocation() } else { config };
            return Some(FilterSpec::Hybrid(config));
        }
        if let Some(rest) = id.strip_prefix("vej-") {
            let (sets, ways, v) = parse_vej_dims(rest)?;
            return Some(Self::vector_exclude(sets, ways, v));
        }
        if let Some(rest) = id.strip_prefix("ej-") {
            let (sets, ways) = parse_ej_dims(rest)?;
            return Some(Self::exclude(sets, ways));
        }
        if let Some(rest) = id.strip_prefix("ij-") {
            let (e, n, s) = parse_ij_dims(rest)?;
            return Some(Self::include(e, n, s));
        }
        None
    }

    /// Paper-style label for result rows.
    pub fn label(&self) -> String {
        match self {
            FilterSpec::Null => "none".to_owned(),
            FilterSpec::Exclude(c) => c.label(),
            FilterSpec::VectorExclude(c) => c.label(),
            FilterSpec::Include(c) => c.label(),
            FilterSpec::Hybrid(c) => c.label(),
        }
    }

    /// The six EJ configurations of Figure 4(a).
    pub fn figure4a_set() -> Vec<FilterSpec> {
        vec![
            Self::exclude(32, 4),
            Self::exclude(32, 2),
            Self::exclude(16, 4),
            Self::exclude(16, 2),
            Self::exclude(8, 4),
            Self::exclude(8, 2),
        ]
    }

    /// The four VEJ configurations of Figure 4(b) (the figure also repeats
    /// EJ-32x4 and EJ-16x4 for comparison; include those via
    /// [`FilterSpec::figure4a_set`]).
    pub fn figure4b_set() -> Vec<FilterSpec> {
        vec![
            Self::vector_exclude(32, 4, 8),
            Self::vector_exclude(32, 4, 4),
            Self::vector_exclude(16, 4, 8),
            Self::vector_exclude(16, 4, 4),
        ]
    }

    /// The five IJ configurations of Figure 5(a).
    pub fn figure5a_set() -> Vec<FilterSpec> {
        vec![
            Self::include(10, 4, 7),
            Self::include(9, 4, 7),
            Self::include(8, 4, 7),
            Self::include(7, 5, 6),
            Self::include(6, 5, 6),
        ]
    }

    /// The six HJ configurations of Figure 5(b) / Figure 6(a):
    /// (Ia..Ic, Ea..Eb) with Ia=IJ-10x4x7, Ib=IJ-9x4x7, Ic=IJ-8x4x7,
    /// Ea=EJ-32x4, Eb=EJ-16x2.
    pub fn figure5b_set() -> Vec<FilterSpec> {
        let mut specs = Vec::new();
        for ej in [(32usize, 4usize), (16, 2)] {
            for ij in [(10u32, 4u32, 7u32), (9, 4, 7), (8, 4, 7)] {
                specs.push(Self::hybrid_scalar(ij.0, ij.1, ij.2, ej.0, ej.1));
            }
        }
        specs
    }

    /// Every configuration evaluated anywhere in the paper, deduplicated —
    /// the full bank attached to each node in a reproduction run.
    pub fn paper_bank() -> Vec<FilterSpec> {
        let mut bank = Vec::new();
        bank.extend(Self::figure4a_set());
        bank.extend(Self::figure4b_set());
        bank.extend(Self::figure5a_set());
        bank.extend(Self::figure5b_set());
        // §4.3.4 also mentions (IJ-10x4x7, VEJ-32x4-8) reaching 77%.
        bank.push(Self::hybrid_vector(10, 4, 7, 32, 4, 8));
        bank
    }
}

/// Parses `SETSxWAYS`, validating what [`ExcludeConfig::new`] asserts.
fn parse_ej_dims(s: &str) -> Option<(usize, usize)> {
    let (sets, ways) = s.split_once('x')?;
    let (sets, ways) = (sets.parse().ok()?, ways.parse().ok()?);
    (usize::is_power_of_two(sets) && ways > 0).then_some((sets, ways))
}

/// Parses `SETSxWAYS-VLEN`, validating what [`VectorExcludeConfig::new`]
/// asserts.
fn parse_vej_dims(s: &str) -> Option<(usize, usize, usize)> {
    let (dims, vlen) = s.split_once('-')?;
    let (sets, ways) = parse_ej_dims(dims)?;
    let vlen: usize = vlen.parse().ok()?;
    (vlen.is_power_of_two() && vlen >= 2).then_some((sets, ways, vlen))
}

/// Parses `ExNxS`, validating what [`IncludeConfig::new`] asserts.
fn parse_ij_dims(s: &str) -> Option<(u32, u32, u32)> {
    let mut it = s.split('x');
    let (e, n, s) = (it.next()?.parse().ok()?, it.next()?.parse().ok()?, it.next()?.parse().ok()?);
    (it.next().is_none() && (1..=30).contains(&e) && n > 0 && s > 0).then_some((e, n, s))
}

impl fmt::Display for FilterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A concrete filter instance behind an enum instead of a `dyn` box.
///
/// The simulator probes every filter of every node's bank on every snoop;
/// storing banks as `Vec<AnyFilter>` keeps the filter states in one
/// contiguous allocation and turns each probe into a statically-dispatched
/// (and inlinable) call — the `Box<dyn SnoopFilter>` route pays a pointer
/// chase plus an indirect call per event. `AnyFilter` itself implements
/// [`SnoopFilter`], so generic code works with either representation.
// The size spread between variants is deliberate: banks store filters by
// value precisely to avoid the per-probe pointer chase a boxed large
// variant would reintroduce, and banks are small (tens of filters).
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum AnyFilter {
    /// A [`NullFilter`].
    Null(NullFilter),
    /// An [`ExcludeJetty`].
    Exclude(ExcludeJetty),
    /// A [`VectorExcludeJetty`].
    VectorExclude(VectorExcludeJetty),
    /// An [`IncludeJetty`].
    Include(IncludeJetty),
    /// A [`HybridJetty`].
    Hybrid(HybridJetty),
}

/// Forwards one method call to whichever variant is live.
macro_rules! dispatch {
    ($self:expr, $f:ident ( $($arg:expr),* )) => {
        match $self {
            AnyFilter::Null(inner) => inner.$f($($arg),*),
            AnyFilter::Exclude(inner) => inner.$f($($arg),*),
            AnyFilter::VectorExclude(inner) => inner.$f($($arg),*),
            AnyFilter::Include(inner) => inner.$f($($arg),*),
            AnyFilter::Hybrid(inner) => inner.$f($($arg),*),
        }
    };
}

impl AnyFilter {
    /// Replays a node's deferred event list ([`crate::FilterEvent`])
    /// through this filter — the batched twin of the substrate's eager
    /// per-snoop calls. The variant match is hoisted *outside* the event
    /// loop: one filter's arrays stay cache-resident across thousands of
    /// events instead of a whole bank thrashing per snoop, which is the
    /// point of batching. `node` only labels the filter-safety panic.
    #[inline]
    pub fn apply_batch(&mut self, events: &[crate::FilterEvent], node: usize) {
        self.apply_batch_with(crate::kernels::active_level(), events, node);
    }

    /// [`apply_batch`](AnyFilter::apply_batch) with an explicit kernel
    /// level, for differential tests that pin the scalar and AVX2 replay
    /// kernels against each other on the same event stream. The null
    /// filter has no kernel path (its replay is a counter bump).
    #[inline]
    pub fn apply_batch_with(
        &mut self,
        level: crate::kernels::SimdLevel,
        events: &[crate::FilterEvent],
        node: usize,
    ) {
        match self {
            AnyFilter::Null(inner) => inner.apply_batch(events),
            AnyFilter::Exclude(inner) => inner.apply_batch_with(level, events, node),
            AnyFilter::VectorExclude(inner) => inner.apply_batch_with(level, events, node),
            AnyFilter::Include(inner) => inner.apply_batch_with(level, events, node),
            AnyFilter::Hybrid(inner) => inner.apply_batch_with(level, events, node),
        }
    }
}

impl SnoopFilter for AnyFilter {
    #[inline]
    fn probe(&mut self, addr: UnitAddr) -> Verdict {
        dispatch!(self, probe(addr))
    }

    #[inline]
    fn record_snoop_miss(&mut self, addr: UnitAddr, scope: MissScope) {
        dispatch!(self, record_snoop_miss(addr, scope))
    }

    #[inline]
    fn on_allocate(&mut self, addr: UnitAddr) {
        dispatch!(self, on_allocate(addr))
    }

    #[inline]
    fn on_deallocate(&mut self, addr: UnitAddr) {
        dispatch!(self, on_deallocate(addr))
    }

    fn arrays(&self) -> Vec<ArraySpec> {
        dispatch!(self, arrays())
    }

    fn activity(&self) -> FilterActivity {
        dispatch!(self, activity())
    }

    fn reset_activity(&mut self) {
        dispatch!(self, reset_activity())
    }

    fn name(&self) -> String {
        dispatch!(self, name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::UnitAddr;
    use crate::filter::Verdict;

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(FilterSpec::Null.label(), "none");
        assert_eq!(FilterSpec::exclude(32, 4).label(), "EJ-32x4");
        assert_eq!(FilterSpec::vector_exclude(16, 4, 8).label(), "VEJ-16x4-8");
        assert_eq!(FilterSpec::include(7, 5, 6).label(), "IJ-7x5x6");
        assert_eq!(
            FilterSpec::hybrid_vector(10, 4, 7, 32, 4, 8).label(),
            "(IJ-10x4x7, VEJ-32x4-8)"
        );
    }

    #[test]
    fn figure_sets_have_paper_cardinalities() {
        assert_eq!(FilterSpec::figure4a_set().len(), 6);
        assert_eq!(FilterSpec::figure4b_set().len(), 4);
        assert_eq!(FilterSpec::figure5a_set().len(), 5);
        assert_eq!(FilterSpec::figure5b_set().len(), 6);
        assert_eq!(FilterSpec::paper_bank().len(), 6 + 4 + 5 + 6 + 1);
    }

    #[test]
    fn build_produces_working_filters() {
        let space = AddrSpace::default();
        for spec in FilterSpec::paper_bank() {
            let mut filter = spec.build(space);
            assert_eq!(filter.name(), spec.label());
            // Allocate then probe: must never filter a cached unit.
            let u = UnitAddr::new(0xABC);
            filter.on_allocate(u);
            assert_eq!(filter.probe(u), Verdict::MaybeCached, "{}", spec);
        }
    }

    #[test]
    fn built_filters_are_send() {
        fn assert_send<T: Send>(_: &T) {}
        for spec in FilterSpec::paper_bank() {
            assert_send(&spec.build(AddrSpace::default()));
        }
    }

    #[test]
    fn ids_are_machine_readable() {
        assert_eq!(FilterSpec::Null.id(), "none");
        assert_eq!(FilterSpec::exclude(32, 4).id(), "ej-32x4");
        assert_eq!(FilterSpec::vector_exclude(16, 4, 8).id(), "vej-16x4-8");
        assert_eq!(FilterSpec::include(7, 5, 6).id(), "ij-7x5x6");
        assert_eq!(FilterSpec::hybrid_scalar(10, 4, 7, 32, 4).id(), "hj-ij10x4x7-ej32x4");
        assert_eq!(FilterSpec::hybrid_vector(10, 4, 7, 32, 4, 8).id(), "hj-ij10x4x7-vej32x4-8");
        assert_eq!(FilterSpec::hybrid_scalar_eager(9, 4, 7, 32, 4).id(), "hj-ij9x4x7-ej32x4-eager");
        for spec in FilterSpec::paper_bank() {
            let id = spec.id();
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{id:?} must stay lowercase alphanumeric + dashes"
            );
        }
    }

    #[test]
    fn ids_round_trip_through_from_id() {
        let mut bank = FilterSpec::paper_bank();
        bank.push(FilterSpec::Null);
        bank.push(FilterSpec::hybrid_scalar_eager(9, 4, 7, 32, 4));
        for spec in bank {
            assert_eq!(FilterSpec::from_id(&spec.id()), Some(spec), "{}", spec.id());
        }
        // Case and whitespace are forgiven.
        assert_eq!(FilterSpec::from_id(" EJ-32x4 "), Some(FilterSpec::exclude(32, 4)));
        assert_eq!(FilterSpec::from_id("NONE"), Some(FilterSpec::Null));
    }

    #[test]
    fn from_id_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "ej-",
            "ej-32",
            "ej-31x4",
            "ej-32x0",
            "ej-axb",
            "vej-16x4",
            "vej-16x4-3",
            "ij-0x4x7",
            "ij-31x4x7",
            "ij-10x4",
            "ij-10x4x7x2",
            "hj-ej32x4",
            "hj-ij10x4x7",
            "hj-ij10x4x7-xx",
            "moesi",
            "ej_32x4",
        ] {
            assert_eq!(FilterSpec::from_id(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn display_matches_label() {
        let spec = FilterSpec::include(10, 4, 7);
        assert_eq!(spec.to_string(), spec.label());
    }

    #[test]
    fn figure5b_ordering_matches_figure_legend() {
        // (Ia,Ea) (Ib,Ea) (Ic,Ea) (Ia,Eb) (Ib,Eb) (Ic,Eb)
        let labels: Vec<String> =
            FilterSpec::figure5b_set().iter().map(FilterSpec::label).collect();
        assert_eq!(
            labels,
            vec![
                "(IJ-10x4x7, EJ-32x4)",
                "(IJ-9x4x7, EJ-32x4)",
                "(IJ-8x4x7, EJ-32x4)",
                "(IJ-10x4x7, EJ-16x2)",
                "(IJ-9x4x7, EJ-16x2)",
                "(IJ-8x4x7, EJ-16x2)",
            ]
        );
    }
}
