//! Physical-address geometry shared by the filters and the SMP substrate.
//!
//! The paper assumes a 40-bit physical address space (Figure 3) and maintains
//! coherence at 32-byte-subblock granularity (§4.1). Every JETTY structure
//! therefore observes *coherence-unit addresses*: the physical address with
//! the intra-unit offset stripped. [`AddrSpace`] captures that geometry once
//! so that filter tag widths, index slices and storage estimates all agree.

use std::fmt;

/// Geometry of the physical address space as seen by snoop filters.
///
/// An `AddrSpace` knows how wide physical addresses are (`pa_bits`) and how
/// many low-order bits form the coherence-unit offset (`unit_shift`, i.e.
/// log2 of the coherence-unit size in bytes).
///
/// # Examples
///
/// ```
/// use jetty_core::AddrSpace;
///
/// let space = AddrSpace::default(); // 40-bit PA, 32-byte coherence units
/// assert_eq!(space.pa_bits(), 40);
/// assert_eq!(space.unit_bytes(), 32);
/// assert_eq!(space.unit_bits(), 35);
/// let unit = space.unit_of(0x1234_5678);
/// assert_eq!(unit.raw(), 0x1234_5678 >> 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AddrSpace {
    pa_bits: u32,
    unit_shift: u32,
    block_shift: u32,
}

impl AddrSpace {
    /// Creates a new address-space description with the L2 tag (block)
    /// granularity equal to the coherence-unit granularity (no
    /// subblocking).
    ///
    /// # Panics
    ///
    /// Panics if `pa_bits` is not in `1..=64`, if `unit_shift >= pa_bits`,
    /// or if `unit_shift` exceeds 12 (a 4 KiB coherence unit is clearly a
    /// configuration error for this system).
    pub fn new(pa_bits: u32, unit_shift: u32) -> Self {
        Self::with_block_shift(pa_bits, unit_shift, unit_shift)
    }

    /// Creates an address-space description for a subblocked L2: coherence
    /// units of `2^unit_shift` bytes inside tag blocks of
    /// `2^block_shift` bytes. Exclude-style filters record absence at
    /// block granularity (a full tag miss covers every subblock), which is
    /// where most of their snoop locality comes from (paper §4.3.1).
    ///
    /// # Panics
    ///
    /// Panics on the [`AddrSpace::new`] conditions, or if `block_shift` is
    /// not in `unit_shift..=unit_shift + 4`.
    pub fn with_block_shift(pa_bits: u32, unit_shift: u32, block_shift: u32) -> Self {
        assert!(
            (1..=64).contains(&pa_bits),
            "physical address width must be 1..=64 bits, got {pa_bits}"
        );
        assert!(
            unit_shift < pa_bits,
            "unit shift {unit_shift} must be smaller than the PA width {pa_bits}"
        );
        assert!(
            unit_shift <= 12,
            "coherence units larger than 4 KiB are unsupported (shift {unit_shift})"
        );
        assert!(
            (unit_shift..=unit_shift + 4).contains(&block_shift) && block_shift < pa_bits,
            "block shift {block_shift} must be in {unit_shift}..={} ",
            unit_shift + 4
        );
        Self { pa_bits, unit_shift, block_shift }
    }

    /// Width of a physical address in bits.
    pub fn pa_bits(self) -> u32 {
        self.pa_bits
    }

    /// log2 of the coherence-unit size in bytes.
    pub fn unit_shift(self) -> u32 {
        self.unit_shift
    }

    /// Coherence-unit size in bytes.
    pub fn unit_bytes(self) -> u64 {
        1 << self.unit_shift
    }

    /// Width of a coherence-unit address in bits (`pa_bits - unit_shift`).
    pub fn unit_bits(self) -> u32 {
        self.pa_bits - self.unit_shift
    }

    /// Number of distinct coherence units in the address space.
    ///
    /// Saturates at `u64::MAX` for 64-bit unit addresses (not reachable with
    /// the validated constructor, but kept total for safety).
    pub fn max_units(self) -> u64 {
        if self.unit_bits() >= 64 {
            u64::MAX
        } else {
            1u64 << self.unit_bits()
        }
    }

    /// Masks a raw byte address down to `pa_bits` bits.
    pub fn clamp(self, byte_addr: u64) -> u64 {
        if self.pa_bits >= 64 {
            byte_addr
        } else {
            byte_addr & ((1u64 << self.pa_bits) - 1)
        }
    }

    /// Converts a byte address into the coherence-unit address snooped on
    /// the bus.
    pub fn unit_of(self, byte_addr: u64) -> UnitAddr {
        UnitAddr(self.clamp(byte_addr) >> self.unit_shift)
    }

    /// Converts a coherence-unit address back to the byte address of the
    /// unit's first byte.
    pub fn byte_of(self, unit: UnitAddr) -> u64 {
        unit.0 << self.unit_shift
    }

    /// log2 of the L2 tag-block size in bytes.
    pub fn block_shift(self) -> u32 {
        self.block_shift
    }

    /// log2 of coherence units per tag block (`0` when not subblocked).
    pub fn block_unit_shift(self) -> u32 {
        self.block_shift - self.unit_shift
    }

    /// The block address containing a coherence unit (the granularity at
    /// which exclude-style filters record absence).
    pub fn block_of_unit(self, unit: UnitAddr) -> u64 {
        unit.0 >> self.block_unit_shift()
    }

    /// Width of a block address in bits.
    pub fn block_bits(self) -> u32 {
        self.pa_bits - self.block_shift
    }
}

impl Default for AddrSpace {
    /// The paper's configuration: 40-bit physical addresses, 32-byte
    /// coherence units inside 64-byte subblocked L2 blocks (§4.1).
    fn default() -> Self {
        Self::with_block_shift(40, 5, 6)
    }
}

impl fmt::Display for AddrSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit PA / {}B units", self.pa_bits, self.unit_bytes())
    }
}

/// A coherence-unit address: the quantity that appears on the snoopy bus.
///
/// This is a plain newtype over `u64`; use [`AddrSpace::unit_of`] to build
/// one from a byte address so offsets are stripped consistently.
///
/// # Examples
///
/// ```
/// use jetty_core::{AddrSpace, UnitAddr};
///
/// let space = AddrSpace::default();
/// let a = space.unit_of(0x40);
/// let b = space.unit_of(0x5f);
/// assert_eq!(a, b); // same 32-byte unit
/// assert_eq!(a, UnitAddr::new(2));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct UnitAddr(u64);

impl UnitAddr {
    /// Wraps a raw coherence-unit address.
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw unit-address value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Extracts `width` bits starting at bit `lo` (little-endian bit order),
    /// the primitive used to derive Include-Jetty sub-array indexes.
    pub fn bits(self, lo: u32, width: u32) -> u64 {
        debug_assert!(width <= 64);
        let shifted = if lo >= 64 { 0 } else { self.0 >> lo };
        if width >= 64 {
            shifted
        } else {
            shifted & ((1u64 << width) - 1)
        }
    }
}

impl fmt::Display for UnitAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{:#x}", self.0)
    }
}

impl From<UnitAddr> for u64 {
    fn from(value: UnitAddr) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let s = AddrSpace::default();
        assert_eq!(s.pa_bits(), 40);
        assert_eq!(s.unit_shift(), 5);
        assert_eq!(s.unit_bytes(), 32);
        assert_eq!(s.unit_bits(), 35);
        assert_eq!(s.max_units(), 1 << 35);
    }

    #[test]
    fn unit_of_strips_offset_and_clamps() {
        let s = AddrSpace::new(40, 5);
        assert_eq!(s.unit_of(0).raw(), 0);
        assert_eq!(s.unit_of(31).raw(), 0);
        assert_eq!(s.unit_of(32).raw(), 1);
        // Bits above the 40-bit PA are ignored.
        assert_eq!(s.unit_of(1 << 45).raw(), 0);
        assert_eq!(s.unit_of((1 << 40) | 64).raw(), 2);
    }

    #[test]
    fn byte_of_inverts_unit_of_for_aligned_addresses() {
        let s = AddrSpace::default();
        for addr in [0u64, 32, 4096, 0xff_ffff_ffe0] {
            assert_eq!(s.byte_of(s.unit_of(addr)), addr);
        }
    }

    #[test]
    fn bits_extracts_subfields() {
        let a = UnitAddr::new(0b1011_0110_1001);
        assert_eq!(a.bits(0, 4), 0b1001);
        assert_eq!(a.bits(4, 4), 0b0110);
        assert_eq!(a.bits(8, 4), 0b1011);
        assert_eq!(a.bits(2, 3), 0b010);
        assert_eq!(a.bits(63, 4), 0);
        assert_eq!(a.bits(64, 4), 0);
    }

    #[test]
    fn bits_full_width() {
        let a = UnitAddr::new(u64::MAX);
        assert_eq!(a.bits(0, 64), u64::MAX);
        assert_eq!(a.bits(1, 64), u64::MAX >> 1);
    }

    #[test]
    #[should_panic(expected = "unit shift")]
    fn rejects_shift_wider_than_pa() {
        let _ = AddrSpace::new(8, 9);
    }

    #[test]
    #[should_panic(expected = "physical address width")]
    fn rejects_zero_width_pa() {
        let _ = AddrSpace::new(0, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AddrSpace::default().to_string(), "40-bit PA / 32B units");
        assert_eq!(UnitAddr::new(0x20).to_string(), "u0x20");
    }
}
