//! # jetty-core — snoop filters for bus-based SMPs
//!
//! This crate implements the JETTY family of snoop filters from
//! *Moshovos, Memik, Falsafi, Choudhary, "JETTY: Filtering Snoops for
//! Reduced Energy Consumption in SMP Servers", HPCA 2001*.
//!
//! In a snoopy, bus-based SMP every bus transaction probes the L2 tag array
//! of every other processor — and the overwhelming majority of those probes
//! miss, wasting the (considerable) energy of a large, high-associativity
//! tag lookup. A JETTY is a tiny structure on the bus side of each L2 that
//! answers most of those would-miss snoops itself:
//!
//! * [`ExcludeJetty`] (EJ) remembers recently snooped units that missed —
//!   a *subset* of what is not cached;
//! * [`VectorExcludeJetty`] (VEJ) extends EJ entries with a present-vector
//!   to exploit spatial locality;
//! * [`IncludeJetty`] (IJ) keeps counting-Bloom-filter sub-arrays over the
//!   cache contents — a *superset* of what is cached;
//! * [`HybridJetty`] (HJ) probes an IJ and an EJ in parallel and filters
//!   when either can.
//!
//! All variants uphold the paper's safety requirement: a filtered snoop is a
//! *guarantee* that no local copy exists, so the coherence protocol is
//! unchanged and no performance is lost.
//!
//! ## Quick start
//!
//! ```
//! use jetty_core::{AddrSpace, FilterSpec, SnoopFilter, UnitAddr, Verdict};
//!
//! // The paper's best configuration: (IJ-10x4x7, EJ-32x4).
//! let space = AddrSpace::default();
//! let mut jetty = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4).build(space);
//!
//! // The cache fills a unit -> the filter tracks it.
//! let unit = space.unit_of(0x8000);
//! jetty.on_allocate(unit);
//!
//! // Snoop to a different unit: filtered, no L2 tag probe needed.
//! assert_eq!(jetty.probe(space.unit_of(0xF000)), Verdict::NotCached);
//! // Snoop to the cached unit: passes through, as it must.
//! assert_eq!(jetty.probe(unit), Verdict::MaybeCached);
//! ```
//!
//! ## Energy accounting
//!
//! Filters describe their physical storage ([`SnoopFilter::arrays`]) and
//! count per-array accesses ([`SnoopFilter::activity`]); the `jetty-energy`
//! crate converts both into joules with a Kamble–Ghose SRAM model so that
//! the filter's own consumption is charged against its savings, exactly as
//! in the paper's §4.4.

// `unsafe` is denied crate-wide and allowed back in exactly one place:
// the SIMD kernel layer (`kernels/`), where every unsafe block carries a
// SAFETY comment and the AVX2 entry points are guarded by a runtime
// capability token. `deny` rather than `forbid` so that narrow
// module-level opt-in stays possible while everything else keeps the
// seed's no-unsafe guarantee.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod addr;
mod exclude;
mod filter;
mod hybrid;
mod include;
pub mod kernels;
mod null;
mod spec;
mod vector_exclude;

pub use addr::{AddrSpace, UnitAddr};
pub use exclude::{ExcludeConfig, ExcludeJetty};
pub use filter::{
    ArrayActivity, ArrayKind, ArraySpec, FilterActivity, FilterEvent, MissScope, SnoopFilter,
    Verdict,
};
pub use hybrid::{EjAllocation, ExcludePart, HybridConfig, HybridJetty};
pub use include::{IncludeConfig, IncludeJetty};
pub use null::NullFilter;
pub use spec::{AnyFilter, FilterSpec};
pub use vector_exclude::{VectorExcludeConfig, VectorExcludeJetty};
