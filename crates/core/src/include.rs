//! Include-Jetty (IJ, paper §3.2 / Figure 3b-c): N counting-Bloom-filter
//! sub-arrays encoding a *superset* of the coherence units currently cached
//! in the local L2.
//!
//! Each sub-array has `2^E` entries, each holding a presence bit (`p`) and a
//! counter (`cnt`). Sub-array `i` is indexed by an `E`-bit slice of the unit
//! address starting at bit `i * skip`; with `skip < E` the slices partially
//! overlap, which the paper found more accurate than disjoint slices. A
//! snoop reads only the N p-bits: if *any* is clear, no cached unit can
//! match the address, so the snoop is filtered. Counters track exactly how
//! many cached units map to each entry so p-bits can be cleared again on
//! deallocation — this is what keeps the superset coherent and the filter
//! safe.
//!
//! For energy, the p-bits and counters live in separate arrays (Figure 3c):
//! snoops touch only the small p-bit arrays (organised rows x columns like a
//! register file); allocate/deallocate traffic performs read-modify-write on
//! the cnt arrays and occasionally writes a p-bit.

use std::fmt;

use crate::addr::{AddrSpace, UnitAddr};
use crate::filter::{ArraySpec, FilterActivity, MissScope, SnoopFilter, Verdict};
use crate::kernels::{self, SimdLevel};

/// Configuration for an [`IncludeJetty`], the paper's `IJ-ExNxS` naming:
/// `2^E`-entry sub-arrays, `N` of them, index slices `S` bits apart.
///
/// # Examples
///
/// ```
/// use jetty_core::IncludeConfig;
///
/// let cfg = IncludeConfig::new(10, 4, 7);
/// assert_eq!(cfg.label(), "IJ-10x4x7");
/// assert_eq!(cfg.entries_per_array(), 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IncludeConfig {
    /// Index width `E`: each sub-array has `2^E` entries.
    pub index_bits: u32,
    /// Number of sub-arrays `N`.
    pub sub_arrays: u32,
    /// Distance `S` in bits between consecutive sub-array index slices.
    /// `S < E` yields partially overlapping indices (the paper's choice).
    pub skip: u32,
    /// Counter width in bits, used only for storage estimates. The paper
    /// pessimistically sizes counters to cover every L2 block mapping to a
    /// single entry (14 bits for their 1 MB L2).
    pub cnt_bits: u32,
}

impl IncludeConfig {
    /// Default counter width used by the paper's storage table.
    pub const DEFAULT_CNT_BITS: u32 = 14;

    /// Creates a configuration with the paper's default 14-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 30, if `sub_arrays` is 0, or if
    /// `skip` is 0.
    pub fn new(index_bits: u32, sub_arrays: u32, skip: u32) -> Self {
        Self::with_cnt_bits(index_bits, sub_arrays, skip, Self::DEFAULT_CNT_BITS)
    }

    /// Creates a configuration with an explicit counter width.
    ///
    /// # Panics
    ///
    /// Same conditions as [`IncludeConfig::new`], plus `cnt_bits == 0`.
    pub fn with_cnt_bits(index_bits: u32, sub_arrays: u32, skip: u32, cnt_bits: u32) -> Self {
        assert!((1..=30).contains(&index_bits), "IJ index width must be 1..=30, got {index_bits}");
        assert!(sub_arrays > 0, "IJ needs at least one sub-array");
        assert!(skip > 0, "IJ index skip must be nonzero");
        assert!(cnt_bits > 0, "IJ counter width must be nonzero");
        Self { index_bits, sub_arrays, skip, cnt_bits }
    }

    /// Entries per sub-array (`2^E`).
    pub fn entries_per_array(&self) -> usize {
        1usize << self.index_bits
    }

    /// Paper-style label, e.g. `IJ-10x4x7`.
    pub fn label(&self) -> String {
        format!("IJ-{}x{}x{}", self.index_bits, self.sub_arrays, self.skip)
    }

    /// Organisation of one p-bit array as (rows, bits per row), mirroring
    /// Figure 3c / Table 4: columns are `max(16, 2^ceil(E/2))` so the array
    /// looks like a small register file.
    pub fn pbit_org(&self) -> (usize, usize) {
        let cols = (1usize << self.index_bits.div_ceil(2)).max(16).min(self.entries_per_array());
        let rows = self.entries_per_array() / cols;
        (rows.max(1), cols)
    }

    /// Total p-bit storage across all sub-arrays, in bits.
    pub fn pbit_storage_bits(&self) -> usize {
        self.sub_arrays as usize * self.entries_per_array()
    }

    /// Total counter storage across all sub-arrays, in bits.
    pub fn cnt_storage_bits(&self) -> usize {
        self.sub_arrays as usize * self.entries_per_array() * self.cnt_bits as usize
    }

    /// Total storage (p-bits + counters) in bytes, the Table 4 figure.
    pub fn storage_bytes(&self) -> usize {
        (self.pbit_storage_bits() + self.cnt_storage_bits()).div_ceil(8)
    }
}

/// The Include-Jetty filter. See the module docs.
///
/// # Examples
///
/// ```
/// use jetty_core::{AddrSpace, IncludeConfig, IncludeJetty, SnoopFilter, UnitAddr, Verdict};
///
/// let mut ij = IncludeJetty::new(IncludeConfig::new(8, 4, 7), AddrSpace::default());
/// let unit = UnitAddr::new(0xBEEF);
///
/// // Empty cache: every snoop is filtered.
/// assert_eq!(ij.probe(unit), Verdict::NotCached);
/// // Once the unit is cached the filter must let snoops through.
/// ij.on_allocate(unit);
/// assert_eq!(ij.probe(unit), Verdict::MaybeCached);
/// // And after eviction it filters again.
/// ij.on_deallocate(unit);
/// assert_eq!(ij.probe(unit), Verdict::NotCached);
/// ```
#[derive(Clone)]
pub struct IncludeJetty {
    config: IncludeConfig,
    space: AddrSpace,
    /// Exact per-entry populations; `p-bit == (count > 0)`. One contiguous
    /// array for all sub-arrays: sub-array `i` occupies
    /// `counts[i << index_bits .. (i + 1) << index_bits]`. `u16` is
    /// sufficient: a counter is bounded by the L2 population (32768 units
    /// for the paper's 1 MB L2), and halving the counter footprint keeps
    /// more of the allocate/deallocate working set cache-resident.
    counts: Vec<u16>,
    /// Packed presence bits mirroring `counts` (bit set ⇔ count > 0),
    /// 64 entries per word, same sub-array-major order. Snoops probe only
    /// this bitmap — it is the software twin of the paper's separate p-bit
    /// arrays (Figure 3c): the whole bank's p-bits stay cache-resident
    /// while the big counter arrays are touched only by (much rarer)
    /// allocate/deallocate traffic.
    pbits: Vec<u64>,
    /// Per-sub-array p-bit write counts returned by the replay kernel
    /// (one slot per sub-array, zeroed before each call).
    scratch_writes: Vec<u64>,
    /// `on_allocate` calls since the last reset. Every allocate performs
    /// exactly one counter read-modify-write per sub-array, so that
    /// uniform activity is derived in `activity()` instead of bumped per
    /// event (same deferral as the per-probe p-bit reads).
    allocates: u64,
    /// `on_deallocate` calls since the last reset (same uniform-charge
    /// deferral as `allocates`).
    deallocates: u64,
    activity: FilterActivity,
}

impl fmt::Debug for IncludeJetty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IncludeJetty")
            .field("config", &self.config)
            .field("probes", &self.activity.probes)
            .field("filtered", &self.activity.filtered)
            .finish()
    }
}

impl IncludeJetty {
    /// Creates an Include-Jetty for the given address space.
    ///
    /// The filter starts empty (all p-bits clear), matching an empty cache.
    pub fn new(config: IncludeConfig, space: AddrSpace) -> Self {
        let entries = config.sub_arrays as usize * config.entries_per_array();
        let counts = vec![0u16; entries];
        let pbits = vec![0u64; entries.div_ceil(64)];
        let arrays = Self::array_count(&config);
        Self {
            config,
            space,
            counts,
            pbits,
            scratch_writes: vec![0u64; config.sub_arrays as usize],
            allocates: 0,
            deallocates: 0,
            activity: FilterActivity::with_arrays(arrays),
        }
    }

    fn array_count(config: &IncludeConfig) -> usize {
        // One p-bit array and one cnt array per sub-array, interleaved:
        // [pbit0, cnt0, pbit1, cnt1, ...].
        2 * config.sub_arrays as usize
    }

    /// The configuration this filter was built with.
    pub fn config(&self) -> IncludeConfig {
        self.config
    }

    /// The address space this filter indexes.
    pub fn space(&self) -> AddrSpace {
        self.space
    }

    /// Index into sub-array `i` for `addr`: bits `[i*skip, i*skip + E)`.
    pub fn index(&self, i: u32, addr: UnitAddr) -> usize {
        addr.bits(i * self.config.skip, self.config.index_bits) as usize
    }

    /// Current population count of entry `idx` in sub-array `i` (test/debug
    /// aid; real hardware stores `count - 1` plus the p-bit).
    pub fn count(&self, i: u32, idx: usize) -> u32 {
        u32::from(self.counts[self.flat_slot(i, idx)])
    }

    /// Flat index of entry `idx` in sub-array `i`.
    fn flat_slot(&self, i: u32, idx: usize) -> usize {
        ((i as usize) << self.config.index_bits) | idx
    }

    /// Reads the packed presence bit for a flat slot.
    fn pbit(&self, slot: usize) -> bool {
        self.pbits[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    /// Writes the packed presence bit for a flat slot.
    fn set_pbit(&mut self, slot: usize, set: bool) {
        if set {
            self.pbits[slot >> 6] |= 1u64 << (slot & 63);
        } else {
            self.pbits[slot >> 6] &= !(1u64 << (slot & 63));
        }
    }

    fn pbit_slot(i: u32) -> usize {
        2 * i as usize
    }

    fn cnt_slot(i: u32) -> usize {
        2 * i as usize + 1
    }

    /// Reads the p-bits for `addr` without counting a snoop probe (used by
    /// the hybrid's eager ablation to establish whole-block absence).
    /// Charges the p-bit array reads it performs.
    pub fn guarantees_absent(&mut self, addr: UnitAddr) -> bool {
        for i in 0..self.config.sub_arrays {
            self.activity.arrays[Self::pbit_slot(i)].reads += 1;
            let idx = self.index(i, addr);
            if !self.pbit(self.flat_slot(i, idx)) {
                return true;
            }
        }
        false
    }

    /// Replays a node's deferred event list through this filter — exactly
    /// equivalent to the substrate's eager per-snoop sequence, with the
    /// probe/filtered counters accumulated in registers and the packed
    /// p-bit bitmap cache-resident across the batch. IJ ignores
    /// `record_snoop_miss`, so unfiltered misses need no replay work; the
    /// safety assertion fires exactly as in the eager path. `node` only
    /// labels the panic.
    pub fn apply_batch(&mut self, events: &[crate::FilterEvent], node: usize) {
        self.apply_batch_with(kernels::active_level(), events, node);
    }

    /// [`apply_batch`](IncludeJetty::apply_batch) with an explicit kernel
    /// level — the differential-test entry point. The event chunk goes
    /// to a single [`kernels::ij_replay`] call as-is (no gather pass):
    /// snoop runs batch-test the packed p-bit bitmap four units at a
    /// time, allocate/deallocate counter read-modify-writes run in event
    /// order inside the kernel.
    pub fn apply_batch_with(
        &mut self,
        level: SimdLevel,
        events: &[crate::FilterEvent],
        node: usize,
    ) {
        // Standalone IJ needs no per-event verdicts — only the hybrid's
        // EJ pass consumes them — so skip the recording entirely.
        let out = self.replay_events(level, events, None);
        if let Some(bad) = out.unsafe_at {
            let crate::FilterEvent::Snoop { unit, .. } = events[bad] else {
                unreachable!("unsafe_at always indexes a snoop event");
            };
            panic!(
                "UNSAFE FILTER: {} filtered a snoop to cached unit {unit} on node {node}",
                self.name()
            );
        }
    }

    /// Replays one [`crate::FilterEvent`] chunk through a single
    /// [`kernels::ij_replay`] call. With `verdicts: Some`, one verdict
    /// per event is pushed (cleared first; `true` only for IJ-filtered
    /// snoops — the hybrid's EJ pass consumes the parallel slice); the
    /// standalone batch path passes `None` and skips the recording. The
    /// kernel's counters fold into this filter's activity: probe and
    /// counter-RMW counts are uniform charges, the data-dependent
    /// per-sub-array p-bit writes come back through `scratch_writes`.
    /// The caller owns the unsafe-filter panic.
    pub(crate) fn replay_events(
        &mut self,
        level: SimdLevel,
        events: &[crate::FilterEvent],
        mut verdicts: Option<&mut Vec<bool>>,
    ) -> kernels::IjReplayOut {
        if let Some(v) = verdicts.as_deref_mut() {
            v.clear();
        }
        self.scratch_writes.fill(0);
        let out = kernels::ij_replay(
            level,
            &mut self.counts,
            &mut self.pbits,
            self.config.index_bits,
            self.config.sub_arrays,
            self.config.skip,
            events,
            verdicts,
            &mut self.scratch_writes,
        );
        for i in 0..self.config.sub_arrays {
            self.activity.arrays[Self::pbit_slot(i)].writes += self.scratch_writes[i as usize];
        }
        self.allocates += out.allocates;
        self.deallocates += out.deallocates;
        self.activity.probes += out.probes;
        self.activity.filtered += out.filtered;
        out
    }

    /// Batched [`probe`](SnoopFilter::probe) over a run of raw snoop unit
    /// addresses, appending one absent/present verdict per unit to
    /// `absent` — used by the hybrid's batched replay. Counts probes and
    /// filtered snoops exactly as per-event `probe` calls would.
    pub fn probe_many(&mut self, level: SimdLevel, units: &[u64], absent: &mut Vec<bool>) {
        let start = absent.len();
        kernels::pbit_test_many(
            level,
            &self.pbits,
            units,
            self.config.index_bits,
            self.config.sub_arrays,
            self.config.skip,
            absent,
        );
        self.activity.probes += units.len() as u64;
        self.activity.filtered += absent[start..].iter().filter(|&&a| a).count() as u64;
    }
}

impl SnoopFilter for IncludeJetty {
    fn probe(&mut self, addr: UnitAddr) -> Verdict {
        self.activity.probes += 1;
        // A snoop reads one row of each p-bit array, in parallel.
        // A snoop reads one row of each p-bit array, in parallel; that
        // uniform read (one per array per probe) is derived from `probes`
        // in `activity()` rather than bumped per sub-array here — which
        // also lets the software loop exit on the first clear p-bit (the
        // hardware reads all N rows in parallel either way, and the
        // energy charge stays N reads regardless).
        for i in 0..self.config.sub_arrays {
            let idx = self.index(i, addr);
            if !self.pbit(self.flat_slot(i, idx)) {
                self.activity.filtered += 1;
                return Verdict::NotCached;
            }
        }
        Verdict::MaybeCached
    }

    fn record_snoop_miss(&mut self, _addr: UnitAddr, _scope: MissScope) {
        // IJ state is driven purely by cache contents; snoop misses carry no
        // information for it.
    }

    fn on_allocate(&mut self, addr: UnitAddr) {
        // The counter read-modify-write per sub-array is uniform (exactly
        // one per allocate) and is charged via `allocates` in `activity()`;
        // only the data-dependent p-bit 0 -> 1 writes are counted here.
        self.allocates += 1;
        for i in 0..self.config.sub_arrays {
            let idx = self.index(i, addr);
            let slot = self.flat_slot(i, idx);
            let count = &mut self.counts[slot];
            assert!(
                *count < u16::MAX,
                "IJ counter saturated in sub-array {i} entry {idx}: cache population \
                 exceeds the u16 counter range for this configuration"
            );
            let was_zero = *count == 0;
            *count += 1;
            if was_zero {
                // The p-bit transitions 0 -> 1.
                self.activity.arrays[Self::pbit_slot(i)].writes += 1;
                self.set_pbit(slot, true);
            }
        }
    }

    fn on_deallocate(&mut self, addr: UnitAddr) {
        // Uniform counter RMWs deferred via `deallocates`, as in
        // `on_allocate`.
        self.deallocates += 1;
        for i in 0..self.config.sub_arrays {
            let idx = self.index(i, addr);
            let slot = self.flat_slot(i, idx);
            let count = &mut self.counts[slot];
            assert!(
                *count > 0,
                "IJ counter underflow in sub-array {i} entry {idx}: \
                 deallocate without matching allocate (protocol bug)"
            );
            *count -= 1;
            let now_zero = *count == 0;
            if now_zero {
                self.activity.arrays[Self::pbit_slot(i)].writes += 1;
                self.set_pbit(slot, false);
            }
        }
    }

    fn arrays(&self) -> Vec<ArraySpec> {
        let (rows, cols) = self.config.pbit_org();
        let mut specs = Vec::with_capacity(Self::array_count(&self.config));
        for i in 0..self.config.sub_arrays {
            specs.push(ArraySpec::sram(format!("ij.pbits[{i}]"), rows, cols));
            // Counter arrays use the same row organisation, cnt_bits wide
            // per entry (Figure 3c shows cnt arrays mirroring the p-bit
            // organisation).
            specs.push(ArraySpec::sram(
                format!("ij.cnt[{i}]"),
                self.config.entries_per_array(),
                self.config.cnt_bits as usize,
            ));
        }
        specs
    }

    fn activity(&self) -> FilterActivity {
        // Materialise the uniform charges deferred on the hot paths: one
        // p-bit read per array per probe, one counter read-modify-write per
        // array per allocate/deallocate.
        let mut activity = self.activity.clone();
        let cnt_rmw = self.allocates + self.deallocates;
        for i in 0..self.config.sub_arrays {
            activity.arrays[Self::pbit_slot(i)].reads += activity.probes;
            activity.arrays[Self::cnt_slot(i)].reads += cnt_rmw;
            activity.arrays[Self::cnt_slot(i)].writes += cnt_rmw;
        }
        activity
    }

    fn reset_activity(&mut self) {
        self.allocates = 0;
        self.deallocates = 0;
        self.activity = FilterActivity::with_arrays(Self::array_count(&self.config));
    }

    fn name(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ij(e: u32, n: u32, s: u32) -> IncludeJetty {
        IncludeJetty::new(IncludeConfig::new(e, n, s), AddrSpace::default())
    }

    #[test]
    fn empty_filter_filters_everything() {
        let mut f = ij(8, 4, 7);
        for a in [0u64, 1, 0xffff, 0x7_ffff_ffff] {
            assert_eq!(f.probe(UnitAddr::new(a)), Verdict::NotCached);
        }
        assert_eq!(f.activity().filtered, 4);
    }

    #[test]
    fn allocated_unit_is_never_filtered() {
        let mut f = ij(8, 4, 7);
        let u = UnitAddr::new(0x1234_5678);
        f.on_allocate(u);
        assert_eq!(f.probe(u), Verdict::MaybeCached);
    }

    #[test]
    fn deallocate_restores_filtering() {
        let mut f = ij(8, 4, 7);
        let u = UnitAddr::new(42);
        f.on_allocate(u);
        f.on_deallocate(u);
        assert_eq!(f.probe(u), Verdict::NotCached);
    }

    #[test]
    fn duplicate_allocations_need_matching_deallocations() {
        let mut f = ij(6, 5, 6);
        let a = UnitAddr::new(0x10);
        let b = UnitAddr::new(0x10 + (1 << 31)); // differs only in high bits
        f.on_allocate(a);
        f.on_allocate(b);
        f.on_deallocate(a);
        // `b` still pins some shared entries; b must not be filtered.
        assert_eq!(f.probe(b), Verdict::MaybeCached);
        f.on_deallocate(b);
        assert_eq!(f.probe(b), Verdict::NotCached);
    }

    #[test]
    fn aliasing_gives_false_maybe_but_never_false_not_cached() {
        // Two addresses with identical low 32 bits alias in every sub-array
        // of IJ-8x4x7 (highest slice tops out at bit 29).
        let mut f = ij(8, 4, 7);
        let cached = UnitAddr::new(0xABCD_1234);
        let alias = UnitAddr::new(0xABCD_1234 | (1 << 34));
        f.on_allocate(cached);
        // The alias is a false positive: MaybeCached (safe, just not useful).
        assert_eq!(f.probe(alias), Verdict::MaybeCached);
    }

    #[test]
    fn counts_track_population_exactly() {
        let mut f = ij(4, 2, 3);
        let u = UnitAddr::new(0b101_0110);
        f.on_allocate(u);
        f.on_allocate(u);
        assert_eq!(f.count(0, f.index(0, u)), 2);
        f.on_deallocate(u);
        assert_eq!(f.count(0, f.index(0, u)), 1);
        assert_eq!(f.probe(u), Verdict::MaybeCached);
    }

    #[test]
    #[should_panic(expected = "counter underflow")]
    fn deallocate_on_empty_panics() {
        let mut f = ij(4, 2, 3);
        f.on_deallocate(UnitAddr::new(1));
    }

    #[test]
    fn record_snoop_miss_is_inert() {
        let mut f = ij(8, 4, 7);
        let u = UnitAddr::new(77);
        f.on_allocate(u);
        f.record_snoop_miss(u, MissScope::Block);
        assert_eq!(f.probe(u), Verdict::MaybeCached);
    }

    #[test]
    fn index_slices_follow_paper_layout() {
        let f = ij(10, 4, 7);
        // Address with a distinctive bit pattern: bit k set iff k % 7 == 0.
        let mut raw = 0u64;
        for k in (0..35).step_by(7) {
            raw |= 1 << k;
        }
        let u = UnitAddr::new(raw);
        for i in 0..4u32 {
            let expected = UnitAddr::new(raw).bits(i * 7, 10) as usize;
            assert_eq!(f.index(i, u), expected);
        }
    }

    #[test]
    fn overlapping_indices_share_bits() {
        // skip(7) < E(10): consecutive slices overlap by 3 bits.
        let f = ij(10, 2, 7);
        let u = UnitAddr::new(0b11_1111_1111 << 7); // bits 7..17 set
        assert_eq!(f.index(1, u), 0b11_1111_1111);
        assert_eq!(f.index(0, u), 0b111_0000000);
    }

    #[test]
    fn storage_matches_table4_for_large_configs() {
        // Table 4: IJ-10x4x7 p-bits 4x1024 organised 4 x (32x32); total
        // 7168 bytes with 14-bit counters.
        let c = IncludeConfig::new(10, 4, 7);
        assert_eq!(c.pbit_storage_bits(), 4 * 1024);
        assert_eq!(c.pbit_org(), (32, 32));
        assert_eq!(c.storage_bytes(), 7168 + 4 * 1024 / 8); // cnt + p-bits

        let c9 = IncludeConfig::new(9, 4, 7);
        assert_eq!(c9.pbit_org(), (16, 32));
        let c8 = IncludeConfig::new(8, 4, 7);
        assert_eq!(c8.pbit_org(), (16, 16));
        let c7 = IncludeConfig::new(7, 5, 6);
        assert_eq!(c7.pbit_org(), (8, 16));
        let c6 = IncludeConfig::new(6, 5, 6);
        assert_eq!(c6.pbit_org(), (4, 16));
    }

    #[test]
    fn probe_touches_only_pbit_arrays() {
        let mut f = ij(8, 4, 7);
        f.probe(UnitAddr::new(1));
        let act = f.activity();
        for i in 0..4u32 {
            assert_eq!(act.arrays[2 * i as usize].reads, 1, "p-bit array {i}");
            assert_eq!(act.arrays[2 * i as usize + 1].total(), 0, "cnt array {i}");
        }
    }

    #[test]
    fn allocate_touches_cnt_arrays_and_sets_pbits() {
        let mut f = ij(8, 4, 7);
        f.on_allocate(UnitAddr::new(3));
        let act = f.activity();
        for i in 0..4u32 {
            assert_eq!(act.arrays[2 * i as usize + 1].reads, 1);
            assert_eq!(act.arrays[2 * i as usize + 1].writes, 1);
            assert_eq!(act.arrays[2 * i as usize].writes, 1); // 0 -> 1
        }
        // Second allocate to the same entries: no p-bit writes.
        f.reset_activity();
        f.on_allocate(UnitAddr::new(3));
        let act = f.activity();
        for i in 0..4u32 {
            assert_eq!(act.arrays[2 * i as usize].writes, 0);
        }
    }

    #[test]
    fn name_label() {
        assert_eq!(ij(9, 4, 7).name(), "IJ-9x4x7");
        assert_eq!(ij(6, 5, 6).name(), "IJ-6x5x6");
    }

    #[test]
    fn smaller_config_aliases_more() {
        // With many random allocations, a small IJ should filter fewer
        // snoops to absent addresses than a large one (superset is coarser).
        let mut big = ij(10, 4, 7);
        let mut small = ij(6, 5, 6);
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 0x7_FFFF_FFFF
        };
        for _ in 0..256 {
            let u = UnitAddr::new(next());
            big.on_allocate(u);
            small.on_allocate(u);
        }
        let mut big_filtered = 0;
        let mut small_filtered = 0;
        for _ in 0..2000 {
            let u = UnitAddr::new(next());
            if big.probe(u).is_filtered() {
                big_filtered += 1;
            }
            if small.probe(u).is_filtered() {
                small_filtered += 1;
            }
        }
        assert!(
            big_filtered > small_filtered,
            "expected the larger IJ to filter more ({big_filtered} vs {small_filtered})"
        );
    }
}
