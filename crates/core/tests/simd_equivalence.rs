//! AVX2-vs-scalar kernel equivalence: every filter's batched replay must
//! be observation-identical under [`SimdLevel::SCALAR`] and the AVX2
//! level — same verdicts, same activity counters, same internal state
//! (observed through post-replay probes). This is the SIMD sibling of
//! `jetty-sim`'s `batch_equivalence` suite: that one pins batched replay
//! against the eager path, this one pins the two kernel implementations
//! against each other with proptest-generated event logs.
//!
//! On hosts without AVX2 every case degenerates to scalar-vs-scalar and
//! the suite prints a skip note (the scalar path is still the one the
//! host would run, so there is nothing else to compare).

use std::collections::BTreeSet;

use jetty_core::kernels::SimdLevel;
use jetty_core::{AddrSpace, FilterEvent, FilterSpec, MissScope, SnoopFilter, UnitAddr};
use proptest::prelude::*;

/// Raw proptest material for one event: an action selector and an
/// address seed.
type Action = (u8, u64);

/// Folds raw actions into a *valid* filter event log: deallocates only
/// ever target allocated units, `would_hit` is exactly "currently
/// allocated", and a snoop miss gets `MissScope::Block` only when no
/// unit of its block is cached — the same invariants the simulator's
/// event logs satisfy, so the filter-safety assertion must never fire.
fn build_events(actions: &[Action], space: AddrSpace, units: u64) -> Vec<FilterEvent> {
    let shift = space.block_unit_shift();
    let mut allocated: BTreeSet<u64> = BTreeSet::new();
    let mut events = Vec::with_capacity(actions.len());
    for &(kind, seed) in actions {
        let unit = seed % units;
        match kind % 8 {
            // Allocate (skip if already cached: the substrate only fills
            // on misses).
            0 => {
                if allocated.insert(unit) {
                    events.push(FilterEvent::Allocate(UnitAddr::new(unit)));
                }
            }
            // Deallocate the nearest allocated unit at or above the seed
            // (wrapping to the smallest), if any.
            1 => {
                let pick =
                    allocated.range(unit..).next().or_else(|| allocated.iter().next()).copied();
                if let Some(u) = pick {
                    allocated.remove(&u);
                    events.push(FilterEvent::Deallocate(UnitAddr::new(u)));
                }
            }
            // Snoop: the common case, so six of eight selector values.
            _ => {
                let would_hit = allocated.contains(&unit);
                let block = unit >> shift;
                let block_cached =
                    allocated.range(block << shift..(block + 1) << shift).next().is_some();
                let scope = if block_cached { MissScope::Unit } else { MissScope::Block };
                events.push(FilterEvent::Snoop { unit: UnitAddr::new(unit), would_hit, scope });
            }
        }
    }
    events
}

/// Replays `events` through two fresh instances of `spec` — one per
/// kernel level — in `chunk_len`-sized batches, then asserts the
/// observables agree: accumulated activity (probes, filtered, per-array
/// reads/writes) and the verdict of a probe sweep over the whole unit
/// range (which observes the EJ/VEJ/IJ state the replay left behind).
fn assert_levels_agree(spec: &FilterSpec, actions: &[Action], chunk_len: usize, units: u64) {
    let Some(avx2) = SimdLevel::avx2() else {
        eprintln!("note: AVX2 unavailable; SIMD equivalence degenerates to scalar-vs-scalar");
        return;
    };
    let space = AddrSpace::default();
    let events = build_events(actions, space, units);
    let mut scalar = spec.build_any(space);
    let mut vector = spec.build_any(space);
    for chunk in events.chunks(chunk_len.max(1)) {
        scalar.apply_batch_with(SimdLevel::SCALAR, chunk, 0);
        vector.apply_batch_with(avx2, chunk, 0);
    }
    assert_eq!(
        scalar.activity(),
        vector.activity(),
        "{}: replay activity diverged between kernels",
        spec.label()
    );
    for unit in 0..units {
        assert_eq!(
            scalar.probe(UnitAddr::new(unit)),
            vector.probe(UnitAddr::new(unit)),
            "{}: post-replay verdict diverged at unit {unit}",
            spec.label()
        );
    }
    // The probe sweep above mutated both (EJ LRU stamps); activity must
    // still agree afterwards.
    assert_eq!(scalar.activity(), vector.activity(), "{}: probe-sweep activity", spec.label());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every configuration the paper evaluates (EJ, VEJ, IJ, hybrids),
    /// contended traffic, arbitrary batch boundaries.
    #[test]
    fn paper_bank_kernels_agree(
        actions in prop::collection::vec((any::<u8>(), any::<u64>()), 1..400),
        chunk_len in 1usize..96,
    ) {
        for spec in FilterSpec::paper_bank() {
            assert_levels_agree(&spec, &actions, chunk_len, 64);
        }
    }

    /// Associativities around the 4-lane width, including sub-4 sets that
    /// run entirely in the kernels' scalar tails and a 9-way config whose
    /// windows have both full lanes and a tail.
    #[test]
    fn odd_associativities_exercise_lane_tails(
        actions in prop::collection::vec((any::<u8>(), any::<u64>()), 1..300),
        chunk_len in 1usize..64,
    ) {
        for spec in [
            FilterSpec::exclude(8, 1),
            FilterSpec::exclude(8, 3),
            FilterSpec::exclude(4, 5),
            FilterSpec::exclude(2, 9),
            FilterSpec::vector_exclude(8, 3, 8),
            FilterSpec::vector_exclude(2, 9, 4),
        ] {
            assert_levels_agree(&spec, &actions, chunk_len, 64);
        }
    }

    /// A sparser address range drives eviction/victim-scan paths and the
    /// hybrid's eager-allocation ablation (the one replay that mutates
    /// the exclude part mid-run).
    #[test]
    fn eager_hybrid_and_eviction_pressure(
        actions in prop::collection::vec((any::<u8>(), any::<u64>()), 1..300),
        chunk_len in 1usize..64,
    ) {
        for spec in [
            FilterSpec::hybrid_scalar_eager(8, 4, 7, 16, 2),
            FilterSpec::hybrid_scalar(8, 4, 7, 16, 2),
            FilterSpec::include(6, 5, 6),
        ] {
            assert_levels_agree(&spec, &actions, chunk_len, 4096);
        }
    }
}
