//! Property-based tests for the core JETTY safety contract.
//!
//! A filter may answer `NotCached` only for units that are genuinely not in
//! the cache. We drive every filter configuration with random interleavings
//! of allocate / deallocate / snoop events against a reference model (a
//! multiset of cached units) and assert the contract after every step.

use std::collections::HashMap;

use jetty_core::{AddrSpace, FilterSpec, MissScope, UnitAddr, Verdict};
use proptest::prelude::*;

/// One step of the randomized protocol driver.
#[derive(Clone, Debug)]
enum Event {
    /// The local cache gains a copy of unit `0..addr_limit`.
    Allocate(u64),
    /// The local cache drops one copy of a currently cached unit, chosen by
    /// rank among the live population (so deallocations are always legal).
    DeallocateNth(usize),
    /// A bus snoop arrives for unit `0..addr_limit`.
    Snoop(u64),
}

fn event_strategy(addr_limit: u64) -> impl Strategy<Value = Event> {
    prop_oneof![
        3 => (0..addr_limit).prop_map(Event::Allocate),
        2 => any::<usize>().prop_map(Event::DeallocateNth),
        5 => (0..addr_limit).prop_map(Event::Snoop),
    ]
}

/// Reference model: multiset of cached units (the L2 may hold one copy per
/// unit in reality, but filters must tolerate refcounted drivers too — the
/// substrate only ever sends balanced pairs, which a multiset covers).
#[derive(Default)]
struct Reference {
    cached: HashMap<u64, u32>,
}

impl Reference {
    fn allocate(&mut self, addr: u64) -> bool {
        // Model a real cache: a unit is allocated only if not present.
        use std::collections::hash_map::Entry;
        match self.cached.entry(addr) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                slot.insert(1);
                true
            }
        }
    }

    fn deallocate_nth(&mut self, nth: usize) -> Option<u64> {
        if self.cached.is_empty() {
            return None;
        }
        let mut keys: Vec<u64> = self.cached.keys().copied().collect();
        keys.sort_unstable();
        let addr = keys[nth % keys.len()];
        self.cached.remove(&addr);
        Some(addr)
    }

    fn contains(&self, addr: u64) -> bool {
        self.cached.contains_key(&addr)
    }
}

fn drive(spec: FilterSpec, events: &[Event]) {
    let space = AddrSpace::default();
    let mut filter = spec.build(space);
    let mut reference = Reference::default();

    for (step, event) in events.iter().enumerate() {
        match event {
            Event::Allocate(addr) => {
                if reference.allocate(*addr) {
                    filter.on_allocate(UnitAddr::new(*addr));
                }
            }
            Event::DeallocateNth(nth) => {
                if let Some(addr) = reference.deallocate_nth(*nth) {
                    filter.on_deallocate(UnitAddr::new(addr));
                }
            }
            Event::Snoop(addr) => {
                let unit = UnitAddr::new(*addr);
                let verdict = filter.probe(unit);
                if verdict == Verdict::NotCached {
                    assert!(
                        !reference.contains(*addr),
                        "{} filtered a cached unit {unit} at step {step}",
                        spec.label()
                    );
                } else if !reference.contains(*addr) {
                    // Unfiltered snoop that misses in the L2: the substrate
                    // reports it back so exclude-style filters can learn.
                    // The reference model tracks units; with the default 64-byte
                    // blocks a unit's block is absent iff both sibling units are.
                    let sibling = addr ^ 1;
                    let scope = if reference.contains(sibling) {
                        MissScope::Unit
                    } else {
                        MissScope::Block
                    };
                    filter.record_snoop_miss(unit, scope);
                }
            }
        }
    }
}

/// Block-grain scope for a snooped address given the set of cached units
/// (64-byte blocks = sibling unit pairs).
fn scope_for(cached: &[u64], addr: u64) -> MissScope {
    if cached.contains(&(addr ^ 1)) {
        MissScope::Unit
    } else {
        MissScope::Block
    }
}

/// Small address range to force heavy aliasing inside the filters; this is
/// the adversarial case for safety.
const TIGHT: u64 = 64;
/// Wider range exercising multi-set behaviour and IJ slices.
const WIDE: u64 = 1 << 20;

macro_rules! safety_tests {
    ($($name:ident => $spec:expr),+ $(,)?) => {
        $(
            mod $name {
                use super::*;

                proptest! {
                    #![proptest_config(ProptestConfig::with_cases(64))]

                    #[test]
                    fn never_filters_cached_units_tight(
                        events in prop::collection::vec(event_strategy(TIGHT), 1..400)
                    ) {
                        drive($spec, &events);
                    }

                    #[test]
                    fn never_filters_cached_units_wide(
                        events in prop::collection::vec(event_strategy(WIDE), 1..400)
                    ) {
                        drive($spec, &events);
                    }
                }
            }
        )+
    };
}

safety_tests! {
    ej_32x4 => FilterSpec::exclude(32, 4),
    ej_8x2 => FilterSpec::exclude(8, 2),
    vej_32x4_8 => FilterSpec::vector_exclude(32, 4, 8),
    vej_16x4_4 => FilterSpec::vector_exclude(16, 4, 4),
    ij_10x4x7 => FilterSpec::include(10, 4, 7),
    ij_6x5x6 => FilterSpec::include(6, 5, 6),
    hj_best => FilterSpec::hybrid_scalar(10, 4, 7, 32, 4),
    hj_small => FilterSpec::hybrid_scalar(8, 4, 7, 16, 2),
    hj_vector => FilterSpec::hybrid_vector(10, 4, 7, 32, 4, 8),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The IJ is exact for membership of its own superset: a unit that is
    /// cached is *always* MaybeCached, and after removing every unit the
    /// filter must return to the all-filtering state.
    #[test]
    fn include_jetty_returns_to_empty(
        addrs in prop::collection::vec(0u64..WIDE, 1..200)
    ) {
        let space = AddrSpace::default();
        let mut filter = FilterSpec::include(8, 4, 7).build(space);
        let mut unique: Vec<u64> = addrs.clone();
        unique.sort_unstable();
        unique.dedup();
        for &a in &unique {
            filter.on_allocate(UnitAddr::new(a));
        }
        for &a in &unique {
            prop_assert_eq!(filter.probe(UnitAddr::new(a)), Verdict::MaybeCached);
        }
        for &a in &unique {
            filter.on_deallocate(UnitAddr::new(a));
        }
        for &a in &unique {
            prop_assert_eq!(filter.probe(UnitAddr::new(a)), Verdict::NotCached);
        }
    }

    /// Hybrid coverage dominates its include component: any snoop the IJ
    /// filters, the HJ built from it also filters (given the same
    /// allocate/deallocate stream).
    #[test]
    fn hybrid_dominates_include(
        cached in prop::collection::vec(0u64..TIGHT, 0..40),
        snoops in prop::collection::vec(0u64..TIGHT, 1..100)
    ) {
        let space = AddrSpace::default();
        let mut ij = FilterSpec::include(8, 4, 7).build(space);
        let mut hj = FilterSpec::hybrid_scalar(8, 4, 7, 16, 2).build(space);
        let mut unique = cached.clone();
        unique.sort_unstable();
        unique.dedup();
        for &a in &unique {
            ij.on_allocate(UnitAddr::new(a));
            hj.on_allocate(UnitAddr::new(a));
        }
        for &s in &snoops {
            let u = UnitAddr::new(s);
            let ij_verdict = ij.probe(u);
            let hj_verdict = hj.probe(u);
            if ij_verdict.is_filtered() {
                prop_assert!(hj_verdict.is_filtered());
            }
            if !hj_verdict.is_filtered() && !unique.contains(&s) {
                hj.record_snoop_miss(u, scope_for(&unique, s));
            }
            if !ij_verdict.is_filtered() && !unique.contains(&s) {
                ij.record_snoop_miss(u, scope_for(&unique, s));
            }
        }
    }

    /// Exclude-style filters only ever filter addresses they were taught:
    /// without any record_snoop_miss calls they filter nothing.
    #[test]
    fn exclude_filters_nothing_untaught(
        cached in prop::collection::vec(0u64..WIDE, 0..50),
        snoops in prop::collection::vec(0u64..WIDE, 1..100)
    ) {
        let space = AddrSpace::default();
        for spec in [FilterSpec::exclude(32, 4), FilterSpec::vector_exclude(32, 4, 8)] {
            let mut f = spec.build(space);
            for &a in &cached {
                f.on_allocate(UnitAddr::new(a));
            }
            for &s in &snoops {
                prop_assert_eq!(f.probe(UnitAddr::new(s)), Verdict::MaybeCached);
            }
        }
    }

    /// Activity bookkeeping: probes equals the number of probe calls and
    /// filtered <= probes, for every spec.
    #[test]
    fn activity_bookkeeping(
        snoops in prop::collection::vec(0u64..TIGHT, 1..100)
    ) {
        let space = AddrSpace::default();
        for spec in FilterSpec::paper_bank() {
            let mut f = spec.build(space);
            for &s in &snoops {
                let v = f.probe(UnitAddr::new(s));
                if !v.is_filtered() {
                    f.record_snoop_miss(UnitAddr::new(s), scope_for(&[], s));
                }
            }
            let act = f.activity();
            prop_assert_eq!(act.probes, snoops.len() as u64);
            prop_assert!(act.filtered <= act.probes);
        }
    }
}
