//! The paper's Appendix-A analytical model, driving Figure 2.
//!
//! The model expresses the energy of snoop-induced tag lookups that miss as
//! a fraction of all L2 energy, for a bus-based SMP of `n_cpu` processors
//! with local L2 hit rate `L` and remote (snoop) hit rate `R`:
//!
//! ```text
//! TagSnoopMiss = TAG · (Ncpu−1) · (1−L) · (1−R)
//! SnoopE       = TagSnoopMiss + TAG · (Ncpu−1) · (1−L) · R
//! Data         = DATA · (1 + (Ncpu−1) · (1−L) · R)
//! TagAll       = SnoopE + TAG · (1 + (1−L))
//! SnoopMissE   = TagSnoopMiss / (Data + TagAll)
//! ```
//!
//! `TAG` and `DATA` are per-access energies of the tag probe and one block
//! data read of a 1 MB 4-way set-associative L2 (36-bit PA + 2 MOSI state
//! bits, serial tag/data access), obtained from the Kamble–Ghose model with
//! CACTI-style banking. Like the paper, the model ignores writebacks and
//! status-bit updates on snoop hits (the detailed §4.4 accounting includes
//! them).

use crate::cache_energy::{CacheEnergy, CacheGeometry};
use crate::tech::TechParams;

/// Inputs of the Appendix-A model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalyticInputs {
    /// Processors on the bus.
    pub n_cpu: usize,
    /// Per-access tag-probe energy (arbitrary units; only ratios matter).
    pub tag: f64,
    /// Per-access block data-read energy (same units).
    pub data: f64,
}

impl AnalyticInputs {
    /// Builds inputs for the paper's 1 MB 4-way SA cache with the given
    /// block size, on the default 0.18 µm process.
    pub fn for_block_size(n_cpu: usize, block_bytes: usize, tech: &TechParams) -> Self {
        let energy = CacheEnergy::new(CacheGeometry::analytic_l2(block_bytes), tech);
        Self { n_cpu, tag: energy.tag_probe(), data: energy.data_read_block() }
    }

    /// Energy of snoop-induced tag lookups that miss, as a fraction of all
    /// L2 energy, at local hit rate `local` and remote hit rate `remote`.
    ///
    /// # Panics
    ///
    /// Panics if `local` or `remote` lies outside `[0, 1]`.
    pub fn snoop_miss_fraction(&self, local: f64, remote: f64) -> f64 {
        assert!((0.0..=1.0).contains(&local), "local hit rate {local} out of range");
        assert!((0.0..=1.0).contains(&remote), "remote hit rate {remote} out of range");
        let n = (self.n_cpu - 1) as f64;
        let tag_snoop_miss = self.tag * n * (1.0 - local) * (1.0 - remote);
        let snoop_e = tag_snoop_miss + self.tag * n * (1.0 - local) * remote;
        let data = self.data * (1.0 + n * (1.0 - local) * remote);
        let tag_all = snoop_e + self.tag * (1.0 + (1.0 - local));
        tag_snoop_miss / (data + tag_all)
    }
}

/// One curve of Figure 2: a fixed remote hit rate swept over local hit
/// rates.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure2Curve {
    /// The remote hit rate of this curve.
    pub remote_hit_rate: f64,
    /// `(local hit rate, snoop-miss energy fraction)` samples.
    pub points: Vec<(f64, f64)>,
}

/// One panel of Figure 2 (32-byte or 64-byte lines).
#[derive(Clone, Debug, PartialEq)]
pub struct Figure2Panel {
    /// Block size of this panel.
    pub block_bytes: usize,
    /// Curves for remote hit rates 0%, 10%, …, 90% (top to bottom).
    pub curves: Vec<Figure2Curve>,
}

/// Regenerates one panel of Figure 2.
pub fn figure2_panel(
    n_cpu: usize,
    block_bytes: usize,
    local_steps: usize,
    tech: &TechParams,
) -> Figure2Panel {
    let inputs = AnalyticInputs::for_block_size(n_cpu, block_bytes, tech);
    let curves = (0..10)
        .map(|r| {
            let remote = r as f64 / 10.0;
            let points = (0..=local_steps)
                .map(|i| {
                    let local = i as f64 / local_steps as f64;
                    (local, inputs.snoop_miss_fraction(local, remote))
                })
                .collect();
            Figure2Curve { remote_hit_rate: remote, points }
        })
        .collect();
    Figure2Panel { block_bytes, curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs_32() -> AnalyticInputs {
        AnalyticInputs::for_block_size(4, 32, &TechParams::default())
    }

    #[test]
    fn paper_reference_point_is_in_range() {
        // §2.1: "assuming a 50% local hit rate and a 10% remote hit rate,
        // snoop-miss tag lookups account for 33% of the power dissipated by
        // all L2s (with 32-byte blocks)". Our TAG/DATA ratio comes from our
        // own array model, so we check the same order of magnitude.
        let f = inputs_32().snoop_miss_fraction(0.5, 0.1);
        assert!(f > 0.15 && f < 0.45, "reference point {f} far from the paper's 33%");
    }

    #[test]
    fn fraction_decreases_with_local_hit_rate() {
        let m = inputs_32();
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let f = m.snoop_miss_fraction(i as f64 / 10.0, 0.1);
            assert!(f <= prev + 1e-12, "not monotone at L={}", i as f64 / 10.0);
            prev = f;
        }
    }

    #[test]
    fn fraction_decreases_with_remote_hit_rate() {
        let m = inputs_32();
        let mut prev = f64::INFINITY;
        for r in 0..=9 {
            let f = m.snoop_miss_fraction(0.3, r as f64 / 10.0);
            assert!(f < prev, "not monotone at R={}", r as f64 / 10.0);
            prev = f;
        }
    }

    #[test]
    fn perfect_local_hit_rate_eliminates_snoop_energy() {
        assert_eq!(inputs_32().snoop_miss_fraction(1.0, 0.0), 0.0);
    }

    #[test]
    fn smaller_blocks_show_higher_fractions() {
        // Figure 2: "Snoop-induced miss energy consumption is higher for
        // the 32-byte block cache compared to the 64-byte block cache."
        let tech = TechParams::default();
        let m32 = AnalyticInputs::for_block_size(4, 32, &tech);
        let m64 = AnalyticInputs::for_block_size(4, 64, &tech);
        for (l, r) in [(0.2, 0.0), (0.5, 0.1), (0.8, 0.3)] {
            assert!(
                m32.snoop_miss_fraction(l, r) > m64.snoop_miss_fraction(l, r),
                "32B not above 64B at L={l} R={r}"
            );
        }
    }

    #[test]
    fn more_cpus_increase_snoop_share() {
        let tech = TechParams::default();
        let m4 = AnalyticInputs::for_block_size(4, 32, &tech);
        let m8 = AnalyticInputs::for_block_size(8, 32, &tech);
        assert!(m8.snoop_miss_fraction(0.5, 0.1) > m4.snoop_miss_fraction(0.5, 0.1));
    }

    #[test]
    fn panel_has_ten_curves_ordered_top_down() {
        let panel = figure2_panel(4, 32, 20, &TechParams::default());
        assert_eq!(panel.curves.len(), 10);
        // At any local hit rate < 1, the 0% curve is the highest.
        let at = |c: &Figure2Curve| c.points[4].1;
        for w in panel.curves.windows(2) {
            assert!(at(&w[0]) >= at(&w[1]));
        }
        assert_eq!(panel.curves[0].points.len(), 21);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_hit_rate() {
        let _ = inputs_32().snoop_miss_fraction(1.2, 0.0);
    }
}
