//! CACTI-style array partitioning.
//!
//! The paper "used CACTI to determine the optimal number of banks for a
//! 0.18 µm process" (§2.1, §4.1). Full CACTI optimises delay, area and
//! power jointly; for an energy study only the energy-minimising
//! partitioning matters, so this module sweeps the classical bit-line
//! segmentation parameter `ndbl` (how many row-wise banks the array is
//! divided into; only one bank is active per access) over powers of two and
//! picks the organisation with the lowest per-access read energy.
//!
//! Each doubling of the bank count pays a bank-select/routing stage
//! ([`TechParams::e_bank_stage`]), so register-file-sized arrays stay
//! unbanked while megabyte arrays bank heavily — the qualitative behaviour
//! CACTI exhibits.
//!
//! [`optimize_array_constrained`] additionally caps the bank count; the
//! cache model uses it for *tag* arrays, which sit on the latency-critical
//! lookup path and therefore cannot be partitioned as aggressively as data
//! arrays (banking adds select stages to the access time). This asymmetry
//! is what makes a tag probe energy-comparable to a data access in large
//! caches — the effect the whole paper rests on (§2.1).

use crate::kamble_ghose::SramArray;
use crate::tech::TechParams;

/// An energy-optimised banked organisation of a logical `rows x cols`
/// array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BankedArray {
    /// Logical rows of the unpartitioned array.
    pub logical_rows: usize,
    /// Logical columns of the unpartitioned array.
    pub logical_cols: usize,
    /// Bit-line divisions (row-wise banks); one bank is active per access.
    pub ndbl: usize,
    /// The active subarray geometry.
    pub subarray: SramArray,
    /// Per-access read energy of the chosen organisation (J).
    pub read_energy: f64,
    /// Per-access write energy of the chosen organisation (J).
    pub write_energy: f64,
}

impl BankedArray {
    /// Total banks.
    pub fn banks(&self) -> usize {
        self.ndbl
    }
}

/// Maximum partitioning factor explored. Data arrays are off the critical
/// path and can be segmented deeply; the per-stage cost keeps the sweep
/// honest.
const MAX_DIV: usize = 256;

/// Energy of routing an access through `log2(ndbl)` bank-select stages.
fn bank_overhead(ndbl: usize, tech: &TechParams) -> f64 {
    (ndbl.max(1) as f64).log2() * tech.e_bank_stage
}

/// Finds the energy-minimising banked organisation of a `rows x cols`
/// logical array.
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Examples
///
/// ```
/// use jetty_energy::{optimize_array, TechParams};
///
/// let tech = TechParams::default();
/// // The paper's 1 MB L2 data array: 16384 blocks x 512 bits.
/// let banked = optimize_array(16384, 512, &tech);
/// assert!(banked.banks() > 1); // banking always wins at this size
/// ```
pub fn optimize_array(rows: usize, cols: usize, tech: &TechParams) -> BankedArray {
    optimize_array_constrained(rows, cols, MAX_DIV, tech)
}

/// Like [`optimize_array`] but caps the bank count at `max_banks`
/// (latency-critical arrays such as cache tags).
///
/// # Panics
///
/// Panics if a dimension or `max_banks` is zero.
pub fn optimize_array_constrained(
    rows: usize,
    cols: usize,
    max_banks: usize,
    tech: &TechParams,
) -> BankedArray {
    assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
    assert!(max_banks > 0, "max_banks must be nonzero");
    let mut best: Option<BankedArray> = None;
    let mut ndbl = 1;
    while ndbl <= max_banks && ndbl <= rows {
        let sub = SramArray::new(rows.div_ceil(ndbl), cols);
        let overhead = bank_overhead(ndbl, tech);
        let read = sub.read_energy(tech) + overhead;
        let write = sub.write_energy(tech) + overhead;
        if best.as_ref().is_none_or(|b| read < b.read_energy) {
            best = Some(BankedArray {
                logical_rows: rows,
                logical_cols: cols,
                ndbl,
                subarray: sub,
                read_energy: read,
                write_energy: write,
            });
        }
        ndbl *= 2;
    }
    best.expect("sweep always visits ndbl=1")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn banking_beats_flat_for_large_arrays() {
        let flat = SramArray::new(16384, 512).read_energy(&tech());
        let banked = optimize_array(16384, 512, &tech());
        assert!(banked.read_energy < flat / 4.0, "banked {} vs flat {flat}", banked.read_energy);
        assert!(banked.banks() >= 8);
    }

    #[test]
    fn tiny_arrays_stay_unbanked() {
        let banked = optimize_array(32, 32, &tech());
        assert_eq!(banked.banks(), 1, "a register-file-sized array should not bank");
    }

    #[test]
    fn constraint_caps_the_bank_count() {
        let free = optimize_array(16384, 26, &tech());
        let capped = optimize_array_constrained(16384, 26, 4, &tech());
        assert!(capped.banks() <= 4);
        assert!(free.banks() > capped.banks());
        // The latency constraint costs energy.
        assert!(capped.read_energy > free.read_energy);
    }

    #[test]
    fn energy_is_monotone_in_logical_size() {
        let small = optimize_array(1024, 128, &tech());
        let large = optimize_array(16384, 512, &tech());
        assert!(large.read_energy > small.read_energy);
    }

    #[test]
    fn subarray_covers_logical_array() {
        let b = optimize_array(1000, 100, &tech()); // non-power-of-two
        assert!(b.subarray.rows * b.ndbl >= 1000);
        assert_eq!(b.subarray.cols, 100);
    }

    #[test]
    fn write_energy_tracks_read_energy() {
        // Writes drive a slightly larger swing but skip sense amps and
        // output drivers, so banked writes land near banked reads.
        let b = optimize_array(16384, 512, &tech());
        assert!(b.write_energy > b.read_energy * 0.5);
        assert!(b.write_energy < b.read_energy * 3.0);
    }

    #[test]
    fn deterministic() {
        let a = optimize_array(8192, 256, &tech());
        let b = optimize_array(8192, 256, &tech());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_rows() {
        let _ = optimize_array(0, 8, &tech());
    }
}
