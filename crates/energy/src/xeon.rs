//! Table 1 of the paper: peak-power breakdown of the 400 MHz Intel
//! Pentium II Xeon, whose L2 is built from external custom SRAMs, making
//! separate core/L2/pad power figures available (sources \[6\], \[9\] of
//! the paper).
//!
//! The absolute watts are published data; the two fraction columns are
//! derived. `jetty-repro table1` recomputes and prints the full table.

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct XeonRow {
    /// L2 size in kilobytes.
    pub l2_kbytes: usize,
    /// Core peak power (W).
    pub core_w: f64,
    /// L2 array peak power (W).
    pub l2_w: f64,
    /// L2 pad peak power (W).
    pub l2_pads_w: f64,
}

impl XeonRow {
    /// L2 power as a fraction of total (core + L2 + pads) — the paper's
    /// "L2" column (pads included in the denominator).
    pub fn l2_fraction(&self) -> f64 {
        self.l2_w / (self.core_w + self.l2_w + self.l2_pads_w)
    }

    /// L2 power as a fraction of core + L2, excluding pads — the paper's
    /// "L2 w/o pads" column, a proxy for an on-chip L2.
    pub fn l2_fraction_without_pads(&self) -> f64 {
        self.l2_w / (self.core_w + self.l2_w)
    }
}

/// The three rows of Table 1 (512 KB / 1 MB / 2 MB parts).
pub fn table1_rows() -> [XeonRow; 3] {
    [
        XeonRow { l2_kbytes: 512, core_w: 23.3, l2_w: 4.5, l2_pads_w: 3.0 },
        XeonRow { l2_kbytes: 1024, core_w: 23.3, l2_w: 9.0, l2_pads_w: 6.0 },
        XeonRow { l2_kbytes: 2048, core_w: 23.3, l2_w: 18.0, l2_pads_w: 12.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_match_paper_percentages() {
        let rows = table1_rows();
        // Paper: 14%/16%, 23%/28%, 34%/43%.
        let expected = [(0.14, 0.16), (0.23, 0.28), (0.34, 0.43)];
        for (row, (l2, l2_np)) in rows.iter().zip(expected) {
            assert!(
                (row.l2_fraction() - l2).abs() < 0.01,
                "{}K: got {:.3}, paper {l2}",
                row.l2_kbytes,
                row.l2_fraction()
            );
            assert!(
                (row.l2_fraction_without_pads() - l2_np).abs() < 0.01,
                "{}K w/o pads: got {:.3}, paper {l2_np}",
                row.l2_kbytes,
                row.l2_fraction_without_pads()
            );
        }
    }

    #[test]
    fn l2_share_grows_with_l2_size() {
        let rows = table1_rows();
        assert!(rows[0].l2_fraction() < rows[1].l2_fraction());
        assert!(rows[1].l2_fraction() < rows[2].l2_fraction());
    }

    #[test]
    fn one_megabyte_part_matches_headline_numbers() {
        // The paper's headline: "For the 1Mbyte part, the L2 (data + tags)
        // accounts for 23% of overall peak power ... rises to 28%".
        let row = table1_rows()[1];
        assert!((row.l2_fraction() - 0.235).abs() < 0.01);
        assert!((row.l2_fraction_without_pads() - 0.279).abs() < 0.01);
    }
}
