//! Technology parameters for the energy model.
//!
//! The paper assumes a 0.18 µm CMOS process at 1.8 V with the interconnect
//! characteristics of Cong et al. (the paper's source \[5\]). The constants below are
//! representative published values for that generation; the absolute
//! numbers matter less than their ratios (the paper reports only relative
//! energies), but they are kept in real units (farads, volts, joules) so
//! per-access energies land in the right order of magnitude
//! (~100 pJ–1 nJ for a 1 MB L2 access, a few pJ for a register-file-sized
//! JETTY array).

/// Process/circuit constants used by the Kamble–Ghose formulas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TechParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Bit-line voltage swing on reads (V); sense amplifiers let reads use
    /// a reduced swing.
    pub v_swing_read: f64,
    /// Effective bit-line voltage swing on writes (V); write drivers swing
    /// one line of each differential pair, giving roughly twice the read
    /// energy per bit.
    pub v_swing_write: f64,
    /// Drain capacitance one cell adds to its bit line (F).
    pub c_cell_drain: f64,
    /// Gate capacitance one cell presents to its word line (F).
    pub c_cell_gate: f64,
    /// Bit-line wire capacitance per cell pitch (F).
    pub c_wire_bit: f64,
    /// Word-line wire capacitance per cell pitch (F).
    pub c_wire_word: f64,
    /// Precharge + column circuitry capacitance per bit-line pair (F).
    pub c_column_overhead: f64,
    /// Energy of one sense amplifier activation (J).
    pub e_sense_amp: f64,
    /// Decoder + driver energy per decoded row address bit (J).
    pub e_decode_per_bit: f64,
    /// Output driver energy per bit leaving the array (J).
    pub e_output_per_bit: f64,
    /// Energy per bit for a CAM match-line comparison (J).
    pub e_cam_compare_per_bit: f64,
    /// Energy of one bank-select/routing stage (per doubling of the bank
    /// count); this is what makes over-banking unprofitable for small
    /// arrays.
    pub e_bank_stage: f64,
    /// Energy per bit driven over the off-chip memory bus (pads + traces);
    /// orders of magnitude above on-chip array bits, which is why the
    /// protocol-dependent memory-writeback traffic matters (Table 1's "L2
    /// pads" column is the same physics).
    pub e_bus_per_bit: f64,
}

impl TechParams {
    /// The paper's process: 0.18 µm at 1.8 V.
    pub fn process_180nm() -> Self {
        Self {
            vdd: 1.8,
            v_swing_read: 0.4,
            v_swing_write: 0.45,
            c_cell_drain: 2.0e-15,
            c_cell_gate: 1.8e-15,
            c_wire_bit: 1.0e-15,
            c_wire_word: 1.2e-15,
            c_column_overhead: 40.0e-15,
            e_sense_amp: 0.05e-12,
            e_decode_per_bit: 0.04e-12,
            e_output_per_bit: 0.02e-12,
            e_cam_compare_per_bit: 0.01e-12,
            e_bank_stage: 2.0e-12,
            e_bus_per_bit: 20.0e-12,
        }
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::process_180nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_180nm() {
        let t = TechParams::default();
        assert_eq!(t, TechParams::process_180nm());
        assert!((t.vdd - 1.8).abs() < 1e-12);
    }

    #[test]
    fn swings_are_ordered() {
        let t = TechParams::default();
        assert!(t.v_swing_read < t.v_swing_write);
        assert!(t.v_swing_write < t.vdd);
        assert!(t.v_swing_read > 0.0);
    }

    #[test]
    fn capacitances_are_femtofarad_scale() {
        let t = TechParams::default();
        for c in [t.c_cell_drain, t.c_cell_gate, t.c_wire_bit, t.c_wire_word] {
            assert!(c > 1e-16 && c < 1e-13, "capacitance {c} out of range");
        }
    }

    #[test]
    fn bank_stage_is_picojoule_scale() {
        let t = TechParams::default();
        assert!(t.e_bank_stage > 1e-13 && t.e_bank_stage < 1e-11);
    }
}
