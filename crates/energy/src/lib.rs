//! # jetty-energy — cache energy models for the JETTY reproduction
//!
//! Everything the paper needs to turn event counts into energy:
//!
//! * [`kamble_ghose`]: the Kamble–Ghose analytical SRAM/CAM access-energy
//!   model (bit lines, word lines, decode, sense, output) the paper uses
//!   for both the L2 and the JETTY structures;
//! * [`cacti_lite`]: CACTI-style energy-minimising array banking ("we used
//!   CACTI to determine the optimal number of banks", §4.1);
//! * [`cache_energy`]: per-event energies (tag probe, tag write, subblock/
//!   block data read/write) for a cache geometry, plus the writeback-buffer
//!   CAM;
//! * [`analytic`]: the Appendix-A closed-form model behind Figure 2;
//! * [`xeon`]: the published Xeon power breakdown of Table 1;
//! * [`accounting`]: full-run accounting producing Figure 6's energy
//!   reductions from simulator statistics, for serial and parallel L2
//!   organisations.
//!
//! ## Example: the paper's headline energy number
//!
//! ```
//! use jetty_core::FilterSpec;
//! use jetty_energy::{AccessMode, SmpEnergyModel};
//! use jetty_sim::{Op, System, SystemConfig};
//!
//! // Simulate a small disjoint workload with the paper's best hybrid.
//! let spec = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4);
//! let mut smp = System::new(SystemConfig::paper_4way(), &[spec]);
//! for i in 0..1000u64 {
//!     let cpu = (i % 4) as usize;
//!     smp.access(cpu, Op::Read, 0x40_0000 * cpu as u64 + (i / 4) * 32);
//! }
//!
//! let model = SmpEnergyModel::paper_node();
//! let run = smp.run_stats();
//! let report = &smp.filter_reports()[0];
//! let saved = model.total_energy_reduction(&run, report, AccessMode::Serial);
//! assert!(saved > 0.0); // JETTY pays for itself on snoop-miss-heavy runs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod analytic;
pub mod cache_energy;
pub mod cacti_lite;
pub mod kamble_ghose;
pub mod tech;
pub mod xeon;

pub use accounting::{AccessMode, EnergyBreakdown, ProtocolEnergy, SmpEnergyModel};
pub use analytic::{figure2_panel, AnalyticInputs, Figure2Curve, Figure2Panel};
pub use cache_energy::{CacheEnergy, CacheGeometry, WbEnergy};
pub use cacti_lite::{optimize_array, BankedArray};
pub use kamble_ghose::{CamArray, SramArray};
pub use tech::TechParams;
pub use xeon::{table1_rows, XeonRow};
