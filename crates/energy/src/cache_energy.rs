//! Per-access energies for cache structures, derived from geometry.
//!
//! Turns a cache description (capacity, block size, associativity,
//! subblocking, tag width) into the per-event energies the accounting
//! layer multiplies by event counts: tag-set probes, tag-entry writes, and
//! data reads/writes at subblock and block granularity. Arrays are banked
//! with [`optimize_array`], matching the paper's use of CACTI for bank
//! selection.

use crate::cacti_lite::{optimize_array, optimize_array_constrained, BankedArray};
use crate::kamble_ghose::CamArray;
use crate::tech::TechParams;

/// Tag arrays sit on the latency-critical path (the probe must resolve
/// before the data way is known, and snoops must answer within the bus
/// window), so they cannot bank as aggressively as data arrays. Four banks
/// is a generous bound for a single-cycle-ish lookup; the resulting tall
/// bit lines are why tag probes of megabyte caches cost as much as a data
/// access — the asymmetry the paper exploits (§2.1).
const TAG_MAX_BANKS: usize = 4;

/// Logical geometry of a cache for energy purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Block (tag-granularity) size in bytes.
    pub block_bytes: usize,
    /// Subblocks per block.
    pub subblocks: usize,
    /// Associativity.
    pub assoc: usize,
    /// Physical address width in bits.
    pub pa_bits: u32,
    /// Coherence-state bits per subblock.
    pub state_bits: u32,
}

impl CacheGeometry {
    /// The paper's simulated L2: 1 MB direct-mapped, 64-byte blocks of two
    /// subblocks, 40-bit PA, MOESI (3 state bits).
    pub fn paper_l2() -> Self {
        Self {
            capacity: 1024 * 1024,
            block_bytes: 64,
            subblocks: 2,
            assoc: 1,
            pa_bits: 40,
            state_bits: 3,
        }
    }

    /// The analytic model's L2 (§2.1): 1 MB 4-way set-associative, 36-bit
    /// PA plus 2 bits of MOSI state, with the given block size.
    pub fn analytic_l2(block_bytes: usize) -> Self {
        Self {
            capacity: 1024 * 1024,
            block_bytes,
            subblocks: 1,
            assoc: 4,
            pa_bits: 36,
            state_bits: 2,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.block_bytes * self.assoc)
    }

    /// Tag width: PA minus block offset minus set index.
    pub fn tag_bits(&self) -> u32 {
        let offset_bits = self.block_bytes.trailing_zeros();
        let index_bits = self.sets().trailing_zeros();
        self.pa_bits - offset_bits - index_bits
    }

    /// Bits of one tag entry: tag plus per-subblock state.
    pub fn tag_entry_bits(&self) -> usize {
        self.tag_bits() as usize + self.subblocks * self.state_bits as usize
    }

    /// Subblock size in bytes.
    pub fn subblock_bytes(&self) -> usize {
        self.block_bytes / self.subblocks
    }
}

/// Per-event energies (joules) for one cache.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEnergy {
    geometry: CacheGeometry,
    tag_probe_array: BankedArray,
    tag_entry_array: BankedArray,
    data_unit_array: BankedArray,
    data_block_array: BankedArray,
}

impl CacheEnergy {
    /// Builds the banked arrays for a geometry.
    pub fn new(geometry: CacheGeometry, tech: &TechParams) -> Self {
        let sets = geometry.sets();
        let entry_bits = geometry.tag_entry_bits();
        // A probe reads all ways of one set; latency-constrained banking.
        let tag_probe_array =
            optimize_array_constrained(sets, geometry.assoc * entry_bits, TAG_MAX_BANKS, tech);
        // A tag update writes a single entry.
        let tag_entry_array = optimize_array_constrained(sets, entry_bits, TAG_MAX_BANKS, tech);
        // Data accesses: one subblock (the coherence unit) or one block.
        let unit_rows = sets * geometry.assoc * geometry.subblocks;
        let unit_bits = geometry.subblock_bytes() * 8;
        let data_unit_array = optimize_array(unit_rows, unit_bits, tech);
        let block_rows = sets * geometry.assoc;
        let block_bits = geometry.block_bytes * 8;
        let data_block_array = optimize_array(block_rows, block_bits, tech);
        Self { geometry, tag_probe_array, tag_entry_array, data_unit_array, data_block_array }
    }

    /// The geometry this model was built from.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Energy of one tag-set probe (reads all ways).
    pub fn tag_probe(&self) -> f64 {
        self.tag_probe_array.read_energy
    }

    /// Energy of one tag-entry write (fill, state change, invalidation).
    pub fn tag_write(&self) -> f64 {
        self.tag_entry_array.write_energy
    }

    /// Energy of reading one subblock from the data array.
    pub fn data_read_unit(&self) -> f64 {
        self.data_unit_array.read_energy
    }

    /// Energy of writing one subblock.
    pub fn data_write_unit(&self) -> f64 {
        self.data_unit_array.write_energy
    }

    /// Energy of reading one full block (the analytic model's `DATA`).
    pub fn data_read_block(&self) -> f64 {
        self.data_block_array.read_energy
    }

    /// Energy of writing one full block.
    pub fn data_write_block(&self) -> f64 {
        self.data_block_array.write_energy
    }
}

/// Per-event energies for the writeback buffer: a small CAM probed by every
/// snoop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WbEnergy {
    cam: CamArray,
    probe: f64,
    write: f64,
}

impl WbEnergy {
    /// Builds the model for a WB of `entries` slots tracking
    /// `unit_addr_bits`-wide coherence-unit addresses.
    pub fn new(entries: usize, unit_addr_bits: u32, tech: &TechParams) -> Self {
        let cam = CamArray::new(entries, unit_addr_bits as usize);
        Self { cam, probe: cam.probe_energy(tech), write: cam.write_energy(tech) }
    }

    /// Energy of one associative probe.
    pub fn probe(&self) -> f64 {
        self.probe
    }

    /// Energy of inserting one entry.
    pub fn write(&self) -> f64 {
        self.write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn paper_l2_geometry() {
        let g = CacheGeometry::paper_l2();
        assert_eq!(g.sets(), 16384);
        // 40 - 6 (offset) - 14 (index) = 20 tag bits + 2x3 state.
        assert_eq!(g.tag_bits(), 20);
        assert_eq!(g.tag_entry_bits(), 26);
        assert_eq!(g.subblock_bytes(), 32);
    }

    #[test]
    fn analytic_l2_geometry_matches_section_2_1() {
        let g32 = CacheGeometry::analytic_l2(32);
        // 1MB 4-way 32B: 8192 sets; 36 - 5 - 13 = 18 tag bits + 2 state.
        assert_eq!(g32.sets(), 8192);
        assert_eq!(g32.tag_bits(), 18);
        assert_eq!(g32.tag_entry_bits(), 20);
        let g64 = CacheGeometry::analytic_l2(64);
        assert_eq!(g64.sets(), 4096);
        assert_eq!(g64.tag_bits(), 18);
    }

    #[test]
    fn tag_probe_is_comparable_to_block_data_read() {
        // The paper's central premise (§2.1): in large high-associativity
        // L2s, the latency-constrained tag probe costs energy comparable to
        // one (heavily banked) data-block access.
        for block in [32usize, 64] {
            let e = CacheEnergy::new(CacheGeometry::analytic_l2(block), &tech());
            let ratio = e.tag_probe() / e.data_read_block();
            assert!(
                (0.3..=4.0).contains(&ratio),
                "tag/data ratio {ratio} out of the plausible band for {block}B blocks"
            );
        }
    }

    #[test]
    fn smaller_blocks_make_data_cheaper() {
        let e32 = CacheEnergy::new(CacheGeometry::analytic_l2(32), &tech());
        let e64 = CacheEnergy::new(CacheGeometry::analytic_l2(64), &tech());
        assert!(e32.data_read_block() < e64.data_read_block());
    }

    #[test]
    fn unit_accesses_cheaper_than_block_accesses() {
        let e = CacheEnergy::new(CacheGeometry::paper_l2(), &tech());
        assert!(e.data_read_unit() < e.data_read_block());
        assert!(e.data_write_unit() < e.data_write_block());
    }

    #[test]
    fn tag_write_is_bounded_by_tag_probe() {
        // A write touches one entry at write swing; the probe reads four
        // at read swing. The write stays within a small multiple.
        let e = CacheEnergy::new(CacheGeometry::analytic_l2(32), &tech());
        assert!(e.tag_write() < e.tag_probe());
        // Direct-mapped: a single-entry write at 2x swing lands near 2x
        // the single-entry read.
        let dm = CacheEnergy::new(CacheGeometry::paper_l2(), &tech());
        assert!(dm.tag_write() < dm.tag_probe() * 2.5);
        assert!(dm.tag_write() > dm.tag_probe() * 0.5);
    }

    #[test]
    fn wb_probe_is_negligible_vs_l2_tag_probe() {
        let l2 = CacheEnergy::new(CacheGeometry::paper_l2(), &tech());
        let wb = WbEnergy::new(8, 35, &tech());
        assert!(
            wb.probe() < l2.tag_probe() / 10.0,
            "WB probe {} vs tag {}",
            wb.probe(),
            l2.tag_probe()
        );
    }

    #[test]
    fn energies_are_positive_and_finite() {
        let e = CacheEnergy::new(CacheGeometry::paper_l2(), &tech());
        for v in [
            e.tag_probe(),
            e.tag_write(),
            e.data_read_unit(),
            e.data_write_unit(),
            e.data_read_block(),
            e.data_write_block(),
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
    }
}
