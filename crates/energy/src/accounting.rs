//! Full-run energy accounting (paper §4.4, Figure 6).
//!
//! Consumes the raw event counts of a finished simulation ([`RunStats`])
//! plus one filter's coverage/activity report ([`FilterReport`]) and
//! produces energy totals for two L2 organisations:
//!
//! * **Serial** tag/data access (Alpha 21164, Intel Xeon style): the data
//!   array is touched only when actually needed;
//! * **Parallel** tag/data access (latency-optimised): every tag probe —
//!   local or snoop — reads a data subblock alongside, so a filtered snoop
//!   saves both arrays.
//!
//! Because a JETTY never alters protocol behaviour, one simulation yields
//! both the filtered and the unfiltered (baseline) energies: the baseline
//! simply charges a tag probe for every snoop and no filter energy. This
//! mirrors the paper's methodology of comparing organisations over
//! identical traces, and includes the IJ counter-update traffic from L2
//! allocations/replacements, the EJ insertions, and the writeback-buffer
//! probes that filtered snoops still pay.

use jetty_core::{ArrayKind, ArraySpec};
use jetty_sim::{FilterReport, RunStats};

use crate::cache_energy::{CacheEnergy, CacheGeometry, WbEnergy};
use crate::cacti_lite::optimize_array;
use crate::kamble_ghose::CamArray;
use crate::tech::TechParams;

/// L2 tag/data access organisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Tag first, data only on demand (energy-optimised; Figure 6 a/b).
    Serial,
    /// Tag and data probed together (latency-optimised; Figure 6 c/d).
    Parallel,
}

/// Energy totals of one run under one configuration, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Local L2 tag-array energy.
    pub local_tag: f64,
    /// Local L2 data-array energy.
    pub local_data: f64,
    /// Snoop-induced L2 tag-array energy (probes + state writes).
    pub snoop_tag: f64,
    /// Snoop-induced L2 data-array energy (supplies; in parallel mode the
    /// probe-coupled data reads).
    pub snoop_data: f64,
    /// Writeback-buffer energy (probes on every snoop + insertions).
    pub wb: f64,
    /// JETTY energy (probes, EJ insertions, IJ counter updates).
    pub filter: f64,
}

impl EnergyBreakdown {
    /// Energy attributable to snoop handling: the denominator of
    /// Figure 6 (a) and (c).
    pub fn snoop_side(&self) -> f64 {
        self.snoop_tag + self.snoop_data + self.wb + self.filter
    }

    /// Total L2-related energy: the denominator of Figure 6 (b) and (d).
    pub fn total(&self) -> f64 {
        self.local_tag + self.local_data + self.snoop_side()
    }
}

/// The protocol-comparison quantities of one `(run, filter)` pair as typed
/// values: what `jetty-repro protocols` and the sweep engine tabulate per
/// suite point. Fractions stay fractions and energies stay joules here —
/// scaling to percent or microjoules is the *renderer's* job, so the same
/// record can feed an aligned-text table, a JSON document, or a CSV row
/// without re-deriving anything.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProtocolEnergy {
    /// Figure 6 (a)/(c)-style reduction over snoop-side energy, in `[0, 1]`.
    pub snoop_reduction: f64,
    /// Figure 6 (b)/(d)-style reduction over all L2 energy, in `[0, 1]`.
    pub total_reduction: f64,
    /// Memory write traffic of the run ([`SmpEnergyModel::memory_writeback_energy`])
    /// in joules — the protocol-dependent term MOESI's `Owned` state avoids.
    pub memory_writeback_j: f64,
}

impl ProtocolEnergy {
    /// The memory-writeback traffic in microjoules (the unit the protocol
    /// table prints).
    pub fn memory_writeback_uj(&self) -> f64 {
        self.memory_writeback_j * 1e6
    }
}

/// Per-event energies for the whole SMP node stack.
#[derive(Clone, Debug)]
pub struct SmpEnergyModel {
    tech: TechParams,
    l2: CacheEnergy,
    wb: WbEnergy,
}

impl SmpEnergyModel {
    /// Builds the model for the paper's simulated node: 1 MB subblocked
    /// direct-mapped L2, 8-entry WB over 35-bit unit addresses.
    pub fn paper_node() -> Self {
        Self::new(CacheGeometry::paper_l2(), 8, 35, TechParams::default())
    }

    /// Builds a model from explicit geometry.
    pub fn new(
        l2_geometry: CacheGeometry,
        wb_entries: usize,
        unit_addr_bits: u32,
        tech: TechParams,
    ) -> Self {
        let l2 = CacheEnergy::new(l2_geometry, &tech);
        let wb = WbEnergy::new(wb_entries, unit_addr_bits, &tech);
        Self { tech, l2, wb }
    }

    /// The L2 per-event energies in use.
    pub fn l2(&self) -> &CacheEnergy {
        &self.l2
    }

    /// Per-access (read, write) energies of one filter array.
    pub fn array_energies(&self, spec: &ArraySpec) -> (f64, f64) {
        match spec.kind {
            ArrayKind::Sram => {
                let banked = optimize_array(spec.rows, spec.bits_per_row, &self.tech);
                (banked.read_energy, banked.write_energy)
            }
            ArrayKind::Cam => {
                let cam = CamArray::new(spec.rows, spec.bits_per_row);
                (cam.probe_energy(&self.tech), cam.write_energy(&self.tech))
            }
        }
    }

    /// Total energy dissipated inside one filter configuration across all
    /// nodes of a run.
    pub fn filter_energy(&self, report: &FilterReport) -> f64 {
        let energies: Vec<(f64, f64)> =
            report.arrays.iter().map(|a| self.array_energies(a)).collect();
        report
            .activities
            .iter()
            .map(|activity| {
                activity
                    .arrays
                    .iter()
                    .zip(&energies)
                    .map(|(counts, (read_e, write_e))| {
                        counts.reads as f64 * read_e + counts.writes as f64 * write_e
                    })
                    .sum::<f64>()
            })
            .sum()
    }

    /// Energy breakdown of a run. `filter = None` gives the unfiltered
    /// baseline; `Some(report)` charges the filter's own energy and skips
    /// the tag (and, in parallel mode, data) probes of filtered snoops.
    pub fn breakdown(
        &self,
        run: &RunStats,
        filter: Option<&FilterReport>,
        mode: AccessMode,
    ) -> EnergyBreakdown {
        let n = &run.nodes;
        let snoop_probes = match filter {
            Some(report) => n.snoops_seen - report.filtered,
            None => n.snoops_seen,
        } as f64;

        let tag_probe = self.l2.tag_probe();
        let tag_write = self.l2.tag_write();
        let data_read = self.l2.data_read_unit();
        let data_write = self.l2.data_write_unit();

        let local_tag = n.l2_tag_reads as f64 * tag_probe + n.l2_tag_writes as f64 * tag_write;
        let snoop_tag = snoop_probes * tag_probe + n.snoop_state_writes as f64 * tag_write;

        let (local_data, snoop_data) = match mode {
            AccessMode::Serial => (
                (n.l2_data_reads + n.l2_evict_data_reads) as f64 * data_read
                    + n.l2_data_writes as f64 * data_write,
                n.snoop_supplies as f64 * data_read,
            ),
            AccessMode::Parallel => (
                // Every local tag probe reads a data subblock alongside;
                // demand data reads are subsumed, eviction read-outs and
                // writes are not.
                n.l2_tag_reads as f64 * data_read
                    + n.l2_evict_data_reads as f64 * data_read
                    + n.l2_data_writes as f64 * data_write,
                // Every surviving snoop probe reads data too; supplies are
                // subsumed by the probe-coupled read.
                snoop_probes * data_read,
            ),
        };

        let wb = n.wb_probes as f64 * self.wb.probe() + n.wb_pushes as f64 * self.wb.write();
        let filter_energy = filter.map_or(0.0, |r| self.filter_energy(r));

        EnergyBreakdown { local_tag, local_data, snoop_tag, snoop_data, wb, filter: filter_energy }
    }

    /// Energy of the run's memory write traffic: every writeback-buffer
    /// drain plus every snoop-time memory update (the `M → S` downgrades
    /// MESI/MSI pay on dirty supplies, [`NodeStats::memory_writebacks`])
    /// drives one coherence unit over the off-chip bus.
    ///
    /// This term is deliberately *not* part of [`EnergyBreakdown`]: the
    /// paper's Figure 6 scopes its denominators to the L2/WB/filter stack,
    /// and a filter never changes memory traffic anyway. It exists for the
    /// protocol comparison (`jetty-repro protocols`), where the traffic
    /// itself is the protocol-dependent quantity.
    ///
    /// [`NodeStats::memory_writebacks`]: jetty_sim::NodeStats::memory_writebacks
    pub fn memory_writeback_energy(&self, run: &RunStats) -> f64 {
        let bits_per_transfer = (self.l2.geometry().subblock_bytes() * 8) as f64;
        run.nodes.memory_writebacks() as f64 * bits_per_transfer * self.tech.e_bus_per_bit
    }

    /// Figure 6 (a)/(c): energy reduction over all snoop accesses.
    pub fn snoop_energy_reduction(
        &self,
        run: &RunStats,
        report: &FilterReport,
        mode: AccessMode,
    ) -> f64 {
        let base = self.breakdown(run, None, mode).snoop_side();
        let with = self.breakdown(run, Some(report), mode).snoop_side();
        if base == 0.0 {
            0.0
        } else {
            1.0 - with / base
        }
    }

    /// Bundles the protocol-comparison quantities of one `(run, filter)`
    /// pair into a [`ProtocolEnergy`] record (typed values, no formatting).
    pub fn protocol_energy(
        &self,
        run: &RunStats,
        report: &FilterReport,
        mode: AccessMode,
    ) -> ProtocolEnergy {
        ProtocolEnergy {
            snoop_reduction: self.snoop_energy_reduction(run, report, mode),
            total_reduction: self.total_energy_reduction(run, report, mode),
            memory_writeback_j: self.memory_writeback_energy(run),
        }
    }

    /// Figure 6 (b)/(d): energy reduction over all L2 accesses.
    pub fn total_energy_reduction(
        &self,
        run: &RunStats,
        report: &FilterReport,
        mode: AccessMode,
    ) -> f64 {
        let base = self.breakdown(run, None, mode).total();
        let with = self.breakdown(run, Some(report), mode).total();
        if base == 0.0 {
            0.0
        } else {
            1.0 - with / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetty_core::FilterSpec;
    use jetty_sim::{Op, System, SystemConfig};

    /// Runs a disjoint-working-set workload (JETTY's best case) and returns
    /// (run stats, reports).
    fn sample_run(specs: &[FilterSpec]) -> (RunStats, Vec<FilterReport>) {
        let mut sys = System::new(SystemConfig::paper_4way(), specs);
        for i in 0..2000u64 {
            let cpu = (i % 4) as usize;
            let addr = 0x100_0000 * cpu as u64 + (i / 4) * 32;
            if i % 5 == 0 {
                sys.access(cpu, Op::Write, addr);
            } else {
                sys.access(cpu, Op::Read, addr);
            }
        }
        (sys.run_stats(), sys.filter_reports())
    }

    #[test]
    fn baseline_has_no_filter_energy() {
        let (run, _) = sample_run(&[]);
        let model = SmpEnergyModel::paper_node();
        let b = model.breakdown(&run, None, AccessMode::Serial);
        assert_eq!(b.filter, 0.0);
        assert!(b.total() > 0.0);
        assert!(b.snoop_side() > 0.0);
        assert!(b.snoop_side() < b.total());
    }

    #[test]
    fn good_filter_reduces_energy_both_ways() {
        let (run, reports) = sample_run(&[FilterSpec::hybrid_scalar(10, 4, 7, 32, 4)]);
        let model = SmpEnergyModel::paper_node();
        let report = &reports[0];
        assert!(report.coverage() > 0.8, "coverage {}", report.coverage());
        for mode in [AccessMode::Serial, AccessMode::Parallel] {
            let snoop_red = model.snoop_energy_reduction(&run, report, mode);
            let total_red = model.total_energy_reduction(&run, report, mode);
            assert!(snoop_red > 0.2, "{mode:?} snoop reduction {snoop_red}");
            assert!(total_red > 0.0, "{mode:?} total reduction {total_red}");
            assert!(snoop_red > total_red, "snoop-side reduction must exceed whole-L2 reduction");
        }
    }

    #[test]
    fn parallel_mode_saves_more_than_serial() {
        // Figure 6 c/d vs a/b: filtered snoops save tag+data in parallel
        // organisations, so reductions are larger.
        let (run, reports) = sample_run(&[FilterSpec::hybrid_scalar(10, 4, 7, 32, 4)]);
        let model = SmpEnergyModel::paper_node();
        let report = &reports[0];
        let serial = model.snoop_energy_reduction(&run, report, AccessMode::Serial);
        let parallel = model.snoop_energy_reduction(&run, report, AccessMode::Parallel);
        assert!(parallel > serial, "parallel {parallel} <= serial {serial}");
    }

    #[test]
    fn null_filter_costs_nothing_and_saves_nothing() {
        let (run, reports) = sample_run(&[FilterSpec::Null]);
        let model = SmpEnergyModel::paper_node();
        let report = &reports[0];
        assert_eq!(model.filter_energy(report), 0.0);
        assert_eq!(model.snoop_energy_reduction(&run, report, AccessMode::Serial), 0.0);
    }

    #[test]
    fn filter_energy_grows_with_structure_size() {
        let (_, reports) =
            sample_run(&[FilterSpec::include(10, 4, 7), FilterSpec::include(6, 5, 6)]);
        let model = SmpEnergyModel::paper_node();
        let big = model.filter_energy(&reports[0]);
        let small = model.filter_energy(&reports[1]);
        assert!(big > small, "IJ-10 energy {big} <= IJ-6 energy {small}");
    }

    #[test]
    fn baseline_total_exceeds_filtered_total() {
        let (run, reports) = sample_run(&[FilterSpec::include(9, 4, 7)]);
        let model = SmpEnergyModel::paper_node();
        let base = model.breakdown(&run, None, AccessMode::Serial);
        let with = model.breakdown(&run, Some(&reports[0]), AccessMode::Serial);
        assert!(with.total() < base.total());
        // Local-side energy is identical: filters only touch the snoop side.
        assert_eq!(with.local_tag, base.local_tag);
        assert_eq!(with.local_data, base.local_data);
        assert_eq!(with.wb, base.wb);
    }

    #[test]
    fn energy_reduction_correlates_with_coverage() {
        let (run, reports) =
            sample_run(&[FilterSpec::hybrid_scalar(10, 4, 7, 32, 4), FilterSpec::exclude(8, 2)]);
        let model = SmpEnergyModel::paper_node();
        let (hi, lo) = (&reports[0], &reports[1]);
        assert!(hi.coverage() > lo.coverage());
        assert!(
            model.snoop_energy_reduction(&run, hi, AccessMode::Serial)
                > model.snoop_energy_reduction(&run, lo, AccessMode::Serial)
        );
    }

    #[test]
    fn memory_writeback_energy_follows_the_traffic() {
        let model = SmpEnergyModel::paper_node();
        let mut run = RunStats::default();
        assert_eq!(model.memory_writeback_energy(&run), 0.0);
        run.nodes.wb_drains = 10;
        let drains_only = model.memory_writeback_energy(&run);
        assert!(drains_only > 0.0);
        run.nodes.snoop_memory_writebacks = 10;
        let with_snoop_updates = model.memory_writeback_energy(&run);
        assert!((with_snoop_updates - 2.0 * drains_only).abs() < 1e-18);
        // One 32-byte transfer at 20 pJ/bit.
        assert!((drains_only / 10.0 - 32.0 * 8.0 * 20.0e-12).abs() < 1e-15);
    }

    #[test]
    fn protocol_energy_bundles_the_same_values_the_scalar_api_reports() {
        let (run, reports) = sample_run(&[FilterSpec::hybrid_scalar(10, 4, 7, 32, 4)]);
        let model = SmpEnergyModel::paper_node();
        let report = &reports[0];
        for mode in [AccessMode::Serial, AccessMode::Parallel] {
            let p = model.protocol_energy(&run, report, mode);
            assert_eq!(p.snoop_reduction, model.snoop_energy_reduction(&run, report, mode));
            assert_eq!(p.total_reduction, model.total_energy_reduction(&run, report, mode));
            assert_eq!(p.memory_writeback_j, model.memory_writeback_energy(&run));
            assert_eq!(p.memory_writeback_uj(), p.memory_writeback_j * 1e6);
        }
    }

    #[test]
    fn breakdown_components_are_nonnegative() {
        let (run, reports) = sample_run(&[FilterSpec::hybrid_vector(10, 4, 7, 32, 4, 8)]);
        let model = SmpEnergyModel::paper_node();
        for mode in [AccessMode::Serial, AccessMode::Parallel] {
            let b = model.breakdown(&run, Some(&reports[0]), mode);
            for v in [b.local_tag, b.local_data, b.snoop_tag, b.snoop_data, b.wb, b.filter] {
                assert!(v >= 0.0 && v.is_finite());
            }
        }
    }
}
