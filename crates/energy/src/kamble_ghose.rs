//! Kamble–Ghose analytical energy model for SRAM/CAM arrays.
//!
//! Kamble & Ghose ("Analytical Energy Dissipation Models for Low Power
//! Caches", ISLPED 1997) decompose a cache access into bit-line, word-line,
//! decode, sense and output components, each a `C · V · ΔV` switching term.
//! The paper uses this model (§4.1, §4.4) for both the L2 arrays and the
//! JETTY structures. We implement the same decomposition over a plain
//! `(rows, cols)` array abstraction; `cacti_lite` layers bank selection on
//! top.

use crate::tech::TechParams;

/// A flat SRAM array of `rows` word lines by `cols` bit-line pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SramArray {
    /// Word lines.
    pub rows: usize,
    /// Bits per row (columns).
    pub cols: usize,
}

impl SramArray {
    /// Creates an array description.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "SRAM array dimensions must be nonzero");
        Self { rows, cols }
    }

    /// Capacitance of one bit line: every row's cell drain plus wire.
    fn c_bitline(&self, tech: &TechParams) -> f64 {
        self.rows as f64 * (tech.c_cell_drain + tech.c_wire_bit) + tech.c_column_overhead
    }

    /// Capacitance of one word line: every column's cell gates plus wire.
    /// Each bit cell loads the word line with two access-transistor gates.
    fn c_wordline(&self, tech: &TechParams) -> f64 {
        self.cols as f64 * (2.0 * tech.c_cell_gate + tech.c_wire_word)
    }

    /// Energy of asserting one word line.
    fn e_wordline(&self, tech: &TechParams) -> f64 {
        self.c_wordline(tech) * tech.vdd * tech.vdd
    }

    /// Row-decoder energy, proportional to the decoded address width.
    fn e_decode(&self, tech: &TechParams) -> f64 {
        let addr_bits = (self.rows.max(2) as f64).log2().ceil();
        addr_bits * tech.e_decode_per_bit
    }

    /// Energy of one read access: precharge + limited-swing discharge on
    /// every bit-line pair, word-line assertion, decode, sense amps, and
    /// output drivers for every bit read.
    pub fn read_energy(&self, tech: &TechParams) -> f64 {
        let e_bitlines = self.cols as f64 * self.c_bitline(tech) * tech.vdd * tech.v_swing_read;
        let e_sense = self.cols as f64 * tech.e_sense_amp;
        let e_out = self.cols as f64 * tech.e_output_per_bit;
        e_bitlines + self.e_wordline(tech) + self.e_decode(tech) + e_sense + e_out
    }

    /// Energy of one write access: larger-swing drive on every bit-line
    /// pair, word-line assertion and decode (no sense amps, no output).
    pub fn write_energy(&self, tech: &TechParams) -> f64 {
        let e_bitlines = self.cols as f64 * self.c_bitline(tech) * tech.vdd * tech.v_swing_write;
        e_bitlines + self.e_wordline(tech) + self.e_decode(tech)
    }

    /// Total storage in bits.
    pub fn bits(&self) -> usize {
        self.rows * self.cols
    }
}

/// A fully associative match array (CAM), used for the writeback buffer:
/// every entry compares its tag against the snooped address in parallel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CamArray {
    /// Number of entries.
    pub entries: usize,
    /// Tag bits per entry.
    pub tag_bits: usize,
}

impl CamArray {
    /// Creates a CAM description.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(entries: usize, tag_bits: usize) -> Self {
        assert!(entries > 0 && tag_bits > 0, "CAM dimensions must be nonzero");
        Self { entries, tag_bits }
    }

    /// Energy of one associative probe: every entry's comparator switches.
    pub fn probe_energy(&self, tech: &TechParams) -> f64 {
        self.entries as f64 * self.tag_bits as f64 * tech.e_cam_compare_per_bit
    }

    /// Energy of inserting an entry (one row write).
    pub fn write_energy(&self, tech: &TechParams) -> f64 {
        SramArray::new(self.entries, self.tag_bits).write_energy(tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn bigger_arrays_cost_more_to_read() {
        let small = SramArray::new(32, 32);
        let big = SramArray::new(1024, 128);
        assert!(big.read_energy(&tech()) > small.read_energy(&tech()));
    }

    #[test]
    fn writes_cost_more_than_reads_but_bounded() {
        // Write swing is twice the read swing, so per-access writes land
        // between 1x and 3x reads for wide arrays.
        let a = SramArray::new(1024, 256);
        let w = a.write_energy(&tech());
        let r = a.read_energy(&tech());
        assert!(w > r, "write {w} <= read {r}");
        assert!(w < 3.0 * r, "write {w} implausibly above read {r}");
    }

    #[test]
    fn energy_scales_roughly_linearly_with_columns() {
        let narrow = SramArray::new(256, 32);
        let wide = SramArray::new(256, 64);
        let r = wide.read_energy(&tech()) / narrow.read_energy(&tech());
        assert!(r > 1.8 && r < 2.2, "column scaling ratio {r}");
    }

    #[test]
    fn energy_grows_with_rows() {
        let short = SramArray::new(128, 64);
        let tall = SramArray::new(4096, 64);
        assert!(tall.read_energy(&tech()) > 2.0 * short.read_energy(&tech()));
    }

    #[test]
    fn l2_scale_access_lands_in_expected_range() {
        // A 1 MB data array, unbanked: 16384 rows x 512 cols. Expect
        // several nJ per access (the point of banking).
        let a = SramArray::new(16384, 512);
        let e = a.read_energy(&tech());
        assert!(e > 1.0e-9 && e < 100.0e-9, "unbanked L2 read {e} J");
    }

    #[test]
    fn register_file_scale_access_is_small() {
        // A 32x32 JETTY p-bit array should cost ~O(1 pJ).
        let a = SramArray::new(32, 32);
        let e = a.read_energy(&tech());
        assert!(e > 0.1e-12 && e < 10.0e-12, "register-file read {e} J");
    }

    #[test]
    fn cam_probe_scales_with_entries() {
        let small = CamArray::new(4, 35);
        let big = CamArray::new(16, 35);
        let ratio = big.probe_energy(&tech()) / small.probe_energy(&tech());
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cam_probe_is_cheap() {
        // The WB probe must be negligible next to an L2 tag access, or the
        // paper's "WB is always probed" choice wouldn't make sense.
        let wb = CamArray::new(8, 35);
        assert!(wb.probe_energy(&tech()) < 5.0e-12);
    }

    #[test]
    fn bits_accounting() {
        assert_eq!(SramArray::new(16, 16).bits(), 256);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_rejected() {
        let _ = SramArray::new(0, 8);
    }
}
