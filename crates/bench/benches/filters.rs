//! Filter microbenchmarks: probe latency/throughput and update cost for
//! every JETTY variant. The paper argues a JETTY probe is register-file
//! fast (§2.2); these benches quantify the simulator-side cost and the
//! relative weight of each structure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jetty_core::{AddrSpace, FilterSpec, MissScope, SnoopFilter, UnitAddr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pre-generated snoop address stream with mixed locality.
fn snoop_stream(n: usize) -> Vec<UnitAddr> {
    let mut rng = SmallRng::seed_from_u64(42);
    (0..n)
        .map(|i| {
            if i % 4 == 0 {
                UnitAddr::new(rng.gen_range(0..1u64 << 20))
            } else {
                UnitAddr::new(rng.gen_range(0..4096u64))
            }
        })
        .collect()
}

/// A filter warmed with allocations and learned misses.
fn warmed(spec: FilterSpec) -> Box<dyn SnoopFilter> {
    let mut filter = spec.build(AddrSpace::default());
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..2048 {
        filter.on_allocate(UnitAddr::new(rng.gen_range(0..1u64 << 20)));
    }
    for _ in 0..2048 {
        let addr = UnitAddr::new(rng.gen_range(0..4096u64));
        if !filter.probe(addr).is_filtered() {
            filter.record_snoop_miss(addr, MissScope::Block);
        }
    }
    filter
}

fn probe_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_probe");
    group.sample_size(20);
    let stream = snoop_stream(4096);
    for spec in [
        FilterSpec::exclude(32, 4),
        FilterSpec::vector_exclude(32, 4, 8),
        FilterSpec::include(10, 4, 7),
        FilterSpec::hybrid_scalar(10, 4, 7, 32, 4),
        FilterSpec::Null,
    ] {
        group.bench_function(spec.label(), |b| {
            b.iter_batched_ref(
                || warmed(spec),
                |filter| {
                    let mut filtered = 0u64;
                    for &addr in &stream {
                        if filter.probe(addr).is_filtered() {
                            filtered += 1;
                        }
                    }
                    filtered
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn update_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_update");
    group.sample_size(20);
    let mut rng = SmallRng::seed_from_u64(9);
    let addrs: Vec<UnitAddr> =
        (0..4096).map(|_| UnitAddr::new(rng.gen_range(0..1u64 << 20))).collect();
    for spec in
        [FilterSpec::include(10, 4, 7), FilterSpec::include(6, 5, 6), FilterSpec::exclude(32, 4)]
    {
        group.bench_function(format!("alloc_dealloc/{}", spec.label()), |b| {
            b.iter_batched_ref(
                || spec.build(AddrSpace::default()),
                |filter| {
                    for &a in &addrs {
                        filter.on_allocate(a);
                    }
                    for &a in &addrs {
                        filter.on_deallocate(a);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, probe_benches, update_benches);
criterion_main!(benches);
