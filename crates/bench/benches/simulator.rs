//! Substrate microbenchmarks: raw simulation throughput with and without
//! filter banks, and the cost of full runtime checking.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jetty_core::FilterSpec;
use jetty_sim::{MemRef, System, SystemConfig};
use jetty_workloads::{apps, TraceGen};

fn trace(scale: f64) -> Vec<MemRef> {
    TraceGen::new(&apps::lu(), 4, scale).collect()
}

fn throughput_benches(c: &mut Criterion) {
    let refs = trace(0.02);
    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(refs.len() as u64));

    group.bench_function("no_filters_unchecked", |b| {
        b.iter_batched_ref(
            || System::new(SystemConfig::paper_4way().without_checks(), &[]),
            |sys| sys.run(refs.iter().copied()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("best_hybrid_unchecked", |b| {
        b.iter_batched_ref(
            || {
                System::new(
                    SystemConfig::paper_4way().without_checks(),
                    &[FilterSpec::hybrid_scalar(10, 4, 7, 32, 4)],
                )
            },
            |sys| sys.run(refs.iter().copied()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("full_bank_unchecked", |b| {
        b.iter_batched_ref(
            || System::new(SystemConfig::paper_4way().without_checks(), &FilterSpec::paper_bank()),
            |sys| sys.run(refs.iter().copied()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("no_filters_checked", |b| {
        b.iter_batched_ref(
            || System::new(SystemConfig::paper_4way(), &[]),
            |sys| sys.run(refs.iter().copied()),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

fn trace_generation_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    let n = TraceGen::new(&apps::barnes(), 4, 0.02).len();
    group.throughput(Throughput::Elements(n));
    group.bench_function("barnes", |b| b.iter(|| TraceGen::new(&apps::barnes(), 4, 0.02).count()));
    group.finish();
}

criterion_group!(benches, throughput_benches, trace_generation_bench);
criterion_main!(benches);
