//! Renderer benches: the typed-results pipeline decoupled rendering from
//! simulation, so rendering cost is now measurable (and optimisable) on
//! its own. One shared suite run feeds every bench; each bench times one
//! renderer over the same populated [`ResultSet`].

use criterion::{criterion_group, criterion_main, Criterion};
use jetty_bench::bench_suite_with;
use jetty_core::FilterSpec;
use jetty_experiments::results::render::{CsvRenderer, JsonRenderer, Renderer, TextRenderer};
use jetty_experiments::results::ResultSet;
use jetty_experiments::{figures, tables};

/// A representative multi-table set: the workload tables plus one
/// comma-bearing-label figure (exercises CSV quoting) from one suite run.
fn sample_set() -> ResultSet {
    let runs = bench_suite_with(vec![
        FilterSpec::exclude(8, 2),
        FilterSpec::hybrid_scalar(10, 4, 7, 32, 4),
        FilterSpec::hybrid_scalar(9, 4, 7, 32, 4),
        FilterSpec::hybrid_scalar(8, 4, 7, 32, 4),
    ]);
    let mut set = ResultSet::new();
    set.push(tables::table1());
    set.push(tables::table2(&runs));
    set.push(tables::table3(&runs));
    set.push(figures::fig6(&runs, figures::Fig6Panel::AllSerial));
    set.push(tables::calibration(&runs));
    set
}

fn render_benches(c: &mut Criterion) {
    let set = sample_set();
    let mut group = c.benchmark_group("render");
    group.bench_function("text", |b| b.iter(|| TextRenderer.render_set(&set).len()));
    group.bench_function("json", |b| b.iter(|| JsonRenderer.render_set(&set).len()));
    group.bench_function("csv", |b| b.iter(|| CsvRenderer.render_set(&set).len()));
    group.finish();
}

criterion_group!(benches, render_benches);
criterion_main!(benches);
