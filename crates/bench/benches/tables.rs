//! Table-regeneration benches: one per paper table. Each bench times the
//! full pipeline that produces the table (workload generation, simulation,
//! statistics, rendering) at a reduced trace scale.

use criterion::{criterion_group, criterion_main, Criterion};
use jetty_bench::bench_suite_with;
use jetty_core::FilterSpec;
use jetty_experiments::tables;

fn table1_bench(c: &mut Criterion) {
    // Static data + derived columns; effectively free, but regenerated
    // through the same path as `jetty-repro table1`.
    c.bench_function("table1_xeon_power", |b| b.iter(|| tables::table1().render().len()));
}

fn table2_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_applications");
    group.sample_size(10);
    group.bench_function("suite_and_render", |b| {
        b.iter(|| {
            let runs = bench_suite_with(vec![FilterSpec::exclude(8, 2)]);
            tables::table2(&runs).render().len()
        })
    });
    group.finish();
}

fn table3_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_snoop_distribution");
    group.sample_size(10);
    // Reuse one suite run; the bench isolates the statistics + rendering.
    let runs = bench_suite_with(vec![FilterSpec::exclude(8, 2)]);
    group.bench_function("stats_and_render", |b| b.iter(|| tables::table3(&runs).render().len()));
    group.finish();
}

fn table4_bench(c: &mut Criterion) {
    c.bench_function("table4_ij_storage", |b| b.iter(|| tables::table4().render().len()));
}

criterion_group!(benches, table1_bench, table2_bench, table3_bench, table4_bench);
criterion_main!(benches);
