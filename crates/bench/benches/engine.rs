//! Parallel-engine benches: serial-vs-parallel suite throughput and the
//! suite-cache fast path. These pin the value of the worker pool — on a
//! multi-core host the `parallel_*` entry should beat `serial_1_thread`
//! roughly by the smaller of the thread count and the ten suite jobs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jetty_bench::BENCH_SCALE;
use jetty_core::FilterSpec;
use jetty_experiments::{Engine, RunOptions};

/// Ten applications per suite run.
const SUITE_APPS: u64 = 10;

fn bench_options() -> RunOptions {
    RunOptions::paper()
        .with_scale(BENCH_SCALE)
        .with_specs(vec![FilterSpec::exclude(8, 2), FilterSpec::include(8, 4, 7)])
}

fn suite_throughput(c: &mut Criterion) {
    let options = bench_options();
    let mut group = c.benchmark_group("engine_suite_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SUITE_APPS));

    group.bench_function("serial_1_thread", |b| {
        let engine = Engine::new(1);
        b.iter(|| engine.run_suite_uncached(&options).expect("bench suite cannot fail").len())
    });

    let threads = Engine::default_threads().max(2);
    group.bench_function(format!("parallel_{threads}_threads"), |b| {
        let engine = Engine::new(threads);
        b.iter(|| engine.run_suite_uncached(&options).expect("bench suite cannot fail").len())
    });

    group.finish();
}

fn cache_fast_path(c: &mut Criterion) {
    let options = bench_options();
    let mut group = c.benchmark_group("engine_suite_cache");
    group.sample_size(10);

    // Warm once; every timed iteration is a pure cache hit.
    let engine = Engine::new(Engine::default_threads());
    let _ = engine.run_suite(&options);
    group.bench_function("cached_hit", |b| {
        b.iter(|| engine.run_suite(&options).expect("bench suite cannot fail").len())
    });

    group.finish();
}

criterion_group!(benches, suite_throughput, cache_fast_path);
criterion_main!(benches);
