//! Per-protocol snoop-path throughput: the same sharing-heavy trace
//! driven through MOESI, MESI and MSI systems with the paper's best
//! hybrid attached. Pins the cost of the pluggable-protocol indirection
//! (the `CoherenceProtocol` vtable on the snoop path) and the relative
//! simulation cost of each protocol's extra traffic (MSI pays more
//! upgrade transactions, MESI/MSI pay snoop-time memory updates).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jetty_core::FilterSpec;
use jetty_sim::{MemRef, ProtocolKind, System, SystemConfig};
use jetty_workloads::{apps, TraceGen};

fn trace(scale: f64) -> Vec<MemRef> {
    // `unstructured` is the suite's sharing-heaviest profile: the most
    // snoop hits, so protocol reactions dominate.
    TraceGen::new(&apps::unstructured(), 4, scale).collect()
}

fn protocol_throughput(c: &mut Criterion) {
    let refs = trace(0.02);
    let mut group = c.benchmark_group("protocol_snoop_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(refs.len() as u64));

    for kind in ProtocolKind::ALL {
        let name = format!("{}_best_hybrid_unchecked", kind.to_string().to_lowercase());
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || {
                    System::new(
                        SystemConfig::paper_4way().without_checks().with_protocol(kind),
                        &[FilterSpec::hybrid_scalar(10, 4, 7, 32, 4)],
                    )
                },
                |sys| sys.run(refs.iter().copied()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, protocol_throughput);
criterion_main!(benches);
