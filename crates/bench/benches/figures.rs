//! Figure-regeneration benches: one per paper figure. Figure 2 is the
//! closed-form analytic model; Figures 4-6 time the coverage/energy
//! pipelines over a reduced-scale suite run.

use criterion::{criterion_group, criterion_main, Criterion};
use jetty_bench::bench_suite;
use jetty_energy::{figure2_panel, TechParams};
use jetty_experiments::figures::{self, Fig6Panel};

fn fig2_bench(c: &mut Criterion) {
    let tech = TechParams::default();
    c.bench_function("fig2_analytic_model", |b| {
        b.iter(|| {
            let p32 = figure2_panel(4, 32, 20, &tech);
            let p64 = figure2_panel(4, 64, 20, &tech);
            p32.curves.len() + p64.curves.len()
        })
    });
}

fn coverage_figures_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_figures");
    group.sample_size(10);
    // One shared suite run with the full bank: the benches isolate the
    // per-figure aggregation + rendering, mirroring jetty-repro.
    let runs = bench_suite();
    group.bench_function("fig4a_exclude", |b| b.iter(|| figures::fig4a(&runs).render().len()));
    group.bench_function("fig4b_vector_exclude", |b| {
        b.iter(|| figures::fig4b(&runs).render().len())
    });
    group.bench_function("fig5a_include", |b| b.iter(|| figures::fig5a(&runs).render().len()));
    group.bench_function("fig5b_hybrid", |b| b.iter(|| figures::fig5b(&runs).render().len()));
    group.finish();
}

fn fig6_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_energy");
    group.sample_size(10);
    let runs = bench_suite();
    for (name, panel) in [
        ("a_snoop_serial", Fig6Panel::SnoopSerial),
        ("b_all_serial", Fig6Panel::AllSerial),
        ("c_snoop_parallel", Fig6Panel::SnoopParallel),
        ("d_all_parallel", Fig6Panel::AllParallel),
    ] {
        group.bench_function(name, |b| b.iter(|| figures::fig6(&runs, panel).render().len()));
    }
    group.finish();
}

fn suite_end_to_end_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_end_to_end");
    group.sample_size(10);
    // The full reproduction pipeline: ten apps, full filter bank,
    // every coverage figure and energy panel.
    group.bench_function("full_bank_all_figures", |b| {
        b.iter(|| {
            let runs = bench_suite();
            figures::fig4a(&runs).render().len()
                + figures::fig5a(&runs).render().len()
                + figures::fig5b(&runs).render().len()
                + figures::fig6(&runs, Fig6Panel::AllSerial).render().len()
        })
    });
    group.finish();
}

criterion_group!(benches, fig2_bench, coverage_figures_bench, fig6_bench, suite_end_to_end_bench);
criterion_main!(benches);
