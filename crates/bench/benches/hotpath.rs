//! Hot-path microbenchmarks: the three structures the snoop inner loop
//! lives in, pinned so layout regressions (re-introducing per-block heap
//! indirection, per-fill allocation, or SipHash version maps) show up as
//! throughput drops instead of silent wall-clock creep.
//!
//! * `l2_snoop_probe` / `l2_state` — the per-snoop tag+state lookup over
//!   the flat SoA arrays;
//! * `l2_fill_evict` — conflict-evicting fills through one reusable
//!   scratch buffer (the allocation-free steady state: throughput here is
//!   allocation-sensitive, since every fill would otherwise heap-allocate
//!   its eviction list);
//! * `version_map_*` — the checker's u64→u64 version map, the vendored
//!   open-addressed `FastMap` against `std::collections::HashMap`
//!   (SipHash) on an identical key stream.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jetty_core::{AddrSpace, FilterEvent, FilterSpec, MissScope, UnitAddr};
use jetty_sim::{FastMap, L2Cache, L2Config, Moesi};
use jetty_workloads::{apps, TraceGen};

/// Deterministic xorshift stream of unit addresses (35-bit space).
fn addresses(n: usize) -> Vec<u64> {
    let mut x = 0x243F_6A88_85A3_08D3u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 0x7_FFFF_FFFF
        })
        .collect()
}

/// A paper-sized L2 with a realistic resident population.
fn populated_l2(addrs: &[u64]) -> L2Cache {
    let mut l2 = L2Cache::new(L2Config::default());
    let mut scratch = Vec::new();
    for &a in &addrs[..addrs.len() / 2] {
        let unit = UnitAddr::new(a);
        if !l2.state(unit).is_valid() {
            l2.fill_into(unit, Moesi::Exclusive, 1, &mut scratch);
        }
    }
    l2
}

fn l2_probe_benches(c: &mut Criterion) {
    let addrs = addresses(1 << 16);
    let l2 = populated_l2(&addrs);
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(20);
    group.throughput(Throughput::Elements(addrs.len() as u64));

    group.bench_function("l2_snoop_probe", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &a in &addrs {
                let (state, block) = l2.snoop_probe(UnitAddr::new(a));
                hits += u64::from(state.is_valid()) + u64::from(block);
            }
            hits
        })
    });

    group.bench_function("l2_state", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &a in &addrs {
                hits += u64::from(l2.state(UnitAddr::new(a)).is_valid());
            }
            hits
        })
    });

    // Conflict-heavy fill/evict churn: every fill displaces a resident
    // block through the shared scratch buffer. Allocation-sensitive — a
    // per-fill Vec would show up directly in this number.
    group.bench_function("l2_fill_evict", |b| {
        b.iter_batched_ref(
            || (L2Cache::new(L2Config::new(1 << 16, 64, 2)), Vec::new()),
            |(l2, scratch)| {
                let mut evicted = 0u64;
                for &a in &addrs {
                    let unit = UnitAddr::new(a);
                    if !l2.state(unit).is_valid() {
                        l2.fill_into(unit, Moesi::Modified, 1, scratch);
                        evicted += scratch.len() as u64;
                    }
                }
                evicted
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn version_map_benches(c: &mut Criterion) {
    let addrs = addresses(1 << 15);
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(20);
    // Each element is one insert plus two lookups (the snoop path probes
    // roughly twice per update).
    group.throughput(Throughput::Elements(addrs.len() as u64));

    group.bench_function("version_map_fastmap", |b| {
        b.iter_batched_ref(
            FastMap::new,
            |map| {
                let mut sum = 0u64;
                for (v, &a) in addrs.iter().enumerate() {
                    map.insert(a, v as u64);
                    sum += map.get(a).unwrap_or(0);
                    sum += map.get(a ^ 1).unwrap_or(0);
                }
                sum
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("version_map_std_hashmap", |b| {
        b.iter_batched_ref(
            HashMap::<u64, u64>::new,
            |map| {
                let mut sum = 0u64;
                for (v, &a) in addrs.iter().enumerate() {
                    map.insert(a, v as u64);
                    sum += map.get(&a).copied().unwrap_or(0);
                    sum += map.get(&(a ^ 1)).copied().unwrap_or(0);
                }
                sum
            },
            BatchSize::SmallInput,
        )
    });

    // The unchecked-run fast path: the version maps stay empty, and every
    // bus fill still asks them for a version. An empty FastMap answers
    // without touching table storage.
    group.bench_function("version_map_empty_get", |b| {
        let map = FastMap::new();
        b.iter(|| {
            let mut sum = 0u64;
            for &a in &addrs {
                sum += map.get(a).unwrap_or(0);
            }
            sum
        })
    });
    group.finish();
}

/// A chunk-sized filter-event stream shaped like real bus traffic: mostly
/// snoops (all genuine misses, the taught case), with an allocate and a
/// deallocate every eight events to keep the deferred-rebuild paths hot.
fn event_batch(addrs: &[u64]) -> Vec<FilterEvent> {
    addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            match i % 8 {
                6 => FilterEvent::Allocate(UnitAddr::new(a)),
                // Deallocate exactly what the previous event allocated:
                // include filters assert alloc/dealloc balance per entry.
                7 => FilterEvent::Deallocate(UnitAddr::new(addrs[i - 1])),
                _ => FilterEvent::Snoop {
                    unit: UnitAddr::new(a),
                    would_hit: false,
                    scope: MissScope::Block,
                },
            }
        })
        .collect()
}

fn batch_probe_benches(c: &mut Criterion) {
    let addrs = addresses(1 << 13); // one System::CHUNK_LEN worth of events
    let events = event_batch(&addrs);
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(20);
    group.throughput(Throughput::Elements(events.len() as u64));

    // One batched replay through each paper filter family: the chunk-flush
    // inner loop `run_chunk` defers to. Steady-state by design — the
    // filter's arrays stay resident across iterations, exactly as they do
    // across consecutive chunks of one application.
    let cases = [
        ("batch_probe_exclude", FilterSpec::exclude(32, 4)),
        ("batch_probe_include", FilterSpec::include(10, 4, 7)),
        ("batch_probe_hybrid", FilterSpec::hybrid_vector(10, 4, 7, 32, 4, 4)),
    ];
    for (name, spec) in cases {
        let mut filter = spec.build_any(AddrSpace::default());
        group.bench_function(name, |b| {
            b.iter(|| {
                filter.apply_batch(&events, 1);
            })
        });
    }
    group.finish();
}

fn trace_chunk_benches(c: &mut Criterion) {
    let profile = apps::barnes();
    let scale = 0.005;
    let total = TraceGen::new(&profile, 4, scale).len();
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(20);
    group.throughput(Throughput::Elements(total));

    // Streamed generation into one reusable chunk buffer: the producer
    // side of the chunked runner loop.
    group.bench_function("trace_fill_chunk", |b| {
        b.iter_batched_ref(
            || (TraceGen::new(&profile, 4, scale), Vec::with_capacity(8192)),
            |(generator, buf)| {
                let mut refs = 0u64;
                while generator.fill_chunk(buf, 8192) {
                    refs += buf.len() as u64;
                }
                refs
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    l2_probe_benches,
    version_map_benches,
    batch_probe_benches,
    trace_chunk_benches
);
criterion_main!(benches);
