//! Intra-run sharding benchmarks: one application's chunk stream replayed
//! through the system at shard counts 1, 2 and 4, so both costs of the
//! sharded snoop replay stay pinned numbers:
//!
//! * `replay_shards_1` — the serial fast path. It must track the pre-shard
//!   runner (the shards==1 branch of `flush_filter_events` replays on the
//!   calling thread with zero spawn or merge overhead), so a regression
//!   here means the sharding plumbing leaked into the serial path;
//! * `replay_shards_2` / `replay_shards_4` — the scoped fan-out, spawn and
//!   join included. On a single-core host these measure pure overhead (the
//!   deterministic merge must still be correct, never fast); on multi-core
//!   hosts they show the per-node replay scaling the knob buys.
//!
//! Results are byte-identical at every count — only wall-clock moves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jetty_core::FilterSpec;
use jetty_sim::{System, SystemConfig};
use jetty_workloads::{apps, TraceGen};

fn shard_merge_benches(c: &mut Criterion) {
    // A small paper-bank run: big enough that every chunk carries real
    // deferred snoop work for all four nodes, small enough to iterate.
    let config = SystemConfig::paper_4way().without_checks();
    let specs = FilterSpec::paper_bank();
    let scale = 0.01;
    let profile = apps::barnes();
    let mut generator = TraceGen::new(&profile, config.cpus, scale);
    let mut chunks = Vec::new();
    let mut buf = Vec::with_capacity(System::CHUNK_LEN);
    while generator.fill_chunk(&mut buf, System::CHUNK_LEN) {
        chunks.push(buf.clone());
    }
    let refs: u64 = chunks.iter().map(|chunk| chunk.len() as u64).sum();

    let mut group = c.benchmark_group("shard_merge");
    group.sample_size(10);
    group.throughput(Throughput::Elements(refs));
    for shards in [1usize, 2, 4] {
        group.bench_function(format!("replay_shards_{shards}"), |b| {
            b.iter_batched_ref(
                || System::new(config, &specs).with_shards(shards),
                |system| {
                    for chunk in &chunks {
                        system.run_chunk(chunk);
                    }
                    system.run_stats().nodes.snoops_seen
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, shard_merge_benches);
criterion_main!(benches);
