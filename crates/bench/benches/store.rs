//! Run-store benches: append and scan throughput over representative
//! multi-table records. The store sits on the CI critical path (every
//! gated run appends once and the diff gate scans twice), so both
//! operations need a pinned cost profile — append is dominated by JSON
//! encoding plus one synced write, scan by frame validation and parsing.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jetty_bench::bench_suite_with;
use jetty_core::FilterSpec;
use jetty_experiments::results::ResultSet;
use jetty_experiments::store::{RunInfo, RunStore};
use jetty_experiments::{figures, tables};

/// A representative recorded set: the workload tables plus one figure,
/// mirroring what a real `--store` invocation appends.
fn sample_set() -> ResultSet {
    let runs = bench_suite_with(vec![
        FilterSpec::exclude(8, 2),
        FilterSpec::hybrid_scalar(10, 4, 7, 32, 4),
        FilterSpec::hybrid_scalar(9, 4, 7, 32, 4),
        FilterSpec::hybrid_scalar(8, 4, 7, 32, 4),
    ]);
    let mut set = ResultSet::new();
    set.push(tables::table1());
    set.push(tables::table2(&runs));
    set.push(tables::table3(&runs));
    set.push(figures::fig6(&runs, figures::Fig6Panel::AllSerial));
    set
}

fn sample_info() -> RunInfo {
    RunInfo {
        unix_time: 0,
        git_rev: "benchrev".to_owned(),
        command: "all".to_owned(),
        options: "cpus4-scale0.02-sb-moesi-paperbank22".to_owned(),
        timing_ms: 1000,
    }
}

/// A unique temp path per call (the bench harness may re-enter setup).
fn temp_store_path() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "jetty_store_bench_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn append_bench(c: &mut Criterion) {
    let set = sample_set();
    let info = sample_info();
    let cells: u64 = set.tables.iter().flat_map(|t| &t.rows).map(|r| r.len() as u64).sum();

    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    group.bench_function("append_record", |b| {
        b.iter_batched_ref(
            || {
                let path = temp_store_path();
                let _ = fs::remove_file(&path);
                (RunStore::open(&path), path)
            },
            |(store, path)| {
                let outcome = store.append(&info, &set).expect("append");
                let _ = fs::remove_file(&*path);
                outcome.seq
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn scan_bench(c: &mut Criterion) {
    let set = sample_set();
    let info = sample_info();

    // A populated store: 100 records of the representative set.
    const RECORDS: u64 = 100;
    let path = temp_store_path();
    let _ = fs::remove_file(&path);
    let store = RunStore::open(&path);
    for _ in 0..RECORDS {
        store.append(&info, &set).expect("append");
    }
    let bytes = fs::metadata(&path).expect("store metadata").len();

    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function(format!("scan_{RECORDS}_records"), |b| {
        b.iter(|| {
            let scan = store.scan().expect("scan");
            assert!(scan.damage.is_none());
            scan.records.len()
        })
    });
    group.finish();
    let _ = fs::remove_file(&path);
}

criterion_group!(benches, append_bench, scan_bench);
criterion_main!(benches);
