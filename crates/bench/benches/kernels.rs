//! SIMD kernel microbenchmarks: every kernel pair from
//! `jetty_core::kernels` pinned side by side at both dispatch levels, so
//! the AVX2 path's advantage (or a regression that erases it) is a
//! number in CI output rather than a guess. On hosts without AVX2 only
//! the `_scalar` series runs.
//!
//! * `find_key_*` — the 4-lane set-window scan against the branchless
//!   scalar reverse scan (the EJ/VEJ way find). Measured through
//!   `find_key_with`, the level-forcing entry: the public `find_key` is
//!   pinned to the scalar scan (a standalone 4-wide lookup is too small
//!   to amortise vector setup — this bench is the evidence), so only the
//!   `_with` bypass can still exercise the AVX2 lane find side by side;
//! * `ej_replay_*` — the in-place chunk replay the filters feed
//!   (find + LRU stamp + record/victim bookkeeping per snoop);
//! * `pbit_test_many_*` — IJ's batched packed-bitmap probe;
//! * `snoop_probe_many_*` — the packed L2 probe over the hot-record
//!   array (tag + valid/state meta in one `u128` per block).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jetty_core::kernels::{self, EjGeom, SimdLevel};
use jetty_core::{FilterEvent, MissScope, UnitAddr};

/// Deterministic xorshift stream of unit addresses (35-bit space), the
/// same stream the `hotpath` group uses.
fn addresses(n: usize) -> Vec<u64> {
    let mut x = 0x243F_6A88_85A3_08D3u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 0x7_FFFF_FFFF
        })
        .collect()
}

/// The dispatch levels available on this host, labelled for bench names.
fn levels() -> Vec<(&'static str, SimdLevel)> {
    let mut levels = vec![("scalar", SimdLevel::SCALAR)];
    if let Some(avx2) = SimdLevel::avx2() {
        levels.push(("avx2", avx2));
    }
    levels
}

/// An EJ-32x4-shaped flat key array, half the ways populated and the
/// rest left at the sentinel, plus per-probe (base, tag) pairs.
fn ej_fixture(addrs: &[u64]) -> (Vec<u64>, Vec<(u32, u64)>) {
    const SETS: u64 = 32;
    const WAYS: usize = 4;
    let mut keys = vec![u64::MAX; SETS as usize * WAYS];
    for (i, &a) in addrs.iter().take(keys.len() / 2).enumerate() {
        let set = (a % SETS) as usize;
        let tag = a / SETS;
        keys[set * WAYS + i % WAYS] = tag << 1 | 1;
    }
    let probes = addrs.iter().map(|&a| (((a % SETS) as u32) * WAYS as u32, a / SETS)).collect();
    (keys, probes)
}

fn find_key_benches(c: &mut Criterion) {
    let addrs = addresses(1 << 13);
    let (keys, probes) = ej_fixture(&addrs);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.throughput(Throughput::Elements(probes.len() as u64));
    for (name, level) in levels() {
        group.bench_function(format!("find_key_{name}"), |b| {
            b.iter(|| {
                let mut hits = 0u64;
                for &(base, tag) in &probes {
                    let window = &keys[base as usize..base as usize + 4];
                    hits += u64::from(kernels::find_key_with(level, window, tag).is_some());
                }
                hits
            })
        });
    }
    group.finish();
}

fn ej_replay_benches(c: &mut Criterion) {
    let addrs = addresses(1 << 13);
    let (keys, _) = ej_fixture(&addrs);
    // Geometry matching the fixture: block == unit, set = addr % 32,
    // tag = addr / 32 — exactly what `ej_fixture` populated.
    let geom = EjGeom { block_shift: 0, set_mask: 31, set_bits: 5 };
    let snoops: Vec<FilterEvent> = addrs
        .iter()
        .map(|&a| FilterEvent::Snoop {
            unit: UnitAddr::new(a),
            would_hit: false,
            scope: MissScope::Block,
        })
        .collect();
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.throughput(Throughput::Elements(snoops.len() as u64));
    for (name, level) in levels() {
        // Steady-state: the arrays persist across iterations, as one
        // filter's do across consecutive chunks.
        let mut keys = keys.clone();
        let mut stamps = vec![0u64; keys.len()];
        let mut clock = 0u64;
        group.bench_function(format!("ej_replay_{name}"), |b| {
            b.iter(|| {
                let out =
                    kernels::ej_replay(level, &mut keys, &mut stamps, 4, clock, geom, &snoops, &[]);
                clock = out.clock;
                out.filtered
            })
        });
    }
    group.finish();
}

fn pbit_test_many_benches(c: &mut Criterion) {
    // IJ-10x4x7 geometry: 4 sub-arrays of 1024 entries, half the bits
    // set so both outcomes occur.
    let units = addresses(1 << 13);
    let pbits: Vec<u64> =
        (0..(4usize << 10) / 64).map(|i| 0x5555_5555_5555_5555u64.rotate_left(i as u32)).collect();
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.throughput(Throughput::Elements(units.len() as u64));
    for (name, level) in levels() {
        let mut absent = Vec::with_capacity(units.len());
        group.bench_function(format!("pbit_test_many_{name}"), |b| {
            b.iter(|| {
                absent.clear();
                kernels::pbit_test_many(level, &pbits, &units, 10, 4, 7, &mut absent);
                absent.iter().filter(|&&a| a).count()
            })
        });
    }
    group.finish();
}

fn snoop_probe_many_benches(c: &mut Criterion) {
    // Paper L2 geometry: 16384 blocks (index_bits 14), 2 subblocks
    // (sub_bits 1), half the sets resident.
    const INDEX_BITS: u32 = 14;
    let units = addresses(1 << 13);
    let blocks = 1usize << INDEX_BITS;
    let mut hot = vec![0u128; blocks];
    for &a in units.iter().take(blocks / 2) {
        let block = a >> 1;
        let idx = (block as usize) & (blocks - 1);
        let tag = block >> INDEX_BITS;
        let meta = 1u64 << (a & 1);
        hot[idx] = tag as u128 | ((meta as u128) << 64);
    }
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.throughput(Throughput::Elements(units.len() as u64));
    for (name, level) in levels() {
        let mut out = Vec::with_capacity(units.len());
        group.bench_function(format!("snoop_probe_many_{name}"), |b| {
            b.iter(|| {
                out.clear();
                kernels::snoop_probe_many(level, &hot, &units, 1, INDEX_BITS, &mut out);
                out.iter().filter(|&&f| f != 0).count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    find_key_benches,
    ej_replay_benches,
    pbit_test_many_benches,
    snoop_probe_many_benches
);
criterion_main!(benches);
