//! # jetty-bench — benchmark support
//!
//! The Criterion benchmarks live in `benches/`; this library provides the
//! shared reduced-scale run helper so every table/figure bench regenerates
//! its artifact from the same code path the `jetty-repro` binary uses,
//! just over shorter traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jetty_core::FilterSpec;
use jetty_experiments::{run_suite, AppRun, RunOptions};

/// Trace scale used by the table/figure regeneration benches: large enough
/// to exercise steady-state behaviour, small enough to keep `cargo bench`
/// in minutes.
pub const BENCH_SCALE: f64 = 0.02;

/// Runs the full suite at bench scale with the complete paper bank.
pub fn bench_suite() -> Vec<AppRun> {
    run_suite(&RunOptions::paper().with_scale(BENCH_SCALE))
}

/// Runs the full suite at bench scale with a single configuration.
pub fn bench_suite_with(specs: Vec<FilterSpec>) -> Vec<AppRun> {
    run_suite(&RunOptions::paper().with_scale(BENCH_SCALE).with_specs(specs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_suite_produces_ten_runs() {
        let runs = bench_suite_with(vec![FilterSpec::exclude(8, 2)]);
        assert_eq!(runs.len(), 10);
    }
}
