//! Shard-count invariance: `System::with_shards` fans the per-chunk snoop
//! replay out to slices of the node array, and that fan-out must be
//! *invisible* — a sharded run and a serial run over the same trace must
//! agree on every observable: protocol statistics, L2 states, and every
//! filter's probes/filtered/would-miss counts and per-node array
//! activity. The serial pass already records every node's events in
//! global bus order and the replay of one node never reads another, so
//! any shard count (including counts exceeding the node count) is just a
//! different schedule over identical per-node work; this suite pins that
//! with arbitrary traces, arbitrary chunk boundaries, and every
//! pluggable protocol.

use jetty_core::{AddrSpace, FilterSpec};
use jetty_sim::{CheckLevel, L1Config, L2Config, MemRef, Op, ProtocolKind, System, SystemConfig};
use proptest::prelude::*;

/// The tiny thrashing geometry from `batch_equivalence`, checks off so
/// `run_chunk` takes the batched (and thus shardable) path.
fn tiny_config(cpus: usize, protocol: ProtocolKind) -> SystemConfig {
    SystemConfig {
        cpus,
        l1: L1Config::new(256, 32),
        l2: L2Config::new(1024, 64, 2),
        wb_entries: 2,
        addr: AddrSpace::default(),
        check: CheckLevel::Off,
        protocol,
    }
}

/// Reference strategy over a small, highly contended address range.
fn ref_strategy(cpus: usize, units: u64) -> impl Strategy<Value = MemRef> {
    (0..cpus, any::<bool>(), 0..units).prop_map(|(cpu, write, unit)| MemRef {
        cpu,
        op: if write { Op::Write } else { Op::Read },
        addr: unit * 32,
    })
}

/// Runs `refs` through a serial (shards=1) system and one system per
/// sharded count, then asserts every observable matches.
fn assert_shards_match_serial(
    refs: &[MemRef],
    chunk_len: usize,
    cpus: usize,
    protocol: ProtocolKind,
    specs: &[FilterSpec],
    units: u64,
) {
    let mut serial = System::new(tiny_config(cpus, protocol), specs);
    for chunk in refs.chunks(chunk_len) {
        serial.run_chunk(chunk);
    }
    let serial_stats = serial.run_stats();
    let serial_reports = serial.filter_reports();

    // 2 and 4 split the node array evenly and unevenly; 7 exceeds the
    // node count and must clamp to one node per shard.
    for shards in [2usize, 4, 7] {
        let mut sharded = System::new(tiny_config(cpus, protocol), specs).with_shards(shards);
        for chunk in refs.chunks(chunk_len) {
            sharded.run_chunk(chunk);
        }
        assert_eq!(
            sharded.run_stats(),
            serial_stats,
            "{protocol} shards={shards}: protocol stats diverged"
        );
        for cpu in 0..cpus {
            for unit in 0..units {
                assert_eq!(
                    sharded.l2_state(cpu, unit * 32),
                    serial.l2_state(cpu, unit * 32),
                    "{protocol} shards={shards}: node {cpu} unit {unit} state diverged"
                );
            }
        }
        let reports = sharded.filter_reports();
        assert_eq!(reports.len(), serial_reports.len());
        for (b, s) in reports.iter().zip(&serial_reports) {
            assert_eq!(b.label, s.label);
            assert_eq!(b.probes, s.probes, "{}: probe count diverged", b.label);
            assert_eq!(b.filtered, s.filtered, "{}: filtered count diverged", b.label);
            assert_eq!(b.would_miss, s.would_miss, "{}: would-miss diverged", b.label);
            assert_eq!(b.activities, s.activities, "{}: array activity diverged", b.label);
        }
        sharded.verify_filter_consistency();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The full paper bank over contended traffic: sharded replay must be
    /// observation-identical for every protocol, any chunk boundary, and
    /// shard counts both dividing and exceeding the node count.
    #[test]
    fn paper_bank_sharded_equals_serial(
        refs in prop::collection::vec(ref_strategy(4, 64), 1..400),
        chunk_len in 1usize..96,
    ) {
        for protocol in ProtocolKind::ALL {
            assert_shards_match_serial(
                &refs,
                chunk_len,
                4,
                protocol,
                &FilterSpec::paper_bank(),
                64,
            );
        }
    }

    /// Eviction-heavy hybrid traffic on an 8-way SMP: odd node counts per
    /// shard (8 nodes over 7 shards) stress the contiguous-slice split
    /// and the base-index bookkeeping of the merge.
    #[test]
    fn hybrid_sharded_equals_serial_under_eviction_pressure(
        refs in prop::collection::vec(ref_strategy(8, 4096), 1..300),
        chunk_len in 1usize..64,
    ) {
        for protocol in ProtocolKind::ALL {
            assert_shards_match_serial(
                &refs,
                chunk_len,
                8,
                protocol,
                &[FilterSpec::hybrid_scalar(8, 4, 7, 16, 2)],
                64,
            );
        }
    }
}

/// A gated sharded run that expires mid-trace must report the stop instead
/// of deadlocking or merging partial work silently — and the same system
/// keeps working if resumed with an unbounded gate (shard workers check
/// the gate per node, so a stop leaves whole-node units of work undone,
/// never a half-replayed node).
#[test]
fn sharded_replay_observes_the_gate() {
    let refs: Vec<MemRef> = (0..1000u64)
        .map(|i| MemRef {
            cpu: (i % 4) as usize,
            op: if i % 3 == 0 { Op::Write } else { Op::Read },
            addr: (i % 48) * 32,
        })
        .collect();
    let mut sys =
        System::new(tiny_config(4, ProtocolKind::Moesi), &FilterSpec::paper_bank()).with_shards(4);
    let expired = jetty_sim::RunGate::with_budget(std::time::Duration::ZERO);
    let stop = sys.run_chunk_gated(&refs, &expired).unwrap_err();
    assert!(
        matches!(stop, jetty_sim::GateStop::DeadlineExpired { budget_ms: 0 }),
        "unexpected stop: {stop:?}"
    );
}
