//! Batched-vs-scalar equivalence: [`System::run_chunk`] defers the filter
//! bank to a per-chunk event replay, and that replay must be *invisible* —
//! a chunked run and a reference-at-a-time scalar run over the same trace
//! must agree on every observable: protocol statistics, L2 states, and
//! every filter's probes/filtered/would-miss counts and per-node array
//! activity. This is the property the golden-output byte-identity checks
//! sample at three scales; here proptest hammers it with arbitrary traces,
//! arbitrary chunk boundaries, and every pluggable protocol.

use jetty_core::{AddrSpace, FilterSpec};
use jetty_sim::{CheckLevel, L1Config, L2Config, MemRef, Op, ProtocolKind, System, SystemConfig};
use proptest::prelude::*;

/// The tiny thrashing geometry from `protocol_fuzz`, but with checks off:
/// `CheckLevel::Full` forces the scalar fallback inside `run_chunk`, and
/// this suite exists to exercise the *batched* path.
fn tiny_config(cpus: usize, protocol: ProtocolKind) -> SystemConfig {
    SystemConfig {
        cpus,
        l1: L1Config::new(256, 32),
        l2: L2Config::new(1024, 64, 2),
        wb_entries: 2,
        addr: AddrSpace::default(),
        check: CheckLevel::Off,
        protocol,
    }
}

/// Reference strategy over a small, highly contended address range.
fn ref_strategy(cpus: usize, units: u64) -> impl Strategy<Value = MemRef> {
    (0..cpus, any::<bool>(), 0..units).prop_map(|(cpu, write, unit)| MemRef {
        cpu,
        op: if write { Op::Write } else { Op::Read },
        addr: unit * 32,
    })
}

/// Runs `refs` through a batched system (chunks of `chunk_len`) and a
/// scalar one, then asserts every observable matches.
fn assert_batched_matches_scalar(
    refs: &[MemRef],
    chunk_len: usize,
    protocol: ProtocolKind,
    specs: &[FilterSpec],
    units: u64,
) {
    let mut batched = System::new(tiny_config(4, protocol), specs);
    let mut scalar = System::new(tiny_config(4, protocol), specs);

    for chunk in refs.chunks(chunk_len) {
        batched.run_chunk(chunk);
    }
    for &r in refs {
        scalar.apply(r);
    }

    assert_eq!(batched.run_stats(), scalar.run_stats(), "{protocol}: protocol stats diverged");
    for cpu in 0..4 {
        for unit in 0..units {
            assert_eq!(
                batched.l2_state(cpu, unit * 32),
                scalar.l2_state(cpu, unit * 32),
                "{protocol}: node {cpu} unit {unit} state diverged"
            );
        }
    }
    let b_reports = batched.filter_reports();
    let s_reports = scalar.filter_reports();
    assert_eq!(b_reports.len(), s_reports.len());
    for (b, s) in b_reports.iter().zip(&s_reports) {
        assert_eq!(b.label, s.label);
        assert_eq!(b.probes, s.probes, "{}: probe count diverged", b.label);
        assert_eq!(b.filtered, s.filtered, "{}: filtered count diverged", b.label);
        assert_eq!(b.would_miss, s.would_miss, "{}: would-miss denominator diverged", b.label);
        assert_eq!(b.activities, s.activities, "{}: per-node array activity diverged", b.label);
    }
    batched.verify_filter_consistency();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The full paper bank (include, exclude, vector-exclude and hybrid
    /// variants all at once) over contended traffic: batched replay must
    /// be observation-identical for every protocol and any chunk boundary,
    /// including chunk lengths that leave a partial final chunk.
    #[test]
    fn paper_bank_batched_equals_scalar(
        refs in prop::collection::vec(ref_strategy(4, 64), 1..400),
        chunk_len in 1usize..96,
    ) {
        for protocol in ProtocolKind::ALL {
            assert_batched_matches_scalar(
                &refs,
                chunk_len,
                protocol,
                &FilterSpec::paper_bank(),
                64,
            );
        }
    }

    /// Sparse traffic through a hybrid filter: exercises eager exclude
    /// allocation inside the replay (the one filter whose probe mutates
    /// state) plus eviction-driven deallocate events.
    #[test]
    fn hybrid_batched_equals_scalar_under_eviction_pressure(
        refs in prop::collection::vec(ref_strategy(4, 4096), 1..300),
        chunk_len in 1usize..64,
    ) {
        for protocol in ProtocolKind::ALL {
            assert_batched_matches_scalar(
                &refs,
                chunk_len,
                protocol,
                &[FilterSpec::hybrid_scalar(8, 4, 7, 16, 2)],
                64,
            );
        }
    }

    /// An empty filter bank takes the scalar fallback inside `run_chunk`;
    /// the protocol path must still be identical to `apply`.
    #[test]
    fn empty_bank_chunks_match_scalar(
        refs in prop::collection::vec(ref_strategy(4, 32), 1..300),
        chunk_len in 1usize..64,
    ) {
        assert_batched_matches_scalar(&refs, chunk_len, ProtocolKind::Moesi, &[], 32);
    }
}

/// Under `CheckLevel::Full`, `run_chunk` must fall back to scalar probing
/// so the filter-safety assertion still fires *at* the offending access —
/// and the per-access checkers still see every intermediate state. This
/// pins the fallback condition documented in ARCHITECTURE §2a.1.
#[test]
fn full_check_runs_still_verify_through_run_chunk() {
    let config = SystemConfig { check: CheckLevel::Full, ..tiny_config(4, ProtocolKind::Moesi) };
    let mut sys = System::new(config, &FilterSpec::paper_bank());
    let refs: Vec<MemRef> = (0..200u64)
        .map(|i| MemRef {
            cpu: (i % 4) as usize,
            op: if i % 3 == 0 { Op::Write } else { Op::Read },
            addr: (i % 48) * 32,
        })
        .collect();
    sys.run_chunk(&refs);
    sys.verify_inclusion();
    sys.verify_filter_consistency();
}
