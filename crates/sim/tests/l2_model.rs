//! Model-based equivalence: the flattened structure-of-arrays [`L2Cache`]
//! against a naive `BTreeMap`-backed reference model.
//!
//! The hot-path L2 stores state as flat `tags`/`valid`/`states`/`versions`
//! arrays with packed valid bitmasks; the reference model below is the
//! slowest, most obviously correct implementation of the same contract
//! (one map entry per valid unit, whole-block eviction by scanning). Random
//! fill/probe/evict/set-state/set-version sequences must drive both through
//! identical observable behaviour — states, versions, block presence,
//! eviction sets, population and enumeration.

use std::collections::BTreeMap;

use jetty_core::UnitAddr;
use jetty_sim::{EvictedUnit, L2Cache, L2Config, Moesi};
use proptest::prelude::*;

/// Geometry shared by the model and the cache under test: 8 blocks of
/// 64 bytes, 2 subblocks — tiny, so conflicts are constant.
const BLOCKS: u64 = 8;
const SUBBLOCKS: u64 = 2;

fn l2() -> L2Cache {
    L2Cache::new(L2Config::new((BLOCKS * 64) as usize, 64, SUBBLOCKS as usize))
}

/// The naive reference: one `BTreeMap` entry per *valid* unit, keyed by
/// unit address. Direct-mapped geometry is recomputed per operation.
#[derive(Default)]
struct ModelL2 {
    units: BTreeMap<u64, (Moesi, u64)>,
}

impl ModelL2 {
    fn index_of(unit: u64) -> u64 {
        (unit / SUBBLOCKS) % BLOCKS
    }

    fn block_of(unit: u64) -> u64 {
        unit / SUBBLOCKS
    }

    fn state(&self, unit: u64) -> Moesi {
        self.units.get(&unit).map_or(Moesi::Invalid, |&(s, _)| s)
    }

    fn version(&self, unit: u64) -> u64 {
        self.units.get(&unit).map_or(0, |&(_, v)| v)
    }

    fn block_present(&self, unit: u64) -> bool {
        let block = Self::block_of(unit);
        (0..SUBBLOCKS).any(|s| self.units.contains_key(&(block * SUBBLOCKS + s)))
    }

    fn population(&self) -> usize {
        self.units.len()
    }

    /// Mirrors [`L2Cache::fill_into`]: evicts every valid unit of a
    /// conflicting resident block (ascending unit order), then installs.
    fn fill(&mut self, unit: u64, state: Moesi, version: u64) -> Vec<EvictedUnit> {
        let idx = Self::index_of(unit);
        let block = Self::block_of(unit);
        // A resident conflicting block is any valid unit with the same
        // index but a different block address.
        let victims: Vec<u64> = self
            .units
            .keys()
            .copied()
            .filter(|&u| Self::index_of(u) == idx && Self::block_of(u) != block)
            .collect();
        let mut evicted = Vec::new();
        for u in victims {
            let (s, v) = self.units.remove(&u).expect("victim key just enumerated");
            evicted.push(EvictedUnit { unit: UnitAddr::new(u), state: s, version: v });
        }
        assert!(!self.units.contains_key(&unit), "model fill of already-valid unit");
        self.units.insert(unit, (state, version));
        evicted
    }

    fn invalidate(&mut self, unit: u64) -> (Moesi, u64) {
        self.units.remove(&unit).expect("model invalidate of absent unit")
    }

    fn set_state(&mut self, unit: u64, state: Moesi) {
        self.units.get_mut(&unit).expect("model set_state on absent unit").0 = state;
    }

    fn set_version(&mut self, unit: u64, version: u64) {
        self.units.get_mut(&unit).expect("model set_version on absent unit").1 = version;
    }
}

/// One randomly generated driver step. Mutating ops pick a unit and act
/// only when the precondition holds (fill on absent, invalidate/set on
/// present), so every generated sequence is legal for both
/// implementations.
#[derive(Clone, Copy, Debug)]
enum Step {
    Probe(u64),
    Fill(u64, Moesi, u64),
    Invalidate(u64),
    SetState(u64, Moesi),
    SetVersion(u64, u64),
}

fn moesi_from(k: u8) -> Moesi {
    match k % 4 {
        0 => Moesi::Modified,
        1 => Moesi::Owned,
        2 => Moesi::Exclusive,
        _ => Moesi::Shared,
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Units span 4x the cache's block capacity so tag conflicts dominate.
    let units = BLOCKS * SUBBLOCKS * 4;
    (0u8..5, 0..units, any::<u8>(), 1u64..1000).prop_map(|(op, unit, k, version)| match op {
        0 => Step::Probe(unit),
        1 => Step::Fill(unit, moesi_from(k), version),
        2 => Step::Invalidate(unit),
        3 => Step::SetState(unit, moesi_from(k)),
        _ => Step::SetVersion(unit, version),
    })
}

/// Asserts every observable of both implementations agrees for `unit`.
fn assert_unit_agrees(real: &L2Cache, model: &ModelL2, unit: u64) {
    let u = UnitAddr::new(unit);
    assert_eq!(real.state(u), model.state(unit), "state of unit {unit}");
    assert_eq!(real.version(u), model.version(unit), "version of unit {unit}");
    assert_eq!(real.block_present(u), model.block_present(unit), "block_present of unit {unit}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random legal op sequences drive the SoA cache and the map-backed
    /// model into identical observable states at every step.
    #[test]
    fn flattened_l2_matches_the_btreemap_model(
        steps in prop::collection::vec(step_strategy(), 1..400)
    ) {
        let mut real = l2();
        let mut model = ModelL2::default();
        let mut scratch = Vec::new();
        let universe = BLOCKS * SUBBLOCKS * 4;
        for step in steps {
            match step {
                Step::Probe(unit) => assert_unit_agrees(&real, &model, unit),
                Step::Fill(unit, state, version) => {
                    if model.state(unit).is_valid() {
                        continue; // fill precondition: unit absent
                    }
                    real.fill_into(UnitAddr::new(unit), state, version, &mut scratch);
                    let expected = model.fill(unit, state, version);
                    prop_assert_eq!(&scratch, &expected, "eviction set for fill of {}", unit);
                }
                Step::Invalidate(unit) => {
                    if !model.state(unit).is_valid() {
                        continue;
                    }
                    let got = real.invalidate(UnitAddr::new(unit));
                    let expected = model.invalidate(unit);
                    prop_assert_eq!(got, expected, "invalidate({}) prior", unit);
                }
                Step::SetState(unit, state) => {
                    if !model.state(unit).is_valid() {
                        continue;
                    }
                    real.set_state(UnitAddr::new(unit), state);
                    model.set_state(unit, state);
                }
                Step::SetVersion(unit, version) => {
                    if !model.state(unit).is_valid() {
                        continue;
                    }
                    real.set_version(UnitAddr::new(unit), version);
                    model.set_version(unit, version);
                }
            }
            // Global observables after every step.
            prop_assert_eq!(real.population(), model.population());
        }
        // Final exhaustive sweep over the whole address universe plus the
        // enumeration surface.
        for unit in 0..universe {
            assert_unit_agrees(&real, &model, unit);
        }
        let mut enumerated: Vec<(u64, Moesi)> =
            real.valid_units().map(|(u, s)| (u.raw(), s)).collect();
        enumerated.sort_unstable_by_key(|&(u, _)| u);
        let expected: Vec<(u64, Moesi)> =
            model.units.iter().map(|(&u, &(s, _))| (u, s)).collect();
        prop_assert_eq!(enumerated, expected, "valid_units enumeration");
    }

    /// The allocating `fill` wrapper and the scratch-buffer `fill_into`
    /// report identical eviction sets.
    #[test]
    fn fill_wrapper_matches_fill_into(
        fills in prop::collection::vec((0..BLOCKS * SUBBLOCKS * 4, 1u64..100), 1..60)
    ) {
        let mut a = l2();
        let mut b = l2();
        let mut scratch = Vec::new();
        for (unit, version) in fills {
            if a.state(UnitAddr::new(unit)).is_valid() {
                continue;
            }
            let wrapped = a.fill(UnitAddr::new(unit), Moesi::Exclusive, version);
            b.fill_into(UnitAddr::new(unit), Moesi::Exclusive, version, &mut scratch);
            prop_assert_eq!(&wrapped, &scratch);
        }
    }
}
