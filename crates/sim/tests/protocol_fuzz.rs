//! Protocol fuzzing: random reference streams through the fully checked
//! system, for **every** pluggable protocol (MOESI, MESI, MSI). Every
//! access runs under the version-exact coherence checker, the protocol's
//! single-writer and state-subset invariants, inclusion checking and the
//! filter-safety assertion — any protocol bug panics.
//!
//! The tiny cache geometry forces constant evictions, writebacks,
//! writeback-buffer hits and invalidation races, which is where the bugs
//! live (both protocol bugs found during bring-up reproduce here within a
//! handful of cases when reverted).

use jetty_core::{AddrSpace, FilterSpec};
use jetty_sim::{
    CheckLevel, L1Config, L2Config, MemRef, Moesi, Op, ProtocolKind, System, SystemConfig,
};
use proptest::prelude::*;

/// A tiny checked SMP: 8-line L1s, 16-block L2s, 2-entry writeback
/// buffers — everything thrashes.
fn tiny_config(cpus: usize, protocol: ProtocolKind) -> SystemConfig {
    SystemConfig {
        cpus,
        l1: L1Config::new(256, 32),
        l2: L2Config::new(1024, 64, 2),
        wb_entries: 2,
        addr: AddrSpace::default(),
        check: CheckLevel::Full,
        protocol,
    }
}

/// Reference strategy over a small, highly contended address range.
fn ref_strategy(cpus: usize, units: u64) -> impl Strategy<Value = MemRef> {
    (0..cpus, any::<bool>(), 0..units).prop_map(|(cpu, write, unit)| MemRef {
        cpu,
        op: if write { Op::Write } else { Op::Read },
        addr: unit * 32,
    })
}

/// Exhaustive protocol-specific state audit: no node may hold a state
/// outside its protocol's subset, for any unit either cache can name.
fn assert_states_in_subset(sys: &System, protocol: ProtocolKind, units: u64) {
    let allowed = protocol.protocol();
    for cpu in 0..sys.cpus() {
        for unit in 0..units {
            let state = sys.l2_state(cpu, unit * 32);
            assert!(allowed.allows(state), "{protocol}: node {cpu} holds {state} for unit {unit}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Contended random traffic on a 4-way SMP with the full filter bank,
    /// under every protocol: no checker assertion may fire, and the
    /// summary statistics must be internally consistent.
    #[test]
    fn contended_traffic_stays_coherent(
        refs in prop::collection::vec(ref_strategy(4, 64), 1..600)
    ) {
        for protocol in ProtocolKind::ALL {
            let mut sys = System::new(tiny_config(4, protocol), &FilterSpec::paper_bank());
            for r in &refs {
                sys.apply(*r);
            }
            sys.verify_inclusion();
            sys.verify_filter_consistency();
            assert_states_in_subset(&sys, protocol, 64);

            let run = sys.run_stats();
            prop_assert_eq!(run.nodes.l1_accesses, refs.len() as u64);
            prop_assert_eq!(run.nodes.snoops_seen, run.system.transactions() * 3);
            prop_assert_eq!(
                run.nodes.snoop_hits + run.nodes.snoop_would_miss,
                run.nodes.snoops_seen
            );
            prop_assert!(run.nodes.l1_hits <= run.nodes.l1_accesses);
            prop_assert!(run.nodes.l2_local_hits <= run.nodes.l2_local_accesses);
            if protocol == ProtocolKind::Moesi {
                // Only MOESI keeps dirty supplies away from memory.
                prop_assert_eq!(run.nodes.snoop_memory_writebacks, 0);
            }
        }
    }

    /// Wider, sparser traffic: exercises evictions of all states and the
    /// writeback-forwarding path, under every protocol.
    #[test]
    fn sparse_traffic_stays_coherent(
        refs in prop::collection::vec(ref_strategy(4, 4096), 1..400)
    ) {
        for protocol in ProtocolKind::ALL {
            let mut sys = System::new(
                tiny_config(4, protocol),
                &[FilterSpec::hybrid_scalar(8, 4, 7, 16, 2)],
            );
            for r in &refs {
                sys.apply(*r);
            }
            sys.verify_inclusion();
            sys.verify_filter_consistency();
        }
    }

    /// An 8-way bus with migratory-style ping-pong on a handful of units,
    /// under every protocol (migratory sharing is where O/E/S differ most).
    #[test]
    fn eight_way_pingpong_stays_coherent(
        order in prop::collection::vec((0..8usize, 0..8u64), 1..300)
    ) {
        for protocol in ProtocolKind::ALL {
            let mut sys =
                System::new(tiny_config(8, protocol), &[FilterSpec::include(8, 4, 7)]);
            for &(cpu, unit) in &order {
                sys.access(cpu, Op::Read, unit * 32);
                sys.access(cpu, Op::Write, unit * 32);
            }
            assert_states_in_subset(&sys, protocol, 8);
            let run = sys.run_stats();
            prop_assert_eq!(run.nodes.snoops_seen, run.system.transactions() * 7);
        }
    }

    /// Remote-hit histogram is a partition of the transactions and never
    /// reports more copies than remote caches exist — for every protocol.
    #[test]
    fn remote_hit_histogram_is_a_partition(
        refs in prop::collection::vec(ref_strategy(4, 32), 1..400)
    ) {
        for protocol in ProtocolKind::ALL {
            let mut sys = System::new(tiny_config(4, protocol), &[]);
            for r in &refs {
                sys.apply(*r);
            }
            let stats = sys.system_stats();
            prop_assert_eq!(stats.remote_hit_hist.len(), 4);
            let total: u64 = stats.remote_hit_hist.iter().sum();
            prop_assert_eq!(total, stats.transactions());
        }
    }

    /// Determinism: identical traces through identically configured
    /// systems produce identical statistics and filter activity, under
    /// every protocol.
    #[test]
    fn simulation_is_deterministic(
        refs in prop::collection::vec(ref_strategy(4, 128), 1..300)
    ) {
        for protocol in ProtocolKind::ALL {
            let spec = FilterSpec::hybrid_vector(9, 4, 7, 16, 4, 4);
            let mut a = System::new(tiny_config(4, protocol), &[spec]);
            let mut b = System::new(tiny_config(4, protocol), &[spec]);
            for r in &refs {
                a.apply(*r);
                b.apply(*r);
            }
            prop_assert_eq!(a.run_stats().nodes, b.run_stats().nodes);
            prop_assert_eq!(
                a.filter_reports()[0].activities.len(),
                b.filter_reports()[0].activities.len()
            );
            prop_assert_eq!(a.filter_reports()[0].filtered, b.filter_reports()[0].filtered);
        }
    }

    /// Filters are transparent: attaching any bank never changes protocol
    /// statistics — the bystander property holds for every protocol.
    #[test]
    fn filters_are_transparent(
        refs in prop::collection::vec(ref_strategy(4, 64), 1..300)
    ) {
        for protocol in ProtocolKind::ALL {
            let mut with = System::new(tiny_config(4, protocol), &FilterSpec::paper_bank());
            let mut without = System::new(tiny_config(4, protocol), &[]);
            for r in &refs {
                with.apply(*r);
                without.apply(*r);
            }
            prop_assert_eq!(with.run_stats().nodes, without.run_stats().nodes);
            prop_assert_eq!(with.run_stats().system, without.run_stats().system);
        }
    }

    /// The single-writer property holds at every step: whenever one node
    /// holds M or E, no other node holds any valid copy.
    #[test]
    fn single_writer_invariant_holds_under_all_protocols(
        refs in prop::collection::vec(ref_strategy(4, 16), 1..250)
    ) {
        for protocol in ProtocolKind::ALL {
            let mut sys = System::new(tiny_config(4, protocol), &[]);
            for r in &refs {
                sys.apply(*r);
                // Re-derive the invariant from outside the checker.
                let unit_addr = (r.addr / 32) * 32;
                let states: Vec<Moesi> =
                    (0..4).map(|cpu| sys.l2_state(cpu, unit_addr)).collect();
                let exclusive = states
                    .iter()
                    .filter(|s| matches!(s, Moesi::Modified | Moesi::Exclusive))
                    .count();
                let valid = states.iter().filter(|s| s.is_valid()).count();
                prop_assert!(exclusive <= 1, "{protocol}: {states:?}");
                if exclusive == 1 {
                    prop_assert_eq!(valid, 1, "{} {:?}", protocol, &states);
                }
            }
        }
    }

    /// The non-subblocked configuration upholds the same invariants under
    /// every protocol.
    #[test]
    fn nsb_configuration_stays_coherent(
        refs in prop::collection::vec((0..4usize, any::<bool>(), 0..64u64), 1..300)
    ) {
        for protocol in ProtocolKind::ALL {
            let config = SystemConfig {
                cpus: 4,
                l1: L1Config::new(512, 64),
                l2: L2Config::new(2048, 64, 1),
                wb_entries: 2,
                addr: AddrSpace::with_block_shift(40, 6, 6),
                check: CheckLevel::Full,
                protocol,
            };
            let mut sys = System::new(config, &[FilterSpec::exclude(16, 2)]);
            for &(cpu, write, unit) in &refs {
                let op = if write { Op::Write } else { Op::Read };
                sys.access(cpu, op, unit * 64);
            }
            sys.verify_inclusion();
            sys.verify_filter_consistency();
        }
    }
}
