//! Pluggable coherence protocols: MOESI (the paper's platform), MESI and
//! MSI over the same atomic snoopy bus.
//!
//! The paper evaluates JETTY on one fixed platform — MOESI at subblock
//! grain (§4.1) — but snoop-filter coverage is a function of the protocol:
//! without an `Owned` state, dirty sharing forces memory writebacks and
//! changes the would-miss profile every filter is scored against. The
//! [`CoherenceProtocol`] trait concentrates every protocol-dependent
//! decision the [`System`](crate::System) makes, so the protocol becomes a
//! sweepable configuration axis instead of logic inlined through the local
//! and bus paths.
//!
//! # State universe
//!
//! All three protocols share [`Moesi`] as their state representation:
//! MESI is MOESI minus `Owned`, MSI is MOESI minus `Owned` and
//! `Exclusive`. A protocol never *produces* a state outside its subset
//! ([`CoherenceProtocol::allows`]), and the full-check invariant pass
//! asserts that at runtime, so the shared representation costs nothing in
//! safety while keeping the caches, writeback buffers and statistics
//! completely protocol-agnostic.
//!
//! # What actually differs
//!
//! | Decision | MOESI | MESI | MSI |
//! |---|---|---|---|
//! | Read-miss fill, no sharers | `E` | `E` | `S` |
//! | Read-miss fill, sharers | `S` | `S` | `S` |
//! | Remote `BusRd` snoops `M` | `M → O`, cache supplies, memory stays stale | `M → S`, cache supplies **and memory is updated** | same as MESI |
//! | Dirty sharing | `O` keeps ownership on-chip | impossible — every shared copy is clean | impossible |
//! | Silent store upgrade | `E → M` | `E → M` | never (no `E`) |
//!
//! The MESI/MSI memory update on a dirty supply is the protocol-dependent
//! memory traffic the issue's energy table reports: it is counted in
//! [`NodeStats::snoop_memory_writebacks`](crate::NodeStats::snoop_memory_writebacks).

use std::fmt;

use crate::moesi::Moesi;
use crate::wb::WbEntry;

/// Which coherence protocol a [`System`](crate::System) runs.
///
/// This is the value that travels through configuration, cache keys and
/// CLI flags; [`ProtocolKind::protocol`] resolves it to the behaviour
/// object.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The paper's platform (§4.1): dirty sharing via the `Owned` state.
    #[default]
    Moesi,
    /// Illinois-style MESI: dirty supplies also update memory.
    Mesi,
    /// Basic MSI: no silent-upgradable `Exclusive` state either.
    Msi,
}

impl ProtocolKind {
    /// All supported protocols, in sweep order (paper's platform first).
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::Moesi, ProtocolKind::Mesi, ProtocolKind::Msi];

    /// Resolves the kind to its (zero-sized, shared) behaviour object.
    pub fn protocol(self) -> &'static dyn CoherenceProtocol {
        match self {
            ProtocolKind::Moesi => &MoesiProtocol,
            ProtocolKind::Mesi => &MesiProtocol,
            ProtocolKind::Msi => &MsiProtocol,
        }
    }

    /// Parses a protocol name ("moesi", "mesi", "msi"; case insensitive) —
    /// for config files and CLI surfaces that select a single protocol.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "moesi" => Some(ProtocolKind::Moesi),
            "mesi" => Some(ProtocolKind::Mesi),
            "msi" => Some(ProtocolKind::Msi),
            _ => None,
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.protocol().name())
    }
}

/// Forwards one trait method to the kind's zero-sized implementation.
macro_rules! kind_dispatch {
    ($self:expr, $f:ident ( $($arg:expr),* )) => {
        match $self {
            ProtocolKind::Moesi => MoesiProtocol.$f($($arg),*),
            ProtocolKind::Mesi => MesiProtocol.$f($($arg),*),
            ProtocolKind::Msi => MsiProtocol.$f($($arg),*),
        }
    };
}

/// `ProtocolKind` is itself a protocol object: every method statically
/// dispatches (and inlines) to the matching zero-sized implementation.
/// The simulator's per-event call sites use the kind directly so the
/// protocol hooks on the access/snoop paths cost no vtable hop;
/// [`ProtocolKind::protocol`] remains for code that wants an actual
/// `&'static dyn` object.
impl CoherenceProtocol for ProtocolKind {
    fn name(&self) -> &'static str {
        kind_dispatch!(self, name())
    }

    fn kind(&self) -> ProtocolKind {
        *self
    }

    fn states(&self) -> &'static [Moesi] {
        kind_dispatch!(self, states())
    }

    #[inline]
    fn allows(&self, state: Moesi) -> bool {
        kind_dispatch!(self, allows(state))
    }

    #[inline]
    fn read_fill_state(&self, shared: bool) -> Moesi {
        kind_dispatch!(self, read_fill_state(shared))
    }

    #[inline]
    fn write_fill_state(&self) -> Moesi {
        kind_dispatch!(self, write_fill_state())
    }

    #[inline]
    fn remote_read_reaction(&self, state: Moesi) -> ReadReaction {
        kind_dispatch!(self, remote_read_reaction(state))
    }

    #[inline]
    fn wb_forward_state(&self, entry: &WbEntry) -> Moesi {
        kind_dispatch!(self, wb_forward_state(entry))
    }

    #[inline]
    fn wb_forward_write_needs_upgrade(&self, entry: &WbEntry) -> bool {
        kind_dispatch!(self, wb_forward_write_needs_upgrade(entry))
    }

    #[inline]
    fn dirty_on_evict(&self, state: Moesi) -> bool {
        kind_dispatch!(self, dirty_on_evict(state))
    }

    #[inline]
    fn evicted_may_have_sharers(&self, state: Moesi) -> bool {
        kind_dispatch!(self, evicted_may_have_sharers(state))
    }
}

/// What a valid remote copy does when it snoops a `BusRd`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadReaction {
    /// The state the copy transitions to (may equal the current state).
    pub next: Moesi,
    /// `true` when this cache supplies the data (memory stays silent).
    pub supplies: bool,
    /// `true` when memory must be updated alongside the supply (MESI/MSI:
    /// the dirty copy downgrades to a *clean* `S`, so its data has to
    /// reach memory in the same transaction).
    pub memory_update: bool,
}

/// Every protocol-dependent decision of the snoopy-bus SMP.
///
/// Implementations are stateless (all protocol state lives per-subblock in
/// the L2 as [`Moesi`] values); the [`System`](crate::System) consults its
/// protocol at each fill, snoop reaction, upgrade and eviction. The three
/// implementations are [`MoesiProtocol`], [`MesiProtocol`] and
/// [`MsiProtocol`]; pick one via [`ProtocolKind`] on
/// [`SystemConfig`](crate::SystemConfig).
pub trait CoherenceProtocol: Send + Sync {
    /// Display name ("MOESI", "MESI", "MSI").
    fn name(&self) -> &'static str;

    /// The corresponding configuration value.
    fn kind(&self) -> ProtocolKind;

    /// The states this protocol may produce (checker support).
    fn states(&self) -> &'static [Moesi];

    /// `true` when `state` belongs to this protocol's subset.
    fn allows(&self, state: Moesi) -> bool {
        self.states().contains(&state)
    }

    /// State installed by a read-miss fill, given whether any remote cache
    /// still holds a copy after the snoop.
    fn read_fill_state(&self, shared: bool) -> Moesi;

    /// State installed by a write-miss fill (`Modified` everywhere: the
    /// requester owns the only copy after the invalidating transaction).
    fn write_fill_state(&self) -> Moesi {
        Moesi::Modified
    }

    /// Reaction of a valid remote copy (`state`) to a bus read.
    fn remote_read_reaction(&self, state: Moesi) -> ReadReaction;

    /// State a pending writeback re-enters its own cache with when the
    /// local CPU touches it again before it reaches memory (the
    /// writeback-forwarding path). `entry` remembers whether the evicted
    /// copy could still have sharers elsewhere.
    fn wb_forward_state(&self, entry: &WbEntry) -> Moesi;

    /// `true` when forwarding `entry` back for a *write* first needs an
    /// invalidating bus upgrade (an Owned-origin entry may still have
    /// Shared copies elsewhere).
    fn wb_forward_write_needs_upgrade(&self, entry: &WbEntry) -> bool {
        entry.shared
    }

    /// `true` when a copy evicted in `state` is dirty with respect to
    /// memory and must be written back.
    fn dirty_on_evict(&self, state: Moesi) -> bool {
        state.is_dirty()
    }

    /// `true` when a copy evicted in `state` may leave `Shared` copies
    /// behind in other caches (decides the [`WbEntry::shared`] flag, which
    /// gates exclusivity on writeback forwarding).
    fn evicted_may_have_sharers(&self, state: Moesi) -> bool {
        state == Moesi::Owned
    }
}

/// The paper's MOESI protocol (§4.1). Byte-identical to the historical
/// hardcoded behaviour.
#[derive(Clone, Copy, Debug, Default)]
pub struct MoesiProtocol;

impl CoherenceProtocol for MoesiProtocol {
    fn name(&self) -> &'static str {
        "MOESI"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Moesi
    }

    fn states(&self) -> &'static [Moesi] {
        &[Moesi::Modified, Moesi::Owned, Moesi::Exclusive, Moesi::Shared, Moesi::Invalid]
    }

    fn read_fill_state(&self, shared: bool) -> Moesi {
        if shared {
            Moesi::Shared
        } else {
            Moesi::Exclusive
        }
    }

    fn remote_read_reaction(&self, state: Moesi) -> ReadReaction {
        // M -> O and O -> O keep the dirty data on-chip: the owner keeps
        // supplying and memory is only written on the eventual eviction.
        ReadReaction {
            next: state.after_remote_read(),
            supplies: state.supplies_data(),
            memory_update: false,
        }
    }

    fn wb_forward_state(&self, entry: &WbEntry) -> Moesi {
        // An Owned-origin entry may still have Shared copies elsewhere, so
        // it returns as Owned; a Modified-origin entry was the sole copy
        // and returns as Modified.
        if entry.shared {
            Moesi::Owned
        } else {
            Moesi::Modified
        }
    }
}

/// Illinois-style MESI: no `Owned` state, so a dirty copy snooped by a
/// read supplies the data *and* updates memory while downgrading to a
/// clean `Shared`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MesiProtocol;

impl CoherenceProtocol for MesiProtocol {
    fn name(&self) -> &'static str {
        "MESI"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Mesi
    }

    fn states(&self) -> &'static [Moesi] {
        &[Moesi::Modified, Moesi::Exclusive, Moesi::Shared, Moesi::Invalid]
    }

    fn read_fill_state(&self, shared: bool) -> Moesi {
        if shared {
            Moesi::Shared
        } else {
            Moesi::Exclusive
        }
    }

    fn remote_read_reaction(&self, state: Moesi) -> ReadReaction {
        match state {
            Moesi::Modified => {
                ReadReaction { next: Moesi::Shared, supplies: true, memory_update: true }
            }
            Moesi::Exclusive | Moesi::Shared => {
                ReadReaction { next: Moesi::Shared, supplies: false, memory_update: false }
            }
            Moesi::Owned => unreachable!("MESI never produces Owned"),
            Moesi::Invalid => panic!("snoop-miss has no read transition"),
        }
    }

    fn wb_forward_state(&self, entry: &WbEntry) -> Moesi {
        // Dirty evictions only happen from M (the sole copy), so the entry
        // returns as the sole dirty copy again.
        debug_assert!(!entry.shared, "MESI writeback entries never have sharers");
        Moesi::Modified
    }
}

/// Basic MSI: like MESI but without the `Exclusive` state, so every read
/// miss installs `Shared` and every first store pays a bus upgrade.
#[derive(Clone, Copy, Debug, Default)]
pub struct MsiProtocol;

impl CoherenceProtocol for MsiProtocol {
    fn name(&self) -> &'static str {
        "MSI"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Msi
    }

    fn states(&self) -> &'static [Moesi] {
        &[Moesi::Modified, Moesi::Shared, Moesi::Invalid]
    }

    fn read_fill_state(&self, _shared: bool) -> Moesi {
        Moesi::Shared
    }

    fn remote_read_reaction(&self, state: Moesi) -> ReadReaction {
        match state {
            Moesi::Modified => {
                ReadReaction { next: Moesi::Shared, supplies: true, memory_update: true }
            }
            Moesi::Shared => {
                ReadReaction { next: Moesi::Shared, supplies: false, memory_update: false }
            }
            Moesi::Owned | Moesi::Exclusive => unreachable!("MSI never produces O/E"),
            Moesi::Invalid => panic!("snoop-miss has no read transition"),
        }
    }

    fn wb_forward_state(&self, entry: &WbEntry) -> Moesi {
        debug_assert!(!entry.shared, "MSI writeback entries never have sharers");
        Moesi::Modified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetty_core::UnitAddr;

    fn entry(shared: bool) -> WbEntry {
        WbEntry { unit: UnitAddr::new(1), version: 7, shared }
    }

    #[test]
    fn kinds_resolve_to_matching_protocols() {
        for kind in ProtocolKind::ALL {
            let p = kind.protocol();
            assert_eq!(p.kind(), kind);
            assert_eq!(kind.to_string(), p.name());
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.protocol().name()), Some(kind));
            assert_eq!(ProtocolKind::parse(&kind.to_string().to_lowercase()), Some(kind));
        }
        assert_eq!(ProtocolKind::parse("mosi"), None);
    }

    #[test]
    fn default_is_the_papers_moesi() {
        assert_eq!(ProtocolKind::default(), ProtocolKind::Moesi);
    }

    #[test]
    fn state_subsets_nest() {
        let moesi = MoesiProtocol;
        let mesi = MesiProtocol;
        let msi = MsiProtocol;
        assert!(moesi.allows(Moesi::Owned));
        assert!(!mesi.allows(Moesi::Owned));
        assert!(!msi.allows(Moesi::Owned));
        assert!(mesi.allows(Moesi::Exclusive));
        assert!(!msi.allows(Moesi::Exclusive));
        for p in [&moesi as &dyn CoherenceProtocol, &mesi, &msi] {
            assert!(p.allows(Moesi::Modified));
            assert!(p.allows(Moesi::Shared));
            assert!(p.allows(Moesi::Invalid));
            assert!(p.states().iter().all(|&s| p.allows(s)));
        }
    }

    #[test]
    fn read_fill_states() {
        assert_eq!(MoesiProtocol.read_fill_state(false), Moesi::Exclusive);
        assert_eq!(MoesiProtocol.read_fill_state(true), Moesi::Shared);
        assert_eq!(MesiProtocol.read_fill_state(false), Moesi::Exclusive);
        assert_eq!(MesiProtocol.read_fill_state(true), Moesi::Shared);
        assert_eq!(MsiProtocol.read_fill_state(false), Moesi::Shared);
        assert_eq!(MsiProtocol.read_fill_state(true), Moesi::Shared);
    }

    #[test]
    fn moesi_keeps_dirty_data_on_chip() {
        let r = MoesiProtocol.remote_read_reaction(Moesi::Modified);
        assert_eq!(r, ReadReaction { next: Moesi::Owned, supplies: true, memory_update: false });
        let o = MoesiProtocol.remote_read_reaction(Moesi::Owned);
        assert_eq!(o, ReadReaction { next: Moesi::Owned, supplies: true, memory_update: false });
    }

    #[test]
    fn mesi_and_msi_update_memory_on_dirty_supply() {
        for p in [&MesiProtocol as &dyn CoherenceProtocol, &MsiProtocol] {
            let r = p.remote_read_reaction(Moesi::Modified);
            assert_eq!(
                r,
                ReadReaction { next: Moesi::Shared, supplies: true, memory_update: true }
            );
            let s = p.remote_read_reaction(Moesi::Shared);
            assert!(!s.supplies && !s.memory_update);
            assert_eq!(s.next, Moesi::Shared);
        }
    }

    #[test]
    fn clean_states_let_memory_respond() {
        for kind in ProtocolKind::ALL {
            let p = kind.protocol();
            if p.allows(Moesi::Exclusive) {
                let r = p.remote_read_reaction(Moesi::Exclusive);
                assert_eq!(r.next, Moesi::Shared);
                assert!(!r.supplies && !r.memory_update);
            }
        }
    }

    #[test]
    fn write_fill_is_modified_everywhere() {
        for kind in ProtocolKind::ALL {
            assert_eq!(kind.protocol().write_fill_state(), Moesi::Modified);
        }
    }

    #[test]
    fn wb_forwarding_states() {
        assert_eq!(MoesiProtocol.wb_forward_state(&entry(true)), Moesi::Owned);
        assert_eq!(MoesiProtocol.wb_forward_state(&entry(false)), Moesi::Modified);
        assert!(MoesiProtocol.wb_forward_write_needs_upgrade(&entry(true)));
        assert!(!MoesiProtocol.wb_forward_write_needs_upgrade(&entry(false)));
        for p in [&MesiProtocol as &dyn CoherenceProtocol, &MsiProtocol] {
            assert_eq!(p.wb_forward_state(&entry(false)), Moesi::Modified);
            assert!(!p.wb_forward_write_needs_upgrade(&entry(false)));
        }
    }

    #[test]
    fn eviction_hooks() {
        assert!(MoesiProtocol.dirty_on_evict(Moesi::Owned));
        assert!(MoesiProtocol.evicted_may_have_sharers(Moesi::Owned));
        assert!(!MoesiProtocol.evicted_may_have_sharers(Moesi::Modified));
        for p in [&MesiProtocol as &dyn CoherenceProtocol, &MsiProtocol] {
            assert!(p.dirty_on_evict(Moesi::Modified));
            assert!(!p.dirty_on_evict(Moesi::Shared));
            assert!(!p.evicted_may_have_sharers(Moesi::Modified));
        }
    }

    #[test]
    #[should_panic(expected = "no read transition")]
    fn mesi_rejects_snoop_miss_reaction() {
        let _ = MesiProtocol.remote_read_reaction(Moesi::Invalid);
    }
}
