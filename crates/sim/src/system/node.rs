//! One SMP node: the per-processor state bundle and its purely local
//! helpers. Everything that needs cross-node or bus context lives in
//! [`local`](super::local) and [`bus`](super::bus) instead.

use jetty_core::{AnyFilter, FilterEvent, UnitAddr};

use crate::l1::L1Cache;
use crate::l2::L2Cache;
use crate::stats::NodeStats;
use crate::wb::{WbEntry, WritebackBuffer};

/// One SMP node.
///
/// The filter bank is stored as concrete [`AnyFilter`] values — one
/// contiguous allocation, statically dispatched probes — because every bus
/// snoop walks the whole bank (see `jetty_core::AnyFilter`).
pub(super) struct Node {
    pub(super) l1: L1Cache,
    pub(super) l2: L2Cache,
    pub(super) wb: WritebackBuffer,
    pub(super) filters: Vec<AnyFilter>,
    pub(super) stats: NodeStats,
    /// Filter notifications deferred during a batched chunk
    /// ([`System::run_chunk`](super::System::run_chunk)): the protocol path
    /// logs one compact event per notification here instead of walking the
    /// whole bank per snoop, and the chunk flush replays the list through
    /// each filter in turn. Empty outside batched runs, and drained before
    /// `run_chunk` returns. The buffer's capacity is retained across
    /// chunks, so steady-state logging allocates nothing.
    pub(super) events: Vec<FilterEvent>,
}

impl Node {
    /// On a local L2 miss, checks the node's own writeback buffer for the
    /// unit (evicted dirty, not yet at memory) and extracts it if present.
    pub(super) fn l2_miss_wb_forward(&mut self, unit: UnitAddr) -> Option<WbEntry> {
        let entry = self.wb.remove(unit)?;
        self.stats.wb_local_hits += 1;
        Some(entry)
    }
}
