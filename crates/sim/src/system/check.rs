//! The invariant checker and the checker-backed memory model.
//!
//! With [`CheckLevel::Full`](crate::CheckLevel::Full) the system tracks
//! data versions end to end (memory's copy, the latest store, each cache's
//! copy) and asserts after every transaction that:
//!
//! * reads observe the newest written data (no lost updates, no stale
//!   supplies),
//! * the protocol's single-writer invariants hold (at most one `M`/`E`
//!   holder, at most one `O` holder, an exclusive copy is the sole copy),
//! * no node holds a state outside its protocol's subset (e.g. `Owned`
//!   under MESI),
//! * L1 ⊆ L2 inclusion holds for the touched unit.
//!
//! The filter-safety assertion itself lives on the snoop path
//! ([`bus`](super::bus)) and runs at every check level.

use jetty_core::{SnoopFilter, UnitAddr};

use crate::bus::SnoopResponse;
use crate::moesi::Moesi;
use crate::protocol::CoherenceProtocol;
use crate::system::System;
use crate::wb::WbEntry;

impl System {
    /// Completes a writeback's journey: memory now holds this version.
    pub(super) fn retire_to_memory(&mut self, entry: WbEntry) {
        self.update_memory(entry.unit, entry.version);
    }

    /// Records that memory was written with `version` for `unit` (WB
    /// drains, and the snoop-time updates MESI/MSI pay on dirty supplies).
    pub(super) fn update_memory(&mut self, unit: UnitAddr, version: u64) {
        if self.config.check.is_full() {
            self.memory_versions.insert(unit.raw(), version);
        }
    }

    /// Version the requester receives for a fill, given the snoop response.
    pub(super) fn incoming_version(&mut self, unit: UnitAddr, response: &SnoopResponse) -> u64 {
        if let Some(v) = response.supplied_version {
            return v;
        }
        if self.config.check.is_full() && !response.supplied_by_wb {
            // Memory supplies: its copy must be current.
            let mem = self.memory_versions.get(unit.raw()).unwrap_or(0);
            let latest = self.latest_versions.get(unit.raw()).unwrap_or(0);
            assert_eq!(
                mem, latest,
                "memory supplied stale data for {unit}: memory v{mem}, latest v{latest}"
            );
            return mem;
        }
        // Unchecked mode (or WB supply handled inside the snoop): versions
        // are advisory; WB supplies set `supplied_version` too, so 0 here.
        self.memory_versions.get(unit.raw()).unwrap_or(0)
    }

    /// Asserts that a completed read observed the newest written data.
    pub(super) fn check_read(&self, cpu: usize, unit: UnitAddr) {
        if !self.config.check.is_full() {
            return;
        }
        let latest = self.latest_versions.get(unit.raw()).unwrap_or(0);
        let seen = self.nodes[cpu].l2.version(unit);
        assert_eq!(
            seen, latest,
            "stale read: cpu{cpu} read {unit} at v{seen}, latest is v{latest}"
        );
    }

    /// Asserts the protocol's single-writer and state-subset invariants
    /// for `unit`.
    pub(super) fn check_invariants(&self, unit: UnitAddr) {
        if !self.config.check.is_full() {
            return;
        }
        let states: Vec<Moesi> = self.nodes.iter().map(|n| n.l2.state(unit)).collect();
        for (i, s) in states.iter().enumerate() {
            assert!(
                self.config.protocol.allows(*s),
                "node {i} holds {s} for {unit}, outside the {} state set",
                self.config.protocol.name()
            );
        }
        let valid = states.iter().filter(|s| s.is_valid()).count();
        let exclusive =
            states.iter().filter(|s| matches!(s, Moesi::Modified | Moesi::Exclusive)).count();
        let owners = states.iter().filter(|s| **s == Moesi::Owned).count();
        assert!(exclusive <= 1, "multiple M/E holders of {unit}: {states:?}");
        assert!(owners <= 1, "multiple O holders of {unit}: {states:?}");
        if exclusive == 1 {
            assert_eq!(valid, 1, "M/E copy of {unit} coexists with other copies: {states:?}");
        }
        // Inclusion for the touched unit in every node.
        for (i, node) in self.nodes.iter().enumerate() {
            if node.l1.contains(unit) {
                assert!(
                    node.l2.state(unit).is_valid(),
                    "inclusion violated on node {i}: {unit} in L1 but not L2"
                );
            }
        }
    }

    /// Verifies L1 ⊆ L2 inclusion exhaustively (tests; O(L1 size)). Each
    /// node's whole L1 population goes through one batched
    /// [`snoop_probe_many`](crate::l2::L2Cache::snoop_probe_many) sweep
    /// instead of per-unit lookups.
    pub fn verify_inclusion(&self) {
        let mut units = Vec::new();
        let mut flags = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            units.clear();
            units.extend(node.l1.valid_units().map(|u| u.raw()));
            flags.clear();
            node.l2.snoop_probe_many(&units, &mut flags);
            for (&u, &f) in units.iter().zip(&flags) {
                assert!(
                    f & jetty_core::kernels::L2_SUB_VALID != 0,
                    "inclusion violated on node {i}: {} in L1 but not L2",
                    UnitAddr::new(u)
                );
            }
        }
    }

    /// Verifies that every Include-Jetty in every bank exactly mirrors its
    /// L2 population (tests; O(L2 size)).
    pub fn verify_filter_consistency(&mut self) {
        for node in &mut self.nodes {
            let units: Vec<UnitAddr> = node.l2.valid_units().map(|(u, _)| u).collect();
            for f in &mut node.filters {
                for &u in &units {
                    let v = f.probe(u);
                    assert!(!v.is_filtered(), "{} filters cached unit {u}", f.name());
                }
            }
        }
    }
}
