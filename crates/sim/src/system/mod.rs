//! The SMP system: N nodes (CPU + L1 + L2 + writeback buffer + filter
//! bank) on an atomic snoopy bus in front of main memory.
//!
//! # Layering
//!
//! The system is decomposed by path, one submodule each:
//!
//! * [`node`] — one SMP node (caches, writeback buffer, filter bank) and
//!   its purely local helpers;
//! * [`local`] — the CPU-side access path: L1 probe → local L2 → writeback
//!   forwarding → bus request, plus fills, installs and store completion;
//! * [`bus`] — the bus side: transaction execution and the snoop delivered
//!   to every remote node (writeback-buffer probe → filter bank → protocol
//!   reaction);
//! * [`check`] — the always-on filter-safety assertion's companions: the
//!   version-exact data-coherence checker and the protocol invariant pass.
//!
//! Every protocol-dependent decision on those paths is delegated to a
//! [`CoherenceProtocol`] (chosen via [`SystemConfig::protocol`]): fill
//! states, snoop reactions, upgrade requirements and eviction/writeback
//! semantics. The default MOESI protocol reproduces the paper's platform
//! bit for bit; MESI and MSI open the protocol axis (see
//! [`crate::protocol`]).
//!
//! # Protocol walk-through
//!
//! A CPU access first probes its L1. On an L1 miss the local L2 is probed;
//! on an L2 miss (or a write to a non-writable copy) a bus transaction is
//! issued and *every other node snoops it*: the writeback buffer is always
//! probed, the attached JETTY filters are probed, and — unless a filter
//! would have answered — the L2 tag array reacts per the configured
//! protocol.
//!
//! # Filter banks
//!
//! Because a JETTY never changes protocol behaviour (it only skips
//! would-miss tag probes), any number of filter configurations can observe
//! the same run as pure bystanders. Each node therefore carries a *bank* of
//! filters built from the same [`FilterSpec`] list; one simulation yields
//! coverage and energy-activity numbers for every configuration at once,
//! over an identical reference stream — mirroring the paper's methodology
//! of evaluating all organisations on the same traces.
//!
//! # Safety checking
//!
//! The filter-safety assertion (a filtered snoop must be a genuine miss) is
//! always on: it is one comparison and it guards the paper's core
//! requirement. With [`CheckLevel::Full`] the system additionally verifies
//! the protocol's single-writer invariants after every transaction and
//! tracks data versions end to end (stores stamp a fresh version; loads
//! must observe the newest one; fills, supplies, writebacks and drains
//! carry versions along), catching lost-update and stale-read protocol
//! bugs.
//!
//! [`CheckLevel::Full`]: crate::CheckLevel::Full

mod bus;
mod check;
mod local;
mod node;

use jetty_core::{AddrSpace, FilterSpec, SnoopFilter};

use crate::bus::BusKind;
use crate::config::SystemConfig;
use crate::fastmap::FastMap;
use crate::l1::L1Cache;
use crate::l2::{EvictedUnit, L2Cache};
use crate::moesi::Moesi;
use crate::protocol::CoherenceProtocol;
use crate::stats::{NodeStats, RunStats, SystemStats};
use crate::trace::{MemRef, Op};
use crate::wb::WritebackBuffer;

use node::Node;

/// What happened on one CPU access (returned for tests and diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit in the L1.
    pub l1_hit: bool,
    /// The access hit in the local L2 (meaningful when `l1_hit` is false,
    /// and also true for upgrade-only writes).
    pub l2_hit: bool,
    /// The bus transaction issued, if any.
    pub bus: Option<BusKind>,
}

/// Coverage and activity for one filter configuration over a finished run.
#[derive(Clone, Debug)]
pub struct FilterReport {
    /// The configuration.
    pub spec: FilterSpec,
    /// Configuration label (paper naming).
    pub label: String,
    /// Snoop probes observed (summed over nodes).
    pub probes: u64,
    /// Snoops filtered (answered `NotCached`).
    pub filtered: u64,
    /// Snoops that would have missed in the L2 (the coverable population;
    /// identical for every filter in the bank).
    pub would_miss: u64,
    /// Per-node activity, for energy accounting.
    pub activities: Vec<jetty_core::FilterActivity>,
    /// Array geometry (identical across nodes).
    pub arrays: Vec<jetty_core::ArraySpec>,
    /// Total filter storage in bits.
    pub storage_bits: usize,
}

impl FilterReport {
    /// Snoop-miss coverage: the fraction of would-miss snoops this filter
    /// eliminated (the paper's key metric, §4.3).
    pub fn coverage(&self) -> f64 {
        if self.would_miss == 0 {
            0.0
        } else {
            self.filtered as f64 / self.would_miss as f64
        }
    }

    /// Fraction of *all* snoop probes this filter answered `NotCached`
    /// (coverage is normalised to would-miss snoops; this is normalised to
    /// everything that reached the filter). 0 when no snoops arrived.
    pub fn filter_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.filtered as f64 / self.probes as f64
        }
    }

    /// Filter storage rounded up to whole bytes, derived from
    /// [`FilterReport::storage_bits`] — the sweep grid's `bytes` column,
    /// giving every filter-axis row its storage cost alongside coverage.
    pub fn storage_bytes(&self) -> usize {
        self.storage_bits.div_ceil(8)
    }
}

/// The simulated SMP.
///
/// A `System` owns all of its state (caches, writeback buffers, filter
/// banks, checker maps) and is `Send`: the parallel experiment engine moves
/// whole systems onto worker threads and runs independent simulations
/// concurrently. Nothing is shared between systems (the protocol object is
/// a zero-sized shared static), so no `Sync` is needed.
pub struct System {
    config: SystemConfig,
    space: AddrSpace,
    specs: Vec<FilterSpec>,
    nodes: Vec<Node>,
    stats: SystemStats,
    /// Monotonic data-version source (checker).
    next_version: u64,
    /// Memory's current version per unit (checker; absent = 0). Probed on
    /// every bus fill, hence a [`FastMap`] rather than a SipHash map.
    memory_versions: FastMap,
    /// Latest version ever written per unit (checker; absent = 0).
    latest_versions: FastMap,
    /// Reusable eviction scratch threaded through every L2 fill so the
    /// steady-state install path allocates nothing.
    evict_scratch: Vec<EvictedUnit>,
    /// When set (inside [`System::run_chunk`]), the snoop/allocate/
    /// deallocate paths log [`jetty_core::FilterEvent`]s into each node's
    /// buffer instead of walking its filter bank eagerly; the chunk flush
    /// replays each node's list filter-by-filter. Never set while the
    /// public [`System::access`]/[`System::apply`] entry points run
    /// directly, so single-access callers observe filter state immediately.
    batching: bool,
    /// Worker shards for the end-of-chunk filter replay: nodes are
    /// partitioned into this many contiguous slices and each slice's
    /// event logs replay on its own scoped thread. Purely a performance
    /// knob — the logs are recorded in global bus order by the serial
    /// protocol pass and each node's replay is independent, so results
    /// are byte-identical at any shard count. 1 (the default) keeps the
    /// exact serial flush loop.
    shards: usize,
}

// Compile-time audit that a whole simulated system can move across
// threads (filters carry the `Send` supertrait; the protocol is a shared
// `Sync` static; everything else is owned plain data). Breaking this
// breaks the parallel experiment engine.
const _: fn() = assert_send::<System>;
fn assert_send<T: Send>() {}

impl System {
    /// Builds a system with one filter per spec per node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]).
    pub fn new(config: SystemConfig, specs: &[FilterSpec]) -> Self {
        config.validate();
        let space = config.addr;
        let nodes = (0..config.cpus)
            .map(|_| Node {
                l1: L1Cache::new(config.l1),
                l2: L2Cache::new(config.l2),
                wb: WritebackBuffer::new(config.wb_entries),
                filters: specs.iter().map(|s| s.build_any(space)).collect(),
                stats: NodeStats::default(),
                events: Vec::new(),
            })
            .collect();
        Self {
            config,
            space,
            specs: specs.to_vec(),
            nodes,
            stats: SystemStats::new(config.cpus),
            next_version: 0,
            memory_versions: FastMap::new(),
            latest_versions: FastMap::new(),
            evict_scratch: Vec::new(),
            batching: false,
            shards: 1,
        }
    }

    /// Sets the intra-run shard count for the end-of-chunk filter
    /// replay (see the `shards` field). Values are clamped to at least
    /// 1; counts beyond the node count are clamped at flush time.
    /// Sharding never changes results, only how many threads replay
    /// the per-node event logs.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Builder twin of [`System::set_shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The address space in use.
    pub fn space(&self) -> AddrSpace {
        self.space
    }

    /// Number of processors.
    pub fn cpus(&self) -> usize {
        self.config.cpus
    }

    /// The coherence protocol in use, as a behaviour object. Internal call
    /// sites use `self.config.protocol` directly (static dispatch); this
    /// accessor derives the same answer, so there is a single source of
    /// protocol truth on the struct.
    pub fn protocol(&self) -> &'static dyn CoherenceProtocol {
        self.config.protocol.protocol()
    }

    /// Applies one trace reference.
    pub fn apply(&mut self, mem_ref: MemRef) -> AccessOutcome {
        self.access(mem_ref.cpu, mem_ref.op, mem_ref.addr)
    }

    /// References per internal chunk of [`System::run`] (and the chunk
    /// size streamed `run_app` callers should use). The filter arrays go
    /// cold between flushes — the simulated L2 SoA arrays evict them — so
    /// each flush pays a compulsory reload of every filter's tags, and
    /// larger chunks amortize that reload over more events. Measured at
    /// full scale on the pinned host: 8Ki chunks ≈ 22.2 s, 64Ki ≈ 19.0 s,
    /// 256Ki ≈ 19.2 s (past 64Ki the event logs themselves outgrow cache
    /// and the curve flattens), so 64Ki is the knee.
    pub const CHUNK_LEN: usize = 65536;

    /// Runs an entire trace through the system by buffering it into
    /// [`System::CHUNK_LEN`]-reference chunks and delegating to
    /// [`System::run_chunk`], so iterator-driven callers get the batched
    /// snoop fan-out for free.
    pub fn run<I: IntoIterator<Item = MemRef>>(&mut self, trace: I) {
        let mut buf = Vec::with_capacity(Self::CHUNK_LEN);
        for r in trace {
            buf.push(r);
            if buf.len() == Self::CHUNK_LEN {
                self.run_chunk(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.run_chunk(&buf);
        }
    }

    /// [`System::run`] under a [`RunGate`]: the gate is consulted before
    /// every chunk, so a deadline or cancellation stops the run within
    /// one chunk's worth of work (`Err` carries the reason; counters
    /// reflect exactly the chunks that completed). With an unbounded
    /// gate this is [`System::run`] plus one free check per chunk.
    ///
    /// [`RunGate`]: crate::RunGate
    pub fn run_gated<I: IntoIterator<Item = MemRef>>(
        &mut self,
        trace: I,
        gate: &crate::RunGate,
    ) -> Result<(), crate::GateStop> {
        let mut buf = Vec::with_capacity(Self::CHUNK_LEN);
        for r in trace {
            buf.push(r);
            if buf.len() == Self::CHUNK_LEN {
                gate.check()?;
                self.run_chunk_gated(&buf, gate)?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            gate.check()?;
            self.run_chunk_gated(&buf, gate)?;
        }
        Ok(())
    }

    /// Runs one pregenerated chunk of references.
    ///
    /// The protocol path (L1/L2/writeback/bus reactions) is inherently
    /// sequential and always runs scalar, but filters are pure bystanders
    /// whose state depends only on the ordered event stream each one
    /// receives — so during the chunk the snoop path logs compact
    /// per-node [`jetty_core::FilterEvent`]s, and the end-of-chunk flush
    /// replays each node's list through each filter in turn
    /// (`AnyFilter::apply_batch`). One filter's arrays stay cache-resident
    /// across thousands of events instead of the whole bank thrashing per
    /// snoop, and the replay is exactly equivalent to the eager calls —
    /// same order, same states, same activity counters.
    ///
    /// Scalar fallback: runs under [`CheckLevel::Full`] skip batching so
    /// the filter-safety assertion fires at the exact offending access
    /// (deferral would report it at the chunk boundary), as do runs with
    /// an empty filter bank (nothing to batch). All filter events are
    /// flushed before this returns, so callers may inspect filter state
    /// between chunks.
    ///
    /// [`CheckLevel::Full`]: crate::CheckLevel::Full
    pub fn run_chunk(&mut self, chunk: &[MemRef]) {
        self.run_chunk_gated(chunk, &crate::RunGate::unbounded())
            .unwrap_or_else(|stop| unreachable!("unbounded gate cannot stop a chunk: {stop:?}"));
    }

    /// [`System::run_chunk`] under a [`RunGate`]: the serial protocol
    /// pass runs to completion (it is what establishes bus order), and
    /// each shard worker of the end-of-chunk filter replay checks the
    /// gate once per node, so a deadline or cancellation stops a
    /// sharded run at the chunk boundary instead of waiting out the
    /// whole flush. On `Err` the remaining nodes' event logs are left
    /// unreplayed — the run is being abandoned, and the partial filter
    /// state is never reported.
    ///
    /// [`RunGate`]: crate::RunGate
    pub fn run_chunk_gated(
        &mut self,
        chunk: &[MemRef],
        gate: &crate::RunGate,
    ) -> Result<(), crate::GateStop> {
        if self.config.check.is_full() || self.specs.is_empty() {
            for &r in chunk {
                self.apply(r);
            }
            return Ok(());
        }
        self.batching = true;
        for &r in chunk {
            self.apply(r);
        }
        self.batching = false;
        self.flush_filter_events(gate)
    }

    /// Replays every node's deferred filter events through its bank,
    /// filter-major: the `AnyFilter` variant dispatch is hoisted outside
    /// the event loop and each filter's probe/filtered counters are
    /// accumulated in registers and charged once per batch.
    ///
    /// With `shards > 1` the nodes are partitioned into contiguous
    /// slices and each slice replays on its own scoped worker thread
    /// (shard 0 runs inline on the calling thread). This is safe and
    /// deterministic by construction: the serial protocol pass already
    /// recorded every node's events in global bus order, each node's
    /// filter bank touches only that node's state, and the reporting
    /// paths ([`System::run_stats`], [`System::filter_reports`])
    /// aggregate in node-index order — so the merge back to global
    /// results is the same at any shard count, byte for byte.
    fn flush_filter_events(&mut self, gate: &crate::RunGate) -> Result<(), crate::GateStop> {
        fn replay_slice(
            nodes: &mut [Node],
            base: usize,
            gate: &crate::RunGate,
        ) -> Result<(), crate::GateStop> {
            for (off, node) in nodes.iter_mut().enumerate() {
                gate.check()?;
                if node.events.is_empty() {
                    continue;
                }
                for f in &mut node.filters {
                    f.apply_batch(&node.events, base + off);
                }
                node.events.clear();
            }
            Ok(())
        }

        let shards = self.shards.min(self.nodes.len()).max(1);
        if shards == 1 {
            // The exact serial loop — no scope setup, and with an
            // unbounded gate the per-node check is a single branch.
            return replay_slice(&mut self.nodes, 0, gate);
        }
        let per_shard = self.nodes.len().div_ceil(shards);
        let mut results: Vec<Result<(), crate::GateStop>> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let mut slices = self.nodes.chunks_mut(per_shard);
            let first = slices.next().expect("at least one shard slice");
            let handles: Vec<_> = slices
                .enumerate()
                .map(|(s, slice)| {
                    let base = (s + 1) * per_shard;
                    scope.spawn(move || replay_slice(slice, base, gate))
                })
                .collect();
            results.push(replay_slice(first, 0, gate));
            for h in handles {
                results.push(h.join().expect("shard replay worker panicked"));
            }
        });
        // Deterministic merge of stop reasons: the lowest shard index
        // wins, so a simultaneous deadline/cancel race cannot flip the
        // reported error between runs of the same shard count.
        results.into_iter().collect()
    }

    /// Performs one CPU access.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range, or on any internal protocol
    /// violation (these are bugs, not recoverable conditions).
    pub fn access(&mut self, cpu: usize, op: Op, addr: u64) -> AccessOutcome {
        assert!(cpu < self.config.cpus, "cpu {cpu} out of range");
        let unit = self.space.unit_of(addr);
        match op {
            Op::Read => self.read(cpu, unit),
            Op::Write => self.write(cpu, unit),
        }
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    /// Per-node statistics.
    pub fn node_stats(&self, cpu: usize) -> &NodeStats {
        &self.nodes[cpu].stats
    }

    /// Aggregated run statistics.
    pub fn run_stats(&self) -> RunStats {
        let mut nodes = NodeStats::default();
        for node in &self.nodes {
            nodes.merge(&node.stats);
        }
        RunStats { nodes, system: self.stats.clone() }
    }

    /// Bus-level statistics.
    pub fn system_stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Coverage/activity report for every filter in the bank.
    pub fn filter_reports(&self) -> Vec<FilterReport> {
        let would_miss: u64 = self.nodes.iter().map(|n| n.stats.snoop_would_miss).sum();
        self.specs
            .iter()
            .enumerate()
            .map(|(k, spec)| {
                let activities: Vec<_> =
                    self.nodes.iter().map(|n| n.filters[k].activity()).collect();
                let probes = activities.iter().map(|a| a.probes).sum();
                let filtered = activities.iter().map(|a| a.filtered).sum();
                let arrays = self.nodes[0].filters[k].arrays();
                let storage_bits = self.nodes[0].filters[k].storage_bits();
                FilterReport {
                    spec: *spec,
                    label: spec.label(),
                    probes,
                    filtered,
                    would_miss,
                    activities,
                    arrays,
                    storage_bits,
                }
            })
            .collect()
    }

    /// Direct L2 state inspection (tests).
    pub fn l2_state(&self, cpu: usize, addr: u64) -> Moesi {
        self.nodes[cpu].l2.state(self.space.unit_of(addr))
    }

    /// Direct L1 presence inspection (tests).
    pub fn l1_contains(&self, cpu: usize, addr: u64) -> bool {
        self.nodes[cpu].l1.contains(self.space.unit_of(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{L1Config, L2Config};
    use crate::protocol::ProtocolKind;

    /// A tiny checked system so evictions happen quickly.
    fn tiny_with(protocol: ProtocolKind, specs: &[FilterSpec]) -> System {
        let config = SystemConfig {
            cpus: 4,
            l1: L1Config::new(256, 32),     // 8 lines
            l2: L2Config::new(1024, 64, 2), // 16 blocks, 32 units
            wb_entries: 4,
            addr: AddrSpace::default(),
            check: crate::config::CheckLevel::Full,
            protocol,
        };
        System::new(config, specs)
    }

    fn tiny(specs: &[FilterSpec]) -> System {
        tiny_with(ProtocolKind::Moesi, specs)
    }

    fn paper(specs: &[FilterSpec]) -> System {
        System::new(SystemConfig::paper_4way(), specs)
    }

    fn with_protocol(protocol: ProtocolKind) -> System {
        System::new(SystemConfig::paper_4way().with_protocol(protocol), &[])
    }

    #[test]
    fn cold_read_misses_everywhere_and_installs_exclusive() {
        let mut sys = paper(&[]);
        let out = sys.access(0, Op::Read, 0x1000);
        assert!(!out.l1_hit && !out.l2_hit);
        assert_eq!(out.bus, Some(BusKind::Read));
        assert_eq!(sys.l2_state(0, 0x1000), Moesi::Exclusive);
        assert!(sys.l1_contains(0, 0x1000));
        // Remote hit histogram: zero copies found.
        assert_eq!(sys.system_stats().remote_hit_hist[0], 1);
    }

    #[test]
    fn second_read_hits_l1() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0x1000);
        let out = sys.access(0, Op::Read, 0x1008); // same 32B unit
        assert!(out.l1_hit);
        assert_eq!(sys.node_stats(0).l1_hits, 1);
    }

    #[test]
    fn sharing_downgrades_exclusive_to_shared() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0x40);
        sys.access(1, Op::Read, 0x40);
        assert_eq!(sys.l2_state(0, 0x40), Moesi::Shared);
        assert_eq!(sys.l2_state(1, 0x40), Moesi::Shared);
        // The second read found one remote copy.
        assert_eq!(sys.system_stats().remote_hit_hist[1], 1);
    }

    #[test]
    fn producer_consumer_uses_owned_state() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Write, 0x80); // producer: BusRdX -> M
        assert_eq!(sys.l2_state(0, 0x80), Moesi::Modified);
        sys.access(1, Op::Read, 0x80); // consumer: producer supplies, M -> O
        assert_eq!(sys.l2_state(0, 0x80), Moesi::Owned);
        assert_eq!(sys.l2_state(1, 0x80), Moesi::Shared);
        assert_eq!(sys.node_stats(0).snoop_supplies, 1);
        // MOESI keeps the dirty data on-chip: no memory update.
        assert_eq!(sys.node_stats(0).snoop_memory_writebacks, 0);
    }

    #[test]
    fn write_hit_on_shared_issues_upgrade() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0xc0);
        sys.access(1, Op::Read, 0xc0); // both Shared
        let out = sys.access(0, Op::Write, 0xc0);
        assert_eq!(out.bus, Some(BusKind::Upgrade));
        assert_eq!(sys.l2_state(0, 0xc0), Moesi::Modified);
        assert_eq!(sys.l2_state(1, 0xc0), Moesi::Invalid);
        assert_eq!(sys.node_stats(1).snoop_invalidations, 1);
        assert!(!sys.l1_contains(1, 0xc0));
    }

    #[test]
    fn write_miss_invalidates_remote_modified() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Write, 0x100); // M at node 0
        sys.access(1, Op::Write, 0x100); // BusRdX: node 0 supplies + invalidates
        assert_eq!(sys.l2_state(0, 0x100), Moesi::Invalid);
        assert_eq!(sys.l2_state(1, 0x100), Moesi::Modified);
        assert_eq!(sys.node_stats(0).snoop_supplies, 1);
    }

    #[test]
    fn silent_exclusive_to_modified_upgrade() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0x140); // E
        let out = sys.access(0, Op::Write, 0x140); // silent E->M
        assert_eq!(out.bus, None);
        assert_eq!(sys.l2_state(0, 0x140), Moesi::Modified);
    }

    #[test]
    fn migratory_sharing_roundtrip_stays_coherent() {
        let mut sys = paper(&[]);
        for round in 0..6 {
            let cpu = round % 4;
            sys.access(cpu, Op::Read, 0x2000);
            sys.access(cpu, Op::Write, 0x2000);
        }
        // Exactly one M copy at the last writer.
        assert_eq!(sys.l2_state(1, 0x2000), Moesi::Modified);
        for cpu in [0, 2, 3] {
            assert_eq!(sys.l2_state(cpu, 0x2000), Moesi::Invalid);
        }
    }

    #[test]
    fn eviction_pushes_dirty_data_through_wb_to_memory() {
        let mut sys = tiny(&[]);
        // Dirty a unit, then evict it with a conflicting block
        // (same L2 index: 1 KiB apart in the tiny L2).
        sys.access(0, Op::Write, 0x0);
        sys.access(0, Op::Read, 0x400);
        assert_eq!(sys.l2_state(0, 0x0), Moesi::Invalid);
        assert_eq!(sys.node_stats(0).wb_pushes, 1);
        // Another node reads it back: memory (via WB drain) or the WB
        // itself must supply the *written* version — the checker asserts.
        sys.access(1, Op::Read, 0x0);
        sys.access(1, Op::Read, 0x8); // same unit, L1 hit
    }

    #[test]
    fn wb_supplies_pending_data_on_remote_read() {
        let mut sys = tiny(&[]);
        sys.access(0, Op::Write, 0x0);
        sys.access(0, Op::Read, 0x400); // evict dirty unit into WB
                                        // Immediately read from another node: WB must supply.
        sys.access(1, Op::Read, 0x0);
        assert!(sys.node_stats(0).wb_snoop_hits >= 1);
    }

    #[test]
    fn upgrade_supersedes_pending_writeback() {
        let mut sys = tiny(&[]);
        // Node 0 and 1 share; node 0 then owns dirty (O) after node 1 reads.
        sys.access(0, Op::Write, 0x0); // M at 0
        sys.access(1, Op::Read, 0x0); // 0:O, 1:S
                                      // Evict node 0's O copy into its WB.
        sys.access(0, Op::Read, 0x400);
        assert_eq!(sys.l2_state(0, 0x0), Moesi::Invalid);
        // Node 1 upgrades its S copy: the pending WB entry is superseded.
        sys.access(1, Op::Write, 0x0);
        assert_eq!(sys.l2_state(1, 0x0), Moesi::Modified);
        // Node 1's new data must win: read it from node 2.
        sys.access(2, Op::Read, 0x0);
    }

    #[test]
    fn filters_observe_without_changing_behaviour() {
        let specs = [FilterSpec::hybrid_scalar(8, 4, 7, 16, 2), FilterSpec::Null];
        let mut with = paper(&specs);
        let mut without = paper(&[]);
        let trace: Vec<MemRef> = (0..200)
            .map(|i| {
                let cpu = (i * 7) % 4;
                let addr = ((i * 37) % 50) * 32;
                if i % 3 == 0 {
                    MemRef::write(cpu, addr as u64)
                } else {
                    MemRef::read(cpu, addr as u64)
                }
            })
            .collect();
        with.run(trace.iter().copied());
        without.run(trace.iter().copied());
        assert_eq!(with.run_stats().nodes, without.run_stats().nodes);
        assert_eq!(with.run_stats().system, without.run_stats().system);
    }

    #[test]
    fn filter_reports_share_the_would_miss_denominator() {
        let specs = [FilterSpec::exclude(8, 2), FilterSpec::include(6, 5, 6)];
        let mut sys = paper(&specs);
        for i in 0..100u64 {
            sys.access((i % 4) as usize, Op::Read, i * 64);
        }
        let reports = sys.filter_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].would_miss, reports[1].would_miss);
        for r in &reports {
            assert!(r.coverage() >= 0.0 && r.coverage() <= 1.0);
            assert!(r.filtered <= r.would_miss);
        }
    }

    #[test]
    fn include_jetty_filters_most_cold_snoops() {
        let specs = [FilterSpec::include(10, 4, 7)];
        let mut sys = paper(&specs);
        // Four CPUs touch disjoint regions: every snoop misses remotely.
        for i in 0..400u64 {
            let cpu = (i % 4) as usize;
            sys.access(cpu, Op::Read, 0x10_0000 * cpu as u64 + (i / 4) * 32);
        }
        let report = &sys.filter_reports()[0];
        assert!(report.would_miss > 0);
        // Disjoint working sets are the IJ's best case.
        assert!(report.coverage() > 0.9, "IJ coverage unexpectedly low: {}", report.coverage());
    }

    #[test]
    fn null_filter_never_filters() {
        let mut sys = paper(&[FilterSpec::Null]);
        for i in 0..100u64 {
            sys.access((i % 4) as usize, Op::Read, i * 32);
        }
        let report = &sys.filter_reports()[0];
        assert_eq!(report.filtered, 0);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn snoop_counts_match_transactions() {
        let mut sys = paper(&[]);
        for i in 0..50u64 {
            sys.access((i % 4) as usize, Op::Write, i * 64);
        }
        let run = sys.run_stats();
        let tx = run.system.transactions();
        // Every transaction snoops cpus-1 nodes.
        assert_eq!(run.nodes.snoops_seen, tx * 3);
        assert_eq!(run.nodes.wb_probes, run.nodes.snoops_seen);
    }

    #[test]
    fn inclusion_holds_under_pressure() {
        let mut sys = tiny(&[FilterSpec::include(6, 5, 6)]);
        for i in 0..3000u64 {
            let cpu = (i % 4) as usize;
            let addr = (i * 97) % 8192;
            if i % 4 == 0 {
                sys.access(cpu, Op::Write, addr & !31);
            } else {
                sys.access(cpu, Op::Read, addr & !31);
            }
        }
        sys.verify_inclusion();
        sys.verify_filter_consistency();
    }

    #[test]
    fn run_consumes_trace() {
        let mut sys = paper(&[]);
        sys.run(vec![MemRef::read(0, 0), MemRef::write(1, 64), MemRef::read(2, 0)]);
        assert_eq!(sys.run_stats().nodes.l1_accesses, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_cpu() {
        let mut sys = paper(&[]);
        sys.access(7, Op::Read, 0);
    }

    #[test]
    fn upgrade_transaction_counts_remote_copies() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0x40);
        sys.access(1, Op::Read, 0x40);
        sys.access(2, Op::Read, 0x40);
        // Upgrade from node 0 finds two remote copies.
        sys.access(0, Op::Write, 0x40);
        let hist = &sys.system_stats().remote_hit_hist;
        assert_eq!(hist[2], 2, "histogram: {hist:?}"); // read by 2 found 2; upgrade found 2
    }

    // ------------------------------------------------------------------
    // Protocol axis
    // ------------------------------------------------------------------

    #[test]
    fn mesi_dirty_supply_downgrades_to_shared_and_updates_memory() {
        let mut sys = with_protocol(ProtocolKind::Mesi);
        sys.access(0, Op::Write, 0x80); // M at node 0
        sys.access(1, Op::Read, 0x80); // node 0 supplies, M -> S, memory updated
        assert_eq!(sys.l2_state(0, 0x80), Moesi::Shared);
        assert_eq!(sys.l2_state(1, 0x80), Moesi::Shared);
        assert_eq!(sys.node_stats(0).snoop_supplies, 1);
        assert_eq!(sys.node_stats(0).snoop_memory_writebacks, 1);
    }

    #[test]
    fn mesi_keeps_silent_exclusive_upgrade() {
        let mut sys = with_protocol(ProtocolKind::Mesi);
        sys.access(0, Op::Read, 0x140); // E
        let out = sys.access(0, Op::Write, 0x140); // silent E->M
        assert_eq!(out.bus, None);
        assert_eq!(sys.l2_state(0, 0x140), Moesi::Modified);
    }

    #[test]
    fn msi_cold_read_installs_shared() {
        let mut sys = with_protocol(ProtocolKind::Msi);
        sys.access(0, Op::Read, 0x1000);
        assert_eq!(sys.l2_state(0, 0x1000), Moesi::Shared);
    }

    #[test]
    fn msi_first_store_after_read_pays_an_upgrade() {
        let mut sys = with_protocol(ProtocolKind::Msi);
        sys.access(0, Op::Read, 0x140); // S (no Exclusive state)
        let out = sys.access(0, Op::Write, 0x140);
        assert_eq!(out.bus, Some(BusKind::Upgrade));
        assert_eq!(sys.l2_state(0, 0x140), Moesi::Modified);
    }

    #[test]
    fn non_moesi_runs_never_produce_owned_or_foreign_states() {
        for kind in [ProtocolKind::Mesi, ProtocolKind::Msi] {
            let mut sys = tiny_with(kind, &[FilterSpec::include(6, 5, 6)]);
            for i in 0..2000u64 {
                let cpu = (i % 4) as usize;
                let addr = (i * 97) % 4096;
                if i % 3 == 0 {
                    sys.access(cpu, Op::Write, addr & !31);
                } else {
                    sys.access(cpu, Op::Read, addr & !31);
                }
            }
            sys.verify_inclusion();
            sys.verify_filter_consistency();
        }
    }

    #[test]
    fn protocols_change_the_would_miss_profile() {
        // The same sharing-heavy trace produces different snoop-miss
        // profiles per protocol (MSI's upgrade traffic adds transactions).
        let trace: Vec<MemRef> = (0..600)
            .map(|i| {
                let cpu = (i * 7) % 4;
                let addr = ((i * 13) % 40) * 32;
                if i % 3 == 0 {
                    MemRef::write(cpu, addr as u64)
                } else {
                    MemRef::read(cpu, addr as u64)
                }
            })
            .collect();
        let mut results = Vec::new();
        for kind in ProtocolKind::ALL {
            let mut sys = with_protocol(kind);
            sys.run(trace.iter().copied());
            results.push(sys.run_stats());
        }
        let (moesi, msi) = (&results[0], &results[2]);
        assert!(
            msi.system.transactions() > moesi.system.transactions(),
            "MSI must pay extra upgrade transactions: {} vs {}",
            msi.system.transactions(),
            moesi.system.transactions()
        );
        assert_eq!(moesi.nodes.snoop_memory_writebacks, 0);
    }
}
