//! The bus side: atomic transaction execution and the snoop delivered to
//! every remote node.
//!
//! Each snoop follows the exact path JETTY is about: the writeback buffer
//! is always probed (never filtered), then every filter in the bank
//! observes the snoop as a bystander, then — for an unfiltered L2 — the
//! configured [`CoherenceProtocol`] reaction runs against the tag array.
//!
//! [`CoherenceProtocol`]: crate::protocol::CoherenceProtocol

use jetty_core::{FilterEvent, MissScope, SnoopFilter, UnitAddr};

use crate::bus::{BusKind, SnoopResponse};
use crate::protocol::CoherenceProtocol;
use crate::system::System;
use crate::wb::WbEntry;

impl System {
    /// Executes one bus transaction: drains a writeback slot, snoops every
    /// remote node, aggregates the response, updates the histogram.
    pub(super) fn bus_transaction(
        &mut self,
        requester: usize,
        unit: UnitAddr,
        kind: BusKind,
    ) -> SnoopResponse {
        // Bus acquired: the oldest pending writeback of the requester rides
        // along (simple drain policy; keeps WB occupancy bounded).
        if let Some(entry) = self.nodes[requester].wb.drain_one() {
            self.nodes[requester].stats.wb_drains += 1;
            self.retire_to_memory(entry);
        }

        let mut response = SnoopResponse::default();
        for i in 0..self.config.cpus {
            if i == requester {
                continue;
            }
            self.snoop(i, unit, kind, &mut response);
        }

        let hist_slot = response.remote_copies.min(self.config.cpus - 1);
        self.stats.remote_hit_hist[hist_slot] += 1;
        match kind {
            BusKind::Read => self.stats.bus_reads += 1,
            BusKind::ReadExclusive => self.stats.bus_read_exclusives += 1,
            BusKind::Upgrade => self.stats.bus_upgrades += 1,
        }
        if kind.needs_data() {
            if response.cache_supplied() {
                self.stats.cache_supplies += 1;
            } else {
                self.stats.memory_supplies += 1;
            }
        }
        response
    }

    /// Delivers one snoop to node `i`.
    fn snoop(&mut self, i: usize, unit: UnitAddr, kind: BusKind, response: &mut SnoopResponse) {
        let (state, block_present) = self.nodes[i].l2.snoop_probe(unit);
        let would_hit = state.is_valid();
        // On a miss, distinguish a whole-tag miss (the entire block absent:
        // exclude filters may record it) from a partial one.
        let scope = if block_present { MissScope::Unit } else { MissScope::Block };
        // A writeback retired to memory as part of this snoop (borrow of
        // the node ends before memory is updated).
        let mut retired: Option<WbEntry> = None;

        {
            let node = &mut self.nodes[i];
            node.stats.snoops_seen += 1;

            // 1. The writeback buffer is always probed (never filtered).
            node.stats.wb_probes += 1;
            if node.wb.probe(unit).is_some() {
                debug_assert!(!would_hit, "unit in both WB and L2 of node {i}");
                node.stats.wb_snoop_hits += 1;
                match kind {
                    BusKind::Read => {
                        // Supply from the buffer AND complete the pending
                        // memory write in the same transaction. Leaving the
                        // entry queued would let a stale drain overwrite a
                        // newer writeback after the requester (installed
                        // Exclusive) modifies the data.
                        node.stats.snoop_supplies += 1;
                        node.stats.wb_drains += 1;
                        let taken = node.wb.remove(unit).expect("probe just found it");
                        response.supplied_version = Some(taken.version);
                        response.supplied_by_wb = true;
                        retired = Some(taken);
                    }
                    BusKind::ReadExclusive => {
                        // The requester takes ownership; the pending
                        // writeback is superseded and dropped.
                        node.stats.snoop_supplies += 1;
                        let taken = node.wb.remove(unit).expect("probe just found it");
                        response.supplied_version = Some(taken.version);
                        response.supplied_by_wb = true;
                    }
                    BusKind::Upgrade => {
                        // The upgrader's Shared copy matches the buffered
                        // data; the buffered write is superseded.
                        node.wb.remove(unit);
                    }
                }
            }

            // 2. The filter bank observes the snoop. Filters are pure
            // bystanders: every one probes, and each that fails to filter a
            // genuine miss is taught via record_snoop_miss. A batched run
            // defers the whole bank walk to the chunk flush — one logged
            // event here, replayed per filter in cache-friendly order.
            if self.batching {
                node.events.push(FilterEvent::Snoop { unit, would_hit, scope });
            } else {
                for f in &mut node.filters {
                    let verdict = f.probe(unit);
                    if verdict.is_filtered() {
                        assert!(
                            !would_hit,
                            "UNSAFE FILTER: {} filtered a snoop to cached unit {unit} on node {i}",
                            f.name()
                        );
                    } else if !would_hit {
                        f.record_snoop_miss(unit, scope);
                    }
                }
            }
        }
        if let Some(entry) = retired {
            self.retire_to_memory(entry);
        }

        // 3. The protocol reaction (what an unfiltered L2 does).
        if !would_hit {
            self.nodes[i].stats.snoop_would_miss += 1;
            return;
        }
        self.nodes[i].stats.snoop_hits += 1;
        response.remote_copies += 1;

        match kind {
            BusKind::Read => {
                let reaction = self.config.protocol.remote_read_reaction(state);
                // A dirty L1 copy folds into the L2 before any supply
                // (version already current — stores stamp eagerly).
                if self.nodes[i].l1.downgrade(unit) {
                    self.nodes[i].stats.l2_data_writes += 1;
                }
                // Version pushed to memory alongside the supply (MESI/MSI
                // M -> S downgrades; node borrow ends first).
                let mut memory_update = None;
                if reaction.supplies {
                    let node = &mut self.nodes[i];
                    node.stats.snoop_supplies += 1;
                    let version = node.l2.version(unit);
                    response.supplied_version = Some(version);
                    if reaction.memory_update {
                        node.stats.snoop_memory_writebacks += 1;
                        memory_update = Some(version);
                    }
                }
                if reaction.next != state {
                    let node = &mut self.nodes[i];
                    node.l2.set_state(unit, reaction.next);
                    node.stats.snoop_state_writes += 1;
                }
                if let Some(version) = memory_update {
                    self.update_memory(unit, version);
                }
            }
            BusKind::ReadExclusive | BusKind::Upgrade => {
                let node = &mut self.nodes[i];
                node.l1.invalidate(unit);
                let (prior, version) = node.l2.invalidate(unit);
                node.stats.snoop_state_writes += 1;
                node.stats.snoop_invalidations += 1;
                if kind == BusKind::ReadExclusive && prior.supplies_data() {
                    node.stats.snoop_supplies += 1;
                    response.supplied_version = Some(version);
                }
                if self.batching {
                    self.nodes[i].events.push(FilterEvent::Deallocate(unit));
                } else {
                    for f in &mut self.nodes[i].filters {
                        f.on_deallocate(unit);
                    }
                }
            }
        }
    }
}
