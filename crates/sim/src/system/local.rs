//! The CPU-side access path: L1 probe → local L2 → writeback forwarding →
//! bus request, plus L1/L2 fills, installs and store completion.
//!
//! Protocol-dependent decisions (which state a fill installs, whether a
//! forwarded writeback needs an upgrade, what counts as dirty on eviction)
//! are delegated to the system's [`CoherenceProtocol`]; the flow itself is
//! protocol-agnostic.
//!
//! [`CoherenceProtocol`]: crate::protocol::CoherenceProtocol

use jetty_core::{FilterEvent, SnoopFilter, UnitAddr};

use crate::bus::BusKind;
use crate::l1::L1Lookup;
use crate::moesi::Moesi;
use crate::protocol::CoherenceProtocol;
use crate::system::{AccessOutcome, System};
use crate::wb::WbEntry;

impl System {
    pub(super) fn read(&mut self, cpu: usize, unit: UnitAddr) -> AccessOutcome {
        self.nodes[cpu].stats.l1_accesses += 1;
        if self.nodes[cpu].l1.lookup(unit).is_hit() {
            self.nodes[cpu].stats.l1_hits += 1;
            self.check_read(cpu, unit);
            return AccessOutcome { l1_hit: true, l2_hit: false, bus: None };
        }

        // L1 miss: probe the local L2.
        let node = &mut self.nodes[cpu];
        node.stats.l2_local_accesses += 1;
        node.stats.l2_tag_reads += 1;
        let state = node.l2.state(unit);
        let outcome = if state.is_valid() {
            node.stats.l2_local_hits += 1;
            node.stats.l2_data_reads += 1; // forward the unit to the L1
            self.fill_l1(cpu, unit, state.is_writable());
            AccessOutcome { l1_hit: false, l2_hit: true, bus: None }
        } else if let Some(entry) = self.nodes[cpu].l2_miss_wb_forward(unit) {
            // The missing unit is still in the node's own writeback buffer
            // (recently evicted dirty): forward it back without a bus
            // transaction. The protocol decides the re-entry state (MOESI:
            // a once-shared entry returns as Owned, a sole copy as
            // Modified; MESI/MSI entries are always sole dirty copies).
            let state = self.config.protocol.wb_forward_state(&entry);
            self.install(cpu, unit, state, entry.version);
            self.fill_l1(cpu, unit, state.is_writable());
            AccessOutcome { l1_hit: false, l2_hit: false, bus: None }
        } else {
            // L2 miss: bus read.
            let response = self.bus_transaction(cpu, unit, BusKind::Read);
            let install = self.config.protocol.read_fill_state(response.shared());
            let version = self.incoming_version(unit, &response);
            self.install(cpu, unit, install, version);
            self.fill_l1(cpu, unit, install.is_writable());
            self.nodes[cpu].stats.bus_reads += 1;
            AccessOutcome { l1_hit: false, l2_hit: false, bus: Some(BusKind::Read) }
        };
        self.check_read(cpu, unit);
        self.check_invariants(unit);
        outcome
    }

    pub(super) fn write(&mut self, cpu: usize, unit: UnitAddr) -> AccessOutcome {
        self.nodes[cpu].stats.l1_accesses += 1;
        let lookup = self.nodes[cpu].l1.lookup(unit);
        let outcome = match lookup {
            L1Lookup::HitWritable => {
                self.nodes[cpu].stats.l1_hits += 1;
                // First store to an Exclusive unit silently promotes the L2
                // to Modified (the permission bit lives in the L1, so only
                // the E->M state write touches the L2).
                self.promote_to_modified(cpu, unit);
                self.complete_store(cpu, unit);
                AccessOutcome { l1_hit: true, l2_hit: true, bus: None }
            }
            L1Lookup::HitShared => {
                // Write hit on a shared copy: upgrade on the bus
                // ("a snoop might be necessary even on an L2 hit").
                self.nodes[cpu].stats.l1_hits += 1;
                self.bus_transaction(cpu, unit, BusKind::Upgrade);
                self.promote_to_modified(cpu, unit);
                self.nodes[cpu].l1.grant_write(unit);
                self.complete_store(cpu, unit);
                self.nodes[cpu].stats.bus_upgrades += 1;
                AccessOutcome { l1_hit: true, l2_hit: true, bus: Some(BusKind::Upgrade) }
            }
            L1Lookup::Miss => self.write_l1_miss(cpu, unit),
        };
        self.check_invariants(unit);
        outcome
    }

    /// The L1-miss leg of a store: local L2 probe, writeback forwarding,
    /// or an invalidating bus transaction.
    fn write_l1_miss(&mut self, cpu: usize, unit: UnitAddr) -> AccessOutcome {
        let node = &mut self.nodes[cpu];
        node.stats.l2_local_accesses += 1;
        node.stats.l2_tag_reads += 1;
        let state = node.l2.state(unit);
        match state {
            Moesi::Modified | Moesi::Exclusive => {
                node.stats.l2_local_hits += 1;
                node.stats.l2_data_reads += 1;
                self.fill_l1(cpu, unit, true);
                self.promote_to_modified(cpu, unit);
                self.complete_store(cpu, unit);
                AccessOutcome { l1_hit: false, l2_hit: true, bus: None }
            }
            Moesi::Shared | Moesi::Owned => {
                node.stats.l2_local_hits += 1;
                node.stats.l2_data_reads += 1;
                self.bus_transaction(cpu, unit, BusKind::Upgrade);
                self.promote_to_modified(cpu, unit);
                self.fill_l1(cpu, unit, true);
                self.complete_store(cpu, unit);
                self.nodes[cpu].stats.bus_upgrades += 1;
                AccessOutcome { l1_hit: false, l2_hit: true, bus: Some(BusKind::Upgrade) }
            }
            Moesi::Invalid => {
                if let Some(entry) = self.nodes[cpu].l2_miss_wb_forward(unit) {
                    // Forward the pending writeback back into the cache.
                    // The protocol decides whether remote Shared copies may
                    // still exist (MOESI Owned-origin entries), requiring
                    // an invalidating upgrade before taking exclusivity.
                    if self.config.protocol.wb_forward_write_needs_upgrade(&entry) {
                        self.bus_transaction(cpu, unit, BusKind::Upgrade);
                        self.nodes[cpu].stats.bus_upgrades += 1;
                    }
                    self.install(cpu, unit, self.config.protocol.write_fill_state(), entry.version);
                    self.fill_l1(cpu, unit, true);
                    self.complete_store(cpu, unit);
                    AccessOutcome { l1_hit: false, l2_hit: false, bus: None }
                } else {
                    let response = self.bus_transaction(cpu, unit, BusKind::ReadExclusive);
                    let version = self.incoming_version(unit, &response);
                    self.install(cpu, unit, self.config.protocol.write_fill_state(), version);
                    self.fill_l1(cpu, unit, true);
                    self.complete_store(cpu, unit);
                    self.nodes[cpu].stats.bus_read_exclusives += 1;
                    AccessOutcome {
                        l1_hit: false,
                        l2_hit: false,
                        bus: Some(BusKind::ReadExclusive),
                    }
                }
            }
        }
    }

    /// Marks the L1 line dirty and stamps a fresh data version at the L2
    /// (the L2 carries the node's authoritative version; see module docs).
    fn complete_store(&mut self, cpu: usize, unit: UnitAddr) {
        let node = &mut self.nodes[cpu];
        node.l1.mark_dirty(unit);
        debug_assert!(node.l2.state(unit).is_valid(), "store to unit absent from L2");
        self.next_version += 1;
        let version = self.next_version;
        self.nodes[cpu].l2.set_version(unit, version);
        if self.config.check.is_full() {
            self.latest_versions.insert(unit.raw(), version);
        }
    }

    /// Transitions a valid local unit to Modified, charging a tag write
    /// when the state actually changes.
    fn promote_to_modified(&mut self, cpu: usize, unit: UnitAddr) {
        let node = &mut self.nodes[cpu];
        let state = node.l2.state(unit);
        assert!(state.is_valid(), "promote on absent unit {unit}");
        if state != Moesi::Modified {
            node.l2.set_state(unit, Moesi::Modified);
            node.stats.l2_tag_writes += 1;
        }
    }

    /// Fills the L1, handling the displaced victim's dirty writeback into
    /// the L2.
    fn fill_l1(&mut self, cpu: usize, unit: UnitAddr, writable: bool) {
        let node = &mut self.nodes[cpu];
        if let Some(victim) = node.l1.fill(unit, writable) {
            if victim.dirty {
                // By inclusion the victim's unit is still in the L2, in M
                // (stores eagerly promote). The writeback is a data write
                // plus the locate probe.
                node.stats.l1_writebacks += 1;
                node.stats.l2_local_accesses += 1;
                node.stats.l2_local_hits += 1;
                node.stats.l2_tag_reads += 1;
                node.stats.l2_data_writes += 1;
                debug_assert!(
                    node.l2.state(victim.unit).is_valid(),
                    "inclusion violated: dirty L1 victim {} absent from L2",
                    victim.unit
                );
            }
        }
    }

    /// Installs a freshly fetched unit into the local L2, evicting a
    /// conflicting block if needed, and notifies the filter bank.
    pub(super) fn install(&mut self, cpu: usize, unit: UnitAddr, state: Moesi, version: u64) {
        debug_assert!(self.config.protocol.allows(state), "install of foreign state {state}");
        // The system-owned scratch buffer is moved out for the duration of
        // the fill (so `self` stays borrowable below) and returned at the
        // end: steady-state installs perform zero heap allocation.
        let mut evicted = std::mem::take(&mut self.evict_scratch);
        {
            let node = &mut self.nodes[cpu];
            node.stats.l2_tag_writes += 1; // new tag/state
            node.stats.l2_data_writes += 1; // the arriving data
            node.l2.fill_into(unit, state, version, &mut evicted);
        }
        for ev in &evicted {
            let node = &mut self.nodes[cpu];
            node.stats.l2_evicted_units += 1;
            // Inclusion: drop the L1 copy (its data is not newer than the
            // L2's — stores stamp the L2 version eagerly).
            node.l1.invalidate(ev.unit);
            if self.config.protocol.dirty_on_evict(ev.state) {
                node.stats.l2_evict_data_reads += 1; // read out for the writeback
                node.stats.wb_pushes += 1;
                if let Some(forced) = node.wb.push(WbEntry {
                    unit: ev.unit,
                    version: ev.version,
                    shared: self.config.protocol.evicted_may_have_sharers(ev.state),
                }) {
                    node.stats.wb_drains += 1;
                    self.retire_to_memory(forced);
                }
            }
            if self.batching {
                self.nodes[cpu].events.push(FilterEvent::Deallocate(ev.unit));
            } else {
                for f in &mut self.nodes[cpu].filters {
                    f.on_deallocate(ev.unit);
                }
            }
        }
        if self.batching {
            self.nodes[cpu].events.push(FilterEvent::Allocate(unit));
        } else {
            for f in &mut self.nodes[cpu].filters {
                f.on_allocate(unit);
            }
        }
        self.evict_scratch = evicted;
    }
}
