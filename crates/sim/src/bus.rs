//! Bus transaction kinds for the atomic snoopy bus.
//!
//! The bus is modelled as atomic: one transaction completes (request,
//! snoops, response) before the next begins, so no transient states are
//! needed in the protocol. This matches the count-based evaluation of the
//! paper — JETTY changes no timing-visible behaviour, only which structures
//! are touched.

use std::fmt;

/// Kind of bus transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// Read miss: fetch a copy, others may keep shared copies (`BusRd`).
    Read,
    /// Write miss: fetch an exclusive copy, invalidating others (`BusRdX`).
    ReadExclusive,
    /// Write hit on a shared copy: invalidate others, no data (`BusUpgr`).
    Upgrade,
}

impl BusKind {
    /// `true` when remote copies must be invalidated.
    pub fn invalidates(self) -> bool {
        matches!(self, BusKind::ReadExclusive | BusKind::Upgrade)
    }

    /// `true` when the requester needs data on the bus.
    pub fn needs_data(self) -> bool {
        matches!(self, BusKind::Read | BusKind::ReadExclusive)
    }
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusKind::Read => f.write_str("BusRd"),
            BusKind::ReadExclusive => f.write_str("BusRdX"),
            BusKind::Upgrade => f.write_str("BusUpgr"),
        }
    }
}

/// Aggregated snoop response for one transaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnoopResponse {
    /// How many remote caches held a valid copy (pre-transition).
    pub remote_copies: usize,
    /// Version of the data supplied by a remote owner cache, if any.
    pub supplied_version: Option<u64>,
    /// Whether a writeback buffer supplied the data.
    pub supplied_by_wb: bool,
}

impl SnoopResponse {
    /// `true` when any remote cache still holds a copy after the snoop
    /// (decides Shared vs Exclusive install for reads).
    pub fn shared(&self) -> bool {
        self.remote_copies > 0
    }

    /// `true` when a cache or WB supplied the data (memory stays silent).
    pub fn cache_supplied(&self) -> bool {
        self.supplied_version.is_some() || self.supplied_by_wb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidation_kinds() {
        assert!(!BusKind::Read.invalidates());
        assert!(BusKind::ReadExclusive.invalidates());
        assert!(BusKind::Upgrade.invalidates());
    }

    #[test]
    fn data_kinds() {
        assert!(BusKind::Read.needs_data());
        assert!(BusKind::ReadExclusive.needs_data());
        assert!(!BusKind::Upgrade.needs_data());
    }

    #[test]
    fn display() {
        assert_eq!(BusKind::Read.to_string(), "BusRd");
        assert_eq!(BusKind::ReadExclusive.to_string(), "BusRdX");
        assert_eq!(BusKind::Upgrade.to_string(), "BusUpgr");
    }

    #[test]
    fn response_flags() {
        let r = SnoopResponse::default();
        assert!(!r.shared());
        assert!(!r.cache_supplied());
        let r2 =
            SnoopResponse { remote_copies: 2, supplied_version: Some(7), supplied_by_wb: false };
        assert!(r2.shared());
        assert!(r2.cache_supplied());
        let r3 = SnoopResponse { remote_copies: 0, supplied_version: None, supplied_by_wb: true };
        assert!(r3.cache_supplied());
    }
}
