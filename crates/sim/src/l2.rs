//! Direct-mapped, subblocked L2 cache with per-subblock MOESI state.
//!
//! The tag array holds one tag per block; each block carries one MOESI
//! state per subblock (two 32-byte subblocks per 64-byte block in the
//! paper's configuration). Subblocking halves the tag array at the cost of
//! extra misses when neighbouring subblocks are absent — which is exactly
//! the snoop-locality the Exclude-Jetty feeds on.
//!
//! Each subblock also carries a data *version* used by the coherence
//! checker: stores stamp the unit with a fresh global version, and fills
//! copy the supplier's version, so any stale read is caught immediately.
//!
//! # Storage layout (hot path)
//!
//! The simulator probes this structure on every snoop of every bus
//! transaction, so everything a snoop probe reads is packed into **one
//! 16-byte record per block**: a flat `hot` array of `u128` whose low 64
//! bits hold the block tag and whose high 64 bits hold the *meta* word —
//! the packed valid bitmask in bits `0..8` (bit `sub` set ⇔ subblock
//! `sub` valid) and one 4-bit MOESI nibble per subblock at bits
//! `8 + 4*sub`. A snoop probe is then a single load touching a single
//! cache line (four records per 64-byte line), answering tag match,
//! block presence, subblock validity *and* the coherence state at once;
//! the previous layout split tags, valid masks and states across three
//! arrays and three cache lines. Only the checker-support data *version*
//! stays cold, in a flat `versions` array indexed
//! `block * subblocks + sub` — the protocol hot path never reads it on a
//! filtered snoop. The invariants — valid bit set ⇔ the state nibble
//! encodes a valid MOESI state, valid bit clear ⇒ nibble is 0 and
//! `versions[u] == 0` — are maintained by every mutation below.
//!
//! The 8-bit valid mask bounds `subblocks` to 8 (the paper uses 2, the
//! NSB variant 1), and the nibble field encodes only *valid* states:
//! `Invalid` is represented by a clear valid bit, never by a nibble.

use jetty_core::kernels::{self, SimdLevel};
use jetty_core::UnitAddr;

use crate::config::L2Config;
use crate::moesi::Moesi;

/// Packs a valid MOESI state into its 4-bit hot-record nibble.
fn state_nibble(state: Moesi) -> u64 {
    match state {
        Moesi::Modified => 0,
        Moesi::Owned => 1,
        Moesi::Exclusive => 2,
        Moesi::Shared => 3,
        Moesi::Invalid => unreachable!("Invalid is a clear valid bit, never a nibble"),
    }
}

/// Unpacks a hot-record state nibble (only called under a set valid bit).
/// Valid nibbles are 0..=3, so a 2-bit mask into a const table decodes
/// without a reachable panic path — the bounds check folds away.
fn nibble_state(nibble: u64) -> Moesi {
    const STATES: [Moesi; 4] = [Moesi::Modified, Moesi::Owned, Moesi::Exclusive, Moesi::Shared];
    STATES[(nibble & 0x3) as usize]
}

/// Bit offset of subblock `sub`'s state nibble within the meta word.
fn nibble_shift(sub: usize) -> u32 {
    8 + 4 * sub as u32
}

/// A valid subblock displaced by a block eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedUnit {
    /// The displaced coherence unit.
    pub unit: UnitAddr,
    /// Its state at eviction (decides whether a writeback is needed).
    pub state: Moesi,
    /// Its data version (checker support).
    pub version: u64,
}

/// Direct-mapped subblocked L2 cache (compacted hot-record storage; see
/// the module docs for the layout and its invariants).
#[derive(Clone, Debug)]
pub struct L2Cache {
    /// Per-block hot record: tag in the low 64 bits; valid bitmask and
    /// packed state nibbles in the high 64 (the meta word).
    hot: Vec<u128>,
    /// Per-subblock data version (checker support), indexed
    /// `block * subblocks + sub` — cold: never read on the probe path.
    versions: Vec<u64>,
    subblocks: usize,
    sub_mask: u64,
    sub_bits: u32,
    index_mask: u64,
    index_bits: u32,
}

impl L2Cache {
    /// Creates an empty L2.
    pub fn new(config: L2Config) -> Self {
        let blocks = config.blocks();
        let subblocks = config.subblocks;
        assert!(subblocks <= 8, "packed hot records hold at most 8 subblocks per block");
        Self {
            hot: vec![0; blocks],
            versions: vec![0; blocks * subblocks],
            subblocks,
            sub_mask: subblocks as u64 - 1,
            sub_bits: subblocks.trailing_zeros(),
            index_mask: blocks as u64 - 1,
            index_bits: blocks.trailing_zeros(),
        }
    }

    /// Number of blocks in the hot array.
    fn blocks(&self) -> usize {
        self.hot.len()
    }

    /// The meta word (valid mask + state nibbles) of block `idx`.
    fn meta(&self, idx: usize) -> u64 {
        (self.hot[idx] >> 64) as u64
    }

    /// The tag of block `idx`.
    fn tag(&self, idx: usize) -> u64 {
        self.hot[idx] as u64
    }

    /// Overwrites the meta word of block `idx`, leaving the tag.
    fn set_meta(&mut self, idx: usize, meta: u64) {
        self.hot[idx] = (self.hot[idx] & u64::MAX as u128) | ((meta as u128) << 64);
    }

    /// Splits a unit address into (block index, block tag, subblock index).
    fn split(&self, unit: UnitAddr) -> (usize, u64, usize) {
        let sub = (unit.raw() & self.sub_mask) as usize;
        let block_addr = unit.raw() >> self.sub_bits;
        let idx = (block_addr & self.index_mask) as usize;
        let tag = block_addr >> self.index_bits;
        (idx, tag, sub)
    }

    fn unit_addr(&self, idx: usize, tag: u64, sub: usize) -> UnitAddr {
        UnitAddr::new((((tag << self.index_bits) | idx as u64) << self.sub_bits) | sub as u64)
    }

    /// Flat index of `(idx, sub)` into `versions`.
    fn slot(&self, idx: usize, sub: usize) -> usize {
        (idx << self.sub_bits) | sub
    }

    /// `true` when `unit`'s subblock is valid under a matching tag.
    fn is_present(&self, idx: usize, tag: u64, sub: usize) -> bool {
        let rec = self.hot[idx];
        ((rec >> 64) as u64) & (1u64 << sub) != 0 && rec as u64 == tag
    }

    /// MOESI state of `unit` (`Invalid` when absent or tag mismatch).
    pub fn state(&self, unit: UnitAddr) -> Moesi {
        let (idx, tag, sub) = self.split(unit);
        let rec = self.hot[idx];
        let meta = (rec >> 64) as u64;
        if meta & (1u64 << sub) != 0 && rec as u64 == tag {
            nibble_state(meta >> nibble_shift(sub))
        } else {
            Moesi::Invalid
        }
    }

    /// `true` when the resident block's tag matches `unit`'s block and at
    /// least one subblock is valid (a snoop miss with `block_present` is a
    /// *partial* miss — the tag matched but the snooped subblock is
    /// invalid, so exclude filters must not record the whole block).
    pub fn block_present(&self, unit: UnitAddr) -> bool {
        let (idx, tag, _) = self.split(unit);
        let rec = self.hot[idx];
        ((rec >> 64) as u64) & kernels::L2_META_VALID_MASK != 0 && rec as u64 == tag
    }

    /// One-shot snoop probe: `(state, block_present)` from a single
    /// address split and one 16-byte hot-record load (the bus delivers
    /// both questions for every snoop, and the packed state nibble means
    /// even the state answer costs no second array read).
    pub fn snoop_probe(&self, unit: UnitAddr) -> (Moesi, bool) {
        let (idx, tag, sub) = self.split(unit);
        let rec = self.hot[idx];
        let meta = (rec >> 64) as u64;
        let mask = meta & kernels::L2_META_VALID_MASK;
        let block_present = mask != 0 && rec as u64 == tag;
        let state = if block_present && mask & (1u64 << sub) != 0 {
            nibble_state(meta >> nibble_shift(sub))
        } else {
            Moesi::Invalid
        };
        (state, block_present)
    }

    /// Batched twin of [`L2Cache::snoop_probe`] for the read-only
    /// questions: appends one flag byte per raw unit address to `out`
    /// ([`kernels::L2_BLOCK_PRESENT`] / [`kernels::L2_SUB_VALID`]), with
    /// the 16-byte hot records streaming instead of pointer-chasing per
    /// event. The caller reads [`L2Cache::state`] only for units whose
    /// subblock is valid.
    pub fn snoop_probe_many(&self, units: &[u64], out: &mut Vec<u8>) {
        self.snoop_probe_many_with(kernels::active_level(), units, out);
    }

    /// [`snoop_probe_many`](L2Cache::snoop_probe_many) with an explicit
    /// kernel level, so differential tests can pin the scalar and AVX2
    /// probe kernels against each other on the same cache image.
    pub fn snoop_probe_many_with(&self, level: SimdLevel, units: &[u64], out: &mut Vec<u8>) {
        kernels::snoop_probe_many(level, &self.hot, units, self.sub_bits, self.index_bits, out);
    }

    /// Data version of `unit`; 0 when absent.
    pub fn version(&self, unit: UnitAddr) -> u64 {
        let (idx, tag, sub) = self.split(unit);
        // An invalid subblock always holds version 0 (module invariant), so
        // gating on the subblock's own valid bit matches the historical
        // "any subblock valid and tag matches" behaviour exactly.
        if self.is_present(idx, tag, sub) {
            self.versions[self.slot(idx, sub)]
        } else {
            0
        }
    }

    /// Sets the MOESI state of a present unit.
    ///
    /// # Panics
    ///
    /// Panics if the unit is absent (tag mismatch) — state changes to
    /// absent units are protocol bugs.
    pub fn set_state(&mut self, unit: UnitAddr, state: Moesi) {
        // Invalidation must go through `invalidate` — writing `Invalid`
        // here would desynchronise the valid bitmask from the nibbles.
        assert!(state.is_valid(), "set_state with Invalid (use invalidate)");
        let (idx, tag, sub) = self.split(unit);
        assert!(self.is_present(idx, tag, sub), "set_state on absent unit {unit}");
        let sh = nibble_shift(sub);
        let meta = (self.meta(idx) & !(0xF << sh)) | (state_nibble(state) << sh);
        self.set_meta(idx, meta);
    }

    /// Stamps a present unit with a new data version (store completion).
    ///
    /// # Panics
    ///
    /// Panics if the unit is absent.
    pub fn set_version(&mut self, unit: UnitAddr, version: u64) {
        let (idx, tag, sub) = self.split(unit);
        assert!(self.is_present(idx, tag, sub), "set_version on absent unit {unit}");
        let slot = self.slot(idx, sub);
        self.versions[slot] = version;
    }

    /// Invalidates a present unit (snoop invalidation), returning its state
    /// and version just before.
    ///
    /// # Panics
    ///
    /// Panics if the unit is absent.
    pub fn invalidate(&mut self, unit: UnitAddr) -> (Moesi, u64) {
        let (idx, tag, sub) = self.split(unit);
        assert!(self.is_present(idx, tag, sub), "invalidate on absent unit {unit}");
        let slot = self.slot(idx, sub);
        let meta = self.meta(idx);
        let sh = nibble_shift(sub);
        let prior = (nibble_state(meta >> sh), self.versions[slot]);
        self.versions[slot] = 0;
        // Clear the valid bit and zero the nibble (module invariant).
        self.set_meta(idx, meta & !(1u64 << sub) & !(0xF << sh));
        prior
    }

    /// Fills `unit` with `state`/`version`, pushing the valid units evicted
    /// to make room onto `evicted` (the buffer is cleared first): when the
    /// resident block's tag differs, the *whole* block (every valid
    /// subblock) is displaced. A fill into a matching resident block evicts
    /// nothing.
    ///
    /// The caller threads one scratch buffer through all fills, so the
    /// steady state allocates nothing (the buffer's capacity saturates at
    /// `subblocks` after the first conflict eviction).
    ///
    /// # Panics
    ///
    /// Panics when filling a unit that is already valid (the protocol only
    /// fills on misses) or with an `Invalid` state.
    pub fn fill_into(
        &mut self,
        unit: UnitAddr,
        state: Moesi,
        version: u64,
        evicted: &mut Vec<EvictedUnit>,
    ) {
        assert!(state.is_valid(), "fill with Invalid state");
        evicted.clear();
        let (idx, tag, sub) = self.split(unit);
        let meta = self.meta(idx);
        let victim_tag = self.tag(idx);
        if meta & kernels::L2_META_VALID_MASK != 0 && victim_tag != tag {
            let mut mask = meta & kernels::L2_META_VALID_MASK;
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let slot = self.slot(idx, s);
                evicted.push(EvictedUnit {
                    unit: self.unit_addr(idx, victim_tag, s),
                    state: nibble_state(meta >> nibble_shift(s)),
                    version: self.versions[slot],
                });
                self.versions[slot] = 0;
            }
            self.hot[idx] = 0;
        }
        assert!(!self.is_present(idx, tag, sub), "fill of already-valid unit {unit}");
        let slot = self.slot(idx, sub);
        let sh = nibble_shift(sub);
        let new_meta =
            (self.meta(idx) & !(0xF << sh)) | (1u64 << sub) | (state_nibble(state) << sh);
        self.hot[idx] = tag as u128 | ((new_meta as u128) << 64);
        self.versions[slot] = version;
    }

    /// Allocating convenience wrapper around [`L2Cache::fill_into`]
    /// (tests and model-equivalence harnesses; the simulator hot path
    /// threads a reusable scratch buffer instead).
    pub fn fill(&mut self, unit: UnitAddr, state: Moesi, version: u64) -> Vec<EvictedUnit> {
        let mut evicted = Vec::new();
        self.fill_into(unit, state, version, &mut evicted);
        evicted
    }

    /// Iterates over all valid units with their states (checker aid).
    pub fn valid_units(&self) -> impl Iterator<Item = (UnitAddr, Moesi)> + '_ {
        (0..self.blocks()).flat_map(move |idx| {
            let tag = self.tag(idx);
            let meta = self.meta(idx);
            (0..self.subblocks).filter(move |&sub| meta & (1u64 << sub) != 0).map(move |sub| {
                (self.unit_addr(idx, tag, sub), nibble_state(meta >> nibble_shift(sub)))
            })
        })
    }

    /// Number of valid units currently cached.
    pub fn population(&self) -> usize {
        self.hot
            .iter()
            .map(|&rec| (((rec >> 64) as u64) & kernels::L2_META_VALID_MASK).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L2Cache {
        // 4 blocks of 64 bytes, 2 subblocks each.
        L2Cache::new(L2Config::new(256, 64, 2))
    }

    #[test]
    fn starts_empty() {
        let l2 = small();
        assert_eq!(l2.state(UnitAddr::new(0)), Moesi::Invalid);
        assert_eq!(l2.population(), 0);
    }

    #[test]
    fn fill_then_lookup() {
        let mut l2 = small();
        let u = UnitAddr::new(3);
        assert!(l2.fill(u, Moesi::Exclusive, 7).is_empty());
        assert_eq!(l2.state(u), Moesi::Exclusive);
        assert_eq!(l2.version(u), 7);
        assert_eq!(l2.population(), 1);
    }

    #[test]
    fn sibling_subblocks_share_a_tag() {
        let mut l2 = small();
        // Units 8 and 9 are the two subblocks of block 4 (idx 0, tag 1).
        let a = UnitAddr::new(8);
        let b = UnitAddr::new(9);
        assert!(l2.fill(a, Moesi::Shared, 1).is_empty());
        assert!(l2.fill(b, Moesi::Modified, 2).is_empty());
        assert_eq!(l2.state(a), Moesi::Shared);
        assert_eq!(l2.state(b), Moesi::Modified);
    }

    #[test]
    fn one_subblock_valid_means_other_misses() {
        let mut l2 = small();
        let a = UnitAddr::new(8);
        l2.fill(a, Moesi::Shared, 1);
        // Sibling subblock: tag matches but state is Invalid -> miss.
        assert_eq!(l2.state(UnitAddr::new(9)), Moesi::Invalid);
    }

    #[test]
    fn conflicting_block_evicts_all_valid_subblocks() {
        let mut l2 = small();
        // Block addr 0 (units 0,1) and block addr 4 (units 8,9) share idx 0.
        l2.fill(UnitAddr::new(0), Moesi::Modified, 3);
        l2.fill(UnitAddr::new(1), Moesi::Shared, 4);
        let evicted = l2.fill(UnitAddr::new(8), Moesi::Exclusive, 5);
        assert_eq!(evicted.len(), 2);
        assert!(evicted.contains(&EvictedUnit {
            unit: UnitAddr::new(0),
            state: Moesi::Modified,
            version: 3
        }));
        assert!(evicted.contains(&EvictedUnit {
            unit: UnitAddr::new(1),
            state: Moesi::Shared,
            version: 4
        }));
        assert_eq!(l2.state(UnitAddr::new(0)), Moesi::Invalid);
        assert_eq!(l2.state(UnitAddr::new(8)), Moesi::Exclusive);
    }

    #[test]
    fn fill_into_reuses_the_scratch_buffer() {
        let mut l2 = small();
        let mut scratch = Vec::new();
        l2.fill_into(UnitAddr::new(0), Moesi::Modified, 1, &mut scratch);
        assert!(scratch.is_empty());
        l2.fill_into(UnitAddr::new(1), Moesi::Shared, 2, &mut scratch);
        assert!(scratch.is_empty());
        // Conflict: both subblocks land in the scratch buffer...
        l2.fill_into(UnitAddr::new(8), Moesi::Exclusive, 3, &mut scratch);
        assert_eq!(scratch.len(), 2);
        let cap = scratch.capacity();
        // ...and the next conflict reuses the same allocation.
        l2.fill_into(UnitAddr::new(16), Moesi::Exclusive, 4, &mut scratch);
        assert_eq!(scratch.len(), 1);
        assert_eq!(scratch.capacity(), cap);
        assert_eq!(scratch[0].unit, UnitAddr::new(8));
    }

    #[test]
    fn invalidate_returns_prior_state() {
        let mut l2 = small();
        let u = UnitAddr::new(2);
        l2.fill(u, Moesi::Owned, 9);
        assert_eq!(l2.invalidate(u), (Moesi::Owned, 9));
        assert_eq!(l2.state(u), Moesi::Invalid);
    }

    #[test]
    #[should_panic(expected = "absent unit")]
    fn invalidate_absent_panics() {
        let mut l2 = small();
        l2.invalidate(UnitAddr::new(1));
    }

    #[test]
    #[should_panic(expected = "already-valid")]
    fn double_fill_panics() {
        let mut l2 = small();
        let u = UnitAddr::new(1);
        l2.fill(u, Moesi::Shared, 0);
        l2.fill(u, Moesi::Shared, 0);
    }

    #[test]
    fn set_state_transitions() {
        let mut l2 = small();
        let u = UnitAddr::new(6);
        l2.fill(u, Moesi::Exclusive, 0);
        l2.set_state(u, Moesi::Modified);
        assert_eq!(l2.state(u), Moesi::Modified);
    }

    #[test]
    fn valid_units_enumerates_all() {
        let mut l2 = small();
        l2.fill(UnitAddr::new(0), Moesi::Shared, 0);
        l2.fill(UnitAddr::new(5), Moesi::Modified, 0);
        let mut got: Vec<(u64, Moesi)> = l2.valid_units().map(|(u, s)| (u.raw(), s)).collect();
        got.sort_unstable_by_key(|(u, _)| *u);
        assert_eq!(got, vec![(0, Moesi::Shared), (5, Moesi::Modified)]);
    }

    #[test]
    fn version_stamping() {
        let mut l2 = small();
        let u = UnitAddr::new(4);
        l2.fill(u, Moesi::Exclusive, 1);
        l2.set_version(u, 42);
        assert_eq!(l2.version(u), 42);
        assert_eq!(l2.version(UnitAddr::new(5)), 0);
    }

    #[test]
    fn invalid_subblock_reports_version_zero() {
        // The version invariant behind the fast path: an invalid subblock
        // under a matching tag always answers 0, as the historical
        // tag-matched lookup did.
        let mut l2 = small();
        let u = UnitAddr::new(4);
        l2.fill(u, Moesi::Modified, 9);
        assert_eq!(l2.version(UnitAddr::new(5)), 0, "sibling never filled");
        l2.invalidate(u);
        assert_eq!(l2.version(u), 0, "invalidated subblock");
    }

    #[test]
    fn nsb_configuration_evicts_single_unit() {
        // Non-subblocked: one subblock per block.
        let mut l2 = L2Cache::new(L2Config::new(256, 64, 1));
        l2.fill(UnitAddr::new(0), Moesi::Modified, 1);
        let evicted = l2.fill(UnitAddr::new(4), Moesi::Shared, 2);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].unit, UnitAddr::new(0));
    }

    #[test]
    fn snoop_probe_many_matches_per_unit_probes() {
        let mut l2 = small();
        l2.fill(UnitAddr::new(0), Moesi::Shared, 1);
        l2.fill(UnitAddr::new(9), Moesi::Modified, 2);
        let units: Vec<u64> = (0..32).collect();
        let mut flags = Vec::new();
        l2.snoop_probe_many(&units, &mut flags);
        assert_eq!(flags.len(), units.len());
        for (&u, &f) in units.iter().zip(&flags) {
            let unit = UnitAddr::new(u);
            let (state, block_present) = l2.snoop_probe(unit);
            assert_eq!(f & kernels::L2_BLOCK_PRESENT != 0, block_present, "unit {u}");
            assert_eq!(f & kernels::L2_SUB_VALID != 0, state.is_valid(), "unit {u}");
        }
    }

    #[test]
    fn paper_sized_l2_geometry() {
        let l2 = L2Cache::new(L2Config::default());
        assert_eq!(l2.blocks(), 16384);
        assert_eq!(l2.subblocks, 2);
        // One 16-byte hot record per block; versions stay per-subblock.
        assert_eq!(l2.hot.len(), 16384);
        assert_eq!(l2.versions.len(), 16384 * 2);
    }

    #[test]
    fn state_nibbles_round_trip() {
        for s in [Moesi::Modified, Moesi::Owned, Moesi::Exclusive, Moesi::Shared] {
            assert_eq!(nibble_state(state_nibble(s)), s);
        }
    }

    #[test]
    #[should_panic(expected = "at most 8 subblocks")]
    fn more_than_eight_subblocks_rejected() {
        let _ = L2Cache::new(L2Config::new(1024, 1024, 16));
    }
}
