//! Direct-mapped, subblocked L2 cache with per-subblock MOESI state.
//!
//! The tag array holds one tag per block; each block carries one MOESI
//! state per subblock (two 32-byte subblocks per 64-byte block in the
//! paper's configuration). Subblocking halves the tag array at the cost of
//! extra misses when neighbouring subblocks are absent — which is exactly
//! the snoop-locality the Exclude-Jetty feeds on.
//!
//! Each subblock also carries a data *version* used by the coherence
//! checker: stores stamp the unit with a fresh global version, and fills
//! copy the supplier's version, so any stale read is caught immediately.

use jetty_core::UnitAddr;

use crate::config::L2Config;
use crate::moesi::Moesi;

#[derive(Clone, Debug)]
struct Block {
    tag: u64,
    /// Per-subblock coherence state; all-Invalid means the slot is free.
    states: Vec<Moesi>,
    /// Per-subblock data version (checker support).
    versions: Vec<u64>,
}

impl Block {
    fn new(subblocks: usize) -> Self {
        Self { tag: 0, states: vec![Moesi::Invalid; subblocks], versions: vec![0; subblocks] }
    }

    fn any_valid(&self) -> bool {
        self.states.iter().any(|s| s.is_valid())
    }
}

/// A valid subblock displaced by a block eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedUnit {
    /// The displaced coherence unit.
    pub unit: UnitAddr,
    /// Its state at eviction (decides whether a writeback is needed).
    pub state: Moesi,
    /// Its data version (checker support).
    pub version: u64,
}

/// Direct-mapped subblocked L2 cache.
#[derive(Clone, Debug)]
pub struct L2Cache {
    blocks: Vec<Block>,
    subblocks: usize,
    sub_mask: u64,
    sub_bits: u32,
    index_mask: u64,
    index_bits: u32,
}

impl L2Cache {
    /// Creates an empty L2.
    pub fn new(config: L2Config) -> Self {
        let blocks = config.blocks();
        let subblocks = config.subblocks;
        Self {
            blocks: (0..blocks).map(|_| Block::new(subblocks)).collect(),
            subblocks,
            sub_mask: subblocks as u64 - 1,
            sub_bits: subblocks.trailing_zeros(),
            index_mask: blocks as u64 - 1,
            index_bits: blocks.trailing_zeros(),
        }
    }

    /// Splits a unit address into (block index, block tag, subblock index).
    fn split(&self, unit: UnitAddr) -> (usize, u64, usize) {
        let sub = (unit.raw() & self.sub_mask) as usize;
        let block_addr = unit.raw() >> self.sub_bits;
        let idx = (block_addr & self.index_mask) as usize;
        let tag = block_addr >> self.index_bits;
        (idx, tag, sub)
    }

    fn unit_addr(&self, idx: usize, tag: u64, sub: usize) -> UnitAddr {
        UnitAddr::new((((tag << self.index_bits) | idx as u64) << self.sub_bits) | sub as u64)
    }

    /// MOESI state of `unit` (`Invalid` when absent or tag mismatch).
    pub fn state(&self, unit: UnitAddr) -> Moesi {
        let (idx, tag, sub) = self.split(unit);
        let block = &self.blocks[idx];
        if block.any_valid() && block.tag == tag {
            block.states[sub]
        } else {
            Moesi::Invalid
        }
    }

    /// `true` when the resident block's tag matches `unit`'s block and at
    /// least one subblock is valid (a snoop miss with `block_present` is a
    /// *partial* miss — the tag matched but the snooped subblock is
    /// invalid, so exclude filters must not record the whole block).
    pub fn block_present(&self, unit: UnitAddr) -> bool {
        let (idx, tag, _) = self.split(unit);
        let block = &self.blocks[idx];
        block.any_valid() && block.tag == tag
    }

    /// Data version of `unit`; 0 when absent.
    pub fn version(&self, unit: UnitAddr) -> u64 {
        let (idx, tag, sub) = self.split(unit);
        let block = &self.blocks[idx];
        if block.any_valid() && block.tag == tag {
            block.versions[sub]
        } else {
            0
        }
    }

    /// Sets the MOESI state of a present unit.
    ///
    /// # Panics
    ///
    /// Panics if the unit is absent (tag mismatch) — state changes to
    /// absent units are protocol bugs.
    pub fn set_state(&mut self, unit: UnitAddr, state: Moesi) {
        let (idx, tag, sub) = self.split(unit);
        let block = &mut self.blocks[idx];
        assert!(
            block.any_valid() && block.tag == tag && block.states[sub].is_valid(),
            "set_state on absent unit {unit}"
        );
        block.states[sub] = state;
    }

    /// Stamps a present unit with a new data version (store completion).
    ///
    /// # Panics
    ///
    /// Panics if the unit is absent.
    pub fn set_version(&mut self, unit: UnitAddr, version: u64) {
        let (idx, tag, sub) = self.split(unit);
        let block = &mut self.blocks[idx];
        assert!(
            block.any_valid() && block.tag == tag && block.states[sub].is_valid(),
            "set_version on absent unit {unit}"
        );
        block.versions[sub] = version;
    }

    /// Invalidates a present unit (snoop invalidation), returning its state
    /// and version just before.
    ///
    /// # Panics
    ///
    /// Panics if the unit is absent.
    pub fn invalidate(&mut self, unit: UnitAddr) -> (Moesi, u64) {
        let (idx, tag, sub) = self.split(unit);
        let block = &mut self.blocks[idx];
        assert!(
            block.any_valid() && block.tag == tag && block.states[sub].is_valid(),
            "invalidate on absent unit {unit}"
        );
        let prior = (block.states[sub], block.versions[sub]);
        block.states[sub] = Moesi::Invalid;
        block.versions[sub] = 0;
        prior
    }

    /// Fills `unit` with `state`/`version`.
    ///
    /// Returns the valid units evicted to make room: when the resident
    /// block's tag differs, the *whole* block (every valid subblock) is
    /// displaced. A fill into a matching resident block evicts nothing.
    ///
    /// # Panics
    ///
    /// Panics when filling a unit that is already valid (the protocol only
    /// fills on misses) or with an `Invalid` state.
    pub fn fill(&mut self, unit: UnitAddr, state: Moesi, version: u64) -> Vec<EvictedUnit> {
        assert!(state.is_valid(), "fill with Invalid state");
        let (idx, tag, sub) = self.split(unit);
        let subblocks = self.subblocks;
        let mut evicted = Vec::new();
        // Collect victims first to avoid aliasing `self` borrows.
        let needs_eviction = {
            let block = &self.blocks[idx];
            block.any_valid() && block.tag != tag
        };
        if needs_eviction {
            let victim_tag = self.blocks[idx].tag;
            for s in 0..subblocks {
                let st = self.blocks[idx].states[s];
                if st.is_valid() {
                    evicted.push(EvictedUnit {
                        unit: self.unit_addr(idx, victim_tag, s),
                        state: st,
                        version: self.blocks[idx].versions[s],
                    });
                }
            }
            let block = &mut self.blocks[idx];
            block.states.fill(Moesi::Invalid);
            block.versions.fill(0);
        }
        let block = &mut self.blocks[idx];
        assert!(
            !(block.any_valid() && block.tag == tag && block.states[sub].is_valid()),
            "fill of already-valid unit {unit}"
        );
        block.tag = tag;
        block.states[sub] = state;
        block.versions[sub] = version;
        evicted
    }

    /// Iterates over all valid units with their states (checker aid).
    pub fn valid_units(&self) -> impl Iterator<Item = (UnitAddr, Moesi)> + '_ {
        self.blocks.iter().enumerate().flat_map(move |(idx, block)| {
            block
                .states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_valid())
                .map(move |(sub, &state)| (self.unit_addr(idx, block.tag, sub), state))
        })
    }

    /// Number of valid units currently cached.
    pub fn population(&self) -> usize {
        self.blocks.iter().map(|b| b.states.iter().filter(|s| s.is_valid()).count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L2Cache {
        // 4 blocks of 64 bytes, 2 subblocks each.
        L2Cache::new(L2Config::new(256, 64, 2))
    }

    #[test]
    fn starts_empty() {
        let l2 = small();
        assert_eq!(l2.state(UnitAddr::new(0)), Moesi::Invalid);
        assert_eq!(l2.population(), 0);
    }

    #[test]
    fn fill_then_lookup() {
        let mut l2 = small();
        let u = UnitAddr::new(3);
        assert!(l2.fill(u, Moesi::Exclusive, 7).is_empty());
        assert_eq!(l2.state(u), Moesi::Exclusive);
        assert_eq!(l2.version(u), 7);
        assert_eq!(l2.population(), 1);
    }

    #[test]
    fn sibling_subblocks_share_a_tag() {
        let mut l2 = small();
        // Units 8 and 9 are the two subblocks of block 4 (idx 0, tag 1).
        let a = UnitAddr::new(8);
        let b = UnitAddr::new(9);
        assert!(l2.fill(a, Moesi::Shared, 1).is_empty());
        assert!(l2.fill(b, Moesi::Modified, 2).is_empty());
        assert_eq!(l2.state(a), Moesi::Shared);
        assert_eq!(l2.state(b), Moesi::Modified);
    }

    #[test]
    fn one_subblock_valid_means_other_misses() {
        let mut l2 = small();
        let a = UnitAddr::new(8);
        l2.fill(a, Moesi::Shared, 1);
        // Sibling subblock: tag matches but state is Invalid -> miss.
        assert_eq!(l2.state(UnitAddr::new(9)), Moesi::Invalid);
    }

    #[test]
    fn conflicting_block_evicts_all_valid_subblocks() {
        let mut l2 = small();
        // Block addr 0 (units 0,1) and block addr 4 (units 8,9) share idx 0.
        l2.fill(UnitAddr::new(0), Moesi::Modified, 3);
        l2.fill(UnitAddr::new(1), Moesi::Shared, 4);
        let evicted = l2.fill(UnitAddr::new(8), Moesi::Exclusive, 5);
        assert_eq!(evicted.len(), 2);
        assert!(evicted.contains(&EvictedUnit {
            unit: UnitAddr::new(0),
            state: Moesi::Modified,
            version: 3
        }));
        assert!(evicted.contains(&EvictedUnit {
            unit: UnitAddr::new(1),
            state: Moesi::Shared,
            version: 4
        }));
        assert_eq!(l2.state(UnitAddr::new(0)), Moesi::Invalid);
        assert_eq!(l2.state(UnitAddr::new(8)), Moesi::Exclusive);
    }

    #[test]
    fn invalidate_returns_prior_state() {
        let mut l2 = small();
        let u = UnitAddr::new(2);
        l2.fill(u, Moesi::Owned, 9);
        assert_eq!(l2.invalidate(u), (Moesi::Owned, 9));
        assert_eq!(l2.state(u), Moesi::Invalid);
    }

    #[test]
    #[should_panic(expected = "absent unit")]
    fn invalidate_absent_panics() {
        let mut l2 = small();
        l2.invalidate(UnitAddr::new(1));
    }

    #[test]
    #[should_panic(expected = "already-valid")]
    fn double_fill_panics() {
        let mut l2 = small();
        let u = UnitAddr::new(1);
        l2.fill(u, Moesi::Shared, 0);
        l2.fill(u, Moesi::Shared, 0);
    }

    #[test]
    fn set_state_transitions() {
        let mut l2 = small();
        let u = UnitAddr::new(6);
        l2.fill(u, Moesi::Exclusive, 0);
        l2.set_state(u, Moesi::Modified);
        assert_eq!(l2.state(u), Moesi::Modified);
    }

    #[test]
    fn valid_units_enumerates_all() {
        let mut l2 = small();
        l2.fill(UnitAddr::new(0), Moesi::Shared, 0);
        l2.fill(UnitAddr::new(5), Moesi::Modified, 0);
        let mut got: Vec<(u64, Moesi)> = l2.valid_units().map(|(u, s)| (u.raw(), s)).collect();
        got.sort_unstable_by_key(|(u, _)| *u);
        assert_eq!(got, vec![(0, Moesi::Shared), (5, Moesi::Modified)]);
    }

    #[test]
    fn version_stamping() {
        let mut l2 = small();
        let u = UnitAddr::new(4);
        l2.fill(u, Moesi::Exclusive, 1);
        l2.set_version(u, 42);
        assert_eq!(l2.version(u), 42);
        assert_eq!(l2.version(UnitAddr::new(5)), 0);
    }

    #[test]
    fn nsb_configuration_evicts_single_unit() {
        // Non-subblocked: one subblock per block.
        let mut l2 = L2Cache::new(L2Config::new(256, 64, 1));
        l2.fill(UnitAddr::new(0), Moesi::Modified, 1);
        let evicted = l2.fill(UnitAddr::new(4), Moesi::Shared, 2);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].unit, UnitAddr::new(0));
    }

    #[test]
    fn paper_sized_l2_geometry() {
        let l2 = L2Cache::new(L2Config::default());
        assert_eq!(l2.blocks.len(), 16384);
        assert_eq!(l2.subblocks, 2);
    }
}
