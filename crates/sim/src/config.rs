//! System and cache configuration for the SMP substrate.

use jetty_core::AddrSpace;

use crate::protocol::ProtocolKind;

/// Geometry of a direct-mapped L1 data cache.
///
/// The paper's configuration (§4.1): 64 KB, 32-byte blocks, direct-mapped,
/// with the L1 block size equal to the L2 subblock size so inclusion is a
/// one-to-one mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Config {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Block size in bytes; must equal the L2 subblock size.
    pub block_bytes: usize,
}

impl L1Config {
    /// Creates an L1 configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` and `block_bytes` are powers of two with
    /// `block_bytes <= capacity`.
    pub fn new(capacity: usize, block_bytes: usize) -> Self {
        assert!(capacity.is_power_of_two(), "L1 capacity must be a power of two");
        assert!(block_bytes.is_power_of_two(), "L1 block size must be a power of two");
        assert!(block_bytes <= capacity, "L1 block larger than the cache");
        Self { capacity, block_bytes }
    }

    /// Number of blocks (also the number of sets: direct-mapped).
    pub fn blocks(&self) -> usize {
        self.capacity / self.block_bytes
    }

    /// log2 of the block size.
    pub fn block_shift(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }
}

impl Default for L1Config {
    fn default() -> Self {
        Self::new(64 * 1024, 32)
    }
}

/// Geometry of a direct-mapped, subblocked L2 cache.
///
/// The paper's configuration (§4.1): 1 MB, 64-byte blocks of two 32-byte
/// subblocks, direct-mapped, MOESI at subblock grain. Setting
/// `subblocks = 1` yields the non-subblocked ("NSB") variant the paper
/// summarises alongside the main results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Config {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Block (tag-granularity) size in bytes.
    pub block_bytes: usize,
    /// Subblocks per block (coherence grain = `block_bytes / subblocks`).
    pub subblocks: usize,
}

impl L2Config {
    /// Creates an L2 configuration.
    ///
    /// # Panics
    ///
    /// Panics unless all sizes are powers of two, `subblocks` divides the
    /// block evenly, and the block fits the cache.
    pub fn new(capacity: usize, block_bytes: usize, subblocks: usize) -> Self {
        assert!(capacity.is_power_of_two(), "L2 capacity must be a power of two");
        assert!(block_bytes.is_power_of_two(), "L2 block size must be a power of two");
        assert!(
            subblocks.is_power_of_two() && subblocks >= 1,
            "subblock count must be a power of two"
        );
        assert!(block_bytes / subblocks >= 1 && block_bytes.is_multiple_of(subblocks));
        assert!(block_bytes <= capacity, "L2 block larger than the cache");
        Self { capacity, block_bytes, subblocks }
    }

    /// Number of blocks (= sets, direct-mapped).
    pub fn blocks(&self) -> usize {
        self.capacity / self.block_bytes
    }

    /// Subblock (coherence unit) size in bytes.
    pub fn subblock_bytes(&self) -> usize {
        self.block_bytes / self.subblocks
    }

    /// log2 of the block size.
    pub fn block_shift(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// log2 of the subblock size.
    pub fn subblock_shift(&self) -> u32 {
        self.subblock_bytes().trailing_zeros()
    }

    /// Total coherence units the cache can hold.
    pub fn units(&self) -> usize {
        self.blocks() * self.subblocks
    }
}

impl Default for L2Config {
    fn default() -> Self {
        Self::new(1024 * 1024, 64, 2)
    }
}

/// How much runtime verification the system performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckLevel {
    /// No extra checking (fastest; filter-safety asserts stay on — they are
    /// a single branch and guard the paper's core requirement).
    Off,
    /// Full checking: version-based data coherence, MOESI invariants and
    /// L1/L2 inclusion are asserted after every transaction.
    #[default]
    Full,
}

impl CheckLevel {
    /// `true` when full checking is enabled.
    pub fn is_full(self) -> bool {
        self == CheckLevel::Full
    }
}

/// Configuration of the whole SMP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of processors on the bus.
    pub cpus: usize,
    /// Per-node L1 geometry.
    pub l1: L1Config,
    /// Per-node L2 geometry.
    pub l2: L2Config,
    /// Writeback-buffer entries per node.
    pub wb_entries: usize,
    /// Physical address geometry; `unit_shift` must equal the L2 subblock
    /// shift.
    pub addr: AddrSpace,
    /// Verification level.
    pub check: CheckLevel,
    /// Coherence protocol (the paper's platform is MOESI).
    pub protocol: ProtocolKind,
}

impl SystemConfig {
    /// The paper's base configuration: a 4-way SMP with 64 KB L1s, 1 MB
    /// subblocked L2s and an 8-entry writeback buffer, full checking on.
    pub fn paper_4way() -> Self {
        Self::default()
    }

    /// The paper's 8-way configuration (§4.3.4).
    pub fn paper_8way() -> Self {
        Self { cpus: 8, ..Self::default() }
    }

    /// The non-subblocked variant the paper summarises: 64-byte blocks with
    /// a single subblock, coherence at block grain.
    pub fn paper_4way_nsb() -> Self {
        let l2 = L2Config::new(1024 * 1024, 64, 1);
        let l1 = L1Config::new(64 * 1024, 64);
        let addr = AddrSpace::with_block_shift(40, 6, 6);
        Self { l1, l2, addr, ..Self::default() }
    }

    /// Disables runtime checking (for large experiment runs).
    pub fn without_checks(mut self) -> Self {
        self.check = CheckLevel::Off;
        self
    }

    /// Switches the coherence protocol (default: the paper's MOESI).
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics if the L1 block size differs from the L2 subblock size, if
    /// the address-space unit shift differs from the L2 subblock shift, if
    /// there are fewer than two CPUs, or if the writeback buffer is empty.
    pub fn validate(&self) {
        assert!(self.cpus >= 2, "an SMP needs at least two processors, got {}", self.cpus);
        assert_eq!(
            self.l1.block_bytes,
            self.l2.subblock_bytes(),
            "L1 block size must equal the L2 subblock size for 1:1 inclusion"
        );
        assert_eq!(
            self.addr.unit_shift(),
            self.l2.subblock_shift(),
            "address-space unit shift must match the L2 subblock shift"
        );
        assert_eq!(
            self.addr.block_shift(),
            self.l2.block_shift(),
            "address-space block shift must match the L2 block shift (exclude \
             filters record absence at tag granularity)"
        );
        assert!(self.wb_entries >= 1, "writeback buffer needs at least one entry");
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            cpus: 4,
            l1: L1Config::default(),
            l2: L2Config::default(),
            wb_entries: 8,
            addr: AddrSpace::default(),
            check: CheckLevel::Full,
            protocol: ProtocolKind::Moesi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SystemConfig::paper_4way();
        c.validate();
        assert_eq!(c.cpus, 4);
        assert_eq!(c.protocol, ProtocolKind::Moesi);
        assert_eq!(c.l1.blocks(), 2048);
        assert_eq!(c.l2.blocks(), 16384);
        assert_eq!(c.l2.subblock_bytes(), 32);
        assert_eq!(c.l2.units(), 32768);
        assert_eq!(c.addr.unit_bytes(), 32);
    }

    #[test]
    fn eight_way_variant() {
        let c = SystemConfig::paper_8way();
        c.validate();
        assert_eq!(c.cpus, 8);
    }

    #[test]
    fn nsb_variant_has_block_grain_coherence() {
        let c = SystemConfig::paper_4way_nsb();
        c.validate();
        assert_eq!(c.l2.subblocks, 1);
        assert_eq!(c.l2.subblock_bytes(), 64);
        assert_eq!(c.addr.unit_bytes(), 64);
    }

    #[test]
    fn without_checks() {
        let c = SystemConfig::paper_4way().without_checks();
        assert_eq!(c.check, CheckLevel::Off);
        assert!(!c.check.is_full());
    }

    #[test]
    fn with_protocol_switches_the_axis() {
        for kind in ProtocolKind::ALL {
            let c = SystemConfig::paper_4way().with_protocol(kind);
            c.validate();
            assert_eq!(c.protocol, kind);
        }
    }

    #[test]
    #[should_panic(expected = "1:1 inclusion")]
    fn validate_rejects_mismatched_grains() {
        let mut c = SystemConfig::paper_4way();
        c.l1 = L1Config::new(64 * 1024, 64);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least two processors")]
    fn validate_rejects_uniprocessor() {
        let mut c = SystemConfig::paper_4way();
        c.cpus = 1;
        c.validate();
    }

    #[test]
    fn l1_geometry() {
        let l1 = L1Config::new(64 * 1024, 32);
        assert_eq!(l1.blocks(), 2048);
        assert_eq!(l1.block_shift(), 5);
    }

    #[test]
    fn l2_geometry() {
        let l2 = L2Config::new(1024 * 1024, 64, 2);
        assert_eq!(l2.blocks(), 16384);
        assert_eq!(l2.block_shift(), 6);
        assert_eq!(l2.subblock_shift(), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn l2_rejects_odd_capacity() {
        let _ = L2Config::new(1000, 64, 2);
    }
}
