//! The per-node writeback buffer (WB).
//!
//! Dirty subblocks evicted from the L2 wait here for the bus before
//! reaching memory. JETTY never filters snoops to the WB (paper §2): every
//! bus snoop probes the WB associatively, but the WB is tiny compared to
//! the L2 tag array, so the probe is cheap. A snoop that hits the WB is
//! served from the buffered data — the WB briefly acts as the owner of the
//! evicted unit.

use jetty_core::UnitAddr;

/// One buffered writeback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WbEntry {
    /// The dirty coherence unit awaiting its memory write.
    pub unit: UnitAddr,
    /// Data version carried with it (checker support).
    pub version: u64,
    /// `true` when the evicted copy was `Owned` — other caches may still
    /// hold Shared copies, so forwarding the entry back into the cache
    /// must not grant exclusivity without a bus upgrade.
    pub shared: bool,
}

/// FIFO writeback buffer with associative snoop lookup.
///
/// Backed by a plain `Vec` in FIFO order (oldest first): the buffer holds
/// at most a handful of entries and is *probed* on every bus snoop but
/// *mutated* only on evictions and drains, so the probe — a linear scan of
/// one contiguous, usually empty slice — is what the storage is shaped
/// for. Removal pays an `O(len)` shift, which is noise at this capacity.
#[derive(Clone, Debug)]
pub struct WritebackBuffer {
    entries: Vec<WbEntry>,
    capacity: usize,
}

impl WritebackBuffer {
    /// Creates an empty buffer with room for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "writeback buffer needs at least one entry");
        Self { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Queues a dirty unit. If the buffer is full, the oldest entry is
    /// forced out first and returned so the caller can retire it to memory.
    pub fn push(&mut self, entry: WbEntry) -> Option<WbEntry> {
        let forced =
            if self.entries.len() == self.capacity { Some(self.entries.remove(0)) } else { None };
        self.entries.push(entry);
        forced
    }

    /// Retires the oldest entry (bus idle drain), if any.
    pub fn drain_one(&mut self) -> Option<WbEntry> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Associative probe for `unit` (every snoop does this).
    pub fn probe(&self, unit: UnitAddr) -> Option<WbEntry> {
        self.entries.iter().copied().find(|e| e.unit == unit)
    }

    /// Removes and returns the entry for `unit` (snoop took ownership).
    pub fn remove(&mut self, unit: UnitAddr) -> Option<WbEntry> {
        let pos = self.entries.iter().position(|e| e.unit == unit)?;
        Some(self.entries.remove(pos))
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no writebacks are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(unit: u64, version: u64) -> WbEntry {
        WbEntry { unit: UnitAddr::new(unit), version, shared: false }
    }

    #[test]
    fn fifo_order() {
        let mut wb = WritebackBuffer::new(4);
        assert!(wb.push(e(1, 10)).is_none());
        assert!(wb.push(e(2, 20)).is_none());
        assert_eq!(wb.drain_one(), Some(e(1, 10)));
        assert_eq!(wb.drain_one(), Some(e(2, 20)));
        assert_eq!(wb.drain_one(), None);
    }

    #[test]
    fn overflow_forces_oldest_out() {
        let mut wb = WritebackBuffer::new(2);
        wb.push(e(1, 1));
        wb.push(e(2, 2));
        let forced = wb.push(e(3, 3));
        assert_eq!(forced, Some(e(1, 1)));
        assert_eq!(wb.len(), 2);
    }

    #[test]
    fn probe_finds_buffered_units() {
        let mut wb = WritebackBuffer::new(4);
        wb.push(e(5, 50));
        wb.push(e(6, 60));
        assert_eq!(wb.probe(UnitAddr::new(6)), Some(e(6, 60)));
        assert_eq!(wb.probe(UnitAddr::new(7)), None);
    }

    #[test]
    fn remove_extracts_mid_queue() {
        let mut wb = WritebackBuffer::new(4);
        wb.push(e(1, 1));
        wb.push(e(2, 2));
        wb.push(e(3, 3));
        assert_eq!(wb.remove(UnitAddr::new(2)), Some(e(2, 2)));
        assert_eq!(wb.len(), 2);
        assert_eq!(wb.remove(UnitAddr::new(2)), None);
        // FIFO order of the rest is preserved.
        assert_eq!(wb.drain_one(), Some(e(1, 1)));
        assert_eq!(wb.drain_one(), Some(e(3, 3)));
    }

    #[test]
    fn empty_and_capacity() {
        let wb = WritebackBuffer::new(8);
        assert!(wb.is_empty());
        assert_eq!(wb.capacity(), 8);
        assert_eq!(wb.len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = WritebackBuffer::new(0);
    }
}
