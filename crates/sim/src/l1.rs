//! Direct-mapped L1 data cache.
//!
//! The L1 is modelled at the granularity of coherence units (its block size
//! equals the L2 subblock size, so inclusion is a one-to-one mapping).
//! Coherence state lives in the L2; each L1 block carries only:
//!
//! * `valid` / `dirty` bookkeeping, and
//! * a `writable` permission bit mirroring "the L2 holds this unit in M or
//!   E", so stores can complete without touching the L2 on the common path.
//!
//! The bus side keeps the permission bit truthful: whenever a snoop
//! downgrades or invalidates an L2 subblock, the system calls
//! [`L1Cache::downgrade`] / [`L1Cache::invalidate`] on the matching unit.
//!
//! Each line is packed into one `u64` (`tag << 3 | writable << 2 |
//! dirty << 1 | valid`): the L1 is probed on every CPU access, so a lookup
//! is one load and a couple of bit tests instead of a multi-word struct
//! read.

use jetty_core::UnitAddr;

use crate::config::L1Config;

/// Packed line flag bits (low 3 bits of the line word; tag in the rest).
const VALID: u64 = 1 << 0;
const DIRTY: u64 = 1 << 1;
const WRITABLE: u64 = 1 << 2;
const TAG_SHIFT: u32 = 3;

/// Result of an L1 lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1Lookup {
    /// Block present with write permission.
    HitWritable,
    /// Block present, read-only (L2 state is S or O).
    HitShared,
    /// Block absent.
    Miss,
}

impl L1Lookup {
    /// `true` for either hit variant.
    pub fn is_hit(self) -> bool {
        self != L1Lookup::Miss
    }
}

/// A unit evicted from the L1 to make room for a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Victim {
    /// The evicted coherence unit.
    pub unit: UnitAddr,
    /// Whether the evicted block was dirty (requires an L2 data write).
    pub dirty: bool,
}

/// Direct-mapped L1 data cache indexed by coherence-unit address.
#[derive(Clone, Debug)]
pub struct L1Cache {
    /// One packed word per line; 0 is an invalid (empty) line.
    lines: Vec<u64>,
    index_mask: u64,
    index_bits: u32,
}

impl L1Cache {
    /// Creates an empty L1.
    pub fn new(config: L1Config) -> Self {
        let blocks = config.blocks();
        Self {
            lines: vec![0; blocks],
            index_mask: blocks as u64 - 1,
            index_bits: blocks.trailing_zeros(),
        }
    }

    fn split(&self, unit: UnitAddr) -> (usize, u64) {
        let idx = (unit.raw() & self.index_mask) as usize;
        let tag = unit.raw() >> self.index_bits;
        (idx, tag)
    }

    /// `true` when `line` is valid and carries `tag`.
    fn matches(line: u64, tag: u64) -> bool {
        line & VALID != 0 && line >> TAG_SHIFT == tag
    }

    /// Probes the cache for `unit`.
    pub fn lookup(&self, unit: UnitAddr) -> L1Lookup {
        let (idx, tag) = self.split(unit);
        let line = self.lines[idx];
        if Self::matches(line, tag) {
            if line & WRITABLE != 0 {
                L1Lookup::HitWritable
            } else {
                L1Lookup::HitShared
            }
        } else {
            L1Lookup::Miss
        }
    }

    /// Marks a present unit dirty (store completion). The caller must have
    /// established write permission.
    ///
    /// # Panics
    ///
    /// Panics if the unit is absent or not writable — that is a protocol
    /// bug in the caller.
    pub fn mark_dirty(&mut self, unit: UnitAddr) {
        let (idx, tag) = self.split(unit);
        let line = &mut self.lines[idx];
        assert!(Self::matches(*line, tag), "mark_dirty on absent unit {unit}");
        assert!(*line & WRITABLE != 0, "mark_dirty without write permission on {unit}");
        *line |= DIRTY;
    }

    /// Grants write permission to a present unit (after a bus upgrade).
    ///
    /// # Panics
    ///
    /// Panics if the unit is absent.
    pub fn grant_write(&mut self, unit: UnitAddr) {
        let (idx, tag) = self.split(unit);
        let line = &mut self.lines[idx];
        assert!(Self::matches(*line, tag), "grant_write on absent unit {unit}");
        *line |= WRITABLE;
    }

    /// Fills `unit`, returning the victim displaced by the fill (if any).
    ///
    /// The caller handles the victim's L2 writeback when it is dirty.
    pub fn fill(&mut self, unit: UnitAddr, writable: bool) -> Option<L1Victim> {
        let (idx, tag) = self.split(unit);
        let line = &mut self.lines[idx];
        let victim = if *line & VALID != 0 && *line >> TAG_SHIFT != tag {
            let victim_unit = UnitAddr::new(((*line >> TAG_SHIFT) << self.index_bits) | idx as u64);
            Some(L1Victim { unit: victim_unit, dirty: *line & DIRTY != 0 })
        } else {
            None
        };
        *line = (tag << TAG_SHIFT) | VALID | if writable { WRITABLE } else { 0 };
        victim
    }

    /// Invalidates `unit` if present; returns whether the dropped copy was
    /// dirty (its data folds into the concurrent L2 writeback/supply).
    pub fn invalidate(&mut self, unit: UnitAddr) -> bool {
        let (idx, tag) = self.split(unit);
        let line = &mut self.lines[idx];
        if Self::matches(*line, tag) {
            let was_dirty = *line & DIRTY != 0;
            *line = 0;
            was_dirty
        } else {
            false
        }
    }

    /// Revokes write permission on `unit` if present (remote bus read
    /// downgraded the L2 state out of M/E); returns whether the copy was
    /// dirty, in which case the data flushes to the L2.
    pub fn downgrade(&mut self, unit: UnitAddr) -> bool {
        let (idx, tag) = self.split(unit);
        let line = &mut self.lines[idx];
        if Self::matches(*line, tag) {
            let was_dirty = *line & DIRTY != 0;
            *line &= !(WRITABLE | DIRTY);
            was_dirty
        } else {
            false
        }
    }

    /// `true` when the unit is present (any permission).
    pub fn contains(&self, unit: UnitAddr) -> bool {
        self.lookup(unit).is_hit()
    }

    /// Iterates over all valid units (test/checker aid).
    pub fn valid_units(&self) -> impl Iterator<Item = UnitAddr> + '_ {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, &l)| l & VALID != 0)
            .map(move |(idx, &l)| UnitAddr::new(((l >> TAG_SHIFT) << self.index_bits) | idx as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L1Cache {
        // 4 lines of 32 bytes.
        L1Cache::new(L1Config::new(128, 32))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut l1 = small();
        let u = UnitAddr::new(5);
        assert_eq!(l1.lookup(u), L1Lookup::Miss);
        assert_eq!(l1.fill(u, false), None);
        assert_eq!(l1.lookup(u), L1Lookup::HitShared);
    }

    #[test]
    fn writable_fill_allows_store() {
        let mut l1 = small();
        let u = UnitAddr::new(2);
        l1.fill(u, true);
        assert_eq!(l1.lookup(u), L1Lookup::HitWritable);
        l1.mark_dirty(u);
    }

    #[test]
    #[should_panic(expected = "write permission")]
    fn store_without_permission_panics() {
        let mut l1 = small();
        let u = UnitAddr::new(2);
        l1.fill(u, false);
        l1.mark_dirty(u);
    }

    #[test]
    fn conflict_eviction_reports_victim() {
        let mut l1 = small();
        let a = UnitAddr::new(1);
        let b = UnitAddr::new(1 + 4); // same index, different tag
        l1.fill(a, true);
        l1.mark_dirty(a);
        let victim = l1.fill(b, false).expect("conflict must evict");
        assert_eq!(victim.unit, a);
        assert!(victim.dirty);
        assert!(!l1.contains(a));
        assert!(l1.contains(b));
    }

    #[test]
    fn refill_same_unit_has_no_victim() {
        let mut l1 = small();
        let u = UnitAddr::new(3);
        l1.fill(u, false);
        assert_eq!(l1.fill(u, true), None);
        assert_eq!(l1.lookup(u), L1Lookup::HitWritable);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut l1 = small();
        let u = UnitAddr::new(7);
        l1.fill(u, true);
        l1.mark_dirty(u);
        assert!(l1.invalidate(u));
        assert!(!l1.contains(u));
        // Second invalidate is a no-op.
        assert!(!l1.invalidate(u));
    }

    #[test]
    fn downgrade_revokes_permission_and_flushes() {
        let mut l1 = small();
        let u = UnitAddr::new(9);
        l1.fill(u, true);
        l1.mark_dirty(u);
        assert!(l1.downgrade(u));
        assert_eq!(l1.lookup(u), L1Lookup::HitShared);
        // No longer dirty after the flush.
        assert!(!l1.downgrade(u));
    }

    #[test]
    fn grant_write_upgrades_shared_copy() {
        let mut l1 = small();
        let u = UnitAddr::new(4);
        l1.fill(u, false);
        l1.grant_write(u);
        assert_eq!(l1.lookup(u), L1Lookup::HitWritable);
    }

    #[test]
    fn valid_units_enumerates_contents() {
        let mut l1 = small();
        l1.fill(UnitAddr::new(0), false);
        l1.fill(UnitAddr::new(5), false);
        let mut units: Vec<u64> = l1.valid_units().map(|u| u.raw()).collect();
        units.sort_unstable();
        assert_eq!(units, vec![0, 5]);
    }

    #[test]
    fn refill_clears_stale_dirty_bit() {
        // A fill must reset dirty/writable even when the index was valid
        // with a *different* tag (the packed word is fully rewritten).
        let mut l1 = small();
        let a = UnitAddr::new(1);
        l1.fill(a, true);
        l1.mark_dirty(a);
        l1.fill(UnitAddr::new(1 + 4), false);
        assert_eq!(l1.lookup(UnitAddr::new(1 + 4)), L1Lookup::HitShared);
        assert!(!l1.invalidate(UnitAddr::new(1 + 4)), "fresh fill must not be dirty");
    }

    #[test]
    fn paper_sized_l1_has_2048_lines() {
        let l1 = L1Cache::new(L1Config::default());
        assert_eq!(l1.lines.len(), 2048);
    }
}
