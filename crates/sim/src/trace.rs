//! Memory-reference trace primitives: the interface between workload
//! generators and the SMP system.

use std::fmt;

/// Kind of processor memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl Op {
    /// `true` for [`Op::Write`].
    pub fn is_write(self) -> bool {
        self == Op::Write
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read => f.write_str("R"),
            Op::Write => f.write_str("W"),
        }
    }
}

/// One memory reference issued by one processor.
///
/// # Examples
///
/// ```
/// use jetty_sim::{MemRef, Op};
///
/// let r = MemRef::read(2, 0x1000);
/// assert_eq!(r.cpu, 2);
/// assert!(!r.op.is_write());
/// let w = MemRef::write(0, 0x2000);
/// assert!(w.op.is_write());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Issuing processor index.
    pub cpu: usize,
    /// Access kind.
    pub op: Op,
    /// Physical byte address.
    pub addr: u64,
}

impl MemRef {
    /// Creates a load reference.
    pub fn read(cpu: usize, addr: u64) -> Self {
        Self { cpu, op: Op::Read, addr }
    }

    /// Creates a store reference.
    pub fn write(cpu: usize, addr: u64) -> Self {
        Self { cpu, op: Op::Write, addr }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{} {} {:#x}", self.cpu, self.op, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(MemRef::read(1, 2), MemRef { cpu: 1, op: Op::Read, addr: 2 });
        assert_eq!(MemRef::write(1, 2), MemRef { cpu: 1, op: Op::Write, addr: 2 });
    }

    #[test]
    fn display() {
        assert_eq!(MemRef::read(3, 0x40).to_string(), "cpu3 R 0x40");
        assert_eq!(MemRef::write(0, 0x80).to_string(), "cpu0 W 0x80");
    }
}
