//! The SMP system: N nodes (CPU + L1 + L2 + writeback buffer + filter
//! bank) on an atomic snoopy bus in front of main memory.
//!
//! # Protocol walk-through
//!
//! A CPU access first probes its L1. On an L1 miss the local L2 is probed;
//! on an L2 miss (or a write to a non-writable copy) a bus transaction is
//! issued and *every other node snoops it*: the writeback buffer is always
//! probed, the attached JETTY filters are probed, and — unless a filter
//! would have answered — the L2 tag array reacts per MOESI.
//!
//! # Filter banks
//!
//! Because a JETTY never changes protocol behaviour (it only skips
//! would-miss tag probes), any number of filter configurations can observe
//! the same run as pure bystanders. Each node therefore carries a *bank* of
//! filters built from the same [`FilterSpec`] list; one simulation yields
//! coverage and energy-activity numbers for every configuration at once,
//! over an identical reference stream — mirroring the paper's methodology
//! of evaluating all organisations on the same traces.
//!
//! # Safety checking
//!
//! The filter-safety assertion (a filtered snoop must be a genuine miss) is
//! always on: it is one comparison and it guards the paper's core
//! requirement. With [`CheckLevel::Full`] the system additionally verifies
//! MOESI invariants after every transaction and tracks data versions end to
//! end (stores stamp a fresh version; loads must observe the newest one;
//! fills, supplies, writebacks and drains carry versions along), catching
//! lost-update and stale-read protocol bugs.

use std::collections::HashMap;

use jetty_core::{AddrSpace, FilterSpec, MissScope, SnoopFilter, UnitAddr};

use crate::bus::{BusKind, SnoopResponse};
use crate::config::SystemConfig;
use crate::l1::{L1Cache, L1Lookup};
use crate::l2::L2Cache;
use crate::moesi::Moesi;
use crate::stats::{NodeStats, RunStats, SystemStats};
use crate::trace::{MemRef, Op};
use crate::wb::{WbEntry, WritebackBuffer};

/// What happened on one CPU access (returned for tests and diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit in the L1.
    pub l1_hit: bool,
    /// The access hit in the local L2 (meaningful when `l1_hit` is false,
    /// and also true for upgrade-only writes).
    pub l2_hit: bool,
    /// The bus transaction issued, if any.
    pub bus: Option<BusKind>,
}

/// One SMP node.
struct Node {
    l1: L1Cache,
    l2: L2Cache,
    wb: WritebackBuffer,
    filters: Vec<Box<dyn SnoopFilter>>,
    stats: NodeStats,
}

impl Node {
    /// On a local L2 miss, checks the node's own writeback buffer for the
    /// unit (evicted dirty, not yet at memory) and extracts it if present.
    fn l2_miss_wb_forward(&mut self, unit: UnitAddr) -> Option<WbEntry> {
        let entry = self.wb.remove(unit)?;
        self.stats.wb_local_hits += 1;
        Some(entry)
    }
}

/// Coverage and activity for one filter configuration over a finished run.
#[derive(Clone, Debug)]
pub struct FilterReport {
    /// The configuration.
    pub spec: FilterSpec,
    /// Configuration label (paper naming).
    pub label: String,
    /// Snoop probes observed (summed over nodes).
    pub probes: u64,
    /// Snoops filtered (answered `NotCached`).
    pub filtered: u64,
    /// Snoops that would have missed in the L2 (the coverable population;
    /// identical for every filter in the bank).
    pub would_miss: u64,
    /// Per-node activity, for energy accounting.
    pub activities: Vec<jetty_core::FilterActivity>,
    /// Array geometry (identical across nodes).
    pub arrays: Vec<jetty_core::ArraySpec>,
    /// Total filter storage in bits.
    pub storage_bits: usize,
}

impl FilterReport {
    /// Snoop-miss coverage: the fraction of would-miss snoops this filter
    /// eliminated (the paper's key metric, §4.3).
    pub fn coverage(&self) -> f64 {
        if self.would_miss == 0 {
            0.0
        } else {
            self.filtered as f64 / self.would_miss as f64
        }
    }
}

/// The simulated SMP.
///
/// A `System` owns all of its state (caches, writeback buffers, filter
/// banks, checker maps) and is `Send`: the parallel experiment engine moves
/// whole systems onto worker threads and runs independent simulations
/// concurrently. Nothing is shared between systems, so no `Sync` is needed.
pub struct System {
    config: SystemConfig,
    space: AddrSpace,
    specs: Vec<FilterSpec>,
    nodes: Vec<Node>,
    stats: SystemStats,
    /// Monotonic data-version source (checker).
    next_version: u64,
    /// Memory's current version per unit (checker; absent = 0).
    memory_versions: HashMap<u64, u64>,
    /// Latest version ever written per unit (checker; absent = 0).
    latest_versions: HashMap<u64, u64>,
}

// Compile-time audit that a whole simulated system can move across
// threads (filters carry the `Send` supertrait; everything else is owned
// plain data). Breaking this breaks the parallel experiment engine.
const _: fn() = assert_send::<System>;
fn assert_send<T: Send>() {}

impl System {
    /// Builds a system with one filter per spec per node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]).
    pub fn new(config: SystemConfig, specs: &[FilterSpec]) -> Self {
        config.validate();
        let space = config.addr;
        let nodes = (0..config.cpus)
            .map(|_| Node {
                l1: L1Cache::new(config.l1),
                l2: L2Cache::new(config.l2),
                wb: WritebackBuffer::new(config.wb_entries),
                filters: specs.iter().map(|s| s.build(space)).collect(),
                stats: NodeStats::default(),
            })
            .collect();
        Self {
            config,
            space,
            specs: specs.to_vec(),
            nodes,
            stats: SystemStats::new(config.cpus),
            next_version: 0,
            memory_versions: HashMap::new(),
            latest_versions: HashMap::new(),
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The address space in use.
    pub fn space(&self) -> AddrSpace {
        self.space
    }

    /// Number of processors.
    pub fn cpus(&self) -> usize {
        self.config.cpus
    }

    /// Applies one trace reference.
    pub fn apply(&mut self, mem_ref: MemRef) -> AccessOutcome {
        self.access(mem_ref.cpu, mem_ref.op, mem_ref.addr)
    }

    /// Runs an entire trace through the system.
    pub fn run<I: IntoIterator<Item = MemRef>>(&mut self, trace: I) {
        for r in trace {
            self.apply(r);
        }
    }

    /// Performs one CPU access.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range, or on any internal protocol
    /// violation (these are bugs, not recoverable conditions).
    pub fn access(&mut self, cpu: usize, op: Op, addr: u64) -> AccessOutcome {
        assert!(cpu < self.config.cpus, "cpu {cpu} out of range");
        let unit = self.space.unit_of(addr);
        match op {
            Op::Read => self.read(cpu, unit),
            Op::Write => self.write(cpu, unit),
        }
    }

    // ------------------------------------------------------------------
    // Local access paths
    // ------------------------------------------------------------------

    fn read(&mut self, cpu: usize, unit: UnitAddr) -> AccessOutcome {
        self.nodes[cpu].stats.l1_accesses += 1;
        if self.nodes[cpu].l1.lookup(unit).is_hit() {
            self.nodes[cpu].stats.l1_hits += 1;
            self.check_read(cpu, unit);
            return AccessOutcome { l1_hit: true, l2_hit: false, bus: None };
        }

        // L1 miss: probe the local L2.
        let node = &mut self.nodes[cpu];
        node.stats.l2_local_accesses += 1;
        node.stats.l2_tag_reads += 1;
        let state = node.l2.state(unit);
        let outcome = if state.is_valid() {
            node.stats.l2_local_hits += 1;
            node.stats.l2_data_reads += 1; // forward the unit to the L1
            self.fill_l1(cpu, unit, state.is_writable());
            AccessOutcome { l1_hit: false, l2_hit: true, bus: None }
        } else if let Some(entry) = self.nodes[cpu].l2_miss_wb_forward(unit) {
            // The missing unit is still in the node's own writeback buffer
            // (recently evicted dirty): forward it back without a bus
            // transaction. An Owned-origin entry may still have Shared
            // copies elsewhere, so it returns as Owned; a Modified-origin
            // entry was the sole copy and returns as Modified.
            let state = if entry.shared { Moesi::Owned } else { Moesi::Modified };
            self.install(cpu, unit, state, entry.version);
            self.fill_l1(cpu, unit, state.is_writable());
            AccessOutcome { l1_hit: false, l2_hit: false, bus: None }
        } else {
            // L2 miss: bus read.
            let response = self.bus_transaction(cpu, unit, BusKind::Read);
            let install = if response.shared() { Moesi::Shared } else { Moesi::Exclusive };
            let version = self.incoming_version(unit, &response);
            self.install(cpu, unit, install, version);
            self.fill_l1(cpu, unit, install.is_writable());
            self.nodes[cpu].stats.bus_reads += 1;
            AccessOutcome { l1_hit: false, l2_hit: false, bus: Some(BusKind::Read) }
        };
        self.check_read(cpu, unit);
        self.check_invariants(unit);
        outcome
    }

    fn write(&mut self, cpu: usize, unit: UnitAddr) -> AccessOutcome {
        self.nodes[cpu].stats.l1_accesses += 1;
        let lookup = self.nodes[cpu].l1.lookup(unit);
        let outcome = match lookup {
            L1Lookup::HitWritable => {
                self.nodes[cpu].stats.l1_hits += 1;
                // First store to an Exclusive unit silently promotes the L2
                // to Modified (the permission bit lives in the L1, so only
                // the E->M state write touches the L2).
                self.promote_to_modified(cpu, unit);
                self.complete_store(cpu, unit);
                AccessOutcome { l1_hit: true, l2_hit: true, bus: None }
            }
            L1Lookup::HitShared => {
                // Write hit on a shared copy: upgrade on the bus
                // ("a snoop might be necessary even on an L2 hit").
                self.nodes[cpu].stats.l1_hits += 1;
                self.bus_transaction(cpu, unit, BusKind::Upgrade);
                self.promote_to_modified(cpu, unit);
                self.nodes[cpu].l1.grant_write(unit);
                self.complete_store(cpu, unit);
                self.nodes[cpu].stats.bus_upgrades += 1;
                AccessOutcome { l1_hit: true, l2_hit: true, bus: Some(BusKind::Upgrade) }
            }
            L1Lookup::Miss => {
                let node = &mut self.nodes[cpu];
                node.stats.l2_local_accesses += 1;
                node.stats.l2_tag_reads += 1;
                let state = node.l2.state(unit);
                match state {
                    Moesi::Modified | Moesi::Exclusive => {
                        node.stats.l2_local_hits += 1;
                        node.stats.l2_data_reads += 1;
                        self.fill_l1(cpu, unit, true);
                        self.promote_to_modified(cpu, unit);
                        self.complete_store(cpu, unit);
                        AccessOutcome { l1_hit: false, l2_hit: true, bus: None }
                    }
                    Moesi::Shared | Moesi::Owned => {
                        node.stats.l2_local_hits += 1;
                        node.stats.l2_data_reads += 1;
                        self.bus_transaction(cpu, unit, BusKind::Upgrade);
                        self.promote_to_modified(cpu, unit);
                        self.fill_l1(cpu, unit, true);
                        self.complete_store(cpu, unit);
                        self.nodes[cpu].stats.bus_upgrades += 1;
                        AccessOutcome { l1_hit: false, l2_hit: true, bus: Some(BusKind::Upgrade) }
                    }
                    Moesi::Invalid => {
                        if let Some(entry) = self.nodes[cpu].l2_miss_wb_forward(unit) {
                            // Forward the pending writeback back into the
                            // cache. An Owned-origin entry may have Shared
                            // copies elsewhere: invalidate them on the bus
                            // before taking exclusivity.
                            if entry.shared {
                                self.bus_transaction(cpu, unit, BusKind::Upgrade);
                                self.nodes[cpu].stats.bus_upgrades += 1;
                            }
                            self.install(cpu, unit, Moesi::Modified, entry.version);
                            self.fill_l1(cpu, unit, true);
                            self.complete_store(cpu, unit);
                            AccessOutcome { l1_hit: false, l2_hit: false, bus: None }
                        } else {
                            let response = self.bus_transaction(cpu, unit, BusKind::ReadExclusive);
                            let version = self.incoming_version(unit, &response);
                            self.install(cpu, unit, Moesi::Modified, version);
                            self.fill_l1(cpu, unit, true);
                            self.complete_store(cpu, unit);
                            self.nodes[cpu].stats.bus_read_exclusives += 1;
                            AccessOutcome {
                                l1_hit: false,
                                l2_hit: false,
                                bus: Some(BusKind::ReadExclusive),
                            }
                        }
                    }
                }
            }
        };
        self.check_invariants(unit);
        outcome
    }

    /// Marks the L1 line dirty and stamps a fresh data version at the L2
    /// (the L2 carries the node's authoritative version; see module docs).
    fn complete_store(&mut self, cpu: usize, unit: UnitAddr) {
        let node = &mut self.nodes[cpu];
        node.l1.mark_dirty(unit);
        debug_assert!(node.l2.state(unit).is_valid(), "store to unit absent from L2");
        self.next_version += 1;
        let version = self.next_version;
        self.nodes[cpu].l2.set_version(unit, version);
        if self.config.check.is_full() {
            self.latest_versions.insert(unit.raw(), version);
        }
    }

    /// Transitions a valid local unit to Modified, charging a tag write
    /// when the state actually changes.
    fn promote_to_modified(&mut self, cpu: usize, unit: UnitAddr) {
        let node = &mut self.nodes[cpu];
        let state = node.l2.state(unit);
        assert!(state.is_valid(), "promote on absent unit {unit}");
        if state != Moesi::Modified {
            node.l2.set_state(unit, Moesi::Modified);
            node.stats.l2_tag_writes += 1;
        }
    }

    /// Fills the L1, handling the displaced victim's dirty writeback into
    /// the L2.
    fn fill_l1(&mut self, cpu: usize, unit: UnitAddr, writable: bool) {
        let node = &mut self.nodes[cpu];
        if let Some(victim) = node.l1.fill(unit, writable) {
            if victim.dirty {
                // By inclusion the victim's unit is still in the L2, in M
                // (stores eagerly promote). The writeback is a data write
                // plus the locate probe.
                node.stats.l1_writebacks += 1;
                node.stats.l2_local_accesses += 1;
                node.stats.l2_local_hits += 1;
                node.stats.l2_tag_reads += 1;
                node.stats.l2_data_writes += 1;
                debug_assert!(
                    node.l2.state(victim.unit).is_valid(),
                    "inclusion violated: dirty L1 victim {} absent from L2",
                    victim.unit
                );
            }
        }
    }

    /// Installs a freshly fetched unit into the local L2, evicting a
    /// conflicting block if needed, and notifies the filter bank.
    fn install(&mut self, cpu: usize, unit: UnitAddr, state: Moesi, version: u64) {
        let evicted = {
            let node = &mut self.nodes[cpu];
            node.stats.l2_tag_writes += 1; // new tag/state
            node.stats.l2_data_writes += 1; // the arriving data
            node.l2.fill(unit, state, version)
        };
        for ev in &evicted {
            let node = &mut self.nodes[cpu];
            node.stats.l2_evicted_units += 1;
            // Inclusion: drop the L1 copy (its data is not newer than the
            // L2's — stores stamp the L2 version eagerly).
            node.l1.invalidate(ev.unit);
            if ev.state.is_dirty() {
                node.stats.l2_evict_data_reads += 1; // read out for the writeback
                node.stats.wb_pushes += 1;
                if let Some(forced) = node.wb.push(WbEntry {
                    unit: ev.unit,
                    version: ev.version,
                    shared: ev.state == Moesi::Owned,
                }) {
                    node.stats.wb_drains += 1;
                    self.retire_to_memory(forced);
                }
            }
            for f in &mut self.nodes[cpu].filters {
                f.on_deallocate(ev.unit);
            }
        }
        for f in &mut self.nodes[cpu].filters {
            f.on_allocate(unit);
        }
    }

    fn retire_to_memory(&mut self, entry: WbEntry) {
        if self.config.check.is_full() {
            self.memory_versions.insert(entry.unit.raw(), entry.version);
        }
    }

    /// Version the requester receives for a fill, given the snoop response.
    fn incoming_version(&mut self, unit: UnitAddr, response: &SnoopResponse) -> u64 {
        if let Some(v) = response.supplied_version {
            return v;
        }
        if self.config.check.is_full() && !response.supplied_by_wb {
            // Memory supplies: its copy must be current.
            let mem = self.memory_versions.get(&unit.raw()).copied().unwrap_or(0);
            let latest = self.latest_versions.get(&unit.raw()).copied().unwrap_or(0);
            assert_eq!(
                mem, latest,
                "memory supplied stale data for {unit}: memory v{mem}, latest v{latest}"
            );
            return mem;
        }
        // Unchecked mode (or WB supply handled inside the snoop): versions
        // are advisory; WB supplies set `supplied_version` too, so 0 here.
        self.memory_versions.get(&unit.raw()).copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Bus side
    // ------------------------------------------------------------------

    /// Executes one bus transaction: drains a writeback slot, snoops every
    /// remote node, aggregates the response, updates the histogram.
    fn bus_transaction(
        &mut self,
        requester: usize,
        unit: UnitAddr,
        kind: BusKind,
    ) -> SnoopResponse {
        // Bus acquired: the oldest pending writeback of the requester rides
        // along (simple drain policy; keeps WB occupancy bounded).
        if let Some(entry) = self.nodes[requester].wb.drain_one() {
            self.nodes[requester].stats.wb_drains += 1;
            self.retire_to_memory(entry);
        }

        let mut response = SnoopResponse::default();
        for i in 0..self.config.cpus {
            if i == requester {
                continue;
            }
            self.snoop(i, unit, kind, &mut response);
        }

        let hist_slot = response.remote_copies.min(self.config.cpus - 1);
        self.stats.remote_hit_hist[hist_slot] += 1;
        match kind {
            BusKind::Read => self.stats.bus_reads += 1,
            BusKind::ReadExclusive => self.stats.bus_read_exclusives += 1,
            BusKind::Upgrade => self.stats.bus_upgrades += 1,
        }
        if kind.needs_data() {
            if response.cache_supplied() {
                self.stats.cache_supplies += 1;
            } else {
                self.stats.memory_supplies += 1;
            }
        }
        response
    }

    /// Delivers one snoop to node `i`.
    fn snoop(&mut self, i: usize, unit: UnitAddr, kind: BusKind, response: &mut SnoopResponse) {
        let would_hit = self.nodes[i].l2.state(unit).is_valid();
        // On a miss, distinguish a whole-tag miss (the entire block absent:
        // exclude filters may record it) from a partial one.
        let scope =
            if self.nodes[i].l2.block_present(unit) { MissScope::Unit } else { MissScope::Block };
        // A writeback retired to memory as part of this snoop (borrow of
        // the node ends before memory is updated).
        let mut retired: Option<WbEntry> = None;

        {
            let node = &mut self.nodes[i];
            node.stats.snoops_seen += 1;

            // 1. The writeback buffer is always probed (never filtered).
            node.stats.wb_probes += 1;
            if node.wb.probe(unit).is_some() {
                debug_assert!(!would_hit, "unit in both WB and L2 of node {i}");
                node.stats.wb_snoop_hits += 1;
                match kind {
                    BusKind::Read => {
                        // Supply from the buffer AND complete the pending
                        // memory write in the same transaction. Leaving the
                        // entry queued would let a stale drain overwrite a
                        // newer writeback after the requester (installed
                        // Exclusive) modifies the data.
                        node.stats.snoop_supplies += 1;
                        node.stats.wb_drains += 1;
                        let taken = node.wb.remove(unit).expect("probe just found it");
                        response.supplied_version = Some(taken.version);
                        response.supplied_by_wb = true;
                        retired = Some(taken);
                    }
                    BusKind::ReadExclusive => {
                        // The requester takes ownership; the pending
                        // writeback is superseded and dropped.
                        node.stats.snoop_supplies += 1;
                        let taken = node.wb.remove(unit).expect("probe just found it");
                        response.supplied_version = Some(taken.version);
                        response.supplied_by_wb = true;
                    }
                    BusKind::Upgrade => {
                        // The upgrader's Shared copy matches the buffered
                        // data; the buffered write is superseded.
                        node.wb.remove(unit);
                    }
                }
            }

            // 2. The filter bank observes the snoop. Filters are pure
            // bystanders: every one probes, and each that fails to filter a
            // genuine miss is taught via record_snoop_miss.
            for f in &mut node.filters {
                let verdict = f.probe(unit);
                if verdict.is_filtered() {
                    assert!(
                        !would_hit,
                        "UNSAFE FILTER: {} filtered a snoop to cached unit {unit} on node {i}",
                        f.name()
                    );
                } else if !would_hit {
                    f.record_snoop_miss(unit, scope);
                }
            }
        }
        if let Some(entry) = retired {
            self.retire_to_memory(entry);
        }

        // 3. The protocol reaction (what an unfiltered L2 does).
        if !would_hit {
            self.nodes[i].stats.snoop_would_miss += 1;
            return;
        }
        self.nodes[i].stats.snoop_hits += 1;
        response.remote_copies += 1;

        let state = self.nodes[i].l2.state(unit);
        match kind {
            BusKind::Read => {
                // A dirty L1 copy folds into the L2 before any supply
                // (version already current — stores stamp eagerly).
                if self.nodes[i].l1.downgrade(unit) {
                    self.nodes[i].stats.l2_data_writes += 1;
                }
                if state.supplies_data() {
                    let node = &mut self.nodes[i];
                    node.stats.snoop_supplies += 1;
                    response.supplied_version = Some(node.l2.version(unit));
                }
                let next = state.after_remote_read();
                if next != state {
                    let node = &mut self.nodes[i];
                    node.l2.set_state(unit, next);
                    node.stats.snoop_state_writes += 1;
                }
            }
            BusKind::ReadExclusive | BusKind::Upgrade => {
                let node = &mut self.nodes[i];
                node.l1.invalidate(unit);
                let (prior, version) = node.l2.invalidate(unit);
                node.stats.snoop_state_writes += 1;
                node.stats.snoop_invalidations += 1;
                if kind == BusKind::ReadExclusive && prior.supplies_data() {
                    node.stats.snoop_supplies += 1;
                    response.supplied_version = Some(version);
                }
                for f in &mut self.nodes[i].filters {
                    f.on_deallocate(unit);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Checking
    // ------------------------------------------------------------------

    /// Asserts that a completed read observed the newest written data.
    fn check_read(&self, cpu: usize, unit: UnitAddr) {
        if !self.config.check.is_full() {
            return;
        }
        let latest = self.latest_versions.get(&unit.raw()).copied().unwrap_or(0);
        let seen = self.nodes[cpu].l2.version(unit);
        assert_eq!(
            seen, latest,
            "stale read: cpu{cpu} read {unit} at v{seen}, latest is v{latest}"
        );
    }

    /// Asserts the MOESI single-writer invariants for `unit`.
    fn check_invariants(&self, unit: UnitAddr) {
        if !self.config.check.is_full() {
            return;
        }
        let states: Vec<Moesi> = self.nodes.iter().map(|n| n.l2.state(unit)).collect();
        let valid = states.iter().filter(|s| s.is_valid()).count();
        let exclusive =
            states.iter().filter(|s| matches!(s, Moesi::Modified | Moesi::Exclusive)).count();
        let owners = states.iter().filter(|s| **s == Moesi::Owned).count();
        assert!(exclusive <= 1, "multiple M/E holders of {unit}: {states:?}");
        assert!(owners <= 1, "multiple O holders of {unit}: {states:?}");
        if exclusive == 1 {
            assert_eq!(valid, 1, "M/E copy of {unit} coexists with other copies: {states:?}");
        }
        // Inclusion for the touched unit in every node.
        for (i, node) in self.nodes.iter().enumerate() {
            if node.l1.contains(unit) {
                assert!(
                    node.l2.state(unit).is_valid(),
                    "inclusion violated on node {i}: {unit} in L1 but not L2"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    /// Per-node statistics.
    pub fn node_stats(&self, cpu: usize) -> &NodeStats {
        &self.nodes[cpu].stats
    }

    /// Aggregated run statistics.
    pub fn run_stats(&self) -> RunStats {
        let mut nodes = NodeStats::default();
        for node in &self.nodes {
            nodes.merge(&node.stats);
        }
        RunStats { nodes, system: self.stats.clone() }
    }

    /// Bus-level statistics.
    pub fn system_stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Coverage/activity report for every filter in the bank.
    pub fn filter_reports(&self) -> Vec<FilterReport> {
        let would_miss: u64 = self.nodes.iter().map(|n| n.stats.snoop_would_miss).sum();
        self.specs
            .iter()
            .enumerate()
            .map(|(k, spec)| {
                let activities: Vec<_> =
                    self.nodes.iter().map(|n| n.filters[k].activity()).collect();
                let probes = activities.iter().map(|a| a.probes).sum();
                let filtered = activities.iter().map(|a| a.filtered).sum();
                let arrays = self.nodes[0].filters[k].arrays();
                let storage_bits = self.nodes[0].filters[k].storage_bits();
                FilterReport {
                    spec: *spec,
                    label: spec.label(),
                    probes,
                    filtered,
                    would_miss,
                    activities,
                    arrays,
                    storage_bits,
                }
            })
            .collect()
    }

    /// Direct L2 state inspection (tests).
    pub fn l2_state(&self, cpu: usize, addr: u64) -> Moesi {
        self.nodes[cpu].l2.state(self.space.unit_of(addr))
    }

    /// Direct L1 presence inspection (tests).
    pub fn l1_contains(&self, cpu: usize, addr: u64) -> bool {
        self.nodes[cpu].l1.contains(self.space.unit_of(addr))
    }

    /// Verifies L1 ⊆ L2 inclusion exhaustively (tests; O(L1 size)).
    pub fn verify_inclusion(&self) {
        for (i, node) in self.nodes.iter().enumerate() {
            for unit in node.l1.valid_units() {
                assert!(
                    node.l2.state(unit).is_valid(),
                    "inclusion violated on node {i}: {unit} in L1 but not L2"
                );
            }
        }
    }

    /// Verifies that every Include-Jetty in every bank exactly mirrors its
    /// L2 population (tests; O(L2 size)).
    pub fn verify_filter_consistency(&mut self) {
        for node in &mut self.nodes {
            let units: Vec<UnitAddr> = node.l2.valid_units().map(|(u, _)| u).collect();
            for f in &mut node.filters {
                for &u in &units {
                    let v = f.probe(u);
                    assert!(!v.is_filtered(), "{} filters cached unit {u}", f.name());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{L1Config, L2Config};

    /// A tiny checked system so evictions happen quickly.
    fn tiny(specs: &[FilterSpec]) -> System {
        let config = SystemConfig {
            cpus: 4,
            l1: L1Config::new(256, 32),     // 8 lines
            l2: L2Config::new(1024, 64, 2), // 16 blocks, 32 units
            wb_entries: 4,
            addr: AddrSpace::default(),
            check: crate::config::CheckLevel::Full,
        };
        System::new(config, specs)
    }

    fn paper(specs: &[FilterSpec]) -> System {
        System::new(SystemConfig::paper_4way(), specs)
    }

    #[test]
    fn cold_read_misses_everywhere_and_installs_exclusive() {
        let mut sys = paper(&[]);
        let out = sys.access(0, Op::Read, 0x1000);
        assert!(!out.l1_hit && !out.l2_hit);
        assert_eq!(out.bus, Some(BusKind::Read));
        assert_eq!(sys.l2_state(0, 0x1000), Moesi::Exclusive);
        assert!(sys.l1_contains(0, 0x1000));
        // Remote hit histogram: zero copies found.
        assert_eq!(sys.system_stats().remote_hit_hist[0], 1);
    }

    #[test]
    fn second_read_hits_l1() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0x1000);
        let out = sys.access(0, Op::Read, 0x1008); // same 32B unit
        assert!(out.l1_hit);
        assert_eq!(sys.node_stats(0).l1_hits, 1);
    }

    #[test]
    fn sharing_downgrades_exclusive_to_shared() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0x40);
        sys.access(1, Op::Read, 0x40);
        assert_eq!(sys.l2_state(0, 0x40), Moesi::Shared);
        assert_eq!(sys.l2_state(1, 0x40), Moesi::Shared);
        // The second read found one remote copy.
        assert_eq!(sys.system_stats().remote_hit_hist[1], 1);
    }

    #[test]
    fn producer_consumer_uses_owned_state() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Write, 0x80); // producer: BusRdX -> M
        assert_eq!(sys.l2_state(0, 0x80), Moesi::Modified);
        sys.access(1, Op::Read, 0x80); // consumer: producer supplies, M -> O
        assert_eq!(sys.l2_state(0, 0x80), Moesi::Owned);
        assert_eq!(sys.l2_state(1, 0x80), Moesi::Shared);
        assert_eq!(sys.node_stats(0).snoop_supplies, 1);
    }

    #[test]
    fn write_hit_on_shared_issues_upgrade() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0xc0);
        sys.access(1, Op::Read, 0xc0); // both Shared
        let out = sys.access(0, Op::Write, 0xc0);
        assert_eq!(out.bus, Some(BusKind::Upgrade));
        assert_eq!(sys.l2_state(0, 0xc0), Moesi::Modified);
        assert_eq!(sys.l2_state(1, 0xc0), Moesi::Invalid);
        assert_eq!(sys.node_stats(1).snoop_invalidations, 1);
        assert!(!sys.l1_contains(1, 0xc0));
    }

    #[test]
    fn write_miss_invalidates_remote_modified() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Write, 0x100); // M at node 0
        sys.access(1, Op::Write, 0x100); // BusRdX: node 0 supplies + invalidates
        assert_eq!(sys.l2_state(0, 0x100), Moesi::Invalid);
        assert_eq!(sys.l2_state(1, 0x100), Moesi::Modified);
        assert_eq!(sys.node_stats(0).snoop_supplies, 1);
    }

    #[test]
    fn silent_exclusive_to_modified_upgrade() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0x140); // E
        let out = sys.access(0, Op::Write, 0x140); // silent E->M
        assert_eq!(out.bus, None);
        assert_eq!(sys.l2_state(0, 0x140), Moesi::Modified);
    }

    #[test]
    fn migratory_sharing_roundtrip_stays_coherent() {
        let mut sys = paper(&[]);
        for round in 0..6 {
            let cpu = round % 4;
            sys.access(cpu, Op::Read, 0x2000);
            sys.access(cpu, Op::Write, 0x2000);
        }
        // Exactly one M copy at the last writer.
        assert_eq!(sys.l2_state(1, 0x2000), Moesi::Modified);
        for cpu in [0, 2, 3] {
            assert_eq!(sys.l2_state(cpu, 0x2000), Moesi::Invalid);
        }
    }

    #[test]
    fn eviction_pushes_dirty_data_through_wb_to_memory() {
        let mut sys = tiny(&[]);
        // Dirty a unit, then evict it with a conflicting block
        // (same L2 index: 1 KiB apart in the tiny L2).
        sys.access(0, Op::Write, 0x0);
        sys.access(0, Op::Read, 0x400);
        assert_eq!(sys.l2_state(0, 0x0), Moesi::Invalid);
        assert_eq!(sys.node_stats(0).wb_pushes, 1);
        // Another node reads it back: memory (via WB drain) or the WB
        // itself must supply the *written* version — the checker asserts.
        sys.access(1, Op::Read, 0x0);
        sys.access(1, Op::Read, 0x8); // same unit, L1 hit
    }

    #[test]
    fn wb_supplies_pending_data_on_remote_read() {
        let mut sys = tiny(&[]);
        sys.access(0, Op::Write, 0x0);
        sys.access(0, Op::Read, 0x400); // evict dirty unit into WB
                                        // Immediately read from another node: WB must supply.
        sys.access(1, Op::Read, 0x0);
        assert!(sys.node_stats(0).wb_snoop_hits >= 1);
    }

    #[test]
    fn upgrade_supersedes_pending_writeback() {
        let mut sys = tiny(&[]);
        // Node 0 and 1 share; node 0 then owns dirty (O) after node 1 reads.
        sys.access(0, Op::Write, 0x0); // M at 0
        sys.access(1, Op::Read, 0x0); // 0:O, 1:S
                                      // Evict node 0's O copy into its WB.
        sys.access(0, Op::Read, 0x400);
        assert_eq!(sys.l2_state(0, 0x0), Moesi::Invalid);
        // Node 1 upgrades its S copy: the pending WB entry is superseded.
        sys.access(1, Op::Write, 0x0);
        assert_eq!(sys.l2_state(1, 0x0), Moesi::Modified);
        // Node 1's new data must win: read it from node 2.
        sys.access(2, Op::Read, 0x0);
    }

    #[test]
    fn filters_observe_without_changing_behaviour() {
        let specs = [FilterSpec::hybrid_scalar(8, 4, 7, 16, 2), FilterSpec::Null];
        let mut with = paper(&specs);
        let mut without = paper(&[]);
        let trace: Vec<MemRef> = (0..200)
            .map(|i| {
                let cpu = (i * 7) % 4;
                let addr = ((i * 37) % 50) * 32;
                if i % 3 == 0 {
                    MemRef::write(cpu, addr as u64)
                } else {
                    MemRef::read(cpu, addr as u64)
                }
            })
            .collect();
        with.run(trace.iter().copied());
        without.run(trace.iter().copied());
        assert_eq!(with.run_stats().nodes, without.run_stats().nodes);
        assert_eq!(with.run_stats().system, without.run_stats().system);
    }

    #[test]
    fn filter_reports_share_the_would_miss_denominator() {
        let specs = [FilterSpec::exclude(8, 2), FilterSpec::include(6, 5, 6)];
        let mut sys = paper(&specs);
        for i in 0..100u64 {
            sys.access((i % 4) as usize, Op::Read, i * 64);
        }
        let reports = sys.filter_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].would_miss, reports[1].would_miss);
        for r in &reports {
            assert!(r.coverage() >= 0.0 && r.coverage() <= 1.0);
            assert!(r.filtered <= r.would_miss);
        }
    }

    #[test]
    fn include_jetty_filters_most_cold_snoops() {
        let specs = [FilterSpec::include(10, 4, 7)];
        let mut sys = paper(&specs);
        // Four CPUs touch disjoint regions: every snoop misses remotely.
        for i in 0..400u64 {
            let cpu = (i % 4) as usize;
            sys.access(cpu, Op::Read, 0x10_0000 * cpu as u64 + (i / 4) * 32);
        }
        let report = &sys.filter_reports()[0];
        assert!(report.would_miss > 0);
        // Disjoint working sets are the IJ's best case.
        assert!(report.coverage() > 0.9, "IJ coverage unexpectedly low: {}", report.coverage());
    }

    #[test]
    fn null_filter_never_filters() {
        let mut sys = paper(&[FilterSpec::Null]);
        for i in 0..100u64 {
            sys.access((i % 4) as usize, Op::Read, i * 32);
        }
        let report = &sys.filter_reports()[0];
        assert_eq!(report.filtered, 0);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn snoop_counts_match_transactions() {
        let mut sys = paper(&[]);
        for i in 0..50u64 {
            sys.access((i % 4) as usize, Op::Write, i * 64);
        }
        let run = sys.run_stats();
        let tx = run.system.transactions();
        // Every transaction snoops cpus-1 nodes.
        assert_eq!(run.nodes.snoops_seen, tx * 3);
        assert_eq!(run.nodes.wb_probes, run.nodes.snoops_seen);
    }

    #[test]
    fn inclusion_holds_under_pressure() {
        let mut sys = tiny(&[FilterSpec::include(6, 5, 6)]);
        for i in 0..3000u64 {
            let cpu = (i % 4) as usize;
            let addr = (i * 97) % 8192;
            if i % 4 == 0 {
                sys.access(cpu, Op::Write, addr & !31);
            } else {
                sys.access(cpu, Op::Read, addr & !31);
            }
        }
        sys.verify_inclusion();
        sys.verify_filter_consistency();
    }

    #[test]
    fn run_consumes_trace() {
        let mut sys = paper(&[]);
        sys.run(vec![MemRef::read(0, 0), MemRef::write(1, 64), MemRef::read(2, 0)]);
        assert_eq!(sys.run_stats().nodes.l1_accesses, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_cpu() {
        let mut sys = paper(&[]);
        sys.access(7, Op::Read, 0);
    }

    #[test]
    fn upgrade_transaction_counts_remote_copies() {
        let mut sys = paper(&[]);
        sys.access(0, Op::Read, 0x40);
        sys.access(1, Op::Read, 0x40);
        sys.access(2, Op::Read, 0x40);
        // Upgrade from node 0 finds two remote copies.
        sys.access(0, Op::Write, 0x40);
        let hist = &sys.system_stats().remote_hit_hist;
        assert_eq!(hist[2], 2, "histogram: {hist:?}"); // read by 2 found 2; upgrade found 2
    }
}
