//! # jetty-sim — a bus-based SMP cache-coherence substrate
//!
//! The simulation substrate for the JETTY reproduction: a trace-driven,
//! count-based model of the paper's evaluation platform (§4.1) —
//! a 4-way (or 8-way) SMP where each node has a 64 KB direct-mapped L1,
//! a 1 MB direct-mapped L2 with 64-byte blocks of two 32-byte subblocks,
//! a small writeback buffer, and subblock-grain coherence over an atomic
//! snoopy bus. The coherence protocol is pluggable ([`protocol`]): the
//! paper's MOESI is the default, with MESI and MSI opening the protocol
//! axis as a sweepable scenario dimension.
//!
//! The paper used the Wisconsin Wind Tunnel II executing SPLASH-2 binaries;
//! JETTY only observes the *bus reference stream* and the *local cache
//! contents*, so a trace-driven simulator exercises the identical code
//! path: snoop → writeback-buffer probe → filter probe → L2 tag probe →
//! protocol reaction. Synthetic traces calibrated to the paper's
//! per-workload statistics come from the `jetty-workloads` crate.
//!
//! ## Quick start
//!
//! ```
//! use jetty_core::FilterSpec;
//! use jetty_sim::{MemRef, Op, System, SystemConfig};
//!
//! // A 4-way SMP with the paper's best hybrid filter on every node.
//! let spec = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4);
//! let mut smp = System::new(SystemConfig::paper_4way(), &[spec]);
//!
//! // CPU 0 produces, CPU 1 consumes.
//! smp.access(0, Op::Write, 0x1000);
//! smp.access(1, Op::Read, 0x1000);
//! // CPUs 2 and 3 never see the data; their snoops were filterable.
//! let report = &smp.filter_reports()[0];
//! assert!(report.would_miss > 0);
//! ```
//!
//! ## Verification
//!
//! With [`CheckLevel::Full`] (the default) the system asserts, after every
//! transaction: the protocol's single-writer and state-subset invariants,
//! L1⊆L2 inclusion, version-exact data coherence (every load observes the
//! newest store), and — at all check levels — that no filter ever filters
//! a snoop to a cached unit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod config;
pub mod fastmap;
mod gate;
mod l1;
mod l2;
mod moesi;
pub mod protocol;
mod stats;
mod system;
mod trace;
mod wb;

pub use bus::{BusKind, SnoopResponse};
pub use config::{CheckLevel, L1Config, L2Config, SystemConfig};
pub use fastmap::FastMap;
pub use gate::{GateStop, RunGate};
pub use l1::{L1Cache, L1Lookup, L1Victim};
pub use l2::{EvictedUnit, L2Cache};
pub use moesi::Moesi;
pub use protocol::{
    CoherenceProtocol, MesiProtocol, MoesiProtocol, MsiProtocol, ProtocolKind, ReadReaction,
};
pub use stats::{NodeStats, RunStats, SystemStats};
pub use system::{AccessOutcome, FilterReport, System};
pub use trace::{MemRef, Op};
pub use wb::{WbEntry, WritebackBuffer};
