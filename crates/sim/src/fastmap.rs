//! A minimal open-addressed `u64 → u64` hash map for the checker's version
//! tracking.
//!
//! The system probes its `memory_versions`/`latest_versions` maps on every
//! bus transaction. `std::collections::HashMap` pays SipHash per probe —
//! measurable on the snoop hot path, and pure overhead for the common
//! unchecked experiment runs where both maps stay empty. `FastMap` instead
//! uses a Fibonacci-multiplicative hash (one `wrapping_mul` plus a shift)
//! over linear probing, and an empty map answers [`FastMap::get`] without
//! touching any table storage at all.
//!
//! Scope: exactly the two operations the checker needs — [`FastMap::insert`]
//! (overwrite semantics, like `HashMap::insert`) and [`FastMap::get`].
//! There is no removal, so no tombstones; slots only ever go empty → full.

/// Sentinel marking an empty slot. The real key `u64::MAX` cannot collide
/// with it observably: it is stored out of line in `max_key_value`.
const EMPTY: u64 = u64::MAX;

/// Initial table capacity on first insert (power of two).
const INITIAL_CAPACITY: usize = 16;

/// Open-addressed insert-only `u64 → u64` map. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct FastMap {
    /// Slot keys; `EMPTY` marks a free slot. Length is a power of two
    /// (zero until the first insert).
    keys: Vec<u64>,
    /// Slot values, parallel to `keys`.
    values: Vec<u64>,
    /// Occupied slot count (excluding the out-of-line `u64::MAX` entry).
    len: usize,
    /// Value stored under the key `u64::MAX`, which the table itself uses
    /// as its empty sentinel.
    max_key_value: Option<u64>,
}

impl FastMap {
    /// Creates an empty map; no storage is allocated until the first
    /// insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// Entries stored.
    pub fn len(&self) -> usize {
        self.len + usize::from(self.max_key_value.is_some())
    }

    /// `true` when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fibonacci-multiplicative start slot for `key` in a table of
    /// `self.keys.len()` (a power of two) slots: sequential keys — the
    /// common unit-address pattern — scatter across the table instead of
    /// clustering into one probe run.
    fn start_slot(&self, key: u64) -> usize {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> (64 - self.keys.len().trailing_zeros())) as usize
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        if key == EMPTY {
            return self.max_key_value;
        }
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.start_slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.values[slot]);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts or overwrites `key → value`.
    pub fn insert(&mut self, key: u64, value: u64) {
        if key == EMPTY {
            self.max_key_value = Some(value);
            return;
        }
        // Grow at 1/2 occupancy: with linear probing, miss lookups scan to
        // the next empty slot, and the snoop path issues more misses than
        // hits — a low load factor buys short runs for 16 bytes/slot.
        if self.keys.is_empty() || (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.start_slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                self.values[slot] = value;
                return;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.values[slot] = value;
                self.len += 1;
                return;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the table (or allocates the first one) and rehashes every
    /// occupied slot.
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(INITIAL_CAPACITY);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_values = std::mem::take(&mut self.values);
        self.values = vec![0; new_cap];
        let mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_values) {
            if k == EMPTY {
                continue;
            }
            let mut slot = self.start_slot(k);
            while self.keys[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = k;
            self.values[slot] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_answers_none_without_allocating() {
        let m = FastMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(42), None);
        assert_eq!(m.keys.capacity(), 0, "no table until the first insert");
    }

    #[test]
    fn insert_then_get_roundtrips() {
        let mut m = FastMap::new();
        m.insert(0, 10);
        m.insert(7, 70);
        assert_eq!(m.get(0), Some(10));
        assert_eq!(m.get(7), Some(70));
        assert_eq!(m.get(8), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_overwrites_like_hashmap() {
        let mut m = FastMap::new();
        m.insert(5, 1);
        m.insert(5, 2);
        assert_eq!(m.get(5), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn key_zero_is_an_ordinary_key() {
        let mut m = FastMap::new();
        m.insert(0, 99);
        assert_eq!(m.get(0), Some(99));
    }

    #[test]
    fn sentinel_key_is_storable() {
        let mut m = FastMap::new();
        assert_eq!(m.get(u64::MAX), None);
        m.insert(u64::MAX, 3);
        assert_eq!(m.get(u64::MAX), Some(3));
        assert_eq!(m.len(), 1);
        m.insert(u64::MAX, 4);
        assert_eq!(m.get(u64::MAX), Some(4));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut m = FastMap::new();
        for k in 0..10_000u64 {
            m.insert(k * 3, k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k * 3), Some(k), "key {}", k * 3);
        }
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn matches_std_hashmap_on_a_mixed_workload() {
        use std::collections::HashMap;
        let mut fast = FastMap::new();
        let mut std_map: HashMap<u64, u64> = HashMap::new();
        // Deterministic xorshift key stream with frequent overwrites.
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for i in 0..50_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 8192; // collide often
            fast.insert(key, i);
            std_map.insert(key, i);
        }
        assert_eq!(fast.len(), std_map.len());
        for key in 0..8192u64 {
            assert_eq!(fast.get(key), std_map.get(&key).copied(), "key {key}");
        }
    }
}
