//! MOESI coherence states, maintained per 32-byte L2 subblock (paper §4.1:
//! "Coherence is maintained at the subblock level using a MOESI protocol").
//!
//! `Moesi` doubles as the shared state universe for every pluggable
//! protocol (see [`crate::protocol`]): MESI uses the subset without
//! `Owned`, MSI additionally drops `Exclusive`. The state-query helpers
//! here (`is_dirty`, `is_writable`, …) are protocol-independent facts
//! about a state; protocol-*dependent* transitions live behind
//! [`CoherenceProtocol`](crate::protocol::CoherenceProtocol).

use std::fmt;

/// Per-subblock MOESI state.
///
/// * `Modified` — sole, dirty copy; must supply data and write back.
/// * `Owned` — dirty copy shared with `Shared` copies elsewhere; this node
///   supplies data and is responsible for the eventual writeback.
/// * `Exclusive` — sole, clean copy; silently upgradable to `Modified`.
/// * `Shared` — clean copy, possibly one of many.
/// * `Invalid` — not present.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Moesi {
    /// Sole dirty copy.
    Modified,
    /// Dirty copy with sharers.
    Owned,
    /// Sole clean copy.
    Exclusive,
    /// Clean copy, possibly shared.
    Shared,
    /// Not present.
    #[default]
    Invalid,
}

impl Moesi {
    /// `true` for any state other than `Invalid`.
    pub fn is_valid(self) -> bool {
        self != Moesi::Invalid
    }

    /// `true` when this copy is dirty with respect to memory (`M` or `O`)
    /// and must be written back on eviction.
    pub fn is_dirty(self) -> bool {
        matches!(self, Moesi::Modified | Moesi::Owned)
    }

    /// `true` when this node must supply data for a bus read (`M` or `O`;
    /// clean copies let memory respond).
    pub fn supplies_data(self) -> bool {
        self.is_dirty()
    }

    /// `true` when a local store may proceed without a bus transaction
    /// (`M` or `E`).
    pub fn is_writable(self) -> bool {
        matches!(self, Moesi::Modified | Moesi::Exclusive)
    }

    /// State after observing a remote bus read while holding this state.
    ///
    /// `M -> O`, `E -> S`; `O` and `S` are unchanged. Must not be called on
    /// `Invalid` (a snoop miss has no transition).
    ///
    /// # Panics
    ///
    /// Panics when called on `Invalid`.
    pub fn after_remote_read(self) -> Moesi {
        match self {
            Moesi::Modified => Moesi::Owned,
            Moesi::Exclusive => Moesi::Shared,
            Moesi::Owned => Moesi::Owned,
            Moesi::Shared => Moesi::Shared,
            Moesi::Invalid => panic!("snoop-miss has no read transition"),
        }
    }
}

impl fmt::Display for Moesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Moesi::Modified => 'M',
            Moesi::Owned => 'O',
            Moesi::Exclusive => 'E',
            Moesi::Shared => 'S',
            Moesi::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity() {
        assert!(Moesi::Modified.is_valid());
        assert!(Moesi::Owned.is_valid());
        assert!(Moesi::Exclusive.is_valid());
        assert!(Moesi::Shared.is_valid());
        assert!(!Moesi::Invalid.is_valid());
    }

    #[test]
    fn dirtiness_and_supply() {
        assert!(Moesi::Modified.is_dirty());
        assert!(Moesi::Owned.is_dirty());
        assert!(!Moesi::Exclusive.is_dirty());
        assert!(!Moesi::Shared.is_dirty());
        assert_eq!(Moesi::Modified.supplies_data(), Moesi::Modified.is_dirty());
    }

    #[test]
    fn writability() {
        assert!(Moesi::Modified.is_writable());
        assert!(Moesi::Exclusive.is_writable());
        assert!(!Moesi::Owned.is_writable());
        assert!(!Moesi::Shared.is_writable());
        assert!(!Moesi::Invalid.is_writable());
    }

    #[test]
    fn remote_read_transitions() {
        assert_eq!(Moesi::Modified.after_remote_read(), Moesi::Owned);
        assert_eq!(Moesi::Exclusive.after_remote_read(), Moesi::Shared);
        assert_eq!(Moesi::Owned.after_remote_read(), Moesi::Owned);
        assert_eq!(Moesi::Shared.after_remote_read(), Moesi::Shared);
    }

    #[test]
    #[should_panic(expected = "no read transition")]
    fn invalid_has_no_read_transition() {
        let _ = Moesi::Invalid.after_remote_read();
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(Moesi::default(), Moesi::Invalid);
    }

    #[test]
    fn display() {
        assert_eq!(Moesi::Modified.to_string(), "M");
        assert_eq!(Moesi::Invalid.to_string(), "I");
    }
}
