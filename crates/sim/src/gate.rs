//! Cooperative run control: a deadline + cancellation token checked at
//! chunk boundaries.
//!
//! The simulator's unit of interruption is the chunk ([`System::CHUNK_LEN`]
//! references, a few milliseconds of work): checking any finer would put a
//! clock read on the hot path, and any coarser would make a runaway
//! configuration uncancellable. A [`RunGate`] bundles the two reasons a
//! run may stop early — a wall-clock budget expiring, or a cooperative
//! cancellation flag raised by whoever owns the run (the experiment
//! engine raises it when a sibling job of the same suite has already
//! failed, so the rest of the suite stops burning CPU on a result that
//! can never be used).
//!
//! The default gate is unbounded and free: [`RunGate::check`] on an
//! unbounded gate is two `Option` tests, no clock read, no atomic.
//!
//! [`System::CHUNK_LEN`]: crate::System::CHUNK_LEN

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a gated run stopped before its trace was exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateStop {
    /// The wall-clock budget expired.
    DeadlineExpired {
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// The cancellation flag was raised by the gate's owner.
    Cancelled,
}

/// A deadline and/or cancellation token, checked cooperatively at chunk
/// boundaries.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use jetty_sim::{GateStop, RunGate};
///
/// let gate = RunGate::unbounded();
/// assert_eq!(gate.check(), Ok(()));
///
/// let gate = RunGate::with_budget(Duration::ZERO);
/// assert_eq!(gate.check(), Err(GateStop::DeadlineExpired { budget_ms: 0 }));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunGate {
    /// Absolute expiry plus the originating budget (kept for reporting).
    deadline: Option<(Instant, u64)>,
    cancel: Option<Arc<AtomicBool>>,
}

impl RunGate {
    /// A gate that never stops anything (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A gate whose clock starts now and expires after `budget`.
    pub fn with_budget(budget: Duration) -> Self {
        let budget_ms = budget.as_millis().min(u128::from(u64::MAX)) as u64;
        Self { deadline: Some((Instant::now() + budget, budget_ms)), cancel: None }
    }

    /// Attaches a shared cancellation flag (raised by the owner via
    /// `store(true)`; observed at the next [`RunGate::check`]).
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// `true` when the gate can never stop a run.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// The configured budget in milliseconds, when there is one.
    pub fn budget_ms(&self) -> Option<u64> {
        self.deadline.map(|(_, ms)| ms)
    }

    /// May the run proceed into its next chunk? Cancellation is checked
    /// before the deadline: an owner-initiated stop is the more specific
    /// reason, and checking it first keeps the common unbounded path free
    /// of clock reads.
    pub fn check(&self) -> Result<(), GateStop> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(GateStop::Cancelled);
            }
        }
        if let Some((expiry, budget_ms)) = self.deadline {
            if Instant::now() >= expiry {
                return Err(GateStop::DeadlineExpired { budget_ms });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_gate_always_passes() {
        let gate = RunGate::unbounded();
        assert!(gate.is_unbounded());
        assert_eq!(gate.budget_ms(), None);
        for _ in 0..3 {
            assert_eq!(gate.check(), Ok(()));
        }
    }

    #[test]
    fn zero_budget_expires_immediately_and_reports_it() {
        let gate = RunGate::with_budget(Duration::ZERO);
        assert!(!gate.is_unbounded());
        assert_eq!(gate.budget_ms(), Some(0));
        assert_eq!(gate.check(), Err(GateStop::DeadlineExpired { budget_ms: 0 }));
    }

    #[test]
    fn generous_budget_passes_now() {
        let gate = RunGate::with_budget(Duration::from_secs(3600));
        assert_eq!(gate.budget_ms(), Some(3_600_000));
        assert_eq!(gate.check(), Ok(()));
    }

    #[test]
    fn cancellation_flag_stops_the_gate_and_wins_over_the_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let gate = RunGate::with_budget(Duration::ZERO).with_cancel(Arc::clone(&flag));
        assert_eq!(
            gate.check(),
            Err(GateStop::DeadlineExpired { budget_ms: 0 }),
            "flag not raised yet: the deadline is the stop reason"
        );
        flag.store(true, Ordering::Relaxed);
        assert_eq!(gate.check(), Err(GateStop::Cancelled), "cancellation is the specific reason");
    }
}
