//! Per-node and system-wide statistics.
//!
//! Counters are raw event counts; derived metrics (hit rates, snoop-miss
//! fractions, remote-hit distribution) match the definitions of the paper's
//! Tables 2 and 3 so the experiment harness can print those tables
//! directly.

/// Per-node event counters.
///
/// "Local" counters describe accesses initiated by the node's own CPU
/// (including L1 writebacks into the L2, per the paper's hit-rate
/// definition); "snoop" counters describe bus-induced activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// CPU loads + stores issued to this node.
    pub l1_accesses: u64,
    /// L1 hits (including write hits that required a bus upgrade).
    pub l1_hits: u64,
    /// Dirty L1 victims written back into the L2.
    pub l1_writebacks: u64,

    /// Local L2 accesses: L1-miss lookups plus L1 writebacks.
    pub l2_local_accesses: u64,
    /// Local L2 hits (L1 writebacks always hit by inclusion).
    pub l2_local_hits: u64,
    /// Local L2 tag-array reads (lookups and writeback locates).
    pub l2_tag_reads: u64,
    /// L2 tag-array writes (fills, state transitions, invalidations).
    pub l2_tag_writes: u64,
    /// L2 data-array reads forwarding a hit to the L1 (serial-access
    /// organisation; snoop supplies are counted under `snoop_supplies`).
    pub l2_data_reads: u64,
    /// L2 data-array reads draining dirty victims toward the writeback
    /// buffer (charged in both serial and parallel organisations).
    pub l2_evict_data_reads: u64,
    /// L2 data-array writes (fills and L1 writebacks).
    pub l2_data_writes: u64,
    /// Valid L2 subblocks displaced by block evictions.
    pub l2_evicted_units: u64,
    /// Dirty subblocks pushed to the writeback buffer.
    pub wb_pushes: u64,
    /// Writeback-buffer entries retired to memory.
    pub wb_drains: u64,
    /// Local misses served by the node's own writeback buffer (the evicted
    /// dirty data is forwarded back before it reaches memory).
    pub wb_local_hits: u64,

    /// Bus snoops delivered to this node (every remote transaction).
    pub snoops_seen: u64,
    /// Writeback-buffer probes (one per snoop; never filtered).
    pub wb_probes: u64,
    /// Snoops served by the writeback buffer.
    pub wb_snoop_hits: u64,
    /// Snoops that found a valid L2 copy (the oracle, independent of any
    /// filter).
    pub snoop_hits: u64,
    /// Snoops that would miss in the L2 (the filterable population).
    pub snoop_would_miss: u64,
    /// L2 tag writes caused by snoop hits (downgrades/invalidations).
    pub snoop_state_writes: u64,
    /// Snoop hits where this node supplied data (M/O owner or WB).
    pub snoop_supplies: u64,
    /// Dirty supplies that also updated memory in the same transaction
    /// (MESI/MSI `M → S` downgrades; always 0 under MOESI, whose `Owned`
    /// state keeps the dirty data on-chip).
    pub snoop_memory_writebacks: u64,
    /// Units invalidated by remote write transactions.
    pub snoop_invalidations: u64,

    /// Bus transactions initiated by this node.
    pub bus_reads: u64,
    /// Read-exclusive transactions initiated (write misses).
    pub bus_read_exclusives: u64,
    /// Upgrade transactions initiated (write hits on shared copies).
    pub bus_upgrades: u64,
}

impl NodeStats {
    /// L1 hit rate in `[0, 1]`; 0 when idle.
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1_hits, self.l1_accesses)
    }

    /// Local L2 hit rate over L1 misses + L1 writebacks (paper Table 2).
    pub fn l2_local_hit_rate(&self) -> f64 {
        ratio(self.l2_local_hits, self.l2_local_accesses)
    }

    /// Total bus transactions initiated by this node.
    pub fn bus_transactions(&self) -> u64 {
        self.bus_reads + self.bus_read_exclusives + self.bus_upgrades
    }

    /// All memory write traffic of the run: writeback-buffer drains plus
    /// the snoop-time memory updates MESI/MSI pay on dirty supplies. This
    /// is the protocol-dependent traffic the energy accounting charges.
    pub fn memory_writebacks(&self) -> u64 {
        self.wb_drains + self.snoop_memory_writebacks
    }

    /// Merges another node's counters into this one (aggregation).
    pub fn merge(&mut self, other: &NodeStats) {
        let NodeStats {
            l1_accesses,
            l1_hits,
            l1_writebacks,
            l2_local_accesses,
            l2_local_hits,
            l2_tag_reads,
            l2_tag_writes,
            l2_data_reads,
            l2_evict_data_reads,
            l2_data_writes,
            l2_evicted_units,
            wb_pushes,
            wb_drains,
            wb_local_hits,
            snoops_seen,
            wb_probes,
            wb_snoop_hits,
            snoop_hits,
            snoop_would_miss,
            snoop_state_writes,
            snoop_supplies,
            snoop_memory_writebacks,
            snoop_invalidations,
            bus_reads,
            bus_read_exclusives,
            bus_upgrades,
        } = other;
        self.l1_accesses += l1_accesses;
        self.l1_hits += l1_hits;
        self.l1_writebacks += l1_writebacks;
        self.l2_local_accesses += l2_local_accesses;
        self.l2_local_hits += l2_local_hits;
        self.l2_tag_reads += l2_tag_reads;
        self.l2_tag_writes += l2_tag_writes;
        self.l2_data_reads += l2_data_reads;
        self.l2_evict_data_reads += l2_evict_data_reads;
        self.l2_data_writes += l2_data_writes;
        self.l2_evicted_units += l2_evicted_units;
        self.wb_pushes += wb_pushes;
        self.wb_drains += wb_drains;
        self.wb_local_hits += wb_local_hits;
        self.snoops_seen += snoops_seen;
        self.wb_probes += wb_probes;
        self.wb_snoop_hits += wb_snoop_hits;
        self.snoop_hits += snoop_hits;
        self.snoop_would_miss += snoop_would_miss;
        self.snoop_state_writes += snoop_state_writes;
        self.snoop_supplies += snoop_supplies;
        self.snoop_memory_writebacks += snoop_memory_writebacks;
        self.snoop_invalidations += snoop_invalidations;
        self.bus_reads += bus_reads;
        self.bus_read_exclusives += bus_read_exclusives;
        self.bus_upgrades += bus_upgrades;
    }
}

/// System-wide statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Total bus transactions, by kind.
    pub bus_reads: u64,
    /// Read-exclusive transactions (write misses).
    pub bus_read_exclusives: u64,
    /// Upgrade transactions.
    pub bus_upgrades: u64,
    /// Histogram over transactions of how many *remote* caches held a valid
    /// copy of the snooped unit: index `k` counts transactions finding `k`
    /// remote copies (paper Table 3 "Remote Cache Hits").
    pub remote_hit_hist: Vec<u64>,
    /// Transactions where a cache (or WB) supplied the data.
    pub cache_supplies: u64,
    /// Transactions served by memory.
    pub memory_supplies: u64,
}

impl SystemStats {
    /// Creates stats sized for `cpus` processors.
    pub fn new(cpus: usize) -> Self {
        Self { remote_hit_hist: vec![0; cpus], ..Self::default() }
    }

    /// Total bus transactions.
    pub fn transactions(&self) -> u64 {
        self.bus_reads + self.bus_read_exclusives + self.bus_upgrades
    }

    /// Remote-hit distribution as fractions of all transactions
    /// (Table 3's "0 / 1 / 2 / 3" columns).
    pub fn remote_hit_fractions(&self) -> Vec<f64> {
        let total = self.transactions();
        self.remote_hit_hist.iter().map(|&c| ratio(c, total)).collect()
    }
}

/// Aggregate of one simulation run: all nodes plus the system counters,
/// with the paper's derived metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Aggregated per-node counters.
    pub nodes: NodeStats,
    /// Bus-level counters.
    pub system: SystemStats,
}

impl RunStats {
    /// Snoop-induced L2 tag accesses that miss, as a fraction of all
    /// snoop-induced tag accesses (Table 3, "% of Snoop Accesses";
    /// paper average 91%).
    pub fn snoop_miss_fraction_of_snoops(&self) -> f64 {
        ratio(self.nodes.snoop_would_miss, self.nodes.snoops_seen)
    }

    /// Snoop-induced L2 tag accesses that miss, as a fraction of *all* L2
    /// accesses, local + snoop (Table 3, "% of All Accesses"; paper
    /// average 55%).
    pub fn snoop_miss_fraction_of_all(&self) -> f64 {
        ratio(self.nodes.snoop_would_miss, self.nodes.l2_local_accesses + self.nodes.snoops_seen)
    }

    /// Snoop accesses as a multiple of local L2 accesses (the paper's
    /// "snoops double or quadruple L2 accesses" observation).
    pub fn snoop_amplification(&self) -> f64 {
        ratio(self.nodes.snoops_seen, self.nodes.l2_local_accesses)
    }

    /// Fraction of bus transactions that found exactly `k` remote copies
    /// (one column of Table 3's remote-hit distribution). Out-of-range `k`
    /// — e.g. column 3 of a 2-way system — reads as 0, so table builders
    /// can ask for the paper's four columns unconditionally.
    pub fn remote_hit_fraction(&self, k: usize) -> f64 {
        self.system.remote_hit_fractions().get(k).copied().unwrap_or(0.0)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates() {
        let stats = NodeStats {
            l1_accesses: 100,
            l1_hits: 90,
            l2_local_accesses: 10,
            l2_local_hits: 4,
            ..NodeStats::default()
        };
        assert!((stats.l1_hit_rate() - 0.9).abs() < 1e-12);
        assert!((stats.l2_local_hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn idle_node_rates_are_zero() {
        let stats = NodeStats::default();
        assert_eq!(stats.l1_hit_rate(), 0.0);
        assert_eq!(stats.l2_local_hit_rate(), 0.0);
        assert_eq!(stats.bus_transactions(), 0);
    }

    #[test]
    fn merge_sums_all_fields() {
        let mut a = NodeStats { l1_accesses: 1, snoops_seen: 2, ..NodeStats::default() };
        let b =
            NodeStats { l1_accesses: 3, snoops_seen: 4, bus_upgrades: 5, ..NodeStats::default() };
        a.merge(&b);
        assert_eq!(a.l1_accesses, 4);
        assert_eq!(a.snoops_seen, 6);
        assert_eq!(a.bus_upgrades, 5);
    }

    #[test]
    fn memory_writebacks_combine_drains_and_snoop_updates() {
        let stats = NodeStats { wb_drains: 3, snoop_memory_writebacks: 2, ..NodeStats::default() };
        assert_eq!(stats.memory_writebacks(), 5);
    }

    #[test]
    fn remote_hit_fractions_sum_to_one() {
        let mut s = SystemStats::new(4);
        s.bus_reads = 6;
        s.bus_read_exclusives = 3;
        s.bus_upgrades = 1;
        s.remote_hit_hist = vec![5, 3, 1, 1];
        let fr = s.remote_hit_fractions();
        assert_eq!(fr.len(), 4);
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((fr[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_stats_fractions() {
        let run = RunStats {
            nodes: NodeStats {
                snoops_seen: 100,
                snoop_would_miss: 91,
                l2_local_accesses: 80,
                ..NodeStats::default()
            },
            system: SystemStats::new(4),
        };
        assert!((run.snoop_miss_fraction_of_snoops() - 0.91).abs() < 1e-12);
        assert!((run.snoop_miss_fraction_of_all() - 91.0 / 180.0).abs() < 1e-12);
        assert!((run.snoop_amplification() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn remote_hit_fraction_reads_one_column_and_tolerates_overflow() {
        let mut run = RunStats { system: SystemStats::new(2), ..RunStats::default() };
        run.system.bus_reads = 4;
        run.system.remote_hit_hist = vec![3, 1];
        assert!((run.remote_hit_fraction(0) - 0.75).abs() < 1e-12);
        assert!((run.remote_hit_fraction(1) - 0.25).abs() < 1e-12);
        // Table 3 asks for four columns even on a 2-way system.
        assert_eq!(run.remote_hit_fraction(2), 0.0);
        assert_eq!(run.remote_hit_fraction(3), 0.0);
    }

    #[test]
    fn empty_run_fractions_are_zero() {
        let run = RunStats::default();
        assert_eq!(run.snoop_miss_fraction_of_snoops(), 0.0);
        assert_eq!(run.snoop_miss_fraction_of_all(), 0.0);
    }
}
