//! Declarative workload profiles: segments, sharing patterns, and the
//! paper's target statistics for calibration reporting.

/// How per-CPU data is placed in the physical address space.
///
/// This matters enormously for the Include-Jetty: with [`Arena`]
/// placement, different CPUs' data lives in disjoint address ranges, so
/// the IJ's upper index slices discriminate remote snoops almost
/// perfectly (the raytrace behaviour — per-thread heaps). With
/// [`PageInterleaved`] placement the CPUs' partitions of one shared array
/// interleave at page granularity (SPLASH-2 style block-cyclic
/// decomposition), every index slice aliases between local and remote
/// data, and IJ coverage drops to the moderate levels the paper reports.
///
/// [`Arena`]: RegionLayout::Arena
/// [`PageInterleaved`]: RegionLayout::PageInterleaved
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RegionLayout {
    /// One contiguous region per CPU (per-thread heap/arena).
    #[default]
    Arena,
    /// CPU partitions interleave 4 KiB pages of one shared array
    /// (block-cyclic decomposition of shared data).
    PageInterleaved,
}

/// One memory-access pattern within a workload, with a sampling weight.
///
/// A workload is a weighted mixture of segments; each CPU picks a segment
/// per reference according to the weights, then the segment's pattern
/// produces an address and an access kind.
#[derive(Clone, Debug, PartialEq)]
pub enum SegmentSpec {
    /// Per-CPU private data with a three-level working-set hierarchy:
    /// `p_hot` of accesses land in an L1-resident hot set, `p_warm` in an
    /// L2-resident warm set, and the remainder walks sequentially through a
    /// cold region (missing both levels). This is the knob for the paper's
    /// per-application L1/L2 local hit rates.
    Private {
        /// Sampling weight.
        weight: f64,
        /// Hot working set per CPU (choose ≤ half the L1 to mostly hit).
        hot_bytes: u64,
        /// Warm working set per CPU (L2-resident, mostly missing L1).
        warm_bytes: u64,
        /// Cold region per CPU, walked sequentially.
        cold_bytes: u64,
        /// Fraction of accesses to the hot set.
        p_hot: f64,
        /// Fraction of accesses to the warm set.
        p_warm: f64,
        /// Store fraction.
        write_frac: f64,
        /// Physical placement of the per-CPU regions.
        layout: RegionLayout,
    },
    /// Per-CPU streaming scan with no reuse beyond `refs_per_unit`
    /// consecutive references to each 32-byte unit (radix-style permutation
    /// traffic: every unit misses everywhere; zero remote hits).
    Streaming {
        /// Sampling weight.
        weight: f64,
        /// Region per CPU (wraps around).
        bytes: u64,
        /// Consecutive references per 32-byte unit (>= 1); higher values
        /// raise the L1 hit rate without creating sharing.
        refs_per_unit: u32,
        /// Store fraction.
        write_frac: f64,
        /// Physical placement of the per-CPU streams.
        layout: RegionLayout,
    },
    /// A region read (and occasionally written) by *all* CPUs: models
    /// widely-shared read-mostly data such as a Barnes-Hut tree. Accesses
    /// split between a small *hot* subset (widely cached everywhere; the
    /// rare writes to it invalidate every copy and re-reads produce 1-3
    /// remote-hit transactions) and a uniform *tail* over the full region
    /// (whose misses mostly find 0-1 remote copies).
    Shared {
        /// Sampling weight.
        weight: f64,
        /// Full region size (tail accesses are uniform over it).
        bytes: u64,
        /// Hot-subset size (keep it L1-scale). Set `hot_bytes == bytes`
        /// for a uniformly accessed region.
        hot_bytes: u64,
        /// Fraction of accesses that target the hot subset.
        hot_frac: f64,
        /// Mid-band size: popular-but-not-hot data (tree levels below the
        /// root). Mid units live in several L2s at once but get evicted by
        /// capacity pressure, so re-reads become bus transactions that find
        /// 1-3 remote copies *without* any write traffic — the dominant
        /// source of multi-remote-hit snoops in Barnes-style workloads.
        mid_bytes: u64,
        /// Fraction of accesses that target the mid band.
        mid_frac: f64,
        /// Store fraction; stores target the hot subset.
        write_frac: f64,
    },
    /// Producer/consumer channels: channel `c`'s producer is CPU
    /// `c mod ncpu`; the next `consumers` CPUs read it with a one-chunk
    /// lag. Consumer read misses find the producer's copy (one remote
    /// hit); producer rewrites find the consumers' copies.
    ProducerConsumer {
        /// Sampling weight.
        weight: f64,
        /// Channels (use a multiple of the CPU count so every CPU both
        /// produces and consumes).
        channels: usize,
        /// Bytes per channel.
        channel_bytes: u64,
        /// Consumers per channel (1 = pairwise, the common case).
        consumers: usize,
        /// Consecutive references per 32-byte unit.
        refs_per_unit: u32,
    },
    /// Migratory sharing: a pool of records, each owned by one CPU at a
    /// time; ownership rotates every `hold` segment references. Each visit
    /// reads then writes the record (critical-section style), so the next
    /// owner's miss finds exactly one (modified) remote copy.
    Migratory {
        /// Sampling weight.
        weight: f64,
        /// Records in the pool.
        records: usize,
        /// Bytes per record.
        record_bytes: u64,
        /// Segment references between ownership rotations.
        hold: u64,
    },
}

impl SegmentSpec {
    /// The sampling weight of this segment.
    pub fn weight(&self) -> f64 {
        match *self {
            SegmentSpec::Private { weight, .. }
            | SegmentSpec::Streaming { weight, .. }
            | SegmentSpec::Shared { weight, .. }
            | SegmentSpec::ProducerConsumer { weight, .. }
            | SegmentSpec::Migratory { weight, .. } => weight,
        }
    }
}

/// The paper's published numbers for one application (Tables 2 and 3),
/// kept for target-vs-measured reporting in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperStats {
    /// Memory accesses, in millions (Table 2).
    pub accesses_m: f64,
    /// Memory allocated, in MB (Table 2).
    pub ma_mbytes: f64,
    /// L1 local hit rate (Table 2).
    pub l1_hit: f64,
    /// L2 local hit rate over L1 misses + writebacks (Table 2).
    pub l2_hit: f64,
    /// Snoop-induced L2 accesses, in millions (Table 2).
    pub snoop_accesses_m: f64,
    /// Remote-cache-hit distribution over transactions: fractions finding
    /// 0, 1, 2 or 3 remote copies (Table 3).
    pub remote_hits: [f64; 4],
    /// Snoop misses as a fraction of snoop accesses (Table 3).
    pub snoop_miss_of_snoops: f64,
    /// Snoop misses as a fraction of all L2 accesses (Table 3).
    pub snoop_miss_of_all: f64,
}

/// A complete synthetic workload calibrated to one of the paper's
/// applications.
#[derive(Clone, Debug)]
pub struct AppProfile {
    /// Full application name (e.g. `"Barnes"`).
    pub name: &'static str,
    /// The paper's two-letter abbreviation (e.g. `"ba"`).
    pub abbrev: &'static str,
    /// The paper's input parameters, for documentation.
    pub input_desc: &'static str,
    /// Published target statistics.
    pub paper: PaperStats,
    /// References to generate at scale 1.0 (roughly paper/100, capped).
    pub accesses: u64,
    /// Deterministic seed.
    pub seed: u64,
    /// The weighted pattern mixture.
    pub segments: Vec<SegmentSpec>,
}

impl AppProfile {
    /// Sum of segment weights (the mixture normaliser).
    pub fn total_weight(&self) -> f64 {
        self.segments.iter().map(SegmentSpec::weight).sum()
    }

    /// Validates the profile's internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on empty segment lists, non-positive weights, or Private
    /// probabilities that do not fit in `[0, 1]`.
    pub fn validate(&self) {
        assert!(!self.segments.is_empty(), "{}: no segments", self.name);
        for seg in &self.segments {
            assert!(seg.weight() > 0.0, "{}: non-positive weight", self.name);
            if let SegmentSpec::Private { p_hot, p_warm, .. } = *seg {
                assert!(
                    p_hot >= 0.0 && p_warm >= 0.0 && p_hot + p_warm <= 1.0,
                    "{}: hot/warm probabilities out of range",
                    self.name
                );
            }
        }
        assert!(self.accesses > 0, "{}: zero accesses", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AppProfile {
        AppProfile {
            name: "Test",
            abbrev: "ts",
            input_desc: "n/a",
            paper: PaperStats {
                accesses_m: 1.0,
                ma_mbytes: 1.0,
                l1_hit: 0.9,
                l2_hit: 0.5,
                snoop_accesses_m: 0.1,
                remote_hits: [0.8, 0.2, 0.0, 0.0],
                snoop_miss_of_snoops: 0.9,
                snoop_miss_of_all: 0.5,
            },
            accesses: 1000,
            seed: 42,
            segments: vec![
                SegmentSpec::Private {
                    weight: 3.0,
                    hot_bytes: 1024,
                    warm_bytes: 4096,
                    cold_bytes: 65536,
                    p_hot: 0.9,
                    p_warm: 0.05,
                    write_frac: 0.3,
                    layout: RegionLayout::Arena,
                },
                SegmentSpec::Shared {
                    weight: 1.0,
                    bytes: 8192,
                    hot_bytes: 4096,
                    hot_frac: 0.9,
                    mid_bytes: 0,
                    mid_frac: 0.0,
                    write_frac: 0.05,
                },
            ],
        }
    }

    #[test]
    fn weights_sum() {
        assert!((profile().total_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn validation_passes_for_sane_profile() {
        profile().validate();
    }

    #[test]
    #[should_panic(expected = "probabilities out of range")]
    fn validation_rejects_bad_probabilities() {
        let mut p = profile();
        p.segments[0] = SegmentSpec::Private {
            weight: 1.0,
            hot_bytes: 1,
            warm_bytes: 1,
            cold_bytes: 1,
            p_hot: 0.9,
            p_warm: 0.2,
            write_frac: 0.0,
            layout: RegionLayout::Arena,
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "no segments")]
    fn validation_rejects_empty_segments() {
        let mut p = profile();
        p.segments.clear();
        p.validate();
    }
}
