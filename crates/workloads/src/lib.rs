//! # jetty-workloads — synthetic SPLASH-2-style trace generators
//!
//! The paper drives its 4-way SMP with memory traces of ten shared-memory
//! applications (SPLASH-2 plus Em3d and Unstructured) collected with the
//! Wisconsin Wind Tunnel II. Those traces are not reproducible here, so
//! this crate synthesises per-application reference streams from weighted
//! mixtures of the sharing patterns the SPLASH-2 characterisation
//! literature describes:
//!
//! * per-CPU **private** hierarchies with hot/warm/cold working sets
//!   (controls the L1/L2 local hit rates of Table 2);
//! * **streaming** scans (radix-style cold misses);
//! * widely-read **shared** regions with rare writes (2–3 remote-hit
//!   transactions);
//! * **producer/consumer** channels (pairwise, one-remote-hit sharing —
//!   the dominant pattern per Weber & Gupta);
//! * **migratory** records (critical-section data bouncing owner to
//!   owner).
//!
//! Each of the ten [`AppProfile`]s carries the paper's published target
//! statistics ([`PaperStats`]) so harnesses can report target-vs-measured;
//! the calibration deltas live in EXPERIMENTS.md.
//!
//! ## Example
//!
//! ```
//! use jetty_sim::{System, SystemConfig};
//! use jetty_workloads::{apps, TraceGen};
//!
//! let profile = apps::lu();
//! let mut smp = System::new(SystemConfig::paper_4way().without_checks(), &[]);
//! smp.run(TraceGen::new(&profile, 4, 0.05));
//! let run = smp.run_stats();
//! // Short traces are cold-start dominated; full-length runs reach ~0.96.
//! assert!(run.nodes.l1_hit_rate() > 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
mod gen;
mod layout;
mod patterns;
mod profile;

pub use gen::TraceGen;
pub use layout::Layout;
pub use patterns::{PatternState, RefOut};
pub use profile::{AppProfile, PaperStats, RegionLayout, SegmentSpec};
