//! The trace generator: turns an [`AppProfile`] into a deterministic
//! interleaved [`MemRef`] stream.

use jetty_sim::{MemRef, Op};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::layout::Layout;
use crate::patterns::PatternState;
use crate::profile::AppProfile;

/// Iterator producing an application's memory-reference trace.
///
/// CPUs issue references round-robin (the atomic-bus substrate serialises
/// accesses anyway); each CPU samples a segment per reference according to
/// the profile's weights, and the segment's pattern produces the address.
/// Two generators built from the same profile, CPU count and scale yield
/// identical traces.
///
/// # Examples
///
/// ```
/// use jetty_workloads::{apps, TraceGen};
///
/// let profile = apps::barnes();
/// let mut gen = TraceGen::new(&profile, 4, 0.01);
/// let first = gen.next().unwrap();
/// assert_eq!(first.cpu, 0);
/// assert!(gen.len() > 0);
/// ```
///
/// `TraceGen` is `Send` (owned RNGs and pattern state, nothing shared):
/// the parallel experiment engine builds one generator per job and moves
/// it onto a worker thread together with the system it feeds.
#[derive(Clone, Debug)]
pub struct TraceGen {
    rngs: Vec<SmallRng>,
    states: Vec<PatternState>,
    cumulative_weights: Vec<f64>,
    total_weight: f64,
    remaining: u64,
    total: u64,
    ncpu: usize,
    next_cpu: usize,
    footprint: u64,
}

// Compile-time audit: trace generation must stay movable to worker
// threads for the parallel experiment engine.
const _: fn() = assert_send::<TraceGen>;
fn assert_send<T: Send>() {}

impl TraceGen {
    /// Builds a generator for `profile` on an `ncpu`-way SMP, scaling the
    /// reference count by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation, `ncpu < 2`, or `scale` is
    /// not positive.
    pub fn new(profile: &AppProfile, ncpu: usize, scale: f64) -> Self {
        profile.validate();
        assert!(ncpu >= 2, "an SMP workload needs at least two CPUs");
        assert!(scale > 0.0, "scale must be positive");
        let mut layout = Layout::new();
        let states: Vec<PatternState> = profile
            .segments
            .iter()
            .map(|seg| PatternState::build(seg, ncpu, &mut layout))
            .collect();
        let mut acc = 0.0;
        let cumulative_weights: Vec<f64> = profile
            .segments
            .iter()
            .map(|seg| {
                acc += seg.weight();
                acc
            })
            .collect();
        let rngs = (0..ncpu)
            .map(|cpu| {
                SmallRng::seed_from_u64(
                    profile.seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(cpu as u64 + 1),
                )
            })
            .collect();
        let total = ((profile.accesses as f64 * scale).round() as u64).max(ncpu as u64);
        Self {
            rngs,
            states,
            cumulative_weights,
            total_weight: acc,
            remaining: total,
            total,
            ncpu,
            next_cpu: 0,
            footprint: layout.footprint(),
        }
    }

    /// References this generator will produce in total.
    ///
    /// This is the *whole-trace* length fixed at construction — it does
    /// not decrease as the iterator is consumed. Beware the shadowing
    /// footgun: this inherent method hides
    /// [`ExactSizeIterator::len`], which reports *remaining* items;
    /// `gen.len()` and `ExactSizeIterator::len(&gen)` therefore disagree
    /// once iteration has started. Like [`TraceGen::footprint`], read it
    /// off the same generator you then run — never build a second
    /// generator just to ask for the length (the runner's `run_app`
    /// debug-asserts this single-pass discipline).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when the trace is empty (never the case for valid profiles).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The workload's allocated memory footprint in bytes (the paper's
    /// "MA" column). Fixed at construction; valid to read at any point,
    /// before or after iteration.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Refills `buf` with up to `max` references, reusing its allocation.
    ///
    /// This is the streamed twin of the `Iterator` implementation — it
    /// draws from the same state, so a trace produced by repeated
    /// `fill_chunk` calls is reference-for-reference identical to one
    /// produced by `next()`, and the two can even be interleaved. Returns
    /// `false` once the trace is exhausted and `buf` came back empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use jetty_workloads::{apps, TraceGen};
    ///
    /// let profile = apps::barnes();
    /// let mut gen = TraceGen::new(&profile, 4, 0.001);
    /// let mut buf = Vec::new();
    /// let mut streamed = 0;
    /// while gen.fill_chunk(&mut buf, 4096) {
    ///     streamed += buf.len() as u64;
    /// }
    /// assert_eq!(streamed, gen.len());
    /// ```
    pub fn fill_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> bool {
        buf.clear();
        while buf.len() < max {
            match self.next() {
                Some(r) => buf.push(r),
                None => break,
            }
        }
        !buf.is_empty()
    }
}

impl Iterator for TraceGen {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let cpu = self.next_cpu;
        // Branch instead of `%`: the round-robin advance runs once per
        // generated reference.
        self.next_cpu += 1;
        if self.next_cpu == self.ncpu {
            self.next_cpu = 0;
        }
        let rng = &mut self.rngs[cpu];
        let pick: f64 = rng.gen::<f64>() * self.total_weight;
        let seg =
            self.cumulative_weights.iter().position(|&w| pick < w).unwrap_or(self.states.len() - 1);
        let out = self.states[seg].next_ref(cpu, rng);
        let op = if out.write { Op::Write } else { Op::Read };
        Some(MemRef { cpu, op, addr: out.addr })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceGen {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn deterministic_across_builds() {
        let p = apps::barnes();
        let a: Vec<MemRef> = TraceGen::new(&p, 4, 0.002).collect();
        let b: Vec<MemRef> = TraceGen::new(&p, 4, 0.002).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn cpus_interleave_round_robin() {
        let p = apps::fft();
        let refs: Vec<MemRef> = TraceGen::new(&p, 4, 0.001).collect();
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(r.cpu, i % 4);
        }
    }

    #[test]
    fn scale_controls_length() {
        let p = apps::lu();
        let short = TraceGen::new(&p, 4, 0.001);
        let long = TraceGen::new(&p, 4, 0.002);
        assert_eq!(short.len() * 2, long.len());
        assert_eq!(short.count() as u64, TraceGen::new(&p, 4, 0.001).len());
    }

    #[test]
    fn footprint_is_nonzero_and_reported() {
        let p = apps::radix();
        let generator = TraceGen::new(&p, 4, 0.001);
        assert!(generator.footprint() > 1024 * 1024);
    }

    #[test]
    fn traces_contain_reads_and_writes() {
        let p = apps::ocean();
        let refs: Vec<MemRef> = TraceGen::new(&p, 4, 0.01).collect();
        let writes = refs.iter().filter(|r| r.op.is_write()).count();
        let reads = refs.len() - writes;
        assert!(writes > 0, "no stores generated");
        assert!(reads > writes, "reads should dominate");
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let mut a = apps::barnes();
        let mut b = apps::barnes();
        a.seed = 1;
        b.seed = 2;
        let ta: Vec<MemRef> = TraceGen::new(&a, 4, 0.001).collect();
        let tb: Vec<MemRef> = TraceGen::new(&b, 4, 0.001).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn size_hint_is_exact() {
        let p = apps::fmm();
        let mut generator = TraceGen::new(&p, 4, 0.001);
        let total = generator.len();
        assert_eq!(generator.size_hint(), (total as usize, Some(total as usize)));
        generator.next();
        assert_eq!(generator.size_hint().0 as u64, total - 1);
    }

    #[test]
    #[should_panic(expected = "at least two CPUs")]
    fn rejects_uniprocessor() {
        let _ = TraceGen::new(&apps::barnes(), 1, 1.0);
    }

    #[test]
    fn fill_chunk_matches_iterator_reference_for_reference() {
        let p = apps::barnes();
        let iterated: Vec<MemRef> = TraceGen::new(&p, 4, 0.002).collect();
        let mut generator = TraceGen::new(&p, 4, 0.002);
        let mut streamed = Vec::new();
        let mut buf = Vec::new();
        // A chunk size that does not divide the trace length, so the last
        // chunk is partial.
        while generator.fill_chunk(&mut buf, 999) {
            streamed.extend_from_slice(&buf);
        }
        assert_eq!(streamed, iterated);
        assert!(!generator.fill_chunk(&mut buf, 999), "exhausted generator must stay empty");
        assert!(buf.is_empty());
    }

    #[test]
    fn eight_way_generation_works() {
        let p = apps::unstructured();
        let refs: Vec<MemRef> = TraceGen::new(&p, 8, 0.001).collect();
        assert!(refs.iter().any(|r| r.cpu == 7));
    }
}
