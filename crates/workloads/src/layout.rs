//! Address-space layout for synthetic workloads.
//!
//! Each workload segment (private regions, shared arrays, channels) gets a
//! disjoint, page-aligned slice of the physical address space so that
//! sharing happens only where the pattern intends it.

/// Page-granular bump allocator over the simulated physical address space.
#[derive(Clone, Debug)]
pub struct Layout {
    next: u64,
    allocated: u64,
}

/// Allocation alignment (a 4 KiB page).
const PAGE: u64 = 4096;

impl Layout {
    /// Creates a layout starting at a fixed base (so address zero is never
    /// handed out and regions are recognisable in traces).
    pub fn new() -> Self {
        Self { next: 0x1000_0000, allocated: 0 }
    }

    /// Allocates `bytes` (rounded up to a page), returning the base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        assert!(bytes > 0, "cannot allocate an empty region");
        let size = bytes.div_ceil(PAGE) * PAGE;
        let base = self.next;
        self.next += size;
        self.allocated += size;
        base
    }

    /// Total bytes allocated so far (the workload's memory footprint,
    /// the paper's "MA" column).
    pub fn footprint(&self) -> u64 {
        self.allocated
    }
}

impl Default for Layout {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut l = Layout::new();
        let a = l.alloc(100);
        let b = l.alloc(5000);
        let c = l.alloc(4096);
        assert_eq!(a % PAGE, 0);
        assert_eq!(b % PAGE, 0);
        assert!(b >= a + 100);
        assert!(c >= b + 5000);
    }

    #[test]
    fn footprint_accumulates_rounded_sizes() {
        let mut l = Layout::new();
        l.alloc(1);
        l.alloc(PAGE + 1);
        assert_eq!(l.footprint(), PAGE + 2 * PAGE);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn rejects_zero_allocation() {
        let mut l = Layout::new();
        l.alloc(0);
    }
}
