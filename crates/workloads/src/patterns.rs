//! Runtime pattern state machines behind each [`SegmentSpec`].
//!
//! Every pattern answers one question: given that CPU `i` issues the next
//! reference of this segment, what address does it touch and is it a store?
//! CPUs are interleaved round-robin by the generator, so per-pattern global
//! counters advance in lockstep with simulated time.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::layout::Layout;
use crate::profile::{RegionLayout, SegmentSpec};

/// Word alignment for generated addresses (stores/loads of 8 bytes).
const WORD: u64 = 8;
/// The coherence-unit size the substrate snoops at.
const UNIT: u64 = 32;
/// Interleave granularity for [`RegionLayout::PageInterleaved`].
const PAGE: u64 = 4096;

/// Per-CPU regions under either placement policy: each CPU sees a
/// contiguous *logical* region of `bytes`; the mapper turns logical
/// offsets into physical addresses.
#[derive(Clone, Debug)]
struct CpuRegions {
    layout: RegionLayout,
    bytes: u64,
    ncpu: u64,
    /// Arena: one base per CPU. Interleaved: a single shared base.
    bases: Vec<u64>,
    /// Interleaved only, precomputed at construction (`addr` runs once per
    /// generated reference): page colors preserved by the frame
    /// assignment, and the pool's group count. Both are powers of two.
    colors: u64,
    pool_groups: u64,
}

impl CpuRegions {
    fn new(ncpu: usize, bytes: u64, layout: RegionLayout, alloc: &mut Layout) -> Self {
        let ncpu64 = ncpu as u64;
        // Pool rounded up to a power of two so the frame scramble is a
        // bijection (interleaved layout only).
        let pool_pages = (bytes.div_ceil(PAGE) * ncpu64).next_power_of_two();
        // The 64 KB L1 spans 16 pages, so coloring on 16 frames keeps each
        // CPU's L1 set mapping identical to a contiguous allocation —
        // exactly what page-coloring allocators guarantee on physically
        // indexed caches.
        let colors = 16u64.min(pool_pages);
        let bases = match layout {
            RegionLayout::Arena => (0..ncpu).map(|_| alloc.alloc(bytes)).collect(),
            RegionLayout::PageInterleaved => vec![alloc.alloc(pool_pages * PAGE)],
        };
        Self { layout, bytes, ncpu: ncpu64, bases, colors, pool_groups: pool_pages / colors }
    }

    /// Physical address of logical `offset` within `cpu`'s region.
    ///
    /// Interleaved placement models an OS assigning physical frames from a
    /// shared pool with page coloring: the low 4 frame bits follow the
    /// CPU's own page number (preserving L1 behaviour), while colour
    /// *groups* are scrambled across the pool with a bijective
    /// multiplicative hash. This intermixes every CPU's data across the
    /// physical space (so Include-Jetty index slices alias between local
    /// and remote data, as with real block-cyclic shared arrays) without
    /// the cache-set pathologies a naive round-robin interleave creates.
    fn addr(&self, cpu: usize, offset: u64) -> u64 {
        debug_assert!(offset < self.bytes);
        match self.layout {
            RegionLayout::Arena => self.bases[cpu] + offset,
            RegionLayout::PageInterleaved => {
                let page = offset / PAGE;
                let within = offset % PAGE;
                // `colors` is a power of two: mask/shift instead of
                // division (this runs once per generated reference).
                let color_bits = self.colors.trailing_zeros();
                let color = page & (self.colors - 1);
                let group = (page >> color_bits) * self.ncpu + cpu as u64;
                // Odd multiplier mod a power of two is a bijection.
                let group = group.wrapping_mul(0x9E37_79B1) & (self.pool_groups - 1);
                let frame = (group << color_bits) | color;
                self.bases[0] + frame * PAGE + within
            }
        }
    }
}

/// One generated reference: address and store flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefOut {
    /// Physical byte address.
    pub addr: u64,
    /// `true` for a store.
    pub write: bool,
}

/// Runtime state for one segment across all CPUs.
#[derive(Clone, Debug)]
pub enum PatternState {
    /// See [`SegmentSpec::Private`].
    Private(PrivateState),
    /// See [`SegmentSpec::Streaming`].
    Streaming(StreamingState),
    /// See [`SegmentSpec::Shared`].
    Shared(SharedState),
    /// See [`SegmentSpec::ProducerConsumer`].
    ProducerConsumer(PcState),
    /// See [`SegmentSpec::Migratory`].
    Migratory(MigratoryState),
}

impl PatternState {
    /// Instantiates the runtime state for `spec`, allocating its regions.
    pub fn build(spec: &SegmentSpec, ncpu: usize, layout: &mut Layout) -> Self {
        match *spec {
            SegmentSpec::Private {
                hot_bytes,
                warm_bytes,
                cold_bytes,
                p_hot,
                p_warm,
                write_frac,
                layout: placement,
                ..
            } => PatternState::Private(PrivateState::new(
                ncpu, hot_bytes, warm_bytes, cold_bytes, p_hot, p_warm, write_frac, placement,
                layout,
            )),
            SegmentSpec::Streaming {
                bytes, refs_per_unit, write_frac, layout: placement, ..
            } => PatternState::Streaming(StreamingState::new(
                ncpu,
                bytes,
                refs_per_unit,
                write_frac,
                placement,
                layout,
            )),
            SegmentSpec::Shared {
                bytes,
                hot_bytes,
                hot_frac,
                mid_bytes,
                mid_frac,
                write_frac,
                ..
            } => PatternState::Shared(SharedState::new(
                bytes, hot_bytes, hot_frac, mid_bytes, mid_frac, write_frac, layout,
            )),
            SegmentSpec::ProducerConsumer {
                channels,
                channel_bytes,
                consumers,
                refs_per_unit,
                ..
            } => PatternState::ProducerConsumer(PcState::new(
                ncpu,
                channels,
                channel_bytes,
                consumers,
                refs_per_unit,
                layout,
            )),
            SegmentSpec::Migratory { records, record_bytes, hold, .. } => PatternState::Migratory(
                MigratoryState::new(ncpu, records, record_bytes, hold, layout),
            ),
        }
    }

    /// Produces the next reference of this segment for `cpu`.
    pub fn next_ref(&mut self, cpu: usize, rng: &mut SmallRng) -> RefOut {
        match self {
            PatternState::Private(s) => s.next_ref(cpu, rng),
            PatternState::Streaming(s) => s.next_ref(cpu, rng),
            PatternState::Shared(s) => s.next_ref(cpu, rng),
            PatternState::ProducerConsumer(s) => s.next_ref(cpu),
            PatternState::Migratory(s) => s.next_ref(cpu),
        }
    }
}

/// Picks a uniformly random word-aligned offset within `bytes`.
fn random_word(bytes: u64, rng: &mut SmallRng) -> u64 {
    rng.gen_range(0..bytes / WORD) * WORD
}

/// Three-level private working set. See [`SegmentSpec::Private`].
#[derive(Clone, Debug)]
pub struct PrivateState {
    regions: CpuRegions,
    hot_bytes: u64,
    warm_bytes: u64,
    cold_bytes: u64,
    p_hot: f64,
    p_warm: f64,
    write_frac: f64,
    cold_pos: Vec<u64>,
}

impl PrivateState {
    #[allow(clippy::too_many_arguments)]
    fn new(
        ncpu: usize,
        hot_bytes: u64,
        warm_bytes: u64,
        cold_bytes: u64,
        p_hot: f64,
        p_warm: f64,
        write_frac: f64,
        placement: RegionLayout,
        layout: &mut Layout,
    ) -> Self {
        let regions = CpuRegions::new(ncpu, hot_bytes + warm_bytes + cold_bytes, placement, layout);
        Self {
            regions,
            hot_bytes,
            warm_bytes,
            cold_bytes,
            p_hot,
            p_warm,
            write_frac,
            cold_pos: vec![0; ncpu],
        }
    }

    fn next_ref(&mut self, cpu: usize, rng: &mut SmallRng) -> RefOut {
        let r: f64 = rng.gen();
        let offset = if r < self.p_hot {
            random_word(self.hot_bytes, rng)
        } else if r < self.p_hot + self.p_warm {
            self.hot_bytes + random_word(self.warm_bytes, rng)
        } else {
            let pos = self.cold_pos[cpu];
            // `(pos + UNIT) % cold_bytes.max(UNIT)` as a conditional wrap:
            // pos < bound and UNIT <= bound, so one subtraction suffices
            // (no division on the per-reference path).
            let bound = self.cold_bytes.max(UNIT);
            let mut next = pos + UNIT;
            if next >= bound {
                next -= bound;
            }
            self.cold_pos[cpu] = next;
            self.hot_bytes + self.warm_bytes + pos
        };
        RefOut { addr: self.regions.addr(cpu, offset), write: rng.gen_bool(self.write_frac) }
    }
}

/// Sequential scan with bounded per-unit reuse. See
/// [`SegmentSpec::Streaming`].
#[derive(Clone, Debug)]
pub struct StreamingState {
    regions: CpuRegions,
    bytes: u64,
    refs_per_unit: u32,
    write_frac: f64,
    pos: Vec<u64>,
    ref_in_unit: Vec<u32>,
}

impl StreamingState {
    fn new(
        ncpu: usize,
        bytes: u64,
        refs_per_unit: u32,
        write_frac: f64,
        placement: RegionLayout,
        layout: &mut Layout,
    ) -> Self {
        assert!(refs_per_unit >= 1, "streaming needs at least one reference per unit");
        let regions = CpuRegions::new(ncpu, bytes, placement, layout);
        Self {
            regions,
            bytes,
            refs_per_unit,
            write_frac,
            pos: vec![0; ncpu],
            ref_in_unit: vec![0; ncpu],
        }
    }

    fn next_ref(&mut self, cpu: usize, rng: &mut SmallRng) -> RefOut {
        let k = self.ref_in_unit[cpu];
        let offset = self.pos[cpu] + u64::from(k) * WORD % UNIT;
        self.ref_in_unit[cpu] += 1;
        if self.ref_in_unit[cpu] == self.refs_per_unit {
            self.ref_in_unit[cpu] = 0;
            // Conditional wrap, as in `PrivateState` (pos < bound, step
            // UNIT <= bound).
            let bound = self.bytes.max(UNIT);
            let mut next = self.pos[cpu] + UNIT;
            if next >= bound {
                next -= bound;
            }
            self.pos[cpu] = next;
        }
        RefOut { addr: self.regions.addr(cpu, offset), write: rng.gen_bool(self.write_frac) }
    }
}

/// Widely shared read-mostly region with hot/mid/tail popularity bands.
/// See [`SegmentSpec::Shared`].
#[derive(Clone, Debug)]
pub struct SharedState {
    base: u64,
    bytes: u64,
    hot_bytes: u64,
    hot_frac: f64,
    mid_bytes: u64,
    mid_frac: f64,
    write_frac: f64,
}

impl SharedState {
    fn new(
        bytes: u64,
        hot_bytes: u64,
        hot_frac: f64,
        mid_bytes: u64,
        mid_frac: f64,
        write_frac: f64,
        layout: &mut Layout,
    ) -> Self {
        assert!(hot_bytes + mid_bytes <= bytes, "shared hot+mid bands larger than the region");
        assert!(
            hot_frac >= 0.0 && mid_frac >= 0.0 && hot_frac + mid_frac <= 1.0,
            "shared band fractions out of range"
        );
        Self {
            base: layout.alloc(bytes),
            bytes,
            hot_bytes,
            hot_frac,
            mid_bytes,
            mid_frac,
            write_frac,
        }
    }

    fn next_ref(&mut self, _cpu: usize, rng: &mut SmallRng) -> RefOut {
        let r: f64 = rng.gen();
        if r < self.hot_frac || self.hot_bytes == self.bytes {
            let addr = self.base + random_word(self.hot_bytes, rng);
            RefOut { addr, write: rng.gen_bool(self.write_frac) }
        } else if r < self.hot_frac + self.mid_frac && self.mid_bytes >= WORD {
            let addr = self.base + self.hot_bytes + random_word(self.mid_bytes, rng);
            RefOut { addr, write: false }
        } else {
            let tail = self.bytes - self.hot_bytes - self.mid_bytes;
            let addr =
                self.base + self.hot_bytes + self.mid_bytes + random_word(tail.max(WORD), rng);
            RefOut { addr, write: false }
        }
    }
}

/// Producer/consumer channels. See [`SegmentSpec::ProducerConsumer`].
#[derive(Clone, Debug)]
pub struct PcState {
    channels: Vec<PcChannel>,
    /// Channels each CPU produces (indices into `channels`).
    produce: Vec<Vec<usize>>,
    /// `(channel, consumer-slot)` pairs each CPU consumes.
    consume: Vec<Vec<(usize, usize)>>,
    /// Per-CPU round-robin cursor across its roles.
    role_rr: Vec<usize>,
    refs_per_unit: u32,
}

#[derive(Clone, Debug)]
struct PcChannel {
    base: u64,
    units: u64,
    /// Producer write position (unit index) and intra-unit reference count.
    wpos: u64,
    wref: u32,
    /// Per-consumer read positions and intra-unit counts.
    rpos: Vec<u64>,
    rref: Vec<u32>,
}

impl PcState {
    fn new(
        ncpu: usize,
        channels: usize,
        channel_bytes: u64,
        consumers: usize,
        refs_per_unit: u32,
        layout: &mut Layout,
    ) -> Self {
        assert!(channels >= 1, "need at least one channel");
        assert!(consumers >= 1 && consumers < ncpu, "consumers must be 1..ncpu");
        assert!(refs_per_unit >= 1);
        // Channel counts scale with the machine (as real decompositions
        // do) so every CPU gets at least one role on wider SMPs.
        let channels = channels.max(ncpu);
        let units = (channel_bytes / UNIT).max(2);
        let mut chans = Vec::with_capacity(channels);
        let mut produce = vec![Vec::new(); ncpu];
        let mut consume = vec![Vec::new(); ncpu];
        for c in 0..channels {
            let producer = c % ncpu;
            produce[producer].push(c);
            for slot in 0..consumers {
                let consumer = (producer + 1 + slot) % ncpu;
                consume[consumer].push((c, slot));
            }
            // Stagger channel bases by a per-channel page-ish offset:
            // power-of-two channel sizes would otherwise make one CPU's
            // channels alias perfectly in the direct-mapped L1/L2 —
            // an artefact real heap allocators do not exhibit.
            let stagger = (c as u64 % 16) * (4096 + 2 * UNIT);
            let base = layout.alloc(units * UNIT + stagger) + stagger;
            chans.push(PcChannel {
                base,
                units,
                // Start the producer half a channel ahead so consumers
                // always read previously produced data.
                wpos: units / 2,
                wref: 0,
                rpos: vec![0; consumers],
                rref: vec![0; consumers],
            });
        }
        Self { channels: chans, produce, consume, role_rr: vec![0; ncpu], refs_per_unit }
    }

    fn next_ref(&mut self, cpu: usize) -> RefOut {
        let n_roles = self.produce[cpu].len() + self.consume[cpu].len();
        assert!(n_roles > 0, "cpu {cpu} has no producer/consumer role");
        let role = self.role_rr[cpu] % n_roles;
        self.role_rr[cpu] += 1;
        if role < self.produce[cpu].len() {
            let c = self.produce[cpu][role];
            let ch = &mut self.channels[c];
            let addr = ch.base + ch.wpos * UNIT + u64::from(ch.wref) * WORD % UNIT;
            ch.wref += 1;
            if ch.wref == self.refs_per_unit {
                ch.wref = 0;
                ch.wpos += 1;
                if ch.wpos == ch.units {
                    ch.wpos = 0;
                }
            }
            RefOut { addr, write: true }
        } else {
            let (c, slot) = self.consume[cpu][role - self.produce[cpu].len()];
            let ch = &mut self.channels[c];
            let addr = ch.base + ch.rpos[slot] * UNIT + u64::from(ch.rref[slot]) * WORD % UNIT;
            ch.rref[slot] += 1;
            if ch.rref[slot] == self.refs_per_unit {
                ch.rref[slot] = 0;
                ch.rpos[slot] += 1;
                if ch.rpos[slot] == ch.units {
                    ch.rpos[slot] = 0;
                }
            }
            RefOut { addr, write: false }
        }
    }
}

/// Migratory records rotating between owners. See
/// [`SegmentSpec::Migratory`].
#[derive(Clone, Debug)]
pub struct MigratoryState {
    base: u64,
    records: usize,
    record_bytes: u64,
    hold: u64,
    ncpu: usize,
    /// Current ownership epoch; advances every `hold * ncpu` references so
    /// each owner gets `hold` references per rotation. Maintained
    /// incrementally (with `tick_in_epoch`) so the per-reference path pays
    /// a counter and compare instead of a division.
    epoch: u64,
    /// References issued within the current epoch.
    tick_in_epoch: u64,
    /// Records per ownership residue class (`max(records / ncpu, 1)`).
    per_class: usize,
    /// Per-CPU cursor within its owned residue class, stored pre-wrapped
    /// into `0..per_class`.
    cursor: Vec<usize>,
    /// Per-CPU position in the read-read-write visit cycle.
    visit: Vec<u8>,
}

impl MigratoryState {
    fn new(ncpu: usize, records: usize, record_bytes: u64, hold: u64, layout: &mut Layout) -> Self {
        assert!(records >= ncpu, "need at least one record per CPU");
        assert!(hold >= 1);
        let record_bytes = record_bytes.max(WORD);
        let base = layout.alloc(records as u64 * record_bytes);
        Self {
            base,
            records,
            record_bytes,
            hold,
            ncpu,
            epoch: 0,
            tick_in_epoch: 0,
            per_class: (records / ncpu).max(1),
            cursor: vec![0; ncpu],
            visit: vec![0; ncpu],
        }
    }

    fn next_ref(&mut self, cpu: usize) -> RefOut {
        let epoch = self.epoch;
        self.tick_in_epoch += 1;
        if self.tick_in_epoch == self.hold * self.ncpu as u64 {
            self.tick_in_epoch = 0;
            self.epoch += 1;
        }
        // CPU owns records r with (r + epoch) % ncpu == cpu.
        let residue = (cpu as u64 + epoch) % self.ncpu as u64;
        let k = self.cursor[cpu];
        let record = residue as usize + k * self.ncpu;
        let record = record.min(self.records - 1);
        // Visit cycle: read, read, write — then move to the next record.
        let phase = self.visit[cpu];
        let write = phase == 2;
        self.visit[cpu] = (phase + 1) % 3;
        if self.visit[cpu] == 0 {
            self.cursor[cpu] += 1;
            if self.cursor[cpu] == self.per_class {
                self.cursor[cpu] = 0;
            }
        }
        let addr = self.base
            + record as u64 * self.record_bytes
            + u64::from(phase) * WORD % self.record_bytes;
        RefOut { addr, write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn layout() -> Layout {
        Layout::new()
    }

    #[test]
    fn private_respects_region_boundaries() {
        let mut l = layout();
        let spec = SegmentSpec::Private {
            weight: 1.0,
            hot_bytes: 1024,
            warm_bytes: 2048,
            cold_bytes: 4096,
            p_hot: 0.5,
            p_warm: 0.3,
            write_frac: 0.3,
            layout: RegionLayout::Arena,
        };
        let mut s = PatternState::build(&spec, 2, &mut l);
        let mut r = rng();
        for _ in 0..2000 {
            for cpu in 0..2 {
                let out = s.next_ref(cpu, &mut r);
                assert!(out.addr >= 0x1000_0000);
                assert!(out.addr < 0x1000_0000 + l.footprint());
            }
        }
    }

    #[test]
    fn private_regions_are_disjoint_across_cpus() {
        let mut l = layout();
        let spec = SegmentSpec::Private {
            weight: 1.0,
            hot_bytes: 4096,
            warm_bytes: 4096,
            cold_bytes: 4096,
            p_hot: 0.4,
            p_warm: 0.3,
            write_frac: 0.0,
            layout: RegionLayout::Arena,
        };
        let mut s = PatternState::build(&spec, 2, &mut l);
        let mut r = rng();
        let mut seen0 = Vec::new();
        let mut seen1 = Vec::new();
        for _ in 0..500 {
            seen0.push(s.next_ref(0, &mut r).addr);
            seen1.push(s.next_ref(1, &mut r).addr);
        }
        let max0 = seen0.iter().max().unwrap();
        let min1 = seen1.iter().min().unwrap();
        assert!(max0 < min1, "cpu regions overlap");
    }

    #[test]
    fn streaming_walks_sequentially() {
        let mut l = layout();
        let spec = SegmentSpec::Streaming {
            weight: 1.0,
            bytes: 4096,
            refs_per_unit: 2,
            write_frac: 0.0,
            layout: RegionLayout::Arena,
        };
        let mut s = PatternState::build(&spec, 1, &mut l);
        let mut r = rng();
        let a0 = s.next_ref(0, &mut r).addr;
        let a1 = s.next_ref(0, &mut r).addr;
        let a2 = s.next_ref(0, &mut r).addr;
        // Two refs in unit 0, then unit 1.
        assert_eq!(a0 / UNIT, a1 / UNIT);
        assert_eq!(a2 / UNIT, a0 / UNIT + 1);
    }

    #[test]
    fn streaming_wraps_at_region_end() {
        let mut l = layout();
        let spec = SegmentSpec::Streaming {
            weight: 1.0,
            bytes: 64,
            refs_per_unit: 1,
            write_frac: 0.0,
            layout: RegionLayout::Arena,
        };
        let mut s = PatternState::build(&spec, 1, &mut l);
        let mut r = rng();
        let first = s.next_ref(0, &mut r).addr;
        s.next_ref(0, &mut r);
        let wrapped = s.next_ref(0, &mut r).addr;
        assert_eq!(first, wrapped);
    }

    #[test]
    fn shared_addresses_come_from_one_region_for_all_cpus() {
        let mut l = layout();
        let spec = SegmentSpec::Shared {
            weight: 1.0,
            bytes: 8192,
            hot_bytes: 8192,
            hot_frac: 1.0,
            mid_bytes: 0,
            mid_frac: 0.0,
            write_frac: 0.0,
        };
        let mut s = PatternState::build(&spec, 4, &mut l);
        let mut r = rng();
        for cpu in 0..4 {
            for _ in 0..100 {
                let out = s.next_ref(cpu, &mut r);
                assert!(out.addr >= 0x1000_0000 && out.addr < 0x1000_0000 + 8192);
                assert!(!out.write);
            }
        }
    }

    #[test]
    fn shared_write_frac_generates_stores() {
        let mut l = layout();
        let spec = SegmentSpec::Shared {
            weight: 1.0,
            bytes: 8192,
            hot_bytes: 8192,
            hot_frac: 1.0,
            mid_bytes: 0,
            mid_frac: 0.0,
            write_frac: 1.0,
        };
        let mut s = PatternState::build(&spec, 2, &mut l);
        let mut r = rng();
        assert!(s.next_ref(0, &mut r).write);
    }

    #[test]
    fn pc_producer_writes_consumer_reads() {
        let mut l = layout();
        let spec = SegmentSpec::ProducerConsumer {
            weight: 1.0,
            channels: 2,
            channel_bytes: 1024,
            consumers: 1,
            refs_per_unit: 1,
        };
        let mut s = PatternState::build(&spec, 2, &mut l);
        let mut r = rng();
        // CPU 0 produces channel 0 and consumes channel 1; roles alternate.
        let a = s.next_ref(0, &mut r);
        let b = s.next_ref(0, &mut r);
        assert!(a.write != b.write, "roles must alternate write/read");
    }

    #[test]
    fn pc_consumer_lags_producer() {
        let mut l = layout();
        let spec = SegmentSpec::ProducerConsumer {
            weight: 1.0,
            channels: 2,
            channel_bytes: 320, // 10 units
            consumers: 1,
            refs_per_unit: 1,
        };
        let mut s = PatternState::build(&spec, 2, &mut l);
        let mut r = rng();
        // CPU 0: produce ch0, consume ch1. CPU 1: produce ch1, consume ch0.
        let w0 = s.next_ref(0, &mut r); // produce ch0 at unit 5 (half ahead)
        let w1 = s.next_ref(1, &mut r); // produce ch1 at unit 5
        let c0 = s.next_ref(0, &mut r); // consume ch1 at unit 0
        let c1 = s.next_ref(1, &mut r); // consume ch0 at unit 0
        assert!(w0.write && w1.write);
        assert!(!c0.write && !c1.write);
        // The consumer trails its channel's producer by half the channel.
        assert_eq!(w1.addr - c0.addr, 5 * UNIT);
        assert_eq!(w0.addr - c1.addr, 5 * UNIT);
    }

    #[test]
    fn migratory_visits_read_read_write() {
        let mut l = layout();
        let spec = SegmentSpec::Migratory { weight: 1.0, records: 8, record_bytes: 64, hold: 100 };
        let mut s = PatternState::build(&spec, 4, &mut l);
        let mut r = rng();
        let v1 = s.next_ref(0, &mut r);
        let v2 = s.next_ref(0, &mut r);
        let v3 = s.next_ref(0, &mut r);
        assert!(!v1.write && !v2.write && v3.write);
        // All three refs touch the same record.
        assert_eq!(v1.addr / 64, v3.addr / 64);
    }

    #[test]
    fn migratory_ownership_rotates_with_epochs() {
        let mut l = layout();
        let spec = SegmentSpec::Migratory { weight: 1.0, records: 4, record_bytes: 64, hold: 1 };
        let mut s = PatternState::build(&spec, 2, &mut l);
        let mut r = rng();
        // Epoch 0: cpu0 owns records {0, 2}. After 2 ticks (hold*ncpu),
        // epoch 1: cpu0 owns {1, 3}.
        let e0 = s.next_ref(0, &mut r).addr;
        let _ = s.next_ref(1, &mut r);
        let e1 = s.next_ref(0, &mut r).addr;
        let rec0 = (e0 - 0x1000_0000) / 64;
        let rec1 = (e1 - 0x1000_0000) / 64;
        assert_eq!(rec0 % 2, 0);
        assert_eq!(rec1 % 2, 1);
    }

    #[test]
    #[should_panic(expected = "consumers must be")]
    fn pc_rejects_too_many_consumers() {
        let mut l = layout();
        let spec = SegmentSpec::ProducerConsumer {
            weight: 1.0,
            channels: 1,
            channel_bytes: 64,
            consumers: 4,
            refs_per_unit: 1,
        };
        let _ = PatternState::build(&spec, 4, &mut l);
    }
}
