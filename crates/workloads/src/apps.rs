//! The ten calibrated application profiles.
//!
//! The paper traces SPLASH-2 applications plus Em3d and Unstructured with
//! WWT2; we cannot rerun those binaries, so each application is replaced by
//! a synthetic mixture of sharing patterns (private hierarchies, streams,
//! widely-shared data, producer/consumer channels, migratory records) whose
//! parameters are tuned until the simulated statistics approximate the
//! paper's Tables 2 and 3: L1/L2 local hit rates, snoop volume, and the
//! remote-cache-hit distribution. The published targets ride along in
//! [`PaperStats`] so the experiment harness can print target-vs-measured
//! for every row (recorded in EXPERIMENTS.md).
//!
//! Scaling: reference counts are ~1/100 of the paper's (capped to keep the
//! full suite in seconds), and footprints are sized relative to the 64 KB
//! L1 / 1 MB L2 rather than matching the paper's absolute megabytes — hit
//! rates and sharing mix are what JETTY sees, not raw bytes.

use crate::profile::{AppProfile, PaperStats, RegionLayout, SegmentSpec};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// All ten applications, in the paper's table order.
pub fn all() -> Vec<AppProfile> {
    vec![
        barnes(),
        cholesky(),
        em3d(),
        fft(),
        fmm(),
        lu(),
        ocean(),
        radix(),
        raytrace(),
        unstructured(),
    ]
}

/// Looks an application up by its two-letter abbreviation.
pub fn by_abbrev(abbrev: &str) -> Option<AppProfile> {
    all().into_iter().find(|p| p.abbrev == abbrev)
}

/// Barnes-Hut N-body: mostly private tree walks with a widely-read body
/// array and some true sharing at every level — the paper's most spread
/// remote-hit distribution (47/28/15/10).
pub fn barnes() -> AppProfile {
    AppProfile {
        name: "Barnes",
        abbrev: "ba",
        input_desc: "16K particles",
        paper: PaperStats {
            accesses_m: 967.0,
            ma_mbytes: 57.4,
            l1_hit: 0.978,
            l2_hit: 0.317,
            snoop_accesses_m: 47.1,
            remote_hits: [0.47, 0.28, 0.15, 0.10],
            snoop_miss_of_snoops: 0.71,
            snoop_miss_of_all: 0.48,
        },
        accesses: 6_000_000,
        seed: 0xba,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.958,
                hot_bytes: 12 * KB,
                warm_bytes: 64 * KB,
                cold_bytes: 3 * MB,
                p_hot: 0.9905,
                p_warm: 0.0012,
                write_frac: 0.04,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.012,
                channels: 8,
                channel_bytes: 4 * KB,
                consumers: 1,
                refs_per_unit: 4,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.010,
                channels: 4,
                channel_bytes: 4 * KB,
                consumers: 2,
                refs_per_unit: 4,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.014,
                channels: 4,
                channel_bytes: 4 * KB,
                consumers: 3,
                refs_per_unit: 4,
            },
            SegmentSpec::Migratory { weight: 0.006, records: 64, record_bytes: 64, hold: 200 },
        ],
    }
}

/// Sparse Cholesky factorisation: dominated by private panel updates, with
/// light pairwise supernode hand-off.
pub fn cholesky() -> AppProfile {
    AppProfile {
        name: "Cholesky",
        abbrev: "ch",
        input_desc: "tk15.O",
        paper: PaperStats {
            accesses_m: 224.4,
            ma_mbytes: 26.3,
            l1_hit: 0.98,
            l2_hit: 0.642,
            snoop_accesses_m: 9.9,
            remote_hits: [0.92, 0.05, 0.03, 0.0],
            snoop_miss_of_snoops: 0.95,
            snoop_miss_of_all: 0.59,
        },
        accesses: 2_250_000,
        seed: 0xc4,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.994,
                hot_bytes: 16 * KB,
                warm_bytes: 192 * KB,
                cold_bytes: 2 * MB,
                p_hot: 0.977,
                p_warm: 0.016,
                write_frac: 0.42,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.002,
                channels: 8,
                channel_bytes: 4 * KB,
                consumers: 1,
                refs_per_unit: 4,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.004,
                channels: 4,
                channel_bytes: 4 * KB,
                consumers: 2,
                refs_per_unit: 4,
            },
        ],
    }
}

/// Em3d electromagnetic wave propagation: a bipartite graph with 15%
/// remote edges — low hit rates, enormous snoop traffic, pairwise sharing.
pub fn em3d() -> AppProfile {
    AppProfile {
        name: "Em3d",
        abbrev: "em",
        input_desc: "76K nodes, 15% remote, degree 2",
        paper: PaperStats {
            accesses_m: 333.4,
            ma_mbytes: 34.4,
            l1_hit: 0.765,
            l2_hit: 0.233,
            snoop_accesses_m: 252.6,
            remote_hits: [0.80, 0.17, 0.02, 0.01],
            snoop_miss_of_snoops: 0.92,
            snoop_miss_of_all: 0.69,
        },
        accesses: 3_300_000,
        seed: 0xe3,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.64,
                hot_bytes: 16 * KB,
                warm_bytes: 96 * KB,
                cold_bytes: 4 * MB,
                p_hot: 0.925,
                p_warm: 0.002,
                write_frac: 0.02,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::Streaming {
                weight: 0.25,
                bytes: 2 * MB,
                refs_per_unit: 2,
                write_frac: 0.0,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.10,
                channels: 8,
                channel_bytes: 4 * KB,
                consumers: 1,
                refs_per_unit: 2,
            },
            SegmentSpec::Shared {
                weight: 0.01,
                bytes: 512 * KB,
                hot_bytes: 16 * KB,
                hot_frac: 0.7,
                mid_bytes: 64 * KB,
                mid_frac: 0.15,
                write_frac: 0.04,
            },
        ],
    }
}

/// Radix-2 FFT: private butterflies plus an all-to-all transpose whose
/// element-wise hand-offs are pairwise.
pub fn fft() -> AppProfile {
    AppProfile {
        name: "Fft",
        abbrev: "ff",
        input_desc: "256K data points",
        paper: PaperStats {
            accesses_m: 60.2,
            ma_mbytes: 12.7,
            l1_hit: 0.968,
            l2_hit: 0.363,
            snoop_accesses_m: 7.5,
            remote_hits: [0.93, 0.07, 0.0, 0.0],
            snoop_miss_of_snoops: 0.98,
            snoop_miss_of_all: 0.73,
        },
        accesses: 1_200_000,
        seed: 0xff,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.788,
                hot_bytes: 16 * KB,
                warm_bytes: 160 * KB,
                cold_bytes: 1536 * KB,
                p_hot: 0.988,
                p_warm: 0.0015,
                write_frac: 0.1,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::Streaming {
                weight: 0.20,
                bytes: 1536 * KB,
                refs_per_unit: 6,
                write_frac: 0.0,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.012,
                channels: 8,
                channel_bytes: 4 * KB,
                consumers: 1,
                refs_per_unit: 4,
            },
        ],
    }
}

/// Fast Multipole Method: very high hit rates, light pairwise interaction
/// lists.
pub fn fmm() -> AppProfile {
    AppProfile {
        name: "Fmm",
        abbrev: "fm",
        input_desc: "16K particles",
        paper: PaperStats {
            accesses_m: 1751.2,
            ma_mbytes: 36.1,
            l1_hit: 0.996,
            l2_hit: 0.812,
            snoop_accesses_m: 8.1,
            remote_hits: [0.82, 0.15, 0.02, 0.01],
            snoop_miss_of_snoops: 0.93,
            snoop_miss_of_all: 0.39,
        },
        accesses: 6_000_000,
        seed: 0xf1,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.993,
                hot_bytes: 20 * KB,
                warm_bytes: 96 * KB,
                cold_bytes: MB,
                p_hot: 0.9915,
                p_warm: 0.0075,
                write_frac: 0.38,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.003,
                channels: 8,
                channel_bytes: 4 * KB,
                consumers: 1,
                refs_per_unit: 4,
            },
            SegmentSpec::Shared {
                weight: 0.004,
                bytes: 256 * KB,
                hot_bytes: 16 * KB,
                hot_frac: 0.8,
                mid_bytes: 0,
                mid_frac: 0.0,
                write_frac: 0.01,
            },
        ],
    }
}

/// Blocked dense LU: block producers feed single consumers — the paper's
/// strongest pairwise (one-remote-hit) distribution after Unstructured.
pub fn lu() -> AppProfile {
    AppProfile {
        name: "Lu",
        abbrev: "lu",
        input_desc: "512x512 matrix, 16x16 blocks",
        paper: PaperStats {
            accesses_m: 188.7,
            ma_mbytes: 4.6,
            l1_hit: 0.957,
            l2_hit: 0.825,
            snoop_accesses_m: 6.3,
            remote_hits: [0.73, 0.26, 0.01, 0.0],
            snoop_miss_of_snoops: 0.91,
            snoop_miss_of_all: 0.39,
        },
        accesses: 1_900_000,
        seed: 0x10,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.972,
                hot_bytes: 20 * KB,
                warm_bytes: 160 * KB,
                cold_bytes: 768 * KB,
                p_hot: 0.955,
                p_warm: 0.040,
                write_frac: 0.45,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.028,
                channels: 8,
                channel_bytes: 4 * KB,
                consumers: 1,
                refs_per_unit: 4,
            },
        ],
    }
}

/// Ocean current simulation: large per-CPU grids with nearest-neighbour
/// boundary exchange — low hit rates, almost no sharing.
pub fn ocean() -> AppProfile {
    AppProfile {
        name: "Ocean",
        abbrev: "oc",
        input_desc: "258 x 258 ocean",
        paper: PaperStats {
            accesses_m: 182.8,
            ma_mbytes: 41.6,
            l1_hit: 0.835,
            l2_hit: 0.522,
            snoop_accesses_m: 90.0,
            remote_hits: [0.97, 0.03, 0.0, 0.0],
            snoop_miss_of_snoops: 0.99,
            snoop_miss_of_all: 0.66,
        },
        accesses: 1_850_000,
        seed: 0x0c,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.985,
                hot_bytes: 24 * KB,
                warm_bytes: 512 * KB,
                cold_bytes: 3 * MB,
                p_hot: 0.875,
                p_warm: 0.040,
                write_frac: 0.3,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.015,
                channels: 8,
                channel_bytes: 4 * KB,
                consumers: 1,
                refs_per_unit: 3,
            },
        ],
    }
}

/// Radix sort: streaming permutation writes — every miss is cold, nothing
/// is shared (the paper's 100%-zero-remote-hits row).
pub fn radix() -> AppProfile {
    AppProfile {
        name: "Radix",
        abbrev: "ra",
        input_desc: "10M keys",
        paper: PaperStats {
            accesses_m: 399.4,
            ma_mbytes: 82.1,
            l1_hit: 0.962,
            l2_hit: 0.794,
            snoop_accesses_m: 42.6,
            remote_hits: [1.0, 0.0, 0.0, 0.0],
            snoop_miss_of_snoops: 1.0,
            snoop_miss_of_all: 0.56,
        },
        accesses: 4_000_000,
        seed: 0x5a,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.80,
                hot_bytes: 20 * KB,
                warm_bytes: 256 * KB,
                cold_bytes: 768 * KB,
                p_hot: 0.947,
                p_warm: 0.036,
                write_frac: 0.55,
                layout: RegionLayout::Arena,
            },
            SegmentSpec::Streaming {
                weight: 0.20,
                bytes: 256 * KB,
                refs_per_unit: 12,
                write_frac: 0.6,
                layout: RegionLayout::Arena,
            },
        ],
    }
}

/// Raytrace: rays walk a read-shared BSP tree that stays resident
/// everywhere — superb hit rates and effectively zero remote hits.
pub fn raytrace() -> AppProfile {
    AppProfile {
        name: "Raytrace",
        abbrev: "rt",
        input_desc: "car",
        paper: PaperStats {
            accesses_m: 299.9,
            ma_mbytes: 69.1,
            l1_hit: 0.983,
            l2_hit: 0.466,
            snoop_accesses_m: 12.3,
            remote_hits: [1.0, 0.0, 0.0, 0.0],
            snoop_miss_of_snoops: 1.0,
            snoop_miss_of_all: 0.69,
        },
        accesses: 3_000_000,
        seed: 0x27,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.97,
                hot_bytes: 16 * KB,
                warm_bytes: 192 * KB,
                cold_bytes: 2 * MB,
                p_hot: 0.982,
                p_warm: 0.001,
                write_frac: 0.03,
                layout: RegionLayout::Arena,
            },
            SegmentSpec::Shared {
                weight: 0.012,
                bytes: 16 * KB,
                hot_bytes: 16 * KB,
                hot_frac: 1.0,
                mid_bytes: 0,
                mid_frac: 0.0,
                write_frac: 0.0,
            },
        ],
    }
}

/// Unstructured-mesh CFD: edge lists induce heavy pairwise communication —
/// the paper's outlier with only 33% zero-remote-hit snoops.
pub fn unstructured() -> AppProfile {
    AppProfile {
        name: "Unstructured",
        abbrev: "un",
        input_desc: "mesh 2K",
        paper: PaperStats {
            accesses_m: 1693.6,
            ma_mbytes: 3.5,
            l1_hit: 0.924,
            l2_hit: 0.787,
            snoop_accesses_m: 304.8,
            remote_hits: [0.33, 0.55, 0.04, 0.08],
            snoop_miss_of_snoops: 0.71,
            snoop_miss_of_all: 0.28,
        },
        accesses: 6_000_000,
        seed: 0x07,
        segments: vec![
            SegmentSpec::Private {
                weight: 0.825,
                hot_bytes: 20 * KB,
                warm_bytes: 128 * KB,
                cold_bytes: 256 * KB,
                p_hot: 0.965,
                p_warm: 0.031,
                write_frac: 0.45,
                layout: RegionLayout::PageInterleaved,
            },
            SegmentSpec::ProducerConsumer {
                weight: 0.115,
                channels: 8,
                channel_bytes: 4 * KB,
                consumers: 1,
                refs_per_unit: 5,
            },
            SegmentSpec::Migratory { weight: 0.005, records: 128, record_bytes: 64, hold: 50 },
            SegmentSpec::Shared {
                weight: 0.05,
                bytes: 512 * KB,
                hot_bytes: 16 * KB,
                hot_frac: 0.9,
                mid_bytes: 0,
                mid_frac: 0.0,
                write_frac: 0.035,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        let apps = all();
        assert_eq!(apps.len(), 10);
        for p in &apps {
            p.validate();
        }
    }

    #[test]
    fn abbreviations_match_paper_order() {
        let abbrevs: Vec<&str> = all().iter().map(|p| p.abbrev).collect();
        assert_eq!(abbrevs, vec!["ba", "ch", "em", "ff", "fm", "lu", "oc", "ra", "rt", "un"]);
    }

    #[test]
    fn lookup_by_abbrev() {
        assert_eq!(by_abbrev("lu").unwrap().name, "Lu");
        assert!(by_abbrev("zz").is_none());
    }

    #[test]
    fn paper_remote_hit_rows_sum_to_one() {
        for p in all() {
            let sum: f64 = p.paper.remote_hits.iter().sum();
            assert!((sum - 1.0).abs() < 0.02, "{}: remote hits sum {sum}", p.name);
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = all().iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10);
    }

    #[test]
    fn paper_hit_rates_are_probabilities() {
        for p in all() {
            assert!((0.0..=1.0).contains(&p.paper.l1_hit));
            assert!((0.0..=1.0).contains(&p.paper.l2_hit));
        }
    }
}
