//! Property tests for the trace generators: address-space hygiene,
//! determinism, scaling, and the structural properties the substrate
//! relies on.

use std::collections::HashSet;

use jetty_sim::MemRef;
use jetty_workloads::{apps, TraceGen};
use proptest::prelude::*;

fn app_index_strategy() -> impl Strategy<Value = usize> {
    0..apps::all().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated address lies inside the allocated footprint, above
    /// the layout base, and CPUs interleave strictly round-robin.
    #[test]
    fn addresses_stay_inside_the_footprint(
        app_idx in app_index_strategy(),
        scale in 1u32..20
    ) {
        let profile = &apps::all()[app_idx];
        let scale = f64::from(scale) / 2000.0;
        let generator = TraceGen::new(profile, 4, scale);
        let footprint = generator.footprint();
        let base = 0x1000_0000u64;
        for (i, r) in generator.enumerate() {
            prop_assert_eq!(r.cpu, i % 4, "round-robin broken at ref {}", i);
            prop_assert!(r.addr >= base, "{}: address {:#x} below base", profile.name, r.addr);
            prop_assert!(
                r.addr < base + footprint,
                "{}: address {:#x} beyond footprint {:#x}",
                profile.name,
                r.addr,
                footprint
            );
        }
    }

    /// Generators are pure functions of (profile, ncpu, scale).
    #[test]
    fn generation_is_deterministic(app_idx in app_index_strategy()) {
        let profile = &apps::all()[app_idx];
        let a: Vec<MemRef> = TraceGen::new(profile, 4, 0.002).collect();
        let b: Vec<MemRef> = TraceGen::new(profile, 4, 0.002).collect();
        prop_assert_eq!(a, b);
    }

    /// Scale controls length proportionally and exactly.
    #[test]
    fn scale_is_proportional(app_idx in app_index_strategy(), k in 2u64..6) {
        let profile = &apps::all()[app_idx];
        let one = TraceGen::new(profile, 4, 0.001).len();
        let k_times = TraceGen::new(profile, 4, 0.001 * k as f64).len();
        // Rounding can move the count by at most k/2.
        prop_assert!((k_times as i64 - (one * k) as i64).unsigned_abs() <= k);
    }

    /// Every application generates both loads and stores, and multiple
    /// CPUs touch overlapping units only in apps that actually share
    /// (radix/raytrace traces must stay effectively disjoint).
    #[test]
    fn read_write_mix_is_sane(app_idx in app_index_strategy()) {
        let profile = &apps::all()[app_idx];
        let refs: Vec<MemRef> = TraceGen::new(profile, 4, 0.01).collect();
        let writes = refs.iter().filter(|r| r.op.is_write()).count();
        prop_assert!(writes > 0, "{}: no stores", profile.name);
        // Radix's permutation phase is genuinely write-heavy; nothing
        // should exceed two stores per load though.
        prop_assert!(writes * 3 < refs.len() * 2, "{}: stores dominate", profile.name);
    }

    /// Different CPU counts produce valid traces (the 8-way study).
    #[test]
    fn eight_way_traces_cover_all_cpus(app_idx in app_index_strategy()) {
        let profile = &apps::all()[app_idx];
        let mut seen = HashSet::new();
        for r in TraceGen::new(profile, 8, 0.005) {
            seen.insert(r.cpu);
        }
        prop_assert_eq!(seen.len(), 8, "{}: not all CPUs active", profile.name);
    }
}

/// Sharing-structure smoke checks that are cheaper as plain tests.
#[test]
fn radix_and_raytrace_have_no_cross_cpu_write_sharing() {
    for profile in [apps::radix(), apps::raytrace()] {
        let mut writers: Vec<HashSet<u64>> = vec![HashSet::new(); 4];
        for r in TraceGen::new(&profile, 4, 0.02) {
            if r.op.is_write() {
                writers[r.cpu].insert(r.addr >> 5);
            }
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                let shared: Vec<_> = writers[a].intersection(&writers[b]).collect();
                assert!(
                    shared.is_empty(),
                    "{}: cpus {a} and {b} both write {} units",
                    profile.name,
                    shared.len()
                );
            }
        }
    }
}

#[test]
fn unstructured_has_heavy_cross_cpu_sharing() {
    let profile = apps::unstructured();
    let mut touched: Vec<HashSet<u64>> = vec![HashSet::new(); 4];
    for r in TraceGen::new(&profile, 4, 0.02) {
        touched[r.cpu].insert(r.addr >> 5);
    }
    let shared: usize = (0..4)
        .flat_map(|a| ((a + 1)..4).map(move |b| (a, b)))
        .map(|(a, b)| touched[a].intersection(&touched[b]).count())
        .sum();
    assert!(shared > 100, "unstructured shares only {shared} units across CPUs");
}
