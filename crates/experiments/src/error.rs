//! The typed error hierarchy for the run pipeline, plus the documented
//! process exit codes.
//!
//! Everything that can go wrong between "parse the command line" and
//! "render the last table" is a [`JettyError`]; the variants mirror the
//! pipeline's failure domains (simulation, store I/O, configuration,
//! deadline, cooperative cancellation) so callers can branch on *kind*
//! without parsing message strings. Errors are values: a failed suite is
//! carried through [`Engine::run_suites`](crate::engine::Engine::run_suites)
//! as a per-suite `Err`, rendered as a row of the `failures` table, and
//! folded into the exit code — it never aborts the process.

use std::fmt;

/// Process exit codes of `jetty-repro`, as documented in
/// `docs/ARCHITECTURE.md` §7.
///
/// The distinction the CI fault smoke relies on: partial output is still
/// trustworthy output ([`PARTIAL`](exit::PARTIAL)), while
/// [`TOTAL`](exit::TOTAL) means stdout carries no simulation results at
/// all.
pub mod exit {
    /// Everything requested succeeded.
    pub const CLEAN: u8 = 0;
    /// Nothing usable was produced: usage errors, store-command failures,
    /// diff drift, or every requested exhibit failed.
    pub const TOTAL: u8 = 1;
    /// Real results were rendered, but some suites failed (see the
    /// `failures` table) or the store append did not persist them.
    pub const PARTIAL: u8 = 2;
}

/// Everything that can go wrong in the run pipeline.
///
/// # Examples
///
/// ```
/// use jetty_experiments::error::JettyError;
///
/// let e = JettyError::simulation("cpus4-scale1-sb-moesi-paperbank22", "injected fault");
/// assert_eq!(e.kind(), "simulation");
/// assert!(e.to_string().contains("injected fault"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JettyError {
    /// A simulation job failed: an injected fault, or a worker that died
    /// (panicked, or abandoned its result slot).
    Simulation {
        /// [`RunOptions::id`](crate::RunOptions::id) of the failed suite.
        suite: String,
        /// What happened, suitable for the `failures` table.
        message: String,
    },
    /// Run-store I/O failed — open, scan, or append (the latter only after
    /// bounded retries; see [`crate::store::RunStore::append`]).
    Store {
        /// Path of the store file involved.
        path: String,
        /// The underlying I/O or format problem.
        message: String,
    },
    /// A user-facing configuration problem: malformed run references, bad
    /// flag values that survive parsing, and similar.
    Config(String),
    /// A job blew through its `--deadline-ms`/`JETTY_DEADLINE_MS` budget
    /// and was cancelled at a chunk boundary.
    Deadline {
        /// [`RunOptions::id`](crate::RunOptions::id) of the timed-out suite.
        suite: String,
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// A job was cancelled cooperatively because a sibling job of the same
    /// suite already failed — its partial result could never be used.
    Cancelled {
        /// [`RunOptions::id`](crate::RunOptions::id) of the cancelled suite.
        suite: String,
    },
}

impl JettyError {
    /// A [`JettyError::Simulation`] from anything displayable.
    pub fn simulation(suite: impl Into<String>, message: impl Into<String>) -> Self {
        Self::Simulation { suite: suite.into(), message: message.into() }
    }

    /// A [`JettyError::Store`] from anything displayable.
    pub fn store(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self::Store { path: path.into(), message: message.into() }
    }

    /// A [`JettyError::Config`] from anything displayable.
    pub fn config(message: impl Into<String>) -> Self {
        Self::Config(message.into())
    }

    /// The failure domain as a stable lower-case word — the `kind` column
    /// of the `failures` table (`simulation`, `store`, `config`,
    /// `deadline`, `cancelled`).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Simulation { .. } => "simulation",
            Self::Store { .. } => "store",
            Self::Config(_) => "config",
            Self::Deadline { .. } => "deadline",
            Self::Cancelled { .. } => "cancelled",
        }
    }

    /// The suite this error belongs to, when it belongs to one.
    pub fn suite(&self) -> Option<&str> {
        match self {
            Self::Simulation { suite, .. }
            | Self::Deadline { suite, .. }
            | Self::Cancelled { suite } => Some(suite),
            Self::Store { .. } | Self::Config(_) => None,
        }
    }

    /// The human-readable detail *without* the suite id — the `error`
    /// column of the `failures` table, whose `suite` column already names
    /// the suite.
    pub fn detail(&self) -> String {
        match self {
            Self::Simulation { message, .. } => message.clone(),
            Self::Store { path, message } => format!("{message} (store: {path})"),
            Self::Config(message) => message.clone(),
            Self::Deadline { budget_ms, .. } => {
                format!("exceeded the {budget_ms} ms job deadline")
            }
            Self::Cancelled { .. } => "cancelled: a sibling job of this suite failed".to_owned(),
        }
    }
}

impl fmt::Display for JettyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.suite() {
            Some(suite) => write!(f, "suite {suite}: {}", self.detail()),
            None => write!(f, "{}", self.detail()),
        }
    }
}

impl std::error::Error for JettyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_words() {
        let cases = [
            (JettyError::simulation("s", "m"), "simulation"),
            (JettyError::store("p", "m"), "store"),
            (JettyError::config("m"), "config"),
            (JettyError::Deadline { suite: "s".into(), budget_ms: 5 }, "deadline"),
            (JettyError::Cancelled { suite: "s".into() }, "cancelled"),
        ];
        for (e, kind) in cases {
            assert_eq!(e.kind(), kind);
        }
    }

    #[test]
    fn display_prefixes_the_suite_when_there_is_one() {
        let e = JettyError::simulation("cpus4-scale1-sb-moesi-paperbank22", "boom");
        assert_eq!(e.to_string(), "suite cpus4-scale1-sb-moesi-paperbank22: boom");
        let e = JettyError::store("/tmp/x.store", "disk full");
        assert_eq!(e.to_string(), "disk full (store: /tmp/x.store)");
        assert_eq!(e.suite(), None);
    }

    #[test]
    fn deadline_and_cancelled_details_are_self_describing() {
        let d = JettyError::Deadline { suite: "s".into(), budget_ms: 250 };
        assert!(d.detail().contains("250 ms"));
        let c = JettyError::Cancelled { suite: "s".into() };
        assert!(c.detail().contains("sibling"));
    }

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        assert_eq!(exit::CLEAN, 0);
        assert_eq!(exit::TOTAL, 1);
        assert_eq!(exit::PARTIAL, 2);
    }
}
