//! `jetty-repro` — regenerates every table and figure of the JETTY paper.
//!
//! Usage:
//!
//! ```text
//! jetty-repro [COMMANDS...] [--scale X] [--cpus N] [--threads N] [--shards N]
//!             [--format FMT] [--csv DIR] [--axis NAME=V1,V2] [--check]
//!             [--timings] [--store PATH] [--timing-band PCT]
//!             [--deadline-ms MS] [--strict]
//! ```
//!
//! One subcommand per paper exhibit; [`COMMANDS`] is the authoritative
//! list (also printed by `--help`). Default: `all`.
//!
//! Every suite-consuming subcommand draws its runs from one shared
//! [`Engine`]: the needed suites are collected up front and executed
//! concurrently on `--threads` workers (default: available parallelism,
//! or `JETTY_THREADS`), then each exhibit populates typed
//! [`TableData`] records from the suite cache in paper order. The whole
//! [`ResultSet`] is rendered once at the end by the `--format` renderer —
//! aligned text (the default; byte-identical to the historical output),
//! JSON, or CSV.
//!
//! Failure model: a failed suite does not abort the invocation. Every
//! exhibit the failure feeds is skipped, the surviving exhibits render
//! exactly as they would have, and a final `failures` table names each
//! failed suite with its typed error. The exit code distinguishes the
//! three outcomes: 0 (clean), 2 (partial — results rendered, but some
//! suites failed or the store append failed), 1 (total — nothing but
//! failures, or a usage/store-command error). See ARCHITECTURE.md
//! ("Failure model & fault injection").

// Same failure-model discipline as the library crate: user-reachable
// paths carry typed errors instead of panicking.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashSet;
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jetty_experiments::engine::Engine;
use jetty_experiments::error::{exit, JettyError};
use jetty_experiments::figures::{self, Fig6Panel};
use jetty_experiments::results::render::Format;
use jetty_experiments::results::{Cell, ResultSet, TableData};
use jetty_experiments::runner::{AppRun, RunOptions};
use jetty_experiments::store::diff::{diff_runs, DiffOptions};
use jetty_experiments::store::{self, RunInfo, RunRef, RunStore};
use jetty_experiments::sweep::{self, Axis, SweepGrid};
use jetty_experiments::{ablation, protocols, tables};

/// Every recognised subcommand: the paper's exhibits in paper order, then
/// the extensions (`protocols` and `sweep` are *not* part of `all` — see
/// [`usage`]), then the run-store commands (`runs`, `diff`), which read
/// recorded results instead of simulating.
const COMMANDS: &[&str] = &[
    "all",
    "table1",
    "fig2",
    "table2",
    "table3",
    "table4",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6",
    "smp8",
    "nsb",
    "calibrate",
    "ablation",
    "protocols",
    "sweep",
    "runs",
    "diff",
];

/// The `--help` text (stdout, exit 0 — distinct from the unknown-flag
/// error path, which goes to stderr and exits nonzero).
fn usage() -> String {
    format!(
        "jetty-repro [COMMANDS...] [--scale X] [--cpus N] [--threads N] \
         [--shards N] [--format FMT] [--csv DIR] [--axis NAME=V1,V2] [--check] \
         [--timings] [--store PATH] [--timing-band PCT] [--deadline-ms MS] \
         [--strict]\n\
         commands: {}\n\
         `all` regenerates every paper exhibit; `protocols` (the \
         MOESI/MESI/MSI sweep) and `sweep` (the declarative scenario grid) \
         are opt-in and not part of `all`\n\
         `runs` lists a run store; `diff RUN_A RUN_B` compares two recorded \
         runs cell-by-cell (a run ref is N, latest, or PATH:REF) and exits \
         nonzero on drift\n\
         --format selects the output renderer: text json csv (default: text)\n\
         --axis configures the sweep grid (repeatable; axes: cpus protocol \
         filter scale nsb), e.g. --axis cpus=4,8 --axis protocol=moesi,msi\n\
         --threads defaults to available parallelism (env override: JETTY_THREADS)\n\
         --shards fans each job's per-node snoop replay out to N slices \
         (default 1; env override: JETTY_SHARDS; capped against --threads so \
         jobs times shards never oversubscribes the host; results are \
         byte-identical at any count)\n\
         --timings reports per-suite wall-clock on stderr (stdout untouched)\n\
         --store appends this invocation's results to an append-only run \
         store file (and is where `runs`/`diff` read from)\n\
         --timing-band makes `diff` also fail when run B is more than PCT \
         percent slower than run A\n\
         --deadline-ms caps each simulation job's wall-clock (env default: \
         JETTY_DEADLINE_MS); an expired job fails its suite, it does not \
         abort the invocation\n\
         --strict makes `runs` exit nonzero when the store has a damaged \
         tail (default: warn and list the intact prefix)\n\
         exit codes: 0 = clean, 2 = partial (results rendered but some \
         suites failed, or the store append failed), 1 = total failure or \
         usage error",
        COMMANDS.join(" ")
    )
}

struct Cli {
    commands: Vec<String>,
    scale: f64,
    cpus: usize,
    /// `None` = no `--threads` flag; resolved via [`Engine::default_threads`]
    /// only when an engine is actually built (so an invalid `JETTY_THREADS`
    /// never warns when it is overridden or unused).
    threads: Option<usize>,
    /// `None` = no `--shards` flag; resolved via [`Engine::default_shards`]
    /// only when an engine is actually built (so an invalid `JETTY_SHARDS`
    /// never warns when it is overridden or unused).
    shards: Option<usize>,
    format: Format,
    csv_dir: Option<PathBuf>,
    /// `--axis NAME=VALUES` flags, in order (validated against the sweep
    /// grid once parsing is done — they require the `sweep` command).
    axes: Vec<(Axis, String)>,
    check: bool,
    /// Report per-suite wall-clock attribution on stderr (stdout stays
    /// byte-identical, so the golden-output guarantee is unaffected).
    timings: bool,
    /// `--store PATH`: append this invocation's results to a run store
    /// (and the default store `runs`/`diff` read from).
    store: Option<PathBuf>,
    /// The two run refs following the `diff` command.
    diff_refs: Vec<String>,
    /// `--timing-band PCT`: the allowed slowdown before `diff` fails on
    /// timing (requires `diff`; `None` disables the timing check).
    timing_band: Option<f64>,
    /// `--deadline-ms MS`: per-job wall-clock budget. `None` = no flag;
    /// resolved via [`Engine::default_deadline`] (the `JETTY_DEADLINE_MS`
    /// environment variable) only when suites actually run.
    deadline_ms: Option<u64>,
    /// `--strict`: make `runs` treat a damaged store tail as a failure
    /// (exit 1) instead of a stderr warning.
    strict: bool,
}

/// Outcome of argument parsing: a run to perform, or an informational
/// request (help) that short-circuits with success.
enum Parsed {
    Run(Box<Cli>),
    Help,
}

fn parse_args() -> Result<Parsed, String> {
    let mut cli = Cli {
        commands: Vec::new(),
        scale: 1.0,
        cpus: 4,
        threads: None,
        shards: None,
        format: Format::Text,
        csv_dir: None,
        axes: Vec::new(),
        check: false,
        timings: false,
        store: None,
        diff_refs: Vec::new(),
        timing_band: None,
        deadline_ms: None,
        strict: false,
    };
    let mut args = env::args().skip(1);
    // Bare words right after `diff` are run refs, not subcommands.
    let mut pending_diff_refs = 0usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                cli.scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if cli.scale <= 0.0 {
                    return Err("scale must be positive".into());
                }
            }
            "--cpus" => {
                let v = args.next().ok_or("--cpus needs a value")?;
                cli.cpus = v.parse().map_err(|_| format!("bad cpu count: {v}"))?;
                if cli.cpus < 2 {
                    return Err(format!(
                        "--cpus must be at least 2 (a snoopy SMP needs multiple processors \
                         on the bus); got {}",
                        cli.cpus
                    ));
                }
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count: {v}"))?;
                if n < 1 {
                    return Err("--threads must be at least 1".into());
                }
                cli.threads = Some(n);
            }
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad shard count: {v}"))?;
                if n < 1 {
                    return Err("--shards must be at least 1".into());
                }
                cli.shards = Some(n);
            }
            "--format" => {
                let v = args.next().ok_or("--format needs a value")?;
                cli.format = Format::parse(&v)
                    .ok_or(format!("unknown format: {v} (formats: text json csv)"))?;
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                cli.csv_dir = Some(PathBuf::from(v));
            }
            "--axis" => {
                let v = args.next().ok_or("--axis needs NAME=VALUES")?;
                let (name, values) =
                    v.split_once('=').ok_or(format!("bad --axis {v:?} (want NAME=V1,V2)"))?;
                let axis = Axis::parse(name).ok_or(format!(
                    "unknown sweep axis: {name} (axes: cpus protocol filter scale nsb)"
                ))?;
                cli.axes.push((axis, values.to_string()));
            }
            "--check" => cli.check = true,
            "--timings" => cli.timings = true,
            "--store" => {
                let v = args.next().ok_or("--store needs a file path")?;
                cli.store = Some(PathBuf::from(v));
            }
            "--timing-band" => {
                let v = args.next().ok_or("--timing-band needs a percentage")?;
                let pct: f64 = v.parse().map_err(|_| format!("bad timing band: {v}"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("--timing-band must be a non-negative percent; got {v}"));
                }
                cli.timing_band = Some(pct);
            }
            "--deadline-ms" => {
                let v = args.next().ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad deadline: {v}"))?;
                if ms < 1 {
                    return Err("--deadline-ms must be at least 1".into());
                }
                cli.deadline_ms = Some(ms);
            }
            "--strict" => cli.strict = true,
            "--help" | "-h" => return Ok(Parsed::Help),
            cmd if !cmd.starts_with('-') => {
                if pending_diff_refs > 0 {
                    pending_diff_refs -= 1;
                    cli.diff_refs.push(cmd.to_string());
                    continue;
                }
                if !COMMANDS.contains(&cmd) {
                    return Err(format!(
                        "unknown command: {cmd} (commands: {})",
                        COMMANDS.join(" ")
                    ));
                }
                if cmd == "diff" {
                    pending_diff_refs = 2;
                }
                cli.commands.push(cmd.to_string());
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cli.commands.is_empty() {
        cli.commands.push("all".to_string());
    }
    if !cli.axes.is_empty() && !cli.commands.iter().any(|c| c == "sweep") {
        return Err("--axis configures the sweep grid; add the sweep command".into());
    }
    // `runs` and `diff` read the store instead of simulating; mixing them
    // with exhibit commands would conflate two output documents.
    let store_command = cli.commands.iter().any(|c| c == "runs" || c == "diff");
    if store_command && cli.commands.len() > 1 {
        return Err("runs/diff read recorded results and cannot be combined \
                    with other commands"
            .into());
    }
    if cli.commands.iter().any(|c| c == "diff") && cli.diff_refs.len() != 2 {
        return Err("diff needs two run refs: diff RUN_A RUN_B \
                    (a run ref is N, latest, or PATH:REF)"
            .into());
    }
    if cli.timing_band.is_some() && !cli.commands.iter().any(|c| c == "diff") {
        return Err("--timing-band only applies to diff".into());
    }
    if cli.commands.iter().any(|c| c == "runs") && cli.store.is_none() {
        return Err("runs needs --store PATH".into());
    }
    if cli.strict && !cli.commands.iter().any(|c| c == "runs") {
        return Err("--strict only applies to runs".into());
    }
    Ok(Parsed::Run(Box::new(cli)))
}

/// Resolves a run ref (`N`, `latest`, or `PATH:REF`) to a store and a
/// position; refs without an embedded path fall back to `--store`.
fn parse_run_ref(raw: &str, default_store: Option<&PathBuf>) -> Result<(RunStore, RunRef), String> {
    if let Some(rf) = RunRef::parse(raw) {
        let store = default_store
            .ok_or_else(|| format!("run ref {raw:?} has no store; pass --store PATH"))?;
        return Ok((RunStore::open(store), rf));
    }
    if let Some((path, rest)) = raw.rsplit_once(':') {
        if let (false, Some(rf)) = (path.is_empty(), RunRef::parse(rest)) {
            return Ok((RunStore::open(PathBuf::from(path)), rf));
        }
    }
    Err(format!("bad run ref {raw:?} (want N, latest, or PATH:REF)"))
}

/// `jetty-repro runs`: renders a listing of the store's intact records and
/// warns (stderr) about a damaged tail, if any. With `--strict`, a damaged
/// tail makes the listing "unclean" (exit 1) instead of just warning.
fn run_list(cli: &Cli) -> Result<(ResultSet, bool), String> {
    // `parse_args` rejects `runs` without `--store`, but the failure-model
    // lints (rightly) refuse to take that on faith here.
    let path = cli.store.as_ref().ok_or("runs needs --store PATH")?;
    let store = RunStore::open(path);
    let scan = store.scan().map_err(|e| e.to_string())?;
    if let Some(damage) = &scan.damage {
        eprintln!(
            "[store] damaged tail at byte {} of {}: {} ({} intact runs kept)",
            damage.offset,
            store.path().display(),
            damage.reason,
            scan.records.len()
        );
    }
    let mut table = TableData::new("runs", format!("run store: {}", store.path().display()));
    table.headers([
        "run",
        "recorded (unix)",
        "git rev",
        "command",
        "options",
        "timing (ms)",
        "tables",
        "cells",
    ]);
    for record in &scan.records {
        let m = &record.meta;
        table.row([
            Cell::Count(m.seq),
            Cell::Count(m.unix_time),
            Cell::label(m.git_rev.clone()),
            Cell::label(m.command.clone()),
            Cell::label(m.options.clone()),
            Cell::Count(m.timing_ms),
            Cell::Count(record.results.len() as u64),
            Cell::Count(record.cell_count()),
        ]);
    }
    let mut set = ResultSet::new();
    set.push(table);
    let clean = !(cli.strict && scan.damage.is_some());
    Ok((set, clean))
}

/// `jetty-repro diff A B`: compares two recorded runs; `Ok(false)` means
/// the comparison ran but found drift or a timing regression (the CI
/// gate's failure signal).
fn run_diff(cli: &Cli) -> Result<(ResultSet, bool), String> {
    let (store_a, ref_a) = parse_run_ref(&cli.diff_refs[0], cli.store.as_ref())?;
    let (store_b, ref_b) = parse_run_ref(&cli.diff_refs[1], cli.store.as_ref())?;
    let resolve = |store: &RunStore, rf: RunRef| -> Result<jetty_experiments::RunRecord, String> {
        let scan = store.scan().map_err(|e| e.to_string())?;
        if let Some(damage) = &scan.damage {
            eprintln!(
                "[store] damaged tail at byte {} of {}: {}",
                damage.offset,
                store.path().display(),
                damage.reason
            );
        }
        store.resolve(&scan, rf).map_err(|e| e.to_string()).cloned()
    };
    let a = resolve(&store_a, ref_a)?;
    let b = resolve(&store_b, ref_b)?;
    let report = diff_runs(&a, &b, DiffOptions { timing_band_pct: cli.timing_band });
    eprintln!(
        "[diff] {} vs {}: {} ({} drift entries over {} cells)",
        report.a.label(),
        report.b.label(),
        report.verdict(),
        report.entries.len(),
        report.cells_compared
    );
    let clean = report.is_clean();
    Ok((report.to_result_set(), clean))
}

/// Commands that need a full 4-way suite run.
const SUITE_COMMANDS: &[&str] =
    &["all", "table2", "table3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6"];

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(Parsed::Run(cli)) => *cli,
        Ok(Parsed::Help) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Resolve the fault plan up front (not lazily at the first injection
    // point) so an invocation that never reaches an injection site still
    // reports an armed or invalid JETTY_FAULT exactly once.
    let _ = jetty_experiments::fault::active();

    // The store commands read recorded results instead of simulating:
    // render and exit here. `diff` exits nonzero on drift or an
    // out-of-band timing — that exit code *is* the CI regression gate —
    // and `runs --strict` exits nonzero on a damaged store tail.
    if cli.commands.iter().any(|c| c == "runs" || c == "diff") {
        let outcome = if cli.commands[0] == "runs" { run_list(&cli) } else { run_diff(&cli) };
        return match outcome {
            Ok((set, clean)) => {
                print!("{}", cli.format.renderer().render_set(&set));
                if clean {
                    ExitCode::from(exit::CLEAN)
                } else {
                    ExitCode::from(exit::TOTAL)
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(exit::TOTAL)
            }
        };
    }

    let wants = |cmd: &str| cli.commands.iter().any(|c| c == cmd || c == "all");
    // `protocols` and `sweep` extend the reproduction beyond the paper's
    // exhibits, so they must be requested by name: folding them into `all`
    // would change `jetty-repro all` output, which is kept byte-comparable
    // across versions.
    let wants_protocols = cli.commands.iter().any(|c| c == "protocols");
    let wants_sweep = cli.commands.iter().any(|c| c == "sweep");

    // The sweep grid: the default protocol × cpus comparison, reshaped by
    // any `--axis` flags (validated here so errors precede simulation).
    let mut grid = SweepGrid::default_grid(cli.scale);
    for (axis, values) in &cli.axes {
        if let Err(e) = grid.set_axis(*axis, values) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    // One builder so scale/check (and any future all-suite option) stay in
    // sync across every cache key this process uses.
    let suite_options = |cpus: usize, non_subblocked: bool| {
        let mut options = RunOptions::paper().with_scale(cli.scale).with_cpus(cpus);
        options.non_subblocked = non_subblocked;
        options.check = cli.check;
        options
    };
    // One 4-way suite pass feeds every workload-driven table/figure.
    let base_options = suite_options(cli.cpus, false);
    let smp8_options = suite_options(8, false);
    let nsb_options = suite_options(4, true);

    // Collect every suite the requested commands will consume and run them
    // through the engine as one concurrent batch; the per-command code
    // below then renders from the cache, in paper order.
    let needs_suite = SUITE_COMMANDS.iter().any(|c| wants(c)) || wants("calibrate");
    let mut prefetch: Vec<RunOptions> = Vec::new();
    if needs_suite {
        prefetch.push(base_options.clone());
    }
    if wants("smp8") {
        prefetch.push(smp8_options.clone());
    }
    if wants("nsb") {
        prefetch.push(nsb_options.clone());
    }
    if wants("ablation") {
        prefetch.push(ablation::ij_skip_options(cli.scale, cli.check));
        prefetch.push(ablation::hj_policy_options(cli.scale, cli.check));
    }
    if wants_protocols {
        prefetch.extend(protocols::protocols_prefetch(cli.scale, cli.check));
    }
    if wants_sweep {
        prefetch.extend(grid.suites(cli.check));
    }
    // Size the pool only when suites will actually run, so commands that
    // never simulate (and explicit `--threads`/`--deadline-ms`) skip the
    // env lookups.
    let engine = if prefetch.is_empty() {
        Engine::new(1)
    } else {
        let deadline = match cli.deadline_ms {
            Some(ms) => Some(Duration::from_millis(ms)),
            None => Engine::default_deadline(),
        };
        Engine::new(cli.threads.unwrap_or_else(Engine::default_threads))
            .with_deadline(deadline)
            .with_shards(cli.shards.unwrap_or_else(Engine::default_shards))
    };
    // Per-suite wall-clock attribution (stderr only): lets perf work blame
    // time without external profilers. Printed after every batch the
    // engine executes, so late, non-prefetched suites still report.
    let report_timings = |engine: &Engine| {
        if !cli.timings {
            return;
        }
        for t in engine.take_timings() {
            eprintln!(
                "[timing] suite {}: {:.3}s across {} jobs (gen {:.3}s, sim {:.3}s) \
                 kernel={} shards={}",
                t.options.describe(),
                t.elapsed.as_secs_f64(),
                t.jobs,
                t.gen.as_secs_f64(),
                t.sim.as_secs_f64(),
                t.kernel,
                t.shards
            );
        }
    };

    // Failed suites, in first-seen order, deduplicated by suite id (the
    // engine's error memo answers repeat requests with the same error, so
    // a suite that feeds several exhibits must still report once). Each
    // failure also gets one stderr line at the moment it is recorded.
    let mut failures: Vec<JettyError> = Vec::new();
    let mut failed_seen: HashSet<String> = HashSet::new();
    let record_failure =
        |failures: &mut Vec<JettyError>, failed_seen: &mut HashSet<String>, e: JettyError| {
            let key = e.suite().map(str::to_string).unwrap_or_else(|| e.to_string());
            if failed_seen.insert(key) {
                eprintln!("error: {e}");
                failures.push(e);
            }
        };

    // Suite-simulation wall-clock of this invocation: what `--store`
    // records as `timing_ms` and `diff --timing-band` later compares.
    let mut suite_elapsed_ms: u64 = 0;
    if !prefetch.is_empty() {
        let started = Instant::now();
        let suites = engine.run_suites(&prefetch);
        // Coalesced requests return the same Arc (e.g. `all --cpus 8`
        // makes the base and smp8 suites one key); count each once.
        let mut seen = std::collections::HashSet::new();
        let refs: u64 = suites
            .iter()
            .filter_map(|s| s.as_ref().ok())
            .filter(|s| seen.insert(Arc::as_ptr(s)))
            .map(|s| s.iter().map(|r| r.refs).sum::<u64>())
            .sum();
        for outcome in suites {
            if let Err(e) = outcome {
                record_failure(&mut failures, &mut failed_seen, e);
            }
        }
        eprintln!(
            "[engine: {} suites ({} jobs, {:.1}M refs) on {} threads, {:.1}s]",
            seen.len(),
            engine.stats().jobs_executed,
            refs as f64 / 1e6,
            engine.threads(),
            started.elapsed().as_secs_f64()
        );
        suite_elapsed_ms = started.elapsed().as_millis() as u64;
        report_timings(&engine);
    }

    // The base suite feeds most exhibits; when it failed, each of them is
    // skipped (the failure is already recorded above) and the independent
    // exhibits carry on.
    let suite: Option<Arc<Vec<AppRun>>> = if needs_suite {
        match engine.run_suite(&base_options) {
            Ok(runs) => Some(runs),
            Err(e) => {
                record_failure(&mut failures, &mut failed_seen, e);
                None
            }
        }
    } else {
        None
    };

    // Collect typed, render late: every exhibit pushes its TableData here
    // and one renderer pass at the end produces the whole stdout (the text
    // renderer reproduces the historical one-println!-per-table stream
    // byte for byte).
    let mut set = ResultSet::new();
    let mut emit = |table: TableData| set.push(table);

    if wants("table1") {
        emit(tables::table1());
    }
    if wants("fig2") {
        emit(figures::fig2(32, 10));
        emit(figures::fig2(64, 10));
    }
    if wants("table2") {
        if let Some(suite) = &suite {
            emit(tables::table2(suite));
        }
    }
    if wants("table3") {
        if let Some(suite) = &suite {
            emit(tables::table3(suite));
        }
    }
    if wants("fig4a") {
        if let Some(suite) = &suite {
            emit(figures::fig4a(suite));
        }
    }
    if wants("fig4b") {
        if let Some(suite) = &suite {
            emit(figures::fig4b(suite));
        }
    }
    if wants("fig5a") {
        if let Some(suite) = &suite {
            emit(figures::fig5a(suite));
        }
    }
    if wants("fig5b") {
        if let Some(suite) = &suite {
            emit(figures::fig5b(suite));
        }
    }
    if wants("table4") {
        emit(tables::table4());
    }
    if wants("fig6") {
        if let Some(suite) = &suite {
            for panel in [
                Fig6Panel::SnoopSerial,
                Fig6Panel::AllSerial,
                Fig6Panel::SnoopParallel,
                Fig6Panel::AllParallel,
            ] {
                emit(figures::fig6(suite, panel));
            }
        }
    }
    if wants("calibrate") {
        if let Some(suite) = &suite {
            emit(tables::calibration(suite));
        }
    }
    if wants("smp8") {
        match engine.run_suite(&smp8_options) {
            Ok(runs) => emit(figures::smp8_summary(&runs)),
            Err(e) => record_failure(&mut failures, &mut failed_seen, e),
        }
    }
    if wants("nsb") {
        match engine.run_suite(&nsb_options) {
            Ok(runs) => emit(figures::nsb_summary(&runs)),
            Err(e) => record_failure(&mut failures, &mut failed_seen, e),
        }
    }
    if wants("ablation") {
        match ablation::ij_skip_ablation(&engine, cli.scale, cli.check) {
            Ok(table) => emit(table),
            Err(e) => record_failure(&mut failures, &mut failed_seen, e),
        }
        match ablation::hj_policy_ablation(&engine, cli.scale, cli.check) {
            Ok(table) => emit(table),
            Err(e) => record_failure(&mut failures, &mut failed_seen, e),
        }
    }
    if wants_protocols {
        match protocols::protocols_table(&engine, cli.scale, cli.check) {
            Ok(table) => emit(table),
            Err(e) => record_failure(&mut failures, &mut failed_seen, e),
        }
    }
    if wants_sweep {
        match sweep::sweep_results(&engine, &grid, cli.check) {
            Ok(results) => {
                for table in results.tables {
                    emit(table);
                }
            }
            Err(e) => record_failure(&mut failures, &mut failed_seen, e),
        }
        // The grid's cache economics, engine-wide: with `sweep` alone the
        // prefetch executes one simulation per suite and the render pass
        // reads one cached suite per point, so the hit rate is
        // points / (points + suites); sharing keys with other commands in
        // the same invocation (e.g. `protocols sweep`) raises it.
        let stats = engine.stats();
        eprintln!(
            "[sweep] grid {} -> {} points over {} suites; engine cache: {} hits / {} requests \
             (hit rate {:.1}%)",
            grid.describe(),
            grid.points().len(),
            grid.suites(cli.check).len(),
            stats.cache_hits,
            stats.cache_hits + stats.suites_executed + stats.suites_failed,
            100.0 * stats.hit_rate(),
        );
    }
    // Suites executed outside the prefetch batch (normally none — the
    // prefetch covers every command — but kept exact regardless).
    report_timings(&engine);

    // Failed suites render as an ordinary table — last, so the surviving
    // exhibits above it keep their byte-identical positions in every
    // format (text, JSON, CSV).
    if !failures.is_empty() {
        let mut table =
            TableData::new("failures", "Failed suites (the tables above are a partial result)");
        table.headers(["suite", "kind", "error"]);
        for e in &failures {
            table.row([
                Cell::label(e.suite().unwrap_or("-")),
                Cell::label(e.kind()),
                Cell::text_cell(e.detail()),
            ]);
        }
        set.push(table);
    }

    // One renderer pass for the whole invocation.
    print!("{}", cli.format.renderer().render_set(&set));
    if let Some(dir) = &cli.csv_dir {
        let csv = Format::Csv.renderer();
        for table in &set.tables {
            if let Err(e) = fs::create_dir_all(dir).and_then(|()| {
                fs::write(dir.join(format!("{}.csv", table.id)), csv.render_table(table))
            }) {
                eprintln!("warning: failed to write {}.csv: {e}", table.id);
            }
        }
    }

    // Persist the rendered results (exact typed cells, not the text) in
    // the run store. `JETTY_STORE_NOW` / `JETTY_GIT_REV` /
    // `JETTY_STORE_TIMING_MS` pin the non-deterministic metadata for
    // golden tests and the committed CI reference record.
    let mut store_failed = false;
    if let Some(path) = &cli.store {
        let timing_ms = env::var("JETTY_STORE_TIMING_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(suite_elapsed_ms);
        let info = RunInfo {
            unix_time: store::unix_time_now(),
            git_rev: store::git_rev(),
            command: cli.commands.join(" "),
            options: base_options.id(),
            timing_ms,
        };
        match RunStore::open(path).append(&info, &set) {
            Ok(outcome) => {
                if let Some(damage) = &outcome.recovered {
                    eprintln!(
                        "[store] discarded damaged tail at byte {}: {}",
                        damage.offset, damage.reason
                    );
                }
                eprintln!(
                    "[store] recorded run #{} ({}) in {}",
                    outcome.seq,
                    info.options,
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                store_failed = true;
            }
        }
    }

    // Three-way exit code: clean (0), partial (2 — real tables rendered,
    // but a suite or the store append failed after them), total (1 —
    // every exhibit this invocation asked for failed).
    let rendered_real = set.tables.iter().any(|t| t.id != "failures");
    if failures.is_empty() && !store_failed {
        ExitCode::from(exit::CLEAN)
    } else if rendered_real {
        ExitCode::from(exit::PARTIAL)
    } else {
        ExitCode::from(exit::TOTAL)
    }
}
