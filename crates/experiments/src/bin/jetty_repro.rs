//! `jetty-repro` — regenerates every table and figure of the JETTY paper.
//!
//! Usage:
//!
//! ```text
//! jetty-repro [COMMANDS...] [--scale X] [--cpus N] [--csv DIR] [--check]
//! ```
//!
//! One subcommand per paper exhibit; [`COMMANDS`] is the authoritative
//! list (also printed by `--help`). Default: `all`.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use jetty_experiments::figures::{self, Fig6Panel};
use jetty_experiments::report::Table;
use jetty_experiments::runner::{run_suite, AppRun, RunOptions};
use jetty_experiments::{ablation, tables};

/// Every recognised subcommand, in paper order.
const COMMANDS: &[&str] = &[
    "all",
    "table1",
    "fig2",
    "table2",
    "table3",
    "table4",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6",
    "smp8",
    "nsb",
    "calibrate",
    "ablation",
];

struct Cli {
    commands: Vec<String>,
    scale: f64,
    cpus: usize,
    csv_dir: Option<PathBuf>,
    check: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli { commands: Vec::new(), scale: 1.0, cpus: 4, csv_dir: None, check: false };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                cli.scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if cli.scale <= 0.0 {
                    return Err("scale must be positive".into());
                }
            }
            "--cpus" => {
                let v = args.next().ok_or("--cpus needs a value")?;
                cli.cpus = v.parse().map_err(|_| format!("bad cpu count: {v}"))?;
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                cli.csv_dir = Some(PathBuf::from(v));
            }
            "--check" => cli.check = true,
            "--help" | "-h" => {
                println!(
                    "jetty-repro [COMMANDS...] [--scale X] [--cpus N] [--csv DIR] [--check]\n\
                     commands: {}",
                    COMMANDS.join(" ")
                );
                std::process::exit(0);
            }
            cmd if !cmd.starts_with('-') => {
                if !COMMANDS.contains(&cmd) {
                    return Err(format!(
                        "unknown command: {cmd} (commands: {})",
                        COMMANDS.join(" ")
                    ));
                }
                cli.commands.push(cmd.to_string());
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cli.commands.is_empty() {
        cli.commands.push("all".to_string());
    }
    Ok(cli)
}

/// Commands that need a full 4-way suite run.
const SUITE_COMMANDS: &[&str] =
    &["all", "table2", "table3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6"];

fn emit(cli: &Cli, name: &str, table: &Table) {
    println!("{}", table.render());
    if let Some(dir) = &cli.csv_dir {
        if let Err(e) = fs::create_dir_all(dir)
            .and_then(|()| fs::write(dir.join(format!("{name}.csv")), table.to_csv()))
        {
            eprintln!("warning: failed to write {name}.csv: {e}");
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let wants = |cmd: &str| cli.commands.iter().any(|c| c == cmd || c == "all");

    // One 4-way suite pass feeds every workload-driven table/figure.
    let needs_suite = SUITE_COMMANDS.iter().any(|c| wants(c)) || wants("calibrate");
    let suite: Vec<AppRun> = if needs_suite {
        let mut options = RunOptions::paper().with_scale(cli.scale).with_cpus(cli.cpus);
        options.check = cli.check;
        let started = Instant::now();
        let runs = run_suite(&options);
        let refs: u64 = runs.iter().map(|r| r.refs).sum();
        eprintln!(
            "[suite: {} apps, {:.1}M refs, {} filter configs, {:.1}s]",
            runs.len(),
            refs as f64 / 1e6,
            options.specs.len(),
            started.elapsed().as_secs_f64()
        );
        runs
    } else {
        Vec::new()
    };

    if wants("table1") {
        emit(&cli, "table1", &tables::table1());
    }
    if wants("fig2") {
        emit(&cli, "fig2_32B", &figures::fig2(32, 10));
        emit(&cli, "fig2_64B", &figures::fig2(64, 10));
    }
    if wants("table2") {
        emit(&cli, "table2", &tables::table2(&suite));
    }
    if wants("table3") {
        emit(&cli, "table3", &tables::table3(&suite));
    }
    if wants("fig4a") {
        emit(&cli, "fig4a", &figures::fig4a(&suite));
    }
    if wants("fig4b") {
        emit(&cli, "fig4b", &figures::fig4b(&suite));
    }
    if wants("fig5a") {
        emit(&cli, "fig5a", &figures::fig5a(&suite));
    }
    if wants("fig5b") {
        emit(&cli, "fig5b", &figures::fig5b(&suite));
    }
    if wants("table4") {
        emit(&cli, "table4", &tables::table4());
    }
    if wants("fig6") {
        for (name, panel) in [
            ("fig6a", Fig6Panel::SnoopSerial),
            ("fig6b", Fig6Panel::AllSerial),
            ("fig6c", Fig6Panel::SnoopParallel),
            ("fig6d", Fig6Panel::AllParallel),
        ] {
            emit(&cli, name, &figures::fig6(&suite, panel));
        }
    }
    if wants("calibrate") {
        emit(&cli, "calibration", &tables::calibration(&suite));
    }
    if wants("smp8") {
        let mut options = RunOptions::paper().with_scale(cli.scale).with_cpus(8);
        options.check = cli.check;
        let runs = run_suite(&options);
        emit(&cli, "smp8", &figures::smp8_summary(&runs));
    }
    if wants("nsb") {
        let mut options = RunOptions::paper().with_scale(cli.scale);
        options.non_subblocked = true;
        options.check = cli.check;
        let runs = run_suite(&options);
        emit(&cli, "nsb", &figures::nsb_summary(&runs));
    }
    if wants("ablation") {
        emit(&cli, "ablation_ij_skip", &ablation::ij_skip_ablation(cli.scale));
        emit(&cli, "ablation_hj_policy", &ablation::hj_policy_ablation(cli.scale));
    }

    ExitCode::SUCCESS
}
