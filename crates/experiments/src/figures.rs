//! Regenerators for the paper's figures (as typed tables — series values
//! rather than plots, suitable for diffing, JSON export, and
//! EXPERIMENTS.md).

use jetty_core::FilterSpec;
use jetty_energy::{figure2_panel, AccessMode, SmpEnergyModel, TechParams};

use crate::results::{Cell, TableData};
use crate::runner::{average, AppRun};

/// Figure 2: the Appendix-A analytic model, one table per block size.
/// Rows are local hit rates, columns remote hit rates 0%..90%.
pub fn fig2(block_bytes: usize, local_steps: usize) -> TableData {
    let panel = figure2_panel(4, block_bytes, local_steps, &TechParams::default());
    let mut t = TableData::new(
        format!("fig2_{block_bytes}B"),
        format!("Figure 2: snoop-miss tag energy as % of all L2 energy ({block_bytes}-byte lines)"),
    );
    let mut headers = vec!["local hit".to_string()];
    headers.extend(panel.curves.iter().map(|c| format!("R={:.1}%", 100.0 * c.remote_hit_rate)));
    t.headers(headers);
    for i in 0..=local_steps {
        let local = panel.curves[0].points[i].0;
        let mut row = vec![Cell::Fixed { value: local, dp: 2 }];
        row.extend(panel.curves.iter().map(|c| Cell::Ratio(c.points[i].1)));
        t.row(row);
    }
    t
}

/// Renders a coverage figure: one row per application plus the average,
/// one column per filter configuration.
fn coverage_table(id: &str, title: &str, runs: &[AppRun], specs: &[FilterSpec]) -> TableData {
    let mut t = TableData::new(id, title);
    let mut headers = vec!["App".to_string()];
    headers.extend(specs.iter().map(FilterSpec::label));
    t.headers(headers);
    for r in runs {
        let mut row = vec![Cell::label(r.profile.abbrev)];
        row.extend(specs.iter().map(|s| Cell::Ratio(r.coverage(&s.label()))));
        t.row(row);
    }
    let mut avg_row = vec![Cell::label("AVG")];
    avg_row.extend(specs.iter().map(|s| Cell::Ratio(average(runs, |r| r.coverage(&s.label())))));
    t.row(avg_row);
    t
}

/// Figure 4(a): Exclude-Jetty snoop-miss coverage.
pub fn fig4a(runs: &[AppRun]) -> TableData {
    coverage_table("fig4a", "Figure 4a: Exclude-Jetty coverage", runs, &FilterSpec::figure4a_set())
}

/// Figure 4(b): Vector-Exclude-Jetty coverage (with the EJ baselines the
/// paper plots alongside).
pub fn fig4b(runs: &[AppRun]) -> TableData {
    let specs = vec![
        FilterSpec::vector_exclude(32, 4, 8),
        FilterSpec::vector_exclude(32, 4, 4),
        FilterSpec::exclude(32, 4),
        FilterSpec::vector_exclude(16, 4, 8),
        FilterSpec::vector_exclude(16, 4, 4),
        FilterSpec::exclude(16, 4),
    ];
    coverage_table("fig4b", "Figure 4b: Vector-Exclude-Jetty coverage", runs, &specs)
}

/// Figure 5(a): Include-Jetty coverage.
pub fn fig5a(runs: &[AppRun]) -> TableData {
    coverage_table("fig5a", "Figure 5a: Include-Jetty coverage", runs, &FilterSpec::figure5a_set())
}

/// Figure 5(b): Hybrid-Jetty coverage.
pub fn fig5b(runs: &[AppRun]) -> TableData {
    coverage_table("fig5b", "Figure 5b: Hybrid-Jetty coverage", runs, &FilterSpec::figure5b_set())
}

/// Which panel of Figure 6 to regenerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig6Panel {
    /// (a) Reduction over all snoop accesses, serial tag/data.
    SnoopSerial,
    /// (b) Reduction over all L2 accesses, serial tag/data.
    AllSerial,
    /// (c) Reduction over all snoop accesses, parallel tag/data.
    SnoopParallel,
    /// (d) Reduction over all L2 accesses, parallel tag/data.
    AllParallel,
}

impl Fig6Panel {
    fn mode(self) -> AccessMode {
        match self {
            Fig6Panel::SnoopSerial | Fig6Panel::AllSerial => AccessMode::Serial,
            Fig6Panel::SnoopParallel | Fig6Panel::AllParallel => AccessMode::Parallel,
        }
    }

    fn over_snoops(self) -> bool {
        matches!(self, Fig6Panel::SnoopSerial | Fig6Panel::SnoopParallel)
    }

    /// Machine-readable table id (`fig6a`..`fig6d`).
    pub fn id(self) -> &'static str {
        match self {
            Fig6Panel::SnoopSerial => "fig6a",
            Fig6Panel::AllSerial => "fig6b",
            Fig6Panel::SnoopParallel => "fig6c",
            Fig6Panel::AllParallel => "fig6d",
        }
    }

    fn title(self) -> &'static str {
        match self {
            Fig6Panel::SnoopSerial => "Figure 6a: energy reduction over snoop accesses (serial L2)",
            Fig6Panel::AllSerial => "Figure 6b: energy reduction over all L2 accesses (serial L2)",
            Fig6Panel::SnoopParallel => {
                "Figure 6c: energy reduction over snoop accesses (parallel L2)"
            }
            Fig6Panel::AllParallel => {
                "Figure 6d: energy reduction over all L2 accesses (parallel L2)"
            }
        }
    }

    /// The HJ configurations the panel plots: all six for (a), the EJ-32x4
    /// hybrids for (b)-(d) (the paper restricts the later panels).
    fn specs(self) -> Vec<FilterSpec> {
        match self {
            Fig6Panel::SnoopSerial => FilterSpec::figure5b_set(),
            _ => vec![
                FilterSpec::hybrid_scalar(10, 4, 7, 32, 4),
                FilterSpec::hybrid_scalar(9, 4, 7, 32, 4),
                FilterSpec::hybrid_scalar(8, 4, 7, 32, 4),
            ],
        }
    }
}

/// Regenerates one panel of Figure 6.
pub fn fig6(runs: &[AppRun], panel: Fig6Panel) -> TableData {
    let model = SmpEnergyModel::paper_node();
    let specs = panel.specs();
    let mode = panel.mode();
    let mut t = TableData::new(panel.id(), panel.title());
    let mut headers = vec!["App".to_string()];
    headers.extend(specs.iter().map(FilterSpec::label));
    t.headers(headers);

    let reduction = |r: &AppRun, spec: &FilterSpec| {
        let report = r
            .report(&spec.label())
            .unwrap_or_else(|| panic!("configuration {} not in the bank", spec.label()));
        if panel.over_snoops() {
            model.snoop_energy_reduction(&r.run, report, mode)
        } else {
            model.total_energy_reduction(&r.run, report, mode)
        }
    };

    for r in runs {
        let mut row = vec![Cell::label(r.profile.abbrev)];
        row.extend(specs.iter().map(|s| Cell::Ratio(reduction(r, s))));
        t.row(row);
    }
    let mut avg_row = vec![Cell::label("AVG")];
    avg_row.extend(specs.iter().map(|s| Cell::Ratio(average(runs, |r| reduction(r, s)))));
    t.row(avg_row);
    t
}

/// §4.3.4's 8-way SMP summary: snoop-miss share of all L2 accesses and the
/// average coverage of the best hybrid.
pub fn smp8_summary(runs: &[AppRun]) -> TableData {
    let best = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4).label();
    let mut t =
        TableData::new("smp8", "8-way SMP summary (paper: 76.4% snoop-miss share, 79% coverage)");
    t.headers(["metric", "measured"]);
    t.row([
        Cell::label("snoop-miss % of all L2 accesses (avg)"),
        Cell::Ratio(average(runs, |r| r.run.snoop_miss_fraction_of_all())),
    ]);
    t.row([
        Cell::label(format!("avg coverage of {best}")),
        Cell::Ratio(average(runs, |r| r.coverage(&best))),
    ]);
    t
}

/// The non-subblocked summary the paper reports in passing (§4.2, §4.3):
/// snoop-miss shares and best-hybrid coverage without subblocking.
pub fn nsb_summary(runs: &[AppRun]) -> TableData {
    let best = FilterSpec::hybrid_scalar(10, 4, 7, 32, 4).label();
    let mut t = TableData::new(
        "nsb",
        "Non-subblocked L2 summary (paper: 68% snoop misses, 46% of all accesses, 68% coverage)",
    );
    t.headers(["metric", "measured"]);
    t.row([
        Cell::label("snoop-miss % of snoop accesses (avg)"),
        Cell::Ratio(average(runs, |r| r.run.snoop_miss_fraction_of_snoops())),
    ]);
    t.row([
        Cell::label("snoop-miss % of all L2 accesses (avg)"),
        Cell::Ratio(average(runs, |r| r.run.snoop_miss_fraction_of_all())),
    ]);
    t.row([
        Cell::label(format!("avg coverage of {best}")),
        Cell::Ratio(average(runs, |r| r.coverage(&best))),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_app, RunOptions};
    use jetty_workloads::apps;

    fn runs() -> Vec<AppRun> {
        let options = RunOptions::paper().with_scale(0.005);
        vec![run_app(&apps::fft(), &options), run_app(&apps::unstructured(), &options)]
    }

    #[test]
    fn fig2_is_a_grid() {
        let t = fig2(32, 10);
        assert_eq!(t.len(), 11);
        assert_eq!(t.id, "fig2_32B");
        assert!(t.render().contains("R=90.0%"));
    }

    #[test]
    fn coverage_figures_have_avg_rows() {
        let rs = runs();
        for t in [fig4a(&rs), fig4b(&rs), fig5a(&rs), fig5b(&rs)] {
            assert_eq!(t.len(), 3); // two apps + AVG
            assert!(t.render().contains("AVG"));
        }
    }

    #[test]
    fn fig6_all_panels_render() {
        let rs = runs();
        for panel in [
            Fig6Panel::SnoopSerial,
            Fig6Panel::AllSerial,
            Fig6Panel::SnoopParallel,
            Fig6Panel::AllParallel,
        ] {
            let t = fig6(&rs, panel);
            assert_eq!(t.len(), 3);
            assert_eq!(t.id, panel.id());
        }
    }

    #[test]
    fn fig6a_plots_six_hybrids() {
        let rs = runs();
        let s = fig6(&rs, Fig6Panel::SnoopSerial).render();
        assert!(s.contains("(IJ-10x4x7, EJ-32x4)"));
        assert!(s.contains("(IJ-8x4x7, EJ-16x2)"));
    }

    #[test]
    fn summaries_render() {
        let rs = runs();
        assert_eq!(smp8_summary(&rs).len(), 2);
        assert_eq!(nsb_summary(&rs).len(), 3);
    }
}
