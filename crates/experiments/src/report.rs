//! Plain-text table rendering for experiment output.
//!
//! Every table and figure of the paper is regenerated as an aligned text
//! table (plus optional CSV) so runs can be diffed and pasted into
//! EXPERIMENTS.md.

use std::fmt::Write as _;

/// A fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), headers: Vec::new(), rows: Vec::new() }
    }

    /// Sets the header cells.
    pub fn headers<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width (when headers
    /// were set) — mismatched tables are bugs in the harness.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        if !self.headers.is_empty() {
            assert_eq!(
                row.len(),
                self.headers.len(),
                "row width {} != header width {} in table {:?}",
                row.len(),
                self.headers.len(),
                self.title
            );
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if !self.headers.is_empty() {
            out.push_str(&render_row(&self.headers, &widths));
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&render_row(&rule, &widths));
        }
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", self.headers.join(","));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

fn render_row(cells: &[String], widths: &[usize]) -> String {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            line.push_str("  ");
        }
        let _ = write!(line, "{:>width$}", cell, width = widths[i]);
    }
    line.push('\n');
    line
}

/// Formats a fraction as a percentage with one decimal (e.g. `47.1%`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a count in millions with one decimal (e.g. `47.1M`).
pub fn millions(x: u64) -> String {
    format!("{:.1}M", x as f64 / 1.0e6)
}

/// Formats bytes in megabytes with one decimal.
pub fn mbytes(x: u64) -> String {
    format!("{:.1}MB", x as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo");
        t.headers(["app", "value"]);
        t.row(["ba", "47.1%"]);
        t.row(["unstructured", "3.0%"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("unstructured"));
        // Columns align: every line has the same position for the last char.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo");
        t.headers(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo");
        t.headers(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.471), "47.1%");
        assert_eq!(millions(47_100_000), "47.1M");
        assert_eq!(mbytes(57 * 1024 * 1024 + 400 * 1024), "57.4MB");
    }
}
