//! Ablation studies for the design choices the paper makes but does not
//! sweep:
//!
//! * **IJ index overlap** — the paper states that partially overlapped
//!   sub-array indices (skip < index width) are more accurate than
//!   disjoint slices but leaves the sweep as beyond scope (§3.2);
//!   [`ij_skip_ablation`] runs it.
//! * **HJ EJ-allocation policy** — the paper allocates EJ entries only for
//!   snoops the IJ failed to filter (§3.3); [`hj_policy_ablation`]
//!   compares that against eagerly allocating on every guaranteed miss,
//!   reporting both coverage and the EJ write traffic the eager policy
//!   spends.
//!
//! Both studies draw their suites from a caller-supplied [`Engine`], so
//! `jetty-repro all` can prefetch them concurrently with the main suites
//! (the `*_options` functions expose the exact cache keys to prefetch).

use jetty_core::FilterSpec;

use crate::engine::Engine;
use crate::error::JettyError;
use crate::results::{Cell, TableData};
use crate::runner::{average, AppRun, RunOptions};

/// The IJ skip values swept by [`ij_skip_ablation`].
const IJ_SKIPS: [u32; 4] = [2, 4, 6, 8];

/// The suite options (and cache key) behind [`ij_skip_ablation`].
pub fn ij_skip_options(scale: f64, check: bool) -> RunOptions {
    let specs = IJ_SKIPS.iter().map(|&s| FilterSpec::include(8, 4, s)).collect();
    let mut options = RunOptions::paper().with_scale(scale).with_specs(specs);
    options.check = check;
    options
}

/// Sweeps the Include-Jetty index skip from heavy overlap to disjoint
/// slices (IJ-8x4xS, S in {2, 4, 6, 8}; S = 8 is disjoint) and reports
/// average coverage across the suite.
pub fn ij_skip_ablation(engine: &Engine, scale: f64, check: bool) -> Result<TableData, JettyError> {
    let options = ij_skip_options(scale, check);
    let specs = options.specs.clone();
    let runs = engine.run_suite(&options)?;

    let mut t = TableData::new(
        "ablation_ij_skip",
        "Ablation: IJ index overlap (IJ-8x4xS; S=8 disjoint, paper uses overlap)",
    );
    let mut headers = vec!["App".to_string()];
    headers.extend(specs.iter().map(FilterSpec::label));
    t.headers(headers);
    for r in runs.iter() {
        let mut row = vec![Cell::label(r.profile.abbrev)];
        row.extend(specs.iter().map(|s| Cell::Ratio(r.coverage(&s.label()))));
        t.row(row);
    }
    let mut avg = vec![Cell::label("AVG")];
    avg.extend(specs.iter().map(|s| Cell::Ratio(average(&runs, |r| r.coverage(&s.label())))));
    t.row(avg);
    Ok(t)
}

/// EJ write traffic of one hybrid configuration over a run (the cost the
/// eager policy pays), summed across nodes. The EJ tag store is the last
/// array of a hybrid's array list.
// The label always comes from the suite's own bank (`hj_policy_options`
// builds both), so a missing report is a harness bug, not a reachable
// failure.
#[allow(clippy::expect_used)]
fn ej_writes(run: &AppRun, label: &str) -> u64 {
    let report = run.report(label).expect("configuration missing from bank");
    report.activities.iter().map(|a| a.arrays.last().map_or(0, |arr| arr.writes)).sum()
}

/// The suite options (and cache key) behind [`hj_policy_ablation`].
pub fn hj_policy_options(scale: f64, check: bool) -> RunOptions {
    let backup = FilterSpec::hybrid_scalar(9, 4, 7, 32, 4);
    let eager = FilterSpec::hybrid_scalar_eager(9, 4, 7, 32, 4);
    let mut options = RunOptions::paper().with_scale(scale).with_specs(vec![backup, eager]);
    options.check = check;
    options
}

/// Compares the paper's backup EJ-allocation policy against the eager
/// variant on (IJ-9x4x7, EJ-32x4).
pub fn hj_policy_ablation(
    engine: &Engine,
    scale: f64,
    check: bool,
) -> Result<TableData, JettyError> {
    let options = hj_policy_options(scale, check);
    let backup = options.specs[0];
    let eager = options.specs[1];
    let runs = engine.run_suite(&options)?;

    let mut t =
        TableData::new("ablation_hj_policy", "Ablation: HJ EJ-allocation policy (backup = paper)");
    t.headers(["App", "backup cov", "eager cov", "backup EJ writes", "eager EJ writes"]);
    for r in runs.iter() {
        t.row([
            Cell::label(r.profile.abbrev),
            Cell::Ratio(r.coverage(&backup.label())),
            Cell::Ratio(r.coverage(&eager.label())),
            Cell::Count(ej_writes(r, &backup.label())),
            Cell::Count(ej_writes(r, &eager.label())),
        ]);
    }
    t.row([
        Cell::label("AVG"),
        Cell::Ratio(average(&runs, |r| r.coverage(&backup.label()))),
        Cell::Ratio(average(&runs, |r| r.coverage(&eager.label()))),
        Cell::Empty,
        Cell::Empty,
    ]);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ij_skip_ablation_runs() {
        let t = ij_skip_ablation(&Engine::new(1), 0.002, false).unwrap();
        assert_eq!(t.len(), 11); // 10 apps + AVG
        assert!(t.render().contains("IJ-8x4x8"));
    }

    #[test]
    fn hj_policy_ablation_runs() {
        let t = hj_policy_ablation(&Engine::new(1), 0.002, false).unwrap();
        assert_eq!(t.len(), 11);
        assert!(t.render().contains("eager"));
    }

    #[test]
    fn ablations_share_one_engine_cache() {
        let engine = Engine::new(2);
        let a = ij_skip_ablation(&engine, 0.002, false).unwrap();
        let b = ij_skip_ablation(&engine, 0.002, false).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(engine.stats().suites_executed, 1);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn check_flag_reaches_ablation_cache_keys() {
        assert_ne!(ij_skip_options(0.002, false), ij_skip_options(0.002, true));
        assert!(hj_policy_options(0.002, true).check);
        // A checked ablation actually runs (full invariants on).
        let t = ij_skip_ablation(&Engine::new(2), 0.002, true).unwrap();
        assert_eq!(t.len(), 11);
    }
}
