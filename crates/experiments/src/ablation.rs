//! Ablation studies for the design choices the paper makes but does not
//! sweep:
//!
//! * **IJ index overlap** — the paper states that partially overlapped
//!   sub-array indices (skip < index width) are more accurate than
//!   disjoint slices but leaves the sweep as beyond scope (§3.2);
//!   [`ij_skip_ablation`] runs it.
//! * **HJ EJ-allocation policy** — the paper allocates EJ entries only for
//!   snoops the IJ failed to filter (§3.3); [`hj_policy_ablation`]
//!   compares that against eagerly allocating on every guaranteed miss,
//!   reporting both coverage and the EJ write traffic the eager policy
//!   spends.

use jetty_core::FilterSpec;

use crate::report::{pct, Table};
use crate::runner::{average, run_suite, AppRun, RunOptions};

/// Sweeps the Include-Jetty index skip from heavy overlap to disjoint
/// slices (IJ-8x4xS, S in {2, 4, 6, 8}; S = 8 is disjoint) and reports
/// average coverage across the suite.
pub fn ij_skip_ablation(scale: f64) -> Table {
    let skips = [2u32, 4, 6, 8];
    let specs: Vec<FilterSpec> = skips.iter().map(|&s| FilterSpec::include(8, 4, s)).collect();
    let options = RunOptions::paper().with_scale(scale).with_specs(specs.clone());
    let runs = run_suite(&options);

    let mut t =
        Table::new("Ablation: IJ index overlap (IJ-8x4xS; S=8 disjoint, paper uses overlap)");
    let mut headers = vec!["App".to_string()];
    headers.extend(specs.iter().map(FilterSpec::label));
    t.headers(headers);
    for r in &runs {
        let mut row = vec![r.profile.abbrev.to_string()];
        row.extend(specs.iter().map(|s| pct(r.coverage(&s.label()))));
        t.row(row);
    }
    let mut avg = vec!["AVG".to_string()];
    avg.extend(specs.iter().map(|s| pct(average(&runs, |r| r.coverage(&s.label())))));
    t.row(avg);
    t
}

/// EJ write traffic of one hybrid configuration over a run (the cost the
/// eager policy pays), summed across nodes. The EJ tag store is the last
/// array of a hybrid's array list.
fn ej_writes(run: &AppRun, label: &str) -> u64 {
    let report = run.report(label).expect("configuration missing from bank");
    report.activities.iter().map(|a| a.arrays.last().map_or(0, |arr| arr.writes)).sum()
}

/// Compares the paper's backup EJ-allocation policy against the eager
/// variant on (IJ-9x4x7, EJ-32x4).
pub fn hj_policy_ablation(scale: f64) -> Table {
    let backup = FilterSpec::hybrid_scalar(9, 4, 7, 32, 4);
    let eager = FilterSpec::hybrid_scalar_eager(9, 4, 7, 32, 4);
    let options = RunOptions::paper().with_scale(scale).with_specs(vec![backup, eager]);
    let runs = run_suite(&options);

    let mut t = Table::new("Ablation: HJ EJ-allocation policy (backup = paper)");
    t.headers(["App", "backup cov", "eager cov", "backup EJ writes", "eager EJ writes"]);
    for r in &runs {
        t.row([
            r.profile.abbrev.to_string(),
            pct(r.coverage(&backup.label())),
            pct(r.coverage(&eager.label())),
            format!("{}", ej_writes(r, &backup.label())),
            format!("{}", ej_writes(r, &eager.label())),
        ]);
    }
    t.row([
        "AVG".to_string(),
        pct(average(&runs, |r| r.coverage(&backup.label()))),
        pct(average(&runs, |r| r.coverage(&eager.label()))),
        String::new(),
        String::new(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ij_skip_ablation_runs() {
        let t = ij_skip_ablation(0.002);
        assert_eq!(t.len(), 11); // 10 apps + AVG
        assert!(t.render().contains("IJ-8x4x8"));
    }

    #[test]
    fn hj_policy_ablation_runs() {
        let t = hj_policy_ablation(0.002);
        assert_eq!(t.len(), 11);
        assert!(t.render().contains("eager"));
    }
}
