//! Deterministic fault injection: `JETTY_FAULT=<spec>[,<spec>...]`.
//!
//! The failure paths added by the run pipeline's failure model (typed
//! per-suite errors, store retries, deadline cancellation) are only
//! trustworthy if CI can walk them on demand. This module is the switch:
//! a comma-separated spec list resolved **once** per process from the
//! `JETTY_FAULT` environment variable — the same resolve-once-and-log
//! pattern as the `JETTY_SIMD` kernel dispatcher — compiled in always but
//! inert when unset. The no-fault cost is one lazily-initialised atomic
//! load plus an `is_empty()` check per *job* (not per event), which is
//! unmeasurable next to a simulation job's millions of references.
//!
//! # Grammar
//!
//! | Spec | Effect |
//! |------|--------|
//! | `suite-fail@<suite-id>` | Every job of the suite fails immediately. |
//! | `suite-panic@<suite-id>` | Every job of the suite panics (exercises worker containment). |
//! | `slow-suite@<suite-id>:<ms>` | Each job of the suite sleeps `<ms>` before every chunk (deterministic deadline trigger). |
//! | `store-write-err@frame<N>` | Appending the `N`-th store frame (1-based) always fails. |
//! | `store-write-err@frame<N>:<count>` | ... fails only the first `<count>` attempts, then succeeds (transient fault; exercises retry). |
//!
//! `<suite-id>` is a [`RunOptions::id`](crate::RunOptions::id) string such
//! as `cpus8-scale0.02-sb-moesi-paperbank22`. An invalid spec list is
//! ignored wholesale with a one-line stderr warning naming the bad value —
//! a typo must not silently inject *some* of the faults.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// One parsed fault specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Fail every job of the named suite immediately.
    SuiteFail {
        /// Target [`RunOptions::id`](crate::RunOptions::id).
        suite: String,
    },
    /// Panic inside every job of the named suite (worker containment).
    SuitePanic {
        /// Target [`RunOptions::id`](crate::RunOptions::id).
        suite: String,
    },
    /// Sleep before every chunk of the named suite's jobs.
    SlowSuite {
        /// Target [`RunOptions::id`](crate::RunOptions::id).
        suite: String,
        /// Per-chunk sleep in milliseconds.
        ms: u64,
    },
    /// Fail the append of the `frame`-th store record (1-based).
    StoreWriteErr {
        /// 1-based frame ordinal whose append fails.
        frame: u64,
        /// How many attempts fail before succeeding; `None` = always.
        times: Option<u64>,
    },
}

/// Parses one spec (pure; no environment access).
fn parse_spec(spec: &str) -> Result<FaultSpec, String> {
    let (kind, arg) = spec
        .split_once('@')
        .ok_or_else(|| format!("spec {spec:?} has no '@' (want <kind>@<target>)"))?;
    match kind {
        "suite-fail" => Ok(FaultSpec::SuiteFail { suite: arg.to_owned() }),
        "suite-panic" => Ok(FaultSpec::SuitePanic { suite: arg.to_owned() }),
        "slow-suite" => {
            let (suite, ms) = arg
                .rsplit_once(':')
                .ok_or_else(|| format!("slow-suite spec {spec:?} wants <suite-id>:<ms>"))?;
            let ms = ms
                .parse::<u64>()
                .map_err(|_| format!("slow-suite delay {ms:?} is not a millisecond count"))?;
            Ok(FaultSpec::SlowSuite { suite: suite.to_owned(), ms })
        }
        "store-write-err" => {
            let (frame, times) = match arg.split_once(':') {
                Some((frame, times)) => {
                    let times = times
                        .parse::<u64>()
                        .map_err(|_| format!("store-write-err count {times:?} is not a number"))?;
                    (frame, Some(times))
                }
                None => (arg, None),
            };
            let frame = frame
                .strip_prefix("frame")
                .and_then(|n| n.parse::<u64>().ok())
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    format!("store-write-err target {frame:?} wants frame<N> with N >= 1")
                })?;
            Ok(FaultSpec::StoreWriteErr { frame, times })
        }
        other => Err(format!(
            "unknown fault kind {other:?} (want suite-fail, suite-panic, slow-suite, \
             or store-write-err)"
        )),
    }
}

/// Parses a full comma-separated `JETTY_FAULT` value (pure — this is the
/// unit-testable half of the resolver, like `resolve_simd` for
/// `JETTY_SIMD`). Any invalid spec rejects the whole list.
pub fn parse_fault_specs(value: &str) -> Result<Vec<FaultSpec>, String> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty()).map(parse_spec).collect()
}

/// The resolved process-wide fault plan. Inert (`is_active() == false`)
/// when `JETTY_FAULT` is unset, empty, or invalid.
#[derive(Debug, Default)]
pub struct Faults {
    specs: Vec<FaultSpec>,
    /// Remaining failing attempts for each counted `StoreWriteErr` spec
    /// (parallel to `specs`; unused entries stay 0).
    store_budgets: Vec<AtomicU64>,
}

impl Faults {
    /// Builds a plan from parsed specs (tests construct these directly;
    /// production goes through [`active`]).
    pub fn from_specs(specs: Vec<FaultSpec>) -> Self {
        let store_budgets = specs
            .iter()
            .map(|s| match s {
                FaultSpec::StoreWriteErr { times: Some(n), .. } => AtomicU64::new(*n),
                _ => AtomicU64::new(0),
            })
            .collect();
        Self { specs, store_budgets }
    }

    /// `true` when at least one fault is armed. The hot-path guard: when
    /// this is `false` no per-suite string ids are ever built.
    pub fn is_active(&self) -> bool {
        !self.specs.is_empty()
    }

    /// Should every job of this suite fail immediately?
    pub fn suite_fail(&self, suite_id: &str) -> bool {
        self.specs.iter().any(|s| matches!(s, FaultSpec::SuiteFail { suite } if suite == suite_id))
    }

    /// Should every job of this suite panic?
    pub fn suite_panic(&self, suite_id: &str) -> bool {
        self.specs.iter().any(|s| matches!(s, FaultSpec::SuitePanic { suite } if suite == suite_id))
    }

    /// Per-chunk sleep injected into this suite's jobs, when armed.
    pub fn slow_suite(&self, suite_id: &str) -> Option<Duration> {
        self.specs.iter().find_map(|s| match s {
            FaultSpec::SlowSuite { suite, ms } if suite == suite_id => {
                Some(Duration::from_millis(*ms))
            }
            _ => None,
        })
    }

    /// Should this append attempt of the `frame`-th store record (1-based)
    /// fail? Counted specs burn one failure per call, so a retrying writer
    /// eventually succeeds; uncounted specs fail every attempt.
    pub fn store_write_error(&self, frame: u64) -> bool {
        for (spec, budget) in self.specs.iter().zip(&self.store_budgets) {
            match spec {
                FaultSpec::StoreWriteErr { frame: target, times } if *target == frame => {
                    match times {
                        None => return true,
                        Some(_) => {
                            // Burn one failing attempt, saturating at 0.
                            let remaining = budget
                                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                                    n.checked_sub(1)
                                })
                                .is_ok();
                            if remaining {
                                return true;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        false
    }
}

/// The process-wide fault plan: `JETTY_FAULT` resolved on first use, then
/// cached. Logs the armed specs (or a warning for an invalid value) to
/// stderr exactly once, mirroring `[simd] kernel dispatch:`.
pub fn active() -> &'static Faults {
    static FAULTS: OnceLock<Faults> = OnceLock::new();
    FAULTS.get_or_init(|| {
        let Ok(value) = std::env::var("JETTY_FAULT") else { return Faults::default() };
        match parse_fault_specs(&value) {
            Ok(specs) if specs.is_empty() => Faults::default(),
            Ok(specs) => {
                eprintln!("[fault] injection active: {}", value.trim());
                Faults::from_specs(specs)
            }
            Err(reason) => {
                eprintln!(
                    "warning: ignoring invalid JETTY_FAULT={value:?} ({reason}); \
                     no faults injected"
                );
                Faults::default()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_spec_kind() {
        let specs = parse_fault_specs(
            "suite-fail@cpus8-scale0.02-sb-moesi-paperbank22, \
             suite-panic@a, slow-suite@b:40, store-write-err@frame2, store-write-err@frame3:2",
        )
        .unwrap();
        assert_eq!(
            specs,
            vec![
                FaultSpec::SuiteFail { suite: "cpus8-scale0.02-sb-moesi-paperbank22".into() },
                FaultSpec::SuitePanic { suite: "a".into() },
                FaultSpec::SlowSuite { suite: "b".into(), ms: 40 },
                FaultSpec::StoreWriteErr { frame: 2, times: None },
                FaultSpec::StoreWriteErr { frame: 3, times: Some(2) },
            ]
        );
    }

    #[test]
    fn one_bad_spec_rejects_the_whole_list() {
        for bad in [
            "nonsense",
            "suite-fail",
            "explode@x",
            "slow-suite@x",
            "slow-suite@x:soon",
            "store-write-err@2",
            "store-write-err@frame0",
            "store-write-err@frameX",
            "store-write-err@frame2:many",
            "suite-fail@ok,bogus@y",
        ] {
            assert!(parse_fault_specs(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_value_is_inert() {
        assert_eq!(parse_fault_specs("").unwrap(), Vec::new());
        assert!(!Faults::default().is_active());
    }

    #[test]
    fn suite_matchers_hit_only_their_target() {
        let f = Faults::from_specs(
            parse_fault_specs("suite-fail@a,suite-panic@b,slow-suite@c:7").unwrap(),
        );
        assert!(f.is_active());
        assert!(f.suite_fail("a") && !f.suite_fail("b") && !f.suite_fail("c"));
        assert!(f.suite_panic("b") && !f.suite_panic("a"));
        assert_eq!(f.slow_suite("c"), Some(Duration::from_millis(7)));
        assert_eq!(f.slow_suite("a"), None);
    }

    #[test]
    fn counted_store_faults_burn_down_then_succeed() {
        let f = Faults::from_specs(parse_fault_specs("store-write-err@frame2:2").unwrap());
        assert!(!f.store_write_error(1), "frame 1 is not the target");
        assert!(f.store_write_error(2), "first attempt fails");
        assert!(f.store_write_error(2), "second attempt fails");
        assert!(!f.store_write_error(2), "budget exhausted: third attempt succeeds");
    }

    #[test]
    fn uncounted_store_faults_fail_forever() {
        let f = Faults::from_specs(parse_fault_specs("store-write-err@frame1").unwrap());
        for _ in 0..5 {
            assert!(f.store_write_error(1));
        }
        assert!(!f.store_write_error(2));
    }
}
