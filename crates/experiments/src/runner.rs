//! Simulation runner: executes one application (or the whole suite) with a
//! bank of filter configurations attached and collects everything the
//! tables and figures need.
//!
//! Filters never change protocol behaviour, so a single run per application
//! yields coverage and energy-activity for *every* configuration in the
//! bank over an identical reference stream — the same methodology the paper
//! uses (all organisations evaluated on the same traces).

use std::hash::{Hash, Hasher};

use jetty_core::FilterSpec;
use jetty_sim::{FilterReport, GateStop, ProtocolKind, RunGate, RunStats, System, SystemConfig};
use jetty_workloads::{AppProfile, TraceGen};

use crate::engine::Engine;
use crate::error::JettyError;
use crate::fault;

/// Options for a reproduction run.
///
/// `RunOptions` doubles as the [`SuiteCache`](crate::engine::SuiteCache)
/// key: equality and hashing cover every field that changes simulation
/// output — `cpus`, the exact bit pattern of `scale`, `check`, the full
/// filter bank (order included, since report order follows bank order),
/// `non_subblocked`, and the coherence `protocol`.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Processors on the bus (4 for the base tables, 8 for §4.3.4).
    pub cpus: usize,
    /// Trace-length multiplier over each profile's default.
    pub scale: f64,
    /// Enable full runtime checking (slower; tests use it, experiment runs
    /// rely on the always-on filter-safety assertion).
    pub check: bool,
    /// Filter configurations to attach to every node.
    pub specs: Vec<FilterSpec>,
    /// Use the non-subblocked L2 variant.
    pub non_subblocked: bool,
    /// Coherence protocol to simulate (the paper's platform is MOESI).
    pub protocol: ProtocolKind,
}

impl RunOptions {
    /// The paper's default evaluation: 4-way SMP, full filter bank.
    pub fn paper() -> Self {
        Self {
            cpus: 4,
            scale: 1.0,
            check: false,
            specs: FilterSpec::paper_bank(),
            non_subblocked: false,
            protocol: ProtocolKind::Moesi,
        }
    }

    /// Scales the trace length (for quick runs and benches).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the CPU count.
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }

    /// Replaces the filter bank.
    pub fn with_specs(mut self, specs: Vec<FilterSpec>) -> Self {
        self.specs = specs;
        self
    }

    /// Switches the coherence protocol.
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Selects the non-subblocked L2 variant (the paper's platform is
    /// subblocked; the `nsb` sweep axis flips this).
    pub fn with_non_subblocked(mut self, non_subblocked: bool) -> Self {
        self.non_subblocked = non_subblocked;
        self
    }

    /// Stable machine-readable identity string, e.g.
    /// `cpus4-scale0.02-sb-moesi-paperbank22`. Every field that changes
    /// simulation output is encoded (the same fields the cache key
    /// hashes), with filter banks named by their [`FilterSpec::id`]s —
    /// the paper's 22-entry bank collapses to `paperbank22`. The run
    /// store records this so `jetty-repro diff` can tell configuration
    /// changes from output drift.
    pub fn id(&self) -> String {
        let bank = if self.specs == FilterSpec::paper_bank() {
            "paperbank22".to_owned()
        } else if self.specs.is_empty() {
            "nobank".to_owned()
        } else {
            self.specs.iter().map(|s| s.id()).collect::<Vec<_>>().join("+")
        };
        format!(
            "cpus{}-scale{}-{}-{}{}-{bank}",
            self.cpus,
            self.scale,
            if self.non_subblocked { "nsb" } else { "sb" },
            self.protocol.to_string().to_ascii_lowercase(),
            if self.check { "-check" } else { "" },
        )
    }

    /// Compact one-line description for logs and `--timings` lines, e.g.
    /// `cpus=4 scale=1 nsb=false check=false proto=MOESI bank=22`.
    pub fn describe(&self) -> String {
        format!(
            "cpus={} scale={} nsb={} check={} proto={} bank={}",
            self.cpus,
            self.scale,
            self.non_subblocked,
            self.check,
            self.protocol,
            self.specs.len()
        )
    }

    fn system_config(&self) -> SystemConfig {
        let mut config = if self.non_subblocked {
            SystemConfig::paper_4way_nsb()
        } else {
            SystemConfig::paper_4way()
        };
        config.cpus = self.cpus;
        config.protocol = self.protocol;
        if !self.check {
            config = config.without_checks();
        }
        config
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self::paper()
    }
}

// Manual key impls: `scale` is an `f64`, compared and hashed by bit
// pattern. Identical bits mean an identical trace length; NaN scales are
// rejected by `TraceGen` long before they could reach a cache.
impl PartialEq for RunOptions {
    fn eq(&self, other: &Self) -> bool {
        self.cpus == other.cpus
            && self.scale.to_bits() == other.scale.to_bits()
            && self.check == other.check
            && self.specs == other.specs
            && self.non_subblocked == other.non_subblocked
            && self.protocol == other.protocol
    }
}

impl Eq for RunOptions {}

impl Hash for RunOptions {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.cpus.hash(state);
        self.scale.to_bits().hash(state);
        self.check.hash(state);
        self.specs.hash(state);
        self.non_subblocked.hash(state);
        self.protocol.hash(state);
    }
}

/// Everything collected from one application run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// The workload profile (including the paper's targets).
    pub profile: AppProfile,
    /// Allocated footprint in bytes.
    pub footprint: u64,
    /// References executed.
    pub refs: u64,
    /// Aggregated statistics.
    pub run: RunStats,
    /// One report per filter spec, in bank order.
    pub reports: Vec<FilterReport>,
}

impl AppRun {
    /// Finds the report for a given configuration label.
    pub fn report(&self, label: &str) -> Option<&FilterReport> {
        self.reports.iter().find(|r| r.label == label)
    }

    /// Coverage of a configuration by label.
    ///
    /// # Panics
    ///
    /// Panics if the label is not in the bank (harness bug).
    pub fn coverage(&self, label: &str) -> f64 {
        self.report(label)
            .unwrap_or_else(|| panic!("configuration {label} not in the bank"))
            .coverage()
    }
}

/// Wall-clock attribution of one application run, split between the two
/// streamed stages: trace generation (refilling the chunk buffer) and
/// simulation (running each chunk through the system). Summed per suite
/// into [`SuiteTiming`](crate::engine::SuiteTiming) for `--timings`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppTiming {
    /// Time spent generating trace chunks.
    pub gen: std::time::Duration,
    /// Time spent simulating trace chunks.
    pub sim: std::time::Duration,
}

/// Runs one application.
///
/// One `TraceGen` serves both metadata and simulation: `footprint()` and
/// `len()` are whole-trace totals (fixed at construction, *not* remaining
/// counts), so reading them here costs nothing and the generator is then
/// consumed exactly once — there is no second generation pass. The debug
/// assertion pins the metadata-before-iteration invariant so a future
/// reordering cannot silently double-generate or misreport.
pub fn run_app(profile: &AppProfile, options: &RunOptions) -> AppRun {
    run_app_timed(profile, options).0
}

/// [`run_app`], also returning the generation/simulation wall-clock split.
///
/// The trace is streamed: the generator refills one reusable
/// [`System::CHUNK_LEN`]-reference buffer per iteration and the system
/// consumes it via [`System::run_chunk`] (the batched snoop fan-out), so
/// the whole trace is never materialised and the two stages can be timed
/// separately at chunk granularity (two clock reads per ~8 K references —
/// noise-level overhead).
pub fn run_app_timed(profile: &AppProfile, options: &RunOptions) -> (AppRun, AppTiming) {
    run_app_gated(profile, options, 1, &RunGate::unbounded())
        .unwrap_or_else(|e| panic!("unbounded fault-free run cannot fail: {e}"))
}

/// [`run_app_timed`] under a [`RunGate`] and the process fault plan, with
/// the run's snoop replay fanned out to `shards` slices of the node array
/// (1 = serial; shards never change results, see
/// [`System::set_shards`]). The gate (and any armed `slow-suite` fault)
/// is applied at every chunk boundary and, through
/// [`System::run_chunk_gated`], inside the per-node replay of each chunk
/// — so a deadline expiry or cooperative cancellation stops the job
/// within one chunk's worth of work. With an unbounded gate and no faults
/// armed this *is* [`run_app_timed`]: one inert fault lookup per job and
/// cheap gate checks per chunk.
pub fn run_app_gated(
    profile: &AppProfile,
    options: &RunOptions,
    shards: usize,
    gate: &RunGate,
) -> Result<(AppRun, AppTiming), JettyError> {
    let faults = fault::active();
    let slow = if faults.is_active() {
        let suite_id = options.id();
        if faults.suite_fail(&suite_id) {
            return Err(JettyError::simulation(suite_id, "injected fault: suite-fail"));
        }
        if faults.suite_panic(&suite_id) {
            panic!("injected fault: suite-panic@{suite_id}");
        }
        faults.slow_suite(&suite_id)
    } else {
        None
    };
    let stop = |reason: GateStop| match reason {
        GateStop::DeadlineExpired { budget_ms } => {
            JettyError::Deadline { suite: options.id(), budget_ms }
        }
        GateStop::Cancelled => JettyError::Cancelled { suite: options.id() },
    };
    let mut system = System::new(options.system_config(), &options.specs).with_shards(shards);
    let mut generator = TraceGen::new(profile, options.cpus, options.scale);
    let footprint = generator.footprint();
    let refs = generator.len();
    debug_assert_eq!(
        generator.size_hint().0 as u64,
        refs,
        "TraceGen metadata must be taken before iteration consumes the generator"
    );
    let mut timing = AppTiming::default();
    let mut buf = Vec::with_capacity(System::CHUNK_LEN);
    loop {
        let start = std::time::Instant::now();
        let more = generator.fill_chunk(&mut buf, System::CHUNK_LEN);
        timing.gen += start.elapsed();
        if !more {
            break;
        }
        if let Some(delay) = slow {
            std::thread::sleep(delay);
        }
        gate.check().map_err(stop)?;
        let start = std::time::Instant::now();
        system.run_chunk_gated(&buf, gate).map_err(stop)?;
        timing.sim += start.elapsed();
    }
    let run = AppRun {
        profile: profile.clone(),
        footprint,
        refs,
        run: system.run_stats(),
        reports: system.filter_reports(),
    };
    Ok((run, timing))
}

/// Runs the full ten-application suite sequentially on the calling
/// thread.
///
/// This is the single-threaded, uncached entry into the [`Engine`];
/// callers that want concurrency or suite reuse should hold an engine
/// themselves (as `jetty-repro` does).
pub fn run_suite(options: &RunOptions) -> Vec<AppRun> {
    Engine::new(1)
        .run_suite_uncached(options)
        .unwrap_or_else(|e| panic!("unbounded fault-free suite cannot fail: {e}"))
}

/// Weighted-equal average of a metric over a suite (the paper's "AVG"
/// columns average per-application values, not pooled events).
pub fn average<F: Fn(&AppRun) -> f64>(runs: &[AppRun], f: F) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(&f).sum::<f64>() / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetty_workloads::apps;

    fn quick_options() -> RunOptions {
        RunOptions::paper()
            .with_scale(0.01)
            .with_specs(vec![FilterSpec::exclude(8, 2), FilterSpec::include(6, 5, 6)])
    }

    #[test]
    fn run_app_collects_reports_in_bank_order() {
        let app = apps::fft();
        let result = run_app(&app, &quick_options());
        assert_eq!(result.reports.len(), 2);
        assert_eq!(result.reports[0].label, "EJ-8x2");
        assert_eq!(result.reports[1].label, "IJ-6x5x6");
        assert!(result.refs > 0);
        assert!(result.footprint > 0);
        assert!(result.run.nodes.l1_accesses == result.refs);
    }

    #[test]
    fn report_lookup_by_label() {
        let app = apps::lu();
        let result = run_app(&app, &quick_options());
        assert!(result.report("EJ-8x2").is_some());
        assert!(result.report("nope").is_none());
        let c = result.coverage("IJ-6x5x6");
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    #[should_panic(expected = "not in the bank")]
    fn coverage_panics_on_unknown_label() {
        let app = apps::lu();
        let result = run_app(&app, &quick_options());
        let _ = result.coverage("EJ-1024x16");
    }

    #[test]
    fn average_helper() {
        let app = apps::fft();
        let runs = vec![run_app(&app, &quick_options())];
        let avg = average(&runs, |r| r.run.nodes.l1_hit_rate());
        assert!((0.0..=1.0).contains(&avg));
        assert_eq!(average(&[], |_| 1.0), 0.0);
    }

    #[test]
    fn run_options_key_semantics() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        fn h(o: &RunOptions) -> u64 {
            let mut s = DefaultHasher::new();
            o.hash(&mut s);
            s.finish()
        }

        let base = quick_options();
        assert_eq!(base, base.clone());
        assert_eq!(h(&base), h(&base.clone()));
        assert_ne!(base, base.clone().with_cpus(8));
        assert_ne!(base, base.clone().with_scale(0.02));
        assert_ne!(base, base.clone().with_specs(vec![FilterSpec::exclude(8, 2)]));
        let mut checked = base.clone();
        checked.check = true;
        assert_ne!(base, checked);
        assert_ne!(base, base.clone().with_non_subblocked(true));
        assert_ne!(base, base.clone().with_protocol(ProtocolKind::Mesi));
        assert_ne!(
            h(&base),
            h(&base.clone().with_protocol(ProtocolKind::Msi)),
            "protocol must reach the cache key hash"
        );
    }

    #[test]
    fn run_options_id_is_stable_and_field_complete() {
        assert_eq!(RunOptions::paper().id(), "cpus4-scale1-sb-moesi-paperbank22");
        assert_eq!(
            RunOptions::paper().with_scale(0.02).id(),
            "cpus4-scale0.02-sb-moesi-paperbank22"
        );
        let base = quick_options();
        assert_eq!(base.id(), "cpus4-scale0.01-sb-moesi-ej-8x2+ij-6x5x6");
        let mut checked = base.clone();
        checked.check = true;
        let variants = [
            base.clone().with_cpus(8),
            base.clone().with_scale(0.5),
            base.clone().with_non_subblocked(true),
            base.clone().with_protocol(ProtocolKind::Msi),
            base.clone().with_specs(vec![FilterSpec::exclude(8, 2)]),
            checked,
        ];
        for variant in &variants {
            assert_ne!(base.id(), variant.id(), "{}", variant.describe());
        }
        assert_eq!(RunOptions::paper().with_specs(Vec::new()).id(), "cpus4-scale1-sb-moesi-nobank");
    }

    #[test]
    fn protocol_reaches_the_simulated_system() {
        let options = quick_options().with_protocol(ProtocolKind::Msi);
        let result = run_app(&apps::fft(), &options);
        // MSI has no Exclusive state: every first store after a read miss
        // pays an upgrade, so upgrades must strictly exceed the MOESI run.
        let moesi = run_app(&apps::fft(), &quick_options());
        assert!(
            result.run.nodes.bus_upgrades > moesi.run.nodes.bus_upgrades,
            "MSI {} vs MOESI {} upgrades",
            result.run.nodes.bus_upgrades,
            moesi.run.nodes.bus_upgrades
        );
    }

    #[test]
    fn eight_way_run_works() {
        let options = quick_options().with_cpus(8);
        let result = run_app(&apps::barnes(), &options);
        assert_eq!(result.run.system.remote_hit_hist.len(), 8);
    }

    #[test]
    fn checked_run_passes_invariants() {
        let mut options = quick_options();
        options.check = true;
        // A sharing-heavy app under full checking: protocol + filters OK.
        let _ = run_app(&apps::unstructured(), &options);
    }
}
