//! The persistent run store: an append-only, single-file record of every
//! `jetty-repro --store` invocation, giving the reproduction a durable,
//! comparable history instead of one-shot stdout.
//!
//! # Why this exists
//!
//! JETTY's claims are comparative — coverage and energy deltas across
//! configurations — and regressions in either the *output* (a silent
//! behaviour change in the simulator) or the *speed* of the reproduction
//! were previously caught only by eyeballing stdout against memory, or by
//! hand-editing `BENCH_baseline.json`. The store records each invocation's
//! typed [`ResultSet`] together with when, at what git revision, under
//! which [`RunOptions`](crate::RunOptions) id, and how long the
//! simulations took, so `jetty-repro diff` (see [`diff`]) can compare any
//! two runs cell-by-cell and CI can gate on drift.
//!
//! # File format
//!
//! A store is a single file, written only by appending (no record is ever
//! rewritten in place). It opens with a versioned header line:
//!
//! ```text
//! JETTYSTORE 1\n
//! ```
//!
//! followed by zero or more length-prefixed, checksummed frames:
//!
//! ```text
//! JREC <len:8 hex> <fnv64:16 hex>\n
//! <payload: `len` bytes of compact JSON>\n
//! ```
//!
//! The payload reuses the hand-rolled JSON writer/parser from the results
//! pipeline ([`super::results::json`]) — no new dependencies — and holds
//! one [`RunRecord`]: the metadata fields plus the full table tree, every
//! cell in its typed [`Cell`] encoding, so a parsed record reconstructs
//! the exact `ResultSet` the run produced.
//!
//! # Crash-recovery contract
//!
//! Appends happen as one `write_all` of the whole frame followed by a data
//! sync, so the only way a record can be damaged is at the **tail**: a
//! truncated or torn final frame (crash mid-append) or bytes corrupted
//! after the fact. [`RunStore::scan`] validates each frame in order —
//! magic, length, terminator, checksum, JSON shape, sequence number — and
//! on the first failure stops and *reports* the damage (offset + reason)
//! in [`ScanOutcome::damage`] instead of panicking or guessing: every
//! record before the damage is returned intact, and no intact record is
//! ever silently altered. The next [`RunStore::append`] discards the
//! damaged tail bytes (truncating back to the last intact frame boundary —
//! the standard log-recovery move) before writing, and reports that it did
//! so. The failure-injection suite (`tests/store_failure.rs`) exercises
//! truncation mid-record, bit flips in the tail frame, and torn appends
//! against exactly this contract.

pub mod diff;

use std::fs::{self, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::error::JettyError;
use crate::fault;
use crate::results::json::{self, Json};
use crate::results::{Cell, ResultSet, TableData};

/// Version of the store file layout (the `JETTYSTORE <n>` header).
pub const STORE_FORMAT_VERSION: u64 = 1;

/// Version of the record payload schema (the `"schema"` field).
pub const RECORD_SCHEMA_VERSION: u64 = 1;

/// The store header line.
const HEADER: &[u8] = b"JETTYSTORE 1\n";

/// Write attempts per [`RunStore::append`] (first try + retries). The
/// write is idempotent — every attempt starts by truncating back to the
/// intact prefix — so retrying a transient I/O failure is always safe.
const APPEND_ATTEMPTS: u32 = 3;

/// Backoff before the first retry (doubled per further retry).
const APPEND_BACKOFF: Duration = Duration::from_millis(10);

/// Frame magic (followed by one space).
const FRAME_MAGIC: &[u8] = b"JREC ";

/// Frame header length: `JREC ` + 8 hex + space + 16 hex + newline.
const FRAME_HEADER_LEN: usize = 5 + 8 + 1 + 16 + 1;

/// FNV-1a 64 over a byte slice — the frame checksum. Not cryptographic;
/// it detects the accidental corruption (bit rot, torn writes) the
/// crash-recovery contract is about.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The identity and timing metadata of one recorded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// 1-based position in the store (assigned by [`RunStore::append`];
    /// the id `jetty-repro runs` lists and `diff` refs name).
    pub seq: u64,
    /// Record schema version the payload was written with.
    pub schema: u64,
    /// Seconds since the Unix epoch at record time.
    pub unix_time: u64,
    /// Git revision of the working tree (short hash, or `unknown`).
    pub git_rev: String,
    /// The subcommands of the recorded invocation, space-joined.
    pub command: String,
    /// The invocation's base [`RunOptions::id`](crate::RunOptions::id).
    pub options: String,
    /// Wall-clock of the invocation's suite simulations, in milliseconds
    /// (0 when nothing simulated). The quantity `diff --timing-band`
    /// gates on.
    pub timing_ms: u64,
}

impl RunMeta {
    /// Compact `#seq@git` label for summaries and logs.
    pub fn label(&self) -> String {
        format!("#{}@{}", self.seq, self.git_rev)
    }
}

/// What [`RunStore::append`] records: everything of [`RunMeta`] except the
/// store-assigned sequence number and schema version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunInfo {
    /// Seconds since the Unix epoch (see [`unix_time_now`]).
    pub unix_time: u64,
    /// Git revision (see [`git_rev`]).
    pub git_rev: String,
    /// Space-joined subcommands of the invocation.
    pub command: String,
    /// The invocation's base [`RunOptions::id`](crate::RunOptions::id).
    pub options: String,
    /// Suite-simulation wall-clock in milliseconds.
    pub timing_ms: u64,
}

/// One recorded run: metadata plus the full typed result tree.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Identity and timing.
    pub meta: RunMeta,
    /// The tables the run produced, cell-for-cell.
    pub results: ResultSet,
}

impl RunRecord {
    /// Total number of data cells across all tables.
    pub fn cell_count(&self) -> u64 {
        self.results.tables.iter().flat_map(|t| &t.rows).map(|r| r.len() as u64).sum()
    }
}

/// A damaged (unreadable) tail reported by [`RunStore::scan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TailDamage {
    /// Byte offset of the first frame that failed validation.
    pub offset: u64,
    /// Human-readable reason (truncation, checksum mismatch, ...).
    pub reason: String,
}

/// Everything a full scan of a store file yields.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScanOutcome {
    /// Every intact record, in append order.
    pub records: Vec<RunRecord>,
    /// The damage that ended the scan early, if any.
    pub damage: Option<TailDamage>,
    /// Byte length of the intact prefix (header + intact frames) — where
    /// the next append will write.
    pub intact_len: u64,
}

/// Outcome of one append.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Sequence number assigned to the new record.
    pub seq: u64,
    /// The damaged tail that was discarded (truncated away) to make room,
    /// if the file had one.
    pub recovered: Option<TailDamage>,
}

/// A reference to one run inside a store: a sequence number or the most
/// recent record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunRef {
    /// The highest-numbered intact record.
    Latest,
    /// An explicit 1-based sequence number.
    Seq(u64),
}

impl RunRef {
    /// Parses `latest` or a positive integer.
    pub fn parse(s: &str) -> Option<RunRef> {
        if s.eq_ignore_ascii_case("latest") {
            return Some(RunRef::Latest);
        }
        s.parse::<u64>().ok().filter(|&n| n >= 1).map(RunRef::Seq)
    }
}

/// An append-only run store bound to one file path. Construction does no
/// I/O; a missing file reads as an empty store and is created on first
/// append.
#[derive(Clone, Debug)]
pub struct RunStore {
    path: PathBuf,
}

impl RunStore {
    /// Binds a store to a path (no I/O).
    pub fn open(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The file path this store reads and appends.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A [`JettyError::Store`] bound to this store's path.
    fn err(&self, message: impl Into<String>) -> JettyError {
        JettyError::store(self.path.display().to_string(), message)
    }

    /// Reads and validates the whole file. Damage never panics and never
    /// hides intact records: everything before the first bad frame is
    /// returned, with the damage described in [`ScanOutcome::damage`].
    /// A missing file is an empty store. Returns `Err` only for I/O
    /// failures and files that are not run stores at all (wrong or
    /// unsupported header).
    pub fn scan(&self) -> Result<ScanOutcome, JettyError> {
        let bytes = match fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ScanOutcome::default()),
            Err(e) => return Err(self.err(format!("cannot read the store: {e}"))),
        };
        scan_bytes(&bytes).map_err(|reason| self.err(reason))
    }

    /// Appends one record, assigning it the next sequence number, and
    /// syncs the file. If the file ends in a damaged tail (crash debris),
    /// the damaged bytes are discarded first — intact records are never
    /// touched — and the recovery is reported in the outcome.
    ///
    /// Transient write failures are retried up to `APPEND_ATTEMPTS`
    /// times with doubling backoff; every attempt re-truncates to the
    /// intact prefix first, so a torn partial write from a failed attempt
    /// can never survive into the file. Exhausting the retries yields one
    /// clean [`JettyError::Store`] — the store itself stays intact.
    pub fn append(&self, info: &RunInfo, results: &ResultSet) -> Result<AppendOutcome, JettyError> {
        let scan = self.scan()?;
        let seq = scan.records.len() as u64 + 1;
        let record = RunRecord {
            meta: RunMeta {
                seq,
                schema: RECORD_SCHEMA_VERSION,
                unix_time: info.unix_time,
                git_rev: info.git_rev.clone(),
                command: info.command.clone(),
                options: info.options.clone(),
                timing_ms: info.timing_ms,
            },
            results: results.clone(),
        };
        let payload = record_to_json(&record);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + 1);
        frame.extend_from_slice(FRAME_MAGIC);
        frame.extend_from_slice(format!("{:08x}", payload.len()).as_bytes());
        frame.push(b' ');
        frame.extend_from_slice(format!("{:016x}", fnv64(payload.as_bytes())).as_bytes());
        frame.push(b'\n');
        frame.extend_from_slice(payload.as_bytes());
        frame.push(b'\n');

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)
            .map_err(|e| self.err(format!("cannot open the store: {e}")))?;
        let write = |file: &mut fs::File| -> std::io::Result<()> {
            // Discard crash debris past the intact prefix, then append the
            // header (first record only) and the new frame as one write.
            file.set_len(scan.intact_len)?;
            file.seek(SeekFrom::End(0))?;
            if scan.intact_len == 0 {
                file.write_all(HEADER)?;
            }
            file.write_all(&frame)?;
            file.sync_data()
        };
        let mut backoff = APPEND_BACKOFF;
        let mut last_error = String::new();
        for attempt in 1..=APPEND_ATTEMPTS {
            // The injection point sits where a real device error would
            // surface: instead of the write, not around it, so an injected
            // failure leaves the file exactly as a refused write would.
            let result = if fault::active().store_write_error(seq) {
                Err(std::io::Error::other("injected fault: store-write-err"))
            } else {
                write(&mut file)
            };
            match result {
                Ok(()) => return Ok(AppendOutcome { seq, recovered: scan.damage }),
                Err(e) => {
                    last_error = e.to_string();
                    if attempt < APPEND_ATTEMPTS {
                        eprintln!(
                            "[store] append of record #{seq} failed (attempt \
                             {attempt}/{APPEND_ATTEMPTS}: {e}); retrying in {} ms",
                            backoff.as_millis()
                        );
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
            }
        }
        Err(self.err(format!(
            "append of record #{seq} failed after {APPEND_ATTEMPTS} attempts: {last_error} \
             (intact records are untouched)"
        )))
    }

    /// Resolves a [`RunRef`] against a scan's record list.
    pub fn resolve<'a>(
        &self,
        scan: &'a ScanOutcome,
        rf: RunRef,
    ) -> Result<&'a RunRecord, JettyError> {
        let found = match rf {
            RunRef::Latest => scan.records.last(),
            RunRef::Seq(n) => scan.records.iter().find(|r| r.meta.seq == n),
        };
        found.ok_or_else(|| {
            let want = match rf {
                RunRef::Latest => "latest".to_owned(),
                RunRef::Seq(n) => n.to_string(),
            };
            self.err(format!("run {want} not found ({} intact runs)", scan.records.len()))
        })
    }
}

/// Validates header + frames of a whole store image (pure; the unit the
/// failure-injection tests drive directly). `Err` is reserved for files
/// that are not run stores at all — appending would destroy them, so they
/// are never treated as recoverable damage.
fn scan_bytes(bytes: &[u8]) -> Result<ScanOutcome, String> {
    if bytes.is_empty() {
        return Ok(ScanOutcome::default());
    }
    if !bytes.starts_with(HEADER) {
        if HEADER.starts_with(bytes) {
            // A crash during store creation left a partial header: nothing
            // was recorded yet, so nothing is lost — report and carry on.
            return Ok(ScanOutcome {
                records: Vec::new(),
                damage: Some(TailDamage { offset: 0, reason: "truncated store header".to_owned() }),
                intact_len: 0,
            });
        }
        return Err(format!(
            "not a jetty run store (missing `JETTYSTORE {STORE_FORMAT_VERSION}` header, \
             or unsupported store version)"
        ));
    }

    let mut records = Vec::new();
    let mut pos = HEADER.len();
    let damage = loop {
        if pos == bytes.len() {
            break None;
        }
        match parse_frame(&bytes[pos..], records.len() as u64 + 1) {
            Ok((record, frame_len)) => {
                records.push(record);
                pos += frame_len;
            }
            Err(reason) => break Some(TailDamage { offset: pos as u64, reason }),
        }
    };
    Ok(ScanOutcome { records, damage, intact_len: pos as u64 })
}

/// Parses one frame at the start of `bytes`, expecting sequence number
/// `want_seq`. Returns the record and the frame's total byte length.
fn parse_frame(bytes: &[u8], want_seq: u64) -> Result<(RunRecord, usize), String> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err("truncated frame header (torn append)".to_owned());
    }
    let header = &bytes[..FRAME_HEADER_LEN];
    if !header.starts_with(FRAME_MAGIC) {
        return Err("corrupt frame header (bad magic)".to_owned());
    }
    let hex_u64 = |slice: &[u8], what: &str| -> Result<u64, String> {
        std::str::from_utf8(slice)
            .ok()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| format!("corrupt frame header (bad {what})"))
    };
    let len = hex_u64(&header[5..13], "length")? as usize;
    if header[13] != b' ' || header[FRAME_HEADER_LEN - 1] != b'\n' {
        return Err("corrupt frame header (bad separators)".to_owned());
    }
    let checksum = hex_u64(&header[14..30], "checksum")?;
    let payload_start = FRAME_HEADER_LEN;
    // The frame needs `len` payload bytes plus the trailing newline.
    let Some(payload_end) = payload_start.checked_add(len).filter(|&e| e < bytes.len()) else {
        return Err(format!(
            "truncated payload (frame claims {len} bytes, {} remain — torn append)",
            bytes.len() - payload_start
        ));
    };
    let payload = &bytes[payload_start..payload_end];
    if bytes[payload_end] != b'\n' {
        return Err("missing record terminator".to_owned());
    }
    if fnv64(payload) != checksum {
        return Err("checksum mismatch (corrupted record)".to_owned());
    }
    let text = std::str::from_utf8(payload).map_err(|_| "record is not UTF-8".to_owned())?;
    let parsed = Json::parse(text).map_err(|e| format!("unparseable record JSON: {e}"))?;
    let record = record_from_json(&parsed)?;
    if record.meta.seq != want_seq {
        return Err(format!(
            "sequence mismatch (record claims #{}, position implies #{want_seq})",
            record.meta.seq
        ));
    }
    Ok((record, payload_end + 1))
}

/// Serializes a record as one compact JSON document (the frame payload).
/// Exact inverse of [`record_from_json`].
fn record_to_json(record: &RunRecord) -> String {
    use std::fmt::Write as _;
    let m = &record.meta;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        r#"{{"schema":{},"seq":{},"unix_time":{},"git_rev":{},"command":{},"options":{},"timing_ms":{},"tables":["#,
        m.schema,
        m.seq,
        m.unix_time,
        json::quote(&m.git_rev),
        json::quote(&m.command),
        json::quote(&m.options),
        m.timing_ms
    );
    for (i, table) in record.results.tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_table(&mut out, table);
    }
    out.push_str("]}");
    out
}

/// Appends one table's compact JSON object.
fn write_table(out: &mut String, table: &TableData) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        r#"{{"id":{},"title":{},"columns":["#,
        json::quote(&table.id),
        json::quote(&table.title)
    );
    for (i, column) in table.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json::quote(column));
    }
    out.push_str(r#"],"rows":["#);
    for (i, row) in table.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            cell.write_json(out);
        }
        out.push(']');
    }
    out.push_str("]}");
}

/// Rebuilds a record from its parsed payload JSON.
fn record_from_json(value: &Json) -> Result<RunRecord, String> {
    let u = |key: &str| {
        value.get(key).and_then(Json::as_u64).ok_or_else(|| format!("record lacks {key:?}"))
    };
    let s = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("record lacks {key:?}"))
    };
    let schema = u("schema")?;
    if schema > RECORD_SCHEMA_VERSION {
        return Err(format!(
            "record schema {schema} is newer than this binary supports ({RECORD_SCHEMA_VERSION})"
        ));
    }
    let meta = RunMeta {
        seq: u("seq")?,
        schema,
        unix_time: u("unix_time")?,
        git_rev: s("git_rev")?,
        command: s("command")?,
        options: s("options")?,
        timing_ms: u("timing_ms")?,
    };
    let tables = value
        .get("tables")
        .and_then(Json::as_array)
        .ok_or_else(|| "record lacks \"tables\"".to_owned())?;
    let mut results = ResultSet::new();
    for table in tables {
        results.push(table_from_json(table)?);
    }
    Ok(RunRecord { meta, results })
}

/// Rebuilds one table from its compact JSON object.
fn table_from_json(value: &Json) -> Result<TableData, String> {
    let text = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("table lacks {key:?}"))
    };
    let mut table = TableData::new(text("id")?, text("title")?);
    let columns = value
        .get("columns")
        .and_then(Json::as_array)
        .ok_or_else(|| "table lacks \"columns\"".to_owned())?;
    table.columns = columns
        .iter()
        .map(|c| c.as_str().map(str::to_owned).ok_or_else(|| "non-string column".to_owned()))
        .collect::<Result<_, _>>()?;
    let rows = value
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| "table lacks \"rows\"".to_owned())?;
    for row in rows {
        let cells = row.as_array().ok_or_else(|| "non-array row".to_owned())?;
        let mut parsed = Vec::with_capacity(cells.len());
        for cell in cells {
            parsed.push(
                Cell::from_json(cell).ok_or_else(|| "unrecognised cell encoding".to_owned())?,
            );
        }
        // Bypass `TableData::row`'s width assertion: a record from a
        // different version is data to report on, not a harness invariant
        // to die over.
        table.rows.push(parsed);
    }
    Ok(table)
}

/// Seconds since the Unix epoch. The `JETTY_STORE_NOW` environment
/// variable overrides the clock (determinism for golden tests and the
/// committed CI reference record).
pub fn unix_time_now() -> u64 {
    if let Some(pinned) =
        std::env::var("JETTY_STORE_NOW").ok().and_then(|v| v.trim().parse::<u64>().ok())
    {
        return pinned;
    }
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The working tree's git revision (short hash). The `JETTY_GIT_REV`
/// environment variable overrides it (determinism for tests); `unknown`
/// when git is unavailable.
pub fn git_rev() -> String {
    if let Ok(pinned) = std::env::var("JETTY_GIT_REV") {
        let pinned = pinned.trim().to_owned();
        if !pinned.is_empty() {
            return pinned;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("jetty_store_mod_{}_{name}", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    fn sample_set(tag: &str) -> ResultSet {
        let mut t = TableData::new("t1", format!("demo table {tag}"));
        t.headers(["app", "coverage", "label"]);
        t.row([Cell::label("ba"), Cell::Ratio(0.471), Cell::text_cell("a, \"b\"")]);
        t.row([Cell::label("fft"), Cell::Ratio(0.03), Cell::text_cell("4 x 32x32")]);
        let mut set = ResultSet::new();
        set.push(t);
        set
    }

    fn info(tag: &str) -> RunInfo {
        RunInfo {
            unix_time: 1_700_000_000,
            git_rev: "abc123".into(),
            command: "all".into(),
            options: format!("cpus4-scale0.02-{tag}"),
            timing_ms: 1234,
        }
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let store = RunStore::open(tmp("missing"));
        let scan = store.scan().unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.damage.is_none());
        assert_eq!(scan.intact_len, 0);
    }

    #[test]
    fn append_then_scan_round_trips_records_in_order() {
        let path = tmp("roundtrip");
        let store = RunStore::open(&path);
        let a = store.append(&info("a"), &sample_set("a")).unwrap();
        let b = store.append(&info("b"), &sample_set("b")).unwrap();
        assert_eq!((a.seq, b.seq), (1, 2));
        assert!(a.recovered.is_none() && b.recovered.is_none());

        let scan = store.scan().unwrap();
        assert!(scan.damage.is_none());
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].meta.seq, 1);
        assert_eq!(scan.records[0].meta.options, "cpus4-scale0.02-a");
        assert_eq!(scan.records[1].results, sample_set("b"));
        assert_eq!(scan.records[0].cell_count(), 6);
        assert_eq!(scan.intact_len, fs::metadata(&path).unwrap().len());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn store_file_is_headed_and_line_framed() {
        let path = tmp("framing");
        let store = RunStore::open(&path);
        store.append(&info("a"), &sample_set("a")).unwrap();
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"JETTYSTORE 1\nJREC "));
        assert_eq!(*bytes.last().unwrap(), b'\n');
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resolve_finds_latest_and_seq_and_reports_unknowns() {
        let path = tmp("resolve");
        let store = RunStore::open(&path);
        store.append(&info("a"), &sample_set("a")).unwrap();
        store.append(&info("b"), &sample_set("b")).unwrap();
        let scan = store.scan().unwrap();
        assert_eq!(store.resolve(&scan, RunRef::Latest).unwrap().meta.seq, 2);
        assert_eq!(store.resolve(&scan, RunRef::Seq(1)).unwrap().meta.seq, 1);
        let err = store.resolve(&scan, RunRef::Seq(9)).unwrap_err();
        assert_eq!(err.kind(), "store");
        let text = err.to_string();
        assert!(text.contains("run 9 not found"), "{text}");
        assert!(text.contains("2 intact runs"), "{text}");
        assert!(text.contains(&path.display().to_string()), "{text}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn run_ref_parsing() {
        assert_eq!(RunRef::parse("latest"), Some(RunRef::Latest));
        assert_eq!(RunRef::parse("LATEST"), Some(RunRef::Latest));
        assert_eq!(RunRef::parse("3"), Some(RunRef::Seq(3)));
        assert_eq!(RunRef::parse("0"), None);
        assert_eq!(RunRef::parse("-1"), None);
        assert_eq!(RunRef::parse("first"), None);
    }

    #[test]
    fn foreign_files_are_refused_without_panicking() {
        let path = tmp("foreign");
        fs::write(&path, b"{\"schema\": 5}\n").unwrap();
        let store = RunStore::open(&path);
        let err = store.scan().unwrap_err();
        assert_eq!(err.kind(), "store");
        assert!(err.to_string().contains("not a jetty run store"), "{err}");
        // And appending must refuse too — never destroy a foreign file.
        let append_err = store.append(&info("x"), &sample_set("x")).unwrap_err();
        assert!(append_err.to_string().contains("not a jetty run store"), "{append_err}");
        assert_eq!(fs::read(&path).unwrap(), b"{\"schema\": 5}\n", "foreign file untouched");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn future_record_schema_is_damage_not_panic() {
        let record = RunRecord {
            meta: RunMeta {
                seq: 1,
                schema: RECORD_SCHEMA_VERSION,
                unix_time: 0,
                git_rev: "g".into(),
                command: "all".into(),
                options: "o".into(),
                timing_ms: 0,
            },
            results: sample_set("x"),
        };
        let payload = record_to_json(&record).replace("\"schema\":1", "\"schema\":99");
        let mut file = HEADER.to_vec();
        file.extend_from_slice(FRAME_MAGIC);
        file.extend_from_slice(format!("{:08x}", payload.len()).as_bytes());
        file.push(b' ');
        file.extend_from_slice(format!("{:016x}", fnv64(payload.as_bytes())).as_bytes());
        file.push(b'\n');
        file.extend_from_slice(payload.as_bytes());
        file.push(b'\n');
        let scan = scan_bytes(&file).unwrap();
        assert!(scan.records.is_empty());
        let damage = scan.damage.expect("future schema must be reported");
        assert!(damage.reason.contains("newer than this binary"), "{}", damage.reason);
    }

    #[test]
    fn record_json_round_trips_metadata_with_hostile_strings() {
        let record = RunRecord {
            meta: RunMeta {
                seq: 7,
                schema: RECORD_SCHEMA_VERSION,
                unix_time: 42,
                git_rev: "déad,\"beef\"\n".into(),
                command: "all sweep".into(),
                options: "cpus4,\"x\"+😀".into(),
                timing_ms: u64::from(u32::MAX) + 3,
            },
            results: sample_set("hostile"),
        };
        let payload = record_to_json(&record);
        let parsed = Json::parse(&payload).expect("record payload must be valid JSON");
        assert_eq!(record_from_json(&parsed).unwrap(), record);
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
