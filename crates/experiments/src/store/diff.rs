//! Cell-level comparison of two recorded runs.
//!
//! [`diff_runs`] walks the typed table trees of two [`RunRecord`]s and
//! reports every difference with exact coordinates — table id, 1-based
//! row, column name — rather than a textual diff, because the store keeps
//! the typed [`Cell`]s, not their rendering. Output values are compared
//! **exactly** (the simulator is deterministic; any cell change is drift
//! by definition), while the run-level suite timing is compared through
//! an optional tolerance band (`--timing-band PCT`), since wall-clock is
//! never exactly reproducible. The report converts to a [`ResultSet`] so
//! the ordinary text/JSON/CSV renderers present it — the CI regression
//! gate is just `jetty-repro diff` + a non-zero exit on drift or an
//! out-of-band timing.

use crate::results::{Cell, ResultSet, TableData};

use super::{RunMeta, RunRecord};

/// Knobs for [`diff_runs`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiffOptions {
    /// Allowed timing growth from run A to run B, in percent. `None`
    /// disables the timing check entirely; `Some(10.0)` fails runs more
    /// than 10% slower than their baseline. Only slowdowns regress —
    /// getting faster is never an error.
    pub timing_band_pct: Option<f64>,
}

/// What kind of difference a [`DiffEntry`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// A cell holds a different value.
    Cell,
    /// Run metadata differs (command or options id) — the runs were not
    /// produced by equivalent invocations.
    Metadata,
    /// A table exists only in run A.
    TableOnlyInA,
    /// A table exists only in run B.
    TableOnlyInB,
    /// A table's title changed.
    Title,
    /// A table's column headers changed.
    Columns,
    /// A table's row count changed.
    RowCount,
    /// A row's cell count changed (ragged data from a damaged or foreign
    /// record).
    RowWidth,
}

impl DiffKind {
    /// Short lower-case tag used in the rendered drift table.
    pub fn tag(self) -> &'static str {
        match self {
            DiffKind::Cell => "cell",
            DiffKind::Metadata => "metadata",
            DiffKind::TableOnlyInA => "only-in-a",
            DiffKind::TableOnlyInB => "only-in-b",
            DiffKind::Title => "title",
            DiffKind::Columns => "columns",
            DiffKind::RowCount => "row-count",
            DiffKind::RowWidth => "row-width",
        }
    }
}

/// One reported difference, with the exact coordinates where it lives.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffEntry {
    /// What changed.
    pub kind: DiffKind,
    /// Table id (or `(run)` for metadata-level differences).
    pub table: String,
    /// 1-based row number, when the difference is row-scoped.
    pub row: Option<usize>,
    /// Column name (or index as text when headers are missing), when the
    /// difference is cell-scoped.
    pub column: Option<String>,
    /// The value in run A.
    pub a: String,
    /// The value in run B.
    pub b: String,
}

impl DiffEntry {
    /// `table[:row][:column]` — the coordinate string shown in reports.
    pub fn location(&self) -> String {
        let mut loc = self.table.clone();
        if let Some(row) = self.row {
            loc.push_str(&format!(":row {row}"));
        }
        if let Some(column) = &self.column {
            loc.push_str(&format!(":{column}"));
        }
        loc
    }
}

/// The full outcome of comparing two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// Metadata of run A (the baseline).
    pub a: RunMeta,
    /// Metadata of run B (the candidate).
    pub b: RunMeta,
    /// Every difference found, in table order.
    pub entries: Vec<DiffEntry>,
    /// How many cell pairs were compared exactly.
    pub cells_compared: u64,
    /// The timing band the comparison ran with.
    pub options: DiffOptions,
}

impl DiffReport {
    /// `true` when any output difference was found (timing excluded).
    pub fn has_drift(&self) -> bool {
        !self.entries.is_empty()
    }

    /// B's suite timing as a multiple of A's (`1.0` = identical;
    /// `None` when A recorded no timing to compare against).
    pub fn timing_ratio(&self) -> Option<f64> {
        if self.a.timing_ms == 0 {
            return None;
        }
        Some(self.b.timing_ms as f64 / self.a.timing_ms as f64)
    }

    /// `true` when a timing band is set and run B exceeded it.
    pub fn timing_regressed(&self) -> bool {
        match (self.options.timing_band_pct, self.timing_ratio()) {
            (Some(band), Some(ratio)) => ratio > 1.0 + band / 100.0,
            _ => false,
        }
    }

    /// `true` when the comparison found neither drift nor a timing
    /// regression — the CI gate's pass condition.
    pub fn is_clean(&self) -> bool {
        !self.has_drift() && !self.timing_regressed()
    }

    /// One-word outcome: `clean`, `drift`, `timing-regression`, or
    /// `drift+timing-regression`.
    pub fn verdict(&self) -> &'static str {
        match (self.has_drift(), self.timing_regressed()) {
            (false, false) => "clean",
            (true, false) => "drift",
            (false, true) => "timing-regression",
            (true, true) => "drift+timing-regression",
        }
    }

    /// Renders the report as tables for the ordinary [`Renderer`]s
    /// (text/JSON/CSV): a run-summary table, the drift table (one row per
    /// difference, empty when clean), and a verdict table.
    ///
    /// [`Renderer`]: crate::results::render::Renderer
    pub fn to_result_set(&self) -> ResultSet {
        let mut set = ResultSet::new();

        let mut summary = TableData::new("diff_summary", "run comparison");
        summary.headers(["field", "run A", "run B"]);
        let pair = |field: &str, a: String, b: String| {
            [Cell::label(field), Cell::text_cell(a), Cell::text_cell(b)]
        };
        summary.row(pair("run", self.a.label(), self.b.label()));
        summary.row(pair("command", self.a.command.clone(), self.b.command.clone()));
        summary.row(pair("options", self.a.options.clone(), self.b.options.clone()));
        summary.row([
            Cell::label("recorded (unix)"),
            Cell::Count(self.a.unix_time),
            Cell::Count(self.b.unix_time),
        ]);
        summary.row([
            Cell::label("suite timing (ms)"),
            Cell::Count(self.a.timing_ms),
            Cell::Count(self.b.timing_ms),
        ]);
        set.push(summary);

        let mut drift = TableData::new("diff_drift", "drift");
        drift.headers(["table", "row", "column", "run A", "run B", "kind"]);
        for entry in &self.entries {
            drift.row([
                Cell::label(entry.table.clone()),
                entry.row.map_or(Cell::Empty, |r| Cell::Count(r as u64)),
                entry.column.clone().map_or(Cell::Empty, Cell::label),
                Cell::text_cell(entry.a.clone()),
                Cell::text_cell(entry.b.clone()),
                Cell::label(entry.kind.tag()),
            ]);
        }
        set.push(drift);

        let mut verdict = TableData::new("diff_verdict", "verdict");
        verdict.headers(["metric", "value"]);
        verdict.row([Cell::label("cells compared"), Cell::Count(self.cells_compared)]);
        verdict.row([Cell::label("drift entries"), Cell::Count(self.entries.len() as u64)]);
        verdict.row([
            Cell::label("timing ratio (B/A)"),
            self.timing_ratio().map_or(Cell::text_cell("n/a"), |r| Cell::Fixed { value: r, dp: 3 }),
        ]);
        verdict.row([
            Cell::label("timing band"),
            self.options
                .timing_band_pct
                .map_or(Cell::text_cell("off"), |b| Cell::text_cell(format!("{b}%"))),
        ]);
        verdict.row([Cell::label("verdict"), Cell::label(self.verdict())]);
        set.push(verdict);

        set
    }
}

/// How a cell is shown in the drift table: its historical text rendering,
/// unless two *different* cells render to the same text (a sub-0.1%
/// ratio change, say) — then the unambiguous JSON encoding is shown.
fn cell_repr(cell: &Cell, other: &Cell) -> String {
    let text = cell.text();
    if text == other.text() && cell != other {
        let mut json = String::new();
        cell.write_json(&mut json);
        return json;
    }
    if text.is_empty() {
        "(empty)".to_owned()
    } else {
        text
    }
}

/// Compares two recorded runs cell-by-cell. Every difference in the
/// result tables (and in the runs' command/options identity) becomes a
/// [`DiffEntry`] with exact coordinates; run timing is judged separately
/// against [`DiffOptions::timing_band_pct`].
pub fn diff_runs(a: &RunRecord, b: &RunRecord, options: DiffOptions) -> DiffReport {
    let mut entries = Vec::new();
    let mut cells_compared: u64 = 0;

    let meta_entry = |field: &str, av: &str, bv: &str| DiffEntry {
        kind: DiffKind::Metadata,
        table: "(run)".to_owned(),
        row: None,
        column: Some(field.to_owned()),
        a: av.to_owned(),
        b: bv.to_owned(),
    };
    if a.meta.command != b.meta.command {
        entries.push(meta_entry("command", &a.meta.command, &b.meta.command));
    }
    if a.meta.options != b.meta.options {
        entries.push(meta_entry("options", &a.meta.options, &b.meta.options));
    }

    for ta in &a.results.tables {
        let Some(tb) = b.results.tables.iter().find(|t| t.id == ta.id) else {
            entries.push(DiffEntry {
                kind: DiffKind::TableOnlyInA,
                table: ta.id.clone(),
                row: None,
                column: None,
                a: ta.title.clone(),
                b: "(absent)".to_owned(),
            });
            continue;
        };
        diff_tables(ta, tb, &mut entries, &mut cells_compared);
    }
    for tb in &b.results.tables {
        if !a.results.tables.iter().any(|t| t.id == tb.id) {
            entries.push(DiffEntry {
                kind: DiffKind::TableOnlyInB,
                table: tb.id.clone(),
                row: None,
                column: None,
                a: "(absent)".to_owned(),
                b: tb.title.clone(),
            });
        }
    }

    DiffReport { a: a.meta.clone(), b: b.meta.clone(), entries, cells_compared, options }
}

/// Compares two same-id tables, appending entries for every difference.
fn diff_tables(
    a: &TableData,
    b: &TableData,
    entries: &mut Vec<DiffEntry>,
    cells_compared: &mut u64,
) {
    let push = |entries: &mut Vec<DiffEntry>, kind, row, column, av: String, bv: String| {
        entries.push(DiffEntry { kind, table: a.id.clone(), row, column, a: av, b: bv });
    };
    if a.title != b.title {
        push(entries, DiffKind::Title, None, None, a.title.clone(), b.title.clone());
    }
    if a.columns != b.columns {
        push(entries, DiffKind::Columns, None, None, a.columns.join("|"), b.columns.join("|"));
    }
    if a.rows.len() != b.rows.len() {
        push(
            entries,
            DiffKind::RowCount,
            None,
            None,
            format!("{} rows", a.rows.len()),
            format!("{} rows", b.rows.len()),
        );
    }
    // Cell-compare the rows both runs have; extra rows are already
    // reported by the row-count entry above.
    for (i, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        let row = Some(i + 1);
        if ra.len() != rb.len() {
            push(
                entries,
                DiffKind::RowWidth,
                row,
                None,
                format!("{} cells", ra.len()),
                format!("{} cells", rb.len()),
            );
        }
        for (j, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            *cells_compared += 1;
            if ca != cb {
                let column =
                    a.columns.get(j).cloned().unwrap_or_else(|| format!("column {}", j + 1));
                push(
                    entries,
                    DiffKind::Cell,
                    row,
                    Some(column),
                    cell_repr(ca, cb),
                    cell_repr(cb, ca),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{RunMeta, RECORD_SCHEMA_VERSION};
    use super::*;

    fn meta(seq: u64, timing_ms: u64) -> RunMeta {
        RunMeta {
            seq,
            schema: RECORD_SCHEMA_VERSION,
            unix_time: 100 + seq,
            git_rev: "abc123".into(),
            command: "all".into(),
            options: "cpus4-scale0.02".into(),
            timing_ms,
        }
    }

    fn sample_run(seq: u64, timing_ms: u64) -> RunRecord {
        let mut t = TableData::new("table2", "Table 2: coverage");
        t.headers(["app", "coverage", "snoops"]);
        t.row([Cell::label("ba"), Cell::Ratio(0.471), Cell::Millions(47_100_000)]);
        t.row([Cell::label("fft"), Cell::Ratio(0.03), Cell::Millions(1_000_000)]);
        let mut u = TableData::new("fig6", "Figure 6: energy");
        u.headers(["app", "energy"]);
        u.row([Cell::label("ba"), Cell::EnergyUj(12.34)]);
        let mut results = ResultSet::new();
        results.push(t);
        results.push(u);
        RunRecord { meta: meta(seq, timing_ms), results }
    }

    #[test]
    fn identical_runs_diff_clean() {
        let a = sample_run(1, 1000);
        let b = sample_run(2, 1000);
        let report = diff_runs(&a, &b, DiffOptions { timing_band_pct: Some(10.0) });
        assert!(report.entries.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.verdict(), "clean");
        assert_eq!(report.cells_compared, 8);
    }

    #[test]
    fn injected_cell_drift_names_table_row_and_column() {
        let a = sample_run(1, 1000);
        let mut b = sample_run(2, 1000);
        b.results.tables[0].rows[1][1] = Cell::Ratio(0.9);
        let report = diff_runs(&a, &b, DiffOptions::default());
        assert_eq!(report.entries.len(), 1);
        let entry = &report.entries[0];
        assert_eq!(entry.kind, DiffKind::Cell);
        assert_eq!(entry.table, "table2");
        assert_eq!(entry.row, Some(2), "row coordinates are 1-based");
        assert_eq!(entry.column.as_deref(), Some("coverage"));
        assert_eq!((entry.a.as_str(), entry.b.as_str()), ("3.0%", "90.0%"));
        assert_eq!(entry.location(), "table2:row 2:coverage");
        assert_eq!(report.verdict(), "drift");
        assert!(!report.is_clean());
    }

    #[test]
    fn sub_rendering_drift_falls_back_to_json_repr() {
        // Both cells render "47.1%" — the drift must still be visible.
        let a = sample_run(1, 0);
        let mut b = sample_run(2, 0);
        b.results.tables[0].rows[0][1] = Cell::Ratio(0.47100001);
        let report = diff_runs(&a, &b, DiffOptions::default());
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].a, r#"{"kind":"ratio","value":0.471}"#);
        assert_eq!(report.entries[0].b, r#"{"kind":"ratio","value":0.47100001}"#);
    }

    #[test]
    fn structural_differences_are_reported_per_kind() {
        let a = sample_run(1, 0);
        let mut b = sample_run(2, 0);
        b.results.tables[0].title = "Table 2: renamed".into();
        b.results.tables[0].columns[2] = "probes".into();
        b.results.tables[0].rows.pop();
        b.results.tables.remove(1);
        let mut extra = TableData::new("fig9", "Figure 9: new");
        extra.headers(["x"]);
        extra.row([Cell::Count(1)]);
        b.results.push(extra);

        let report = diff_runs(&a, &b, DiffOptions::default());
        let kinds: Vec<DiffKind> = report.entries.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DiffKind::Title,
                DiffKind::Columns,
                DiffKind::RowCount,
                DiffKind::TableOnlyInA,
                DiffKind::TableOnlyInB,
            ]
        );
        let only_a = &report.entries[3];
        assert_eq!((only_a.table.as_str(), only_a.b.as_str()), ("fig6", "(absent)"));
    }

    #[test]
    fn metadata_mismatch_is_drift() {
        let a = sample_run(1, 0);
        let mut b = sample_run(2, 0);
        b.meta.options = "cpus8-scale0.02".into();
        let report = diff_runs(&a, &b, DiffOptions::default());
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].kind, DiffKind::Metadata);
        assert_eq!(report.entries[0].table, "(run)");
        assert_eq!(report.entries[0].column.as_deref(), Some("options"));
    }

    #[test]
    fn ragged_rows_from_foreign_records_are_row_width_not_panic() {
        let a = sample_run(1, 0);
        let mut b = sample_run(2, 0);
        b.results.tables[0].rows[0].pop();
        let report = diff_runs(&a, &b, DiffOptions::default());
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].kind, DiffKind::RowWidth);
        assert_eq!(report.entries[0].row, Some(1));
    }

    #[test]
    fn timing_band_flags_only_out_of_band_slowdowns() {
        let a = sample_run(1, 1000);
        let within = RunRecord { meta: meta(2, 1099), results: a.results.clone() };
        let outside = RunRecord { meta: meta(2, 1101), results: a.results.clone() };
        let faster = RunRecord { meta: meta(2, 10), results: a.results.clone() };
        let band = DiffOptions { timing_band_pct: Some(10.0) };

        assert!(diff_runs(&a, &within, band).is_clean());
        let bad = diff_runs(&a, &outside, band);
        assert!(bad.timing_regressed());
        assert!(!bad.has_drift(), "timing is banded, not drift");
        assert_eq!(bad.verdict(), "timing-regression");
        assert!(diff_runs(&a, &faster, band).is_clean(), "faster is never a regression");
        assert!(
            diff_runs(&a, &outside, DiffOptions::default()).is_clean(),
            "no band, no timing check"
        );
    }

    #[test]
    fn zero_baseline_timing_never_regresses() {
        let a = sample_run(1, 0);
        let b = RunRecord { meta: meta(2, 99_999), results: a.results.clone() };
        let report = diff_runs(&a, &b, DiffOptions { timing_band_pct: Some(10.0) });
        assert_eq!(report.timing_ratio(), None);
        assert!(report.is_clean());
    }

    #[test]
    fn report_renders_to_three_tables() {
        let a = sample_run(1, 1000);
        let mut b = sample_run(2, 1200);
        b.results.tables[1].rows[0][1] = Cell::EnergyUj(99.9);
        let report = diff_runs(&a, &b, DiffOptions { timing_band_pct: Some(10.0) });
        let set = report.to_result_set();
        assert_eq!(set.len(), 3);
        assert_eq!(set.tables[0].id, "diff_summary");
        assert_eq!(set.tables[1].id, "diff_drift");
        assert_eq!(set.tables[2].id, "diff_verdict");
        assert_eq!(set.tables[1].rows.len(), 1);
        let drift_row = &set.tables[1].rows[0];
        assert_eq!(drift_row[0], Cell::label("fig6"));
        assert_eq!(drift_row[1], Cell::Count(1));
        assert_eq!(drift_row[2], Cell::label("energy"));
        let verdict_row = set.tables[2].rows.last().unwrap();
        assert_eq!(verdict_row[1], Cell::label("drift+timing-regression"));
    }
}
