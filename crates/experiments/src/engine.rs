//! The parallel experiment engine: a scoped-thread worker pool over a job
//! graph of `(profile, RunOptions)` simulations, plus a [`SuiteCache`] so
//! no identical suite is ever simulated twice in one process.
//!
//! # Why this exists
//!
//! The paper's methodology already collapses the *configuration* axis: one
//! simulation pass with a bank of bystander filters yields results for
//! every configuration at once. What remains is the *application* axis —
//! ten independent suite members per run, and `jetty-repro all` needs
//! several independent suites (the 4-way base run, the 8-way run, the
//! non-subblocked run, and two ablation banks). Every one of those
//! simulations is a pure function of `(profile, RunOptions)`, so they are
//! embarrassingly parallel; the engine flattens them into one job list and
//! drains it with a fixed pool of scoped threads.
//!
//! # Determinism
//!
//! A job's result depends only on its inputs — [`TraceGen`] is a pure
//! function of `(profile, cpus, scale)` and [`System`] of the trace and
//! options — so execution order cannot change any result. Jobs write into
//! pre-assigned slots and suites are reassembled in application order,
//! making engine output identical to the sequential path byte for byte;
//! with one thread the engine *is* the sequential path (no threads are
//! spawned at all).
//!
//! # Failure model
//!
//! Jobs are fallible: [`Engine::run_suites`] returns one
//! `Result<Arc<Vec<AppRun>>, JettyError>` per request, so one bad suite
//! degrades that suite instead of the whole batch. A job can fail by
//! injected fault ([`crate::fault`]), by blowing its deadline
//! ([`Engine::with_deadline`], checked at chunk boundaries through a
//! [`RunGate`]), or by panicking — panics are caught per job (in unwind
//! builds; the release profile aborts by design) and reported through the
//! job's result slot. When any job of a suite fails, the suite's shared
//! cancellation flag stops its sibling jobs at their next chunk boundary:
//! their partial results could never be used. Failed suites are never
//! inserted into the [`SuiteCache`] — only complete suites are cached —
//! but the *error* is memoized, so a doomed configuration is attempted
//! once per process, not once per consumer. Lock poisoning degrades too:
//! every engine mutex guards data that is structurally valid mid-panic
//! (whole inserted values), so a poisoned lock is recovered, not
//! propagated.
//!
//! # Caching
//!
//! [`RunOptions`] is the cache key (hash/eq over `cpus`, `scale` bits,
//! `check`, the full filter bank, `non_subblocked`, and the coherence
//! `protocol`). Consumers ask for whole suites; [`Engine::run_suites`]
//! coalesces duplicate requests, simulates only the missing ones, and
//! hands out shared [`Arc`] results — which is what lets the declarative
//! sweep grid ([`crate::sweep`]) render every grid point from cache after
//! one prefetch batch.
//!
//! [`TraceGen`]: jetty_workloads::TraceGen
//! [`System`]: jetty_sim::System
//! [`RunGate`]: jetty_sim::RunGate

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use jetty_sim::RunGate;
use jetty_workloads::apps;

use crate::error::JettyError;
use crate::runner::{run_app_gated, AppRun, AppTiming, RunOptions};

/// One finished-or-failed suite, as returned by [`Engine::run_suites`].
pub type SuiteResult = Result<Arc<Vec<AppRun>>, JettyError>;

/// Locks a mutex, recovering from poisoning: every engine mutex guards
/// data that stays structurally valid across a worker panic (values are
/// inserted whole), so the guard's contents are safe to reuse and a
/// poisoned lock must degrade to normal operation, not cascade the panic.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A shared, thread-safe cache of finished suite runs, keyed by the full
/// [`RunOptions`] (bank included). Only *complete* suites are ever
/// inserted, and poisoned locks are recovered (see the module's failure
/// model), so the cache cannot hold a partial result.
///
/// # Examples
///
/// ```
/// use jetty_experiments::engine::SuiteCache;
/// use jetty_experiments::RunOptions;
///
/// let cache = SuiteCache::new();
/// assert!(cache.get(&RunOptions::paper()).is_none());
/// assert_eq!(cache.len(), 0);
/// ```
#[derive(Debug, Default)]
pub struct SuiteCache {
    map: Mutex<HashMap<RunOptions, Arc<Vec<AppRun>>>>,
}

impl SuiteCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a finished suite for exactly these options.
    pub fn get(&self, options: &RunOptions) -> Option<Arc<Vec<AppRun>>> {
        lock_recover(&self.map).get(options).cloned()
    }

    /// Stores a finished suite under its options, keeping the first
    /// insertion canonical: if another thread raced the same key in, its
    /// result wins and is returned, so every holder of this key ends up
    /// sharing one allocation.
    pub fn insert(&self, options: RunOptions, runs: Arc<Vec<AppRun>>) -> Arc<Vec<AppRun>> {
        lock_recover(&self.map).entry(options).or_insert(runs).clone()
    }

    /// Number of cached suites.
    pub fn len(&self) -> usize {
        lock_recover(&self.map).len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Monotonic counters describing what an [`Engine`] has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Suites actually simulated to completion (cache misses).
    pub suites_executed: u64,
    /// Suite requests served from the cache (or coalesced with an
    /// identical request in the same batch, or answered from the
    /// memoized error of an earlier failed attempt).
    pub cache_hits: u64,
    /// Individual `(profile, options)` simulation jobs attempted.
    pub jobs_executed: u64,
    /// Suites whose execution failed (fault, deadline, or worker death);
    /// their errors are memoized, never their partial results.
    pub suites_failed: u64,
}

impl EngineStats {
    /// Cache hits as a fraction of all suite requests served so far, in
    /// `[0, 1]` (0 when nothing has been requested yet). The number the
    /// `jetty-repro sweep` stderr summary and the bench baseline report.
    pub fn hit_rate(&self) -> f64 {
        let requests = self.cache_hits + self.suites_executed + self.suites_failed;
        if requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / requests as f64
        }
    }
}

/// One `(application, suite)` simulation job in a batch's flattened graph.
#[derive(Clone, Copy)]
struct Job {
    suite: usize,
    app: usize,
}

/// What one job deposits in its slot: its outcome plus wall-clock.
type JobOutcome = (Result<(AppRun, AppTiming), JettyError>, Duration);

/// Wall-clock attribution for one *executed* (cache-missing) suite:
/// the summed wall-clock of its ten application jobs. Jobs of one suite
/// may run on different workers, so this is cpu-time-like — with one
/// worker it equals the suite's wall-clock exactly.
#[derive(Clone, Debug)]
pub struct SuiteTiming {
    /// The options the suite ran under.
    pub options: RunOptions,
    /// Summed per-job wall-clock.
    pub elapsed: Duration,
    /// Jobs executed (one per application).
    pub jobs: usize,
    /// Time the jobs spent generating trace chunks (summed across jobs;
    /// part of `elapsed`).
    pub gen: Duration,
    /// Time the jobs spent simulating those chunks (summed across jobs;
    /// part of `elapsed`).
    pub sim: Duration,
    /// Name of the replay-kernel level the suite ran with
    /// (`"scalar"`/`"avx2"`, from [`jetty_core::kernels::active_level`]) —
    /// surfaced as the `kernel=` tag in `--timings` so stored timings can
    /// attribute drift to dispatch changes.
    pub kernel: &'static str,
    /// Effective intra-run shard count the suite's jobs replayed snoop
    /// work with (after the oversubscription cap against the worker
    /// count) — surfaced as the `shards=` tag in `--timings`.
    pub shards: usize,
}

/// The worker-pool executor. Built once per process (or per benchmark
/// iteration) with a fixed thread count; hand it [`RunOptions`] batches and
/// it returns per-suite results in request order.
///
/// # Examples
///
/// ```
/// use jetty_core::FilterSpec;
/// use jetty_experiments::engine::Engine;
/// use jetty_experiments::RunOptions;
///
/// let engine = Engine::new(2);
/// let options = RunOptions::paper()
///     .with_scale(0.001)
///     .with_specs(vec![FilterSpec::exclude(8, 2)]);
/// let suite = engine.run_suite(&options).expect("fault-free run");
/// assert_eq!(suite.len(), 10);
/// // A second identical request is a cache hit: same allocation.
/// let again = engine.run_suite(&options).expect("cache hit");
/// assert!(std::sync::Arc::ptr_eq(&suite, &again));
/// ```
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    /// Requested intra-run shard count for per-node snoop replay (capped
    /// against `threads` and the host at execution time; see
    /// [`cap_shards`]). Shards never change results — only how the
    /// deferred filter-event replay inside each job is parallelised — so
    /// this is deliberately *not* part of the cache key.
    shards: usize,
    /// Per-job wall-clock budget; `None` = unbounded.
    deadline: Option<Duration>,
    cache: SuiteCache,
    /// Memoized errors of failed suites: one attempt per key per process.
    failed: Mutex<HashMap<RunOptions, JettyError>>,
    suites_executed: AtomicU64,
    cache_hits: AtomicU64,
    jobs_executed: AtomicU64,
    suites_failed: AtomicU64,
    /// Per-suite timings accumulated since the last [`Engine::take_timings`]
    /// (completed suites only; cache hits and failures record nothing).
    timings: Mutex<Vec<SuiteTiming>>,
}

impl Engine {
    /// Builds an engine with a fixed worker count and no job deadline.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "the engine needs at least one worker thread");
        Self {
            threads,
            shards: 1,
            deadline: None,
            cache: SuiteCache::new(),
            failed: Mutex::new(HashMap::new()),
            suites_executed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
            suites_failed: AtomicU64::new(0),
            timings: Mutex::new(Vec::new()),
        }
    }

    /// Builds an engine sized by [`Engine::default_threads`], with the
    /// [`Engine::default_deadline`] job budget and the
    /// [`Engine::default_shards`] intra-run shard count.
    pub fn with_default_threads() -> Self {
        Self::new(Self::default_threads())
            .with_deadline(Self::default_deadline())
            .with_shards(Self::default_shards())
    }

    /// Sets the per-job wall-clock budget (`None` = unbounded). Checked
    /// cooperatively at chunk boundaries, so expiry cancels a job within
    /// one chunk's worth of work and surfaces as
    /// [`JettyError::Deadline`] for its suite.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The default worker count: the `JETTY_THREADS` environment variable
    /// when set to a positive integer, otherwise the host's available
    /// parallelism (1 if that cannot be determined — logged once per
    /// process, since silently dropping to a single worker on a big host
    /// is worth knowing about).
    pub fn default_threads() -> usize {
        let env = std::env::var("JETTY_THREADS").ok();
        let available = thread::available_parallelism().ok().map(NonZeroUsize::get);
        let decision = resolve_default_threads(env.as_deref(), available);
        if let Some(v) = &decision.invalid_env {
            eprintln!(
                "warning: ignoring invalid JETTY_THREADS={v:?} (want a positive integer); \
                 using {} worker thread(s)",
                decision.threads
            );
        }
        if decision.host_fallback {
            static FALLBACK_WARNING: std::sync::Once = std::sync::Once::new();
            FALLBACK_WARNING.call_once(|| {
                eprintln!(
                    "warning: could not determine available parallelism; \
                     defaulting to 1 worker thread (set JETTY_THREADS or \
                     --threads to override)"
                );
            });
        }
        decision.threads
    }

    /// Sets the requested intra-run shard count: how many slices the
    /// per-node deferred snoop replay inside *each* job fans out to
    /// (clamped to at least 1). The request is capped against the worker
    /// count and the host at execution time (see `cap_shards`) so
    /// suites×shards never oversubscribes the machine. Shards are a pure
    /// performance knob: results are byte-identical at any count, which
    /// is also why they are not part of the suite cache key.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The default intra-run shard count: the `JETTY_SHARDS` environment
    /// variable when set to a positive integer, otherwise 1 (serial
    /// replay). A garbage value is ignored with a one-line warning naming
    /// the bad value and the fallback chosen.
    pub fn default_shards() -> usize {
        let env = std::env::var("JETTY_SHARDS").ok();
        let decision = resolve_shards(env.as_deref());
        if let Some(v) = &decision.invalid_env {
            eprintln!(
                "warning: ignoring invalid JETTY_SHARDS={v:?} (want a positive integer); \
                 replaying snoop work in {} shard(s)",
                decision.shards
            );
        }
        decision.shards
    }

    /// The default per-job deadline: the `JETTY_DEADLINE_MS` environment
    /// variable when set to a positive integer of milliseconds, otherwise
    /// unbounded. A garbage value is ignored with a one-line warning
    /// naming the bad value and the fallback chosen.
    pub fn default_deadline() -> Option<Duration> {
        let env = std::env::var("JETTY_DEADLINE_MS").ok();
        let decision = resolve_deadline(env.as_deref());
        if let Some(v) = &decision.invalid_env {
            eprintln!(
                "warning: ignoring invalid JETTY_DEADLINE_MS={v:?} (want a positive integer \
                 of milliseconds); running without a job deadline"
            );
        }
        decision.deadline
    }

    /// The worker count this engine was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The requested intra-run shard count (before the execution-time
    /// oversubscription cap).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The per-job deadline this engine applies, when one is set.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The suite cache (for inspection; normal use goes through
    /// [`Engine::run_suite`]).
    pub fn cache(&self) -> &SuiteCache {
        &self.cache
    }

    /// Drains the per-suite timings accumulated since the last call (the
    /// `jetty-repro --timings` surface). Completed suites only: cache
    /// hits and failed suites record no timing.
    pub fn take_timings(&self) -> Vec<SuiteTiming> {
        std::mem::take(&mut *lock_recover(&self.timings))
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            suites_executed: self.suites_executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            suites_failed: self.suites_failed.load(Ordering::Relaxed),
        }
    }

    /// The memoized error of an earlier failed attempt at these options.
    fn failed_error(&self, options: &RunOptions) -> Option<JettyError> {
        lock_recover(&self.failed).get(options).cloned()
    }

    /// Runs (or fetches from cache) one full ten-application suite.
    pub fn run_suite(&self, options: &RunOptions) -> SuiteResult {
        self.run_suites(std::slice::from_ref(options))
            .pop()
            .unwrap_or_else(|| unreachable!("run_suites returns one result per request"))
    }

    /// Runs a batch of suites concurrently, returning per-suite results in
    /// request order.
    ///
    /// Requests already in the cache are served from it; duplicate
    /// requests within the batch are coalesced. Everything left is
    /// flattened into one `(profile, options)` job list and drained by the
    /// worker pool, so the 4-way, 8-way, non-subblocked and ablation
    /// suites of `jetty-repro all` share a single pool instead of running
    /// back to back.
    ///
    /// A failed suite comes back as `Err` without disturbing its batch
    /// mates; the error is memoized so later requests for the same key are
    /// answered without re-running a doomed configuration (one attempt per
    /// key per process — the cache itself only ever holds complete
    /// suites).
    ///
    /// The single-execution guarantee is per caller: if *external* threads
    /// share one engine and race identical requests, both may simulate,
    /// but the cache keeps the first finished result canonical, so every
    /// caller still receives the same `Arc` (results are deterministic
    /// either way — only work is duplicated).
    pub fn run_suites(&self, requests: &[RunOptions]) -> Vec<SuiteResult> {
        let mut fresh: Vec<RunOptions> = Vec::new();
        for options in requests {
            if self.cache.get(options).is_some()
                || self.failed_error(options).is_some()
                || fresh.contains(options)
            {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                fresh.push(options.clone());
            }
        }

        for (options, result) in fresh.iter().zip(self.execute(&fresh)) {
            match result {
                Ok(runs) => {
                    self.cache.insert(options.clone(), Arc::new(runs));
                    self.suites_executed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    lock_recover(&self.failed).insert(options.clone(), e);
                    self.suites_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // `get` after canonicalising `insert`: every caller of a key sees
        // one shared allocation, even if external threads raced us.
        requests
            .iter()
            .map(|options| match self.cache.get(options) {
                Some(runs) => Ok(runs),
                None => Err(self.failed_error(options).unwrap_or_else(|| {
                    JettyError::simulation(
                        options.id(),
                        "suite neither cached nor failed after execution (engine bug)",
                    )
                })),
            })
            .collect()
    }

    /// Runs one suite through the worker pool without consulting or
    /// filling the cache (the engine-backed replacement for the historical
    /// sequential [`run_suite`](crate::runner::run_suite); benchmarks use
    /// it to measure real simulation work).
    pub fn run_suite_uncached(&self, options: &RunOptions) -> Result<Vec<AppRun>, JettyError> {
        self.execute(std::slice::from_ref(options))
            .pop()
            .unwrap_or_else(|| unreachable!("execute returns one result per suite"))
    }

    /// Executes the job graph for `suites`, returning each suite's runs in
    /// application order (or its first meaningful error) and logging one
    /// [`SuiteTiming`] per completed suite.
    fn execute(&self, suites: &[RunOptions]) -> Vec<Result<Vec<AppRun>, JettyError>> {
        if suites.is_empty() {
            return Vec::new();
        }
        let profiles = apps::all();
        let jobs: Vec<Job> = (0..suites.len())
            .flat_map(|suite| (0..profiles.len()).map(move |app| Job { suite, app }))
            .collect();

        // One cancellation flag per suite: the first failing job raises
        // its suite's flag, and sibling jobs observe it at their next
        // chunk boundary (their partial results could never be used).
        let cancels: Vec<Arc<AtomicBool>> =
            suites.iter().map(|_| Arc::new(AtomicBool::new(false))).collect();
        let shards = cap_shards(
            self.shards,
            self.threads,
            thread::available_parallelism().ok().map(NonZeroUsize::get),
        );
        let run_job = |job: &Job| -> JobOutcome {
            let started = Instant::now();
            let options = &suites[job.suite];
            let gate = match self.deadline {
                Some(budget) => RunGate::with_budget(budget),
                None => RunGate::unbounded(),
            }
            .with_cancel(Arc::clone(&cancels[job.suite]));
            // Panics are contained per job in unwind builds (tests, dev);
            // the release profile aborts on panic by design, so there a
            // panic remains what it always was: a process-fatal bug.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_app_gated(&profiles[job.app], options, shards, &gate)
            }))
            .unwrap_or_else(|payload| {
                Err(JettyError::simulation(
                    options.id(),
                    format!("worker panicked: {}", panic_message(payload.as_ref())),
                ))
            });
            if result.is_err() {
                cancels[job.suite].store(true, Ordering::Relaxed);
            }
            (result, started.elapsed())
        };

        let outcomes: Vec<JobOutcome> = if self.threads == 1 || jobs.len() == 1 {
            // The sequential path: same loop the pre-engine runner had,
            // on the caller's thread.
            jobs.iter().map(run_job).collect()
        } else {
            self.execute_parallel(suites, &jobs, &run_job)
        };
        self.jobs_executed.fetch_add(jobs.len() as u64, Ordering::Relaxed);

        let mut out: Vec<Result<Vec<AppRun>, JettyError>> =
            suites.iter().map(|_| Ok(Vec::new())).collect();
        let mut elapsed: Vec<Duration> = vec![Duration::ZERO; suites.len()];
        let mut splits: Vec<AppTiming> = vec![AppTiming::default(); suites.len()];
        for (job, (outcome, took)) in jobs.iter().zip(outcomes) {
            elapsed[job.suite] += took;
            match outcome {
                Ok((run, split)) => {
                    splits[job.suite].gen += split.gen;
                    splits[job.suite].sim += split.sim;
                    if let Ok(runs) = &mut out[job.suite] {
                        runs.push(run);
                    }
                }
                Err(e) => {
                    // First meaningful error wins: a Cancelled job only
                    // ever follows some other job's failure, so it never
                    // displaces the root cause.
                    let slot = &mut out[job.suite];
                    let replace = match slot {
                        Ok(_) => true,
                        Err(JettyError::Cancelled { .. }) => {
                            !matches!(e, JettyError::Cancelled { .. })
                        }
                        Err(_) => false,
                    };
                    if replace {
                        *slot = Err(e);
                    }
                }
            }
        }
        let kernel = jetty_core::kernels::active_level().name();
        let mut log = lock_recover(&self.timings);
        for (suite, ((options, took), split)) in
            suites.iter().zip(&elapsed).zip(&splits).enumerate()
        {
            if out[suite].is_ok() {
                log.push(SuiteTiming {
                    options: options.clone(),
                    elapsed: *took,
                    jobs: profiles.len(),
                    gen: split.gen,
                    sim: split.sim,
                    kernel,
                    shards,
                });
            }
        }
        out
    }

    /// Drains `jobs` with a pool of scoped threads. Workers claim jobs
    /// through a shared atomic cursor and deposit outcomes (with per-job
    /// wall-clock) into the slot matching the job index, so assembly order
    /// is independent of completion order. A slot left empty — a worker
    /// that died without depositing, which catch_unwind makes unreachable
    /// in unwind builds — degrades to a per-job error, never a panic.
    fn execute_parallel(
        &self,
        suites: &[RunOptions],
        jobs: &[Job],
        run_job: &(dyn Fn(&Job) -> JobOutcome + Sync),
    ) -> Vec<JobOutcome> {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for _ in 0..self.threads.min(jobs.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    *lock_recover(&slots[i]) = Some(run_job(job));
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let outcome = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
                outcome.unwrap_or_else(|| {
                    let options = &suites[jobs[i].suite];
                    (
                        Err(JettyError::simulation(
                            options.id(),
                            "worker died without depositing a result",
                        )),
                        Duration::ZERO,
                    )
                })
            })
            .collect()
    }
}

/// Best-effort text of a caught panic payload (`&str` or `String`
/// payloads cover `panic!` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Outcome of the default-thread-count resolution (pure; separated from
/// [`Engine::default_threads`] so the precedence rules are unit-testable
/// without mutating process environment or depending on the host).
#[derive(Clone, Debug, PartialEq, Eq)]
struct ThreadsDecision {
    /// The worker count to use.
    threads: usize,
    /// The `JETTY_THREADS` value, when present but not a positive integer
    /// (warned about, then ignored).
    invalid_env: Option<String>,
    /// `true` when available parallelism could not be determined and the
    /// count silently fell back to 1 (logged once per process).
    host_fallback: bool,
}

/// Precedence: a valid `JETTY_THREADS` wins; otherwise the host's
/// available parallelism; otherwise 1 (with `host_fallback` set).
fn resolve_default_threads(env: Option<&str>, available: Option<usize>) -> ThreadsDecision {
    let mut invalid_env = None;
    if let Some(v) = env {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => {
                return ThreadsDecision { threads: n, invalid_env: None, host_fallback: false }
            }
            _ => invalid_env = Some(v.to_string()),
        }
    }
    match available {
        Some(n) => ThreadsDecision { threads: n, invalid_env, host_fallback: false },
        None => ThreadsDecision { threads: 1, invalid_env, host_fallback: true },
    }
}

/// Outcome of the default-shard-count resolution (pure, like
/// [`resolve_default_threads`]).
#[derive(Clone, Debug, PartialEq, Eq)]
struct ShardsDecision {
    /// The requested intra-run shard count.
    shards: usize,
    /// The `JETTY_SHARDS` value, when present but not a positive integer
    /// (warned about, then ignored).
    invalid_env: Option<String>,
}

/// A valid `JETTY_SHARDS` (positive integer) becomes the requested shard
/// count; anything else is 1 (serial replay), flagging the invalid value.
fn resolve_shards(env: Option<&str>) -> ShardsDecision {
    match env {
        None => ShardsDecision { shards: 1, invalid_env: None },
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => ShardsDecision { shards: n, invalid_env: None },
            _ => ShardsDecision { shards: 1, invalid_env: Some(v.to_string()) },
        },
    }
}

/// Caps a requested shard count against the engine's worker count so
/// `threads × shards` never oversubscribes the host: each of `threads`
/// concurrent jobs may fan its replay out to the returned count. With an
/// unknown host the request passes through (shards only ever change
/// speed, not results, so the worst case is oversubscription, not
/// corruption); the cap never drops below 1.
fn cap_shards(requested: usize, threads: usize, available: Option<usize>) -> usize {
    let requested = requested.max(1);
    match available {
        Some(cores) => requested.min((cores / threads.max(1)).max(1)),
        None => requested,
    }
}

/// Outcome of the default-deadline resolution (pure, like
/// [`resolve_default_threads`]).
#[derive(Clone, Debug, PartialEq, Eq)]
struct DeadlineDecision {
    /// The budget to apply; `None` = unbounded.
    deadline: Option<Duration>,
    /// The `JETTY_DEADLINE_MS` value, when present but not a positive
    /// integer (warned about, then ignored).
    invalid_env: Option<String>,
}

/// A valid `JETTY_DEADLINE_MS` (positive integer milliseconds) becomes
/// the budget; anything else is unbounded, flagging the invalid value.
fn resolve_deadline(env: Option<&str>) -> DeadlineDecision {
    match env {
        None => DeadlineDecision { deadline: None, invalid_env: None },
        Some(v) => match v.trim().parse::<u64>() {
            Ok(n) if n >= 1 => {
                DeadlineDecision { deadline: Some(Duration::from_millis(n)), invalid_env: None }
            }
            _ => DeadlineDecision { deadline: None, invalid_env: Some(v.to_string()) },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetty_core::FilterSpec;

    /// Tiny bank + short traces so the whole module tests in seconds.
    fn quick(scale: f64) -> RunOptions {
        RunOptions::paper()
            .with_scale(scale)
            .with_specs(vec![FilterSpec::exclude(8, 2), FilterSpec::include(6, 5, 6)])
    }

    #[test]
    fn identical_options_run_the_suite_exactly_once() {
        let engine = Engine::new(2);
        let first = engine.run_suite(&quick(0.002)).unwrap();
        let second = engine.run_suite(&quick(0.002)).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second request must be served from cache");
        let stats = engine.stats();
        assert_eq!(stats.suites_executed, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.jobs_executed, 10);
        assert_eq!(stats.suites_failed, 0);
        assert_eq!(engine.cache().len(), 1);
        assert_eq!(stats.hit_rate(), 0.5, "one hit out of two requests");
    }

    #[test]
    fn hit_rate_of_an_idle_engine_is_zero() {
        assert_eq!(EngineStats::default().hit_rate(), 0.0);
        let all_hits = EngineStats { cache_hits: 3, ..EngineStats::default() };
        assert_eq!(all_hits.hit_rate(), 1.0);
        let with_failures =
            EngineStats { cache_hits: 1, suites_failed: 1, ..EngineStats::default() };
        assert_eq!(with_failures.hit_rate(), 0.5, "failed attempts count as requests");
    }

    #[test]
    fn batch_coalesces_duplicates_like_the_all_command() {
        // `all` asks for the base suite once per consumer; the batch must
        // still simulate it once.
        let engine = Engine::new(2);
        let options = quick(0.002);
        let results = engine.run_suites(&[options.clone(), options.clone(), options]);
        assert_eq!(results.len(), 3);
        let results: Vec<_> = results.into_iter().map(Result::unwrap).collect();
        assert!(Arc::ptr_eq(&results[0], &results[1]));
        assert!(Arc::ptr_eq(&results[1], &results[2]));
        assert_eq!(engine.stats().suites_executed, 1);
        assert_eq!(engine.stats().cache_hits, 2);
    }

    #[test]
    fn differing_cpus_and_l2_variant_miss_the_cache() {
        let engine = Engine::new(2);
        let base = quick(0.002);
        let eight_way = base.clone().with_cpus(8);
        let mut nsb = base.clone();
        nsb.non_subblocked = true;
        engine.run_suites(&[base, eight_way, nsb]);
        let stats = engine.stats();
        assert_eq!(stats.suites_executed, 3, "each variant is a distinct key");
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(engine.cache().len(), 3);
    }

    #[test]
    fn differing_protocols_miss_the_cache() {
        use jetty_sim::ProtocolKind;
        let engine = Engine::new(2);
        let suites: Vec<RunOptions> =
            ProtocolKind::ALL.iter().map(|&p| quick(0.002).with_protocol(p)).collect();
        engine.run_suites(&suites);
        assert_eq!(engine.stats().suites_executed, 3, "each protocol is a distinct key");
        assert_eq!(engine.cache().len(), 3);
        // MOESI is the default: an explicit MOESI request hits the same key.
        assert!(Arc::ptr_eq(
            &engine.run_suite(&quick(0.002)).unwrap(),
            &engine.run_suite(&suites[0]).unwrap()
        ));
    }

    #[test]
    fn differing_scale_check_and_bank_miss_the_cache() {
        let engine = Engine::new(1);
        let base = quick(0.002);
        let mut checked = base.clone();
        checked.check = true;
        let rescaled = base.clone().with_scale(0.004);
        let rebanked = base.clone().with_specs(vec![FilterSpec::exclude(8, 2)]);
        engine.run_suites(&[base, checked, rescaled, rebanked]);
        assert_eq!(engine.stats().suites_executed, 4);
    }

    #[test]
    fn parallel_results_match_serial_in_order_and_content() {
        let options = quick(0.004);
        let serial = Engine::new(1).run_suite(&options).unwrap();
        let parallel = Engine::new(4).run_suite(&options).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.profile.abbrev, p.profile.abbrev, "application order must be preserved");
            assert_eq!(s.refs, p.refs);
            assert_eq!(s.run, p.run);
            assert_eq!(s.reports.len(), p.reports.len());
            for (sr, pr) in s.reports.iter().zip(p.reports.iter()) {
                assert_eq!(sr.label, pr.label);
                assert_eq!(sr.filtered, pr.filtered);
                assert_eq!(sr.would_miss, pr.would_miss);
                assert_eq!(sr.activities, pr.activities);
            }
        }
    }

    #[test]
    fn uncached_runs_do_not_touch_the_cache() {
        let engine = Engine::new(2);
        let runs = engine.run_suite_uncached(&quick(0.002)).unwrap();
        assert_eq!(runs.len(), 10);
        assert!(engine.cache().is_empty());
        assert_eq!(engine.stats().suites_executed, 0);
        assert_eq!(engine.stats().jobs_executed, 10);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let engine = Engine::new(64);
        assert_eq!(engine.run_suite(&quick(0.002)).unwrap().len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = Engine::new(0);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(Engine::default_threads() >= 1);
    }

    #[test]
    fn an_expired_deadline_fails_the_suite_without_touching_the_cache() {
        for threads in [1, 3] {
            let engine = Engine::new(threads).with_deadline(Some(Duration::ZERO));
            let err = engine.run_suite(&quick(0.002)).unwrap_err();
            assert!(
                matches!(
                    err,
                    JettyError::Deadline { budget_ms: 0, .. } | JettyError::Cancelled { .. }
                ),
                "threads={threads}: {err}"
            );
            assert!(engine.cache().is_empty(), "a failed suite must never be cached");
            let stats = engine.stats();
            assert_eq!(stats.suites_failed, 1);
            assert_eq!(stats.suites_executed, 0);
            assert!(engine.take_timings().is_empty(), "failed suites record no timing");
        }
    }

    #[test]
    fn a_failed_suite_is_attempted_once_then_answered_from_the_error_memo() {
        let engine = Engine::new(2).with_deadline(Some(Duration::ZERO));
        let first = engine.run_suite(&quick(0.002)).unwrap_err();
        let jobs_after_first = engine.stats().jobs_executed;
        let second = engine.run_suite(&quick(0.002)).unwrap_err();
        assert_eq!(first.kind(), second.kind());
        let stats = engine.stats();
        assert_eq!(stats.jobs_executed, jobs_after_first, "no re-execution of a doomed key");
        assert_eq!(stats.suites_failed, 1);
        assert_eq!(stats.cache_hits, 1, "the memoized error serves the second request");
    }

    #[test]
    fn a_failing_suite_does_not_disturb_its_batch_mates() {
        // Same engine, one batch: a generous deadline lets the small
        // suite finish while the zero-budget engine variant proves
        // isolation. Here: fail one key via the memo, then batch it with
        // a healthy key.
        let doomed = quick(0.002);
        let healthy = quick(0.004);
        let strict = Engine::new(2).with_deadline(Some(Duration::ZERO));
        assert!(strict.run_suite(&doomed).is_err());
        // Re-request both through the same (still zero-deadline) engine:
        // the doomed key is answered from the memo; the healthy key fails
        // too (deadline) — so instead check batch isolation on a fresh
        // engine where only the memoized key fails.
        let engine = Engine::new(2);
        let results = engine.run_suites(&[healthy.clone(), doomed.clone()]);
        assert!(results[0].is_ok() && results[1].is_ok(), "fresh engine has no memo");
        assert_eq!(strict.run_suites(&[doomed]).pop().unwrap().unwrap_err().kind(), "deadline");
    }

    #[test]
    fn jetty_threads_override_takes_precedence() {
        // A valid override wins over any host parallelism.
        let d = resolve_default_threads(Some("6"), Some(64));
        assert_eq!(d, ThreadsDecision { threads: 6, invalid_env: None, host_fallback: false });
        // ...including when the host count is unknown (no fallback logged:
        // the override answered the question).
        let d = resolve_default_threads(Some(" 3 "), None);
        assert_eq!(d, ThreadsDecision { threads: 3, invalid_env: None, host_fallback: false });
    }

    #[test]
    fn invalid_override_falls_through_to_the_host() {
        for bad in ["0", "-2", "four", ""] {
            let d = resolve_default_threads(Some(bad), Some(8));
            assert_eq!(d.threads, 8, "JETTY_THREADS={bad:?}");
            assert_eq!(d.invalid_env.as_deref(), Some(bad));
            assert!(!d.host_fallback);
        }
    }

    #[test]
    fn unknown_parallelism_falls_back_to_one_and_says_so() {
        let d = resolve_default_threads(None, None);
        assert_eq!(d, ThreadsDecision { threads: 1, invalid_env: None, host_fallback: true });
        let d = resolve_default_threads(Some("nope"), None);
        assert_eq!(d.threads, 1);
        assert!(d.host_fallback);
        assert!(d.invalid_env.is_some());
    }

    #[test]
    fn no_override_uses_host_parallelism() {
        let d = resolve_default_threads(None, Some(12));
        assert_eq!(d, ThreadsDecision { threads: 12, invalid_env: None, host_fallback: false });
    }

    #[test]
    fn deadline_resolution_accepts_positive_millis_and_flags_garbage() {
        assert_eq!(resolve_deadline(None), DeadlineDecision { deadline: None, invalid_env: None });
        assert_eq!(
            resolve_deadline(Some("250")),
            DeadlineDecision { deadline: Some(Duration::from_millis(250)), invalid_env: None }
        );
        assert_eq!(resolve_deadline(Some(" 90 ")).deadline, Some(Duration::from_millis(90)));
        for bad in ["0", "-5", "soon", "", "1.5"] {
            let d = resolve_deadline(Some(bad));
            assert_eq!(d.deadline, None, "JETTY_DEADLINE_MS={bad:?}");
            assert_eq!(d.invalid_env.as_deref(), Some(bad));
        }
    }

    #[test]
    fn shard_resolution_accepts_positive_counts_and_flags_garbage() {
        assert_eq!(resolve_shards(None), ShardsDecision { shards: 1, invalid_env: None });
        assert_eq!(resolve_shards(Some("4")), ShardsDecision { shards: 4, invalid_env: None });
        assert_eq!(resolve_shards(Some(" 2 ")).shards, 2);
        for bad in ["0", "-3", "many", "", "1.5"] {
            let d = resolve_shards(Some(bad));
            assert_eq!(d.shards, 1, "JETTY_SHARDS={bad:?}");
            assert_eq!(d.invalid_env.as_deref(), Some(bad));
        }
    }

    #[test]
    fn shard_cap_prevents_oversubscription() {
        // One worker on an 8-core host: the full request fits.
        assert_eq!(cap_shards(4, 1, Some(8)), 4);
        // Four workers on the same host: each job gets at most two shards.
        assert_eq!(cap_shards(4, 4, Some(8)), 2);
        // More workers than cores: still at least one shard per job.
        assert_eq!(cap_shards(4, 16, Some(8)), 1);
        // Unknown host: the request passes through.
        assert_eq!(cap_shards(3, 2, None), 3);
        // A zero request is clamped up, never down.
        assert_eq!(cap_shards(0, 1, Some(8)), 1);
    }

    #[test]
    fn shard_count_does_not_change_suite_results() {
        let options = quick(0.004);
        let serial = Engine::new(1).run_suite(&options).unwrap();
        let sharded = Engine::new(1).with_shards(4).run_suite(&options).unwrap();
        assert_eq!(serial.len(), sharded.len());
        for (s, p) in serial.iter().zip(sharded.iter()) {
            assert_eq!(s.refs, p.refs);
            assert_eq!(s.run, p.run);
            assert_eq!(s.reports.len(), p.reports.len());
            for (sr, pr) in s.reports.iter().zip(p.reports.iter()) {
                assert_eq!(sr.filtered, pr.filtered);
                assert_eq!(sr.would_miss, pr.would_miss);
                assert_eq!(sr.activities, pr.activities);
            }
        }
    }

    #[test]
    fn env_override_reaches_default_shards_end_to_end() {
        std::env::set_var("JETTY_SHARDS", "3");
        let seen = Engine::default_shards();
        std::env::remove_var("JETTY_SHARDS");
        assert_eq!(seen, 3);
    }

    #[test]
    fn env_override_reaches_default_threads_end_to_end() {
        // Process-global env mutation: set, observe, restore. The only
        // other env-sensitive test in this binary tolerates any positive
        // count, so a transient override cannot break it.
        std::env::set_var("JETTY_THREADS", "5");
        let seen = Engine::default_threads();
        std::env::remove_var("JETTY_THREADS");
        assert_eq!(seen, 5);
    }

    #[test]
    fn env_override_reaches_default_deadline_end_to_end() {
        std::env::set_var("JETTY_DEADLINE_MS", "1234");
        let seen = Engine::default_deadline();
        std::env::remove_var("JETTY_DEADLINE_MS");
        assert_eq!(seen, Some(Duration::from_millis(1234)));
    }
}
