//! The parallel experiment engine: a scoped-thread worker pool over a job
//! graph of `(profile, RunOptions)` simulations, plus a [`SuiteCache`] so
//! no identical suite is ever simulated twice in one process.
//!
//! # Why this exists
//!
//! The paper's methodology already collapses the *configuration* axis: one
//! simulation pass with a bank of bystander filters yields results for
//! every configuration at once. What remains is the *application* axis —
//! ten independent suite members per run, and `jetty-repro all` needs
//! several independent suites (the 4-way base run, the 8-way run, the
//! non-subblocked run, and two ablation banks). Every one of those
//! simulations is a pure function of `(profile, RunOptions)`, so they are
//! embarrassingly parallel; the engine flattens them into one job list and
//! drains it with a fixed pool of scoped threads.
//!
//! # Determinism
//!
//! A job's result depends only on its inputs — [`TraceGen`] is a pure
//! function of `(profile, cpus, scale)` and [`System`] of the trace and
//! options — so execution order cannot change any result. Jobs write into
//! pre-assigned slots and suites are reassembled in application order,
//! making engine output identical to the sequential path byte for byte;
//! with one thread the engine *is* the sequential path (no threads are
//! spawned at all).
//!
//! # Caching
//!
//! [`RunOptions`] is the cache key (hash/eq over `cpus`, `scale` bits,
//! `check`, the full filter bank, `non_subblocked`, and the coherence
//! `protocol`). Consumers ask for whole suites; [`Engine::run_suites`]
//! coalesces duplicate requests, simulates only the missing ones, and
//! hands out shared [`Arc`] results — which is what lets the declarative
//! sweep grid ([`crate::sweep`]) render every grid point from cache after
//! one prefetch batch.
//!
//! [`TraceGen`]: jetty_workloads::TraceGen
//! [`System`]: jetty_sim::System

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use jetty_workloads::apps;

use crate::runner::{run_app_timed, AppRun, AppTiming, RunOptions};

/// A shared, thread-safe cache of finished suite runs, keyed by the full
/// [`RunOptions`] (bank included).
///
/// # Examples
///
/// ```
/// use jetty_experiments::engine::SuiteCache;
/// use jetty_experiments::RunOptions;
///
/// let cache = SuiteCache::new();
/// assert!(cache.get(&RunOptions::paper()).is_none());
/// assert_eq!(cache.len(), 0);
/// ```
#[derive(Debug, Default)]
pub struct SuiteCache {
    map: Mutex<HashMap<RunOptions, Arc<Vec<AppRun>>>>,
}

impl SuiteCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a finished suite for exactly these options.
    pub fn get(&self, options: &RunOptions) -> Option<Arc<Vec<AppRun>>> {
        self.map.lock().expect("suite cache poisoned").get(options).cloned()
    }

    /// Stores a finished suite under its options, keeping the first
    /// insertion canonical: if another thread raced the same key in, its
    /// result wins and is returned, so every holder of this key ends up
    /// sharing one allocation.
    pub fn insert(&self, options: RunOptions, runs: Arc<Vec<AppRun>>) -> Arc<Vec<AppRun>> {
        self.map.lock().expect("suite cache poisoned").entry(options).or_insert(runs).clone()
    }

    /// Number of cached suites.
    pub fn len(&self) -> usize {
        self.map.lock().expect("suite cache poisoned").len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Monotonic counters describing what an [`Engine`] has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Suites actually simulated (cache misses).
    pub suites_executed: u64,
    /// Suite requests served from the cache (or coalesced with an
    /// identical request in the same batch).
    pub cache_hits: u64,
    /// Individual `(profile, options)` simulation jobs completed.
    pub jobs_executed: u64,
}

impl EngineStats {
    /// Cache hits as a fraction of all suite requests served so far, in
    /// `[0, 1]` (0 when nothing has been requested yet). The number the
    /// `jetty-repro sweep` stderr summary and the bench baseline report.
    pub fn hit_rate(&self) -> f64 {
        let requests = self.cache_hits + self.suites_executed;
        if requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / requests as f64
        }
    }
}

/// One `(application, suite)` simulation job in a batch's flattened graph.
#[derive(Clone, Copy)]
struct Job {
    suite: usize,
    app: usize,
}

/// Wall-clock attribution for one *executed* (cache-missing) suite:
/// the summed wall-clock of its ten application jobs. Jobs of one suite
/// may run on different workers, so this is cpu-time-like — with one
/// worker it equals the suite's wall-clock exactly.
#[derive(Clone, Debug)]
pub struct SuiteTiming {
    /// The options the suite ran under.
    pub options: RunOptions,
    /// Summed per-job wall-clock.
    pub elapsed: Duration,
    /// Jobs executed (one per application).
    pub jobs: usize,
    /// Time the jobs spent generating trace chunks (summed across jobs;
    /// part of `elapsed`).
    pub gen: Duration,
    /// Time the jobs spent simulating those chunks (summed across jobs;
    /// part of `elapsed`).
    pub sim: Duration,
    /// Name of the replay-kernel level the suite ran with
    /// (`"scalar"`/`"avx2"`, from [`jetty_core::kernels::active_level`]) —
    /// surfaced as the `kernel=` tag in `--timings` so stored timings can
    /// attribute drift to dispatch changes.
    pub kernel: &'static str,
}

/// The worker-pool executor. Built once per process (or per benchmark
/// iteration) with a fixed thread count; hand it [`RunOptions`] batches and
/// it returns finished suites in request order.
///
/// # Examples
///
/// ```
/// use jetty_core::FilterSpec;
/// use jetty_experiments::engine::Engine;
/// use jetty_experiments::RunOptions;
///
/// let engine = Engine::new(2);
/// let options = RunOptions::paper()
///     .with_scale(0.001)
///     .with_specs(vec![FilterSpec::exclude(8, 2)]);
/// let suite = engine.run_suite(&options);
/// assert_eq!(suite.len(), 10);
/// // A second identical request is a cache hit: same allocation.
/// assert!(std::sync::Arc::ptr_eq(&suite, &engine.run_suite(&options)));
/// ```
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    cache: SuiteCache,
    suites_executed: AtomicU64,
    cache_hits: AtomicU64,
    jobs_executed: AtomicU64,
    /// Per-suite timings accumulated since the last [`Engine::take_timings`]
    /// (executed suites only; cache hits cost nothing and record nothing).
    timings: Mutex<Vec<SuiteTiming>>,
}

impl Engine {
    /// Builds an engine with a fixed worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "the engine needs at least one worker thread");
        Self {
            threads,
            cache: SuiteCache::new(),
            suites_executed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
            timings: Mutex::new(Vec::new()),
        }
    }

    /// Builds an engine sized by [`Engine::default_threads`].
    pub fn with_default_threads() -> Self {
        Self::new(Self::default_threads())
    }

    /// The default worker count: the `JETTY_THREADS` environment variable
    /// when set to a positive integer, otherwise the host's available
    /// parallelism (1 if that cannot be determined — logged once per
    /// process, since silently dropping to a single worker on a big host
    /// is worth knowing about).
    pub fn default_threads() -> usize {
        let env = std::env::var("JETTY_THREADS").ok();
        let available = thread::available_parallelism().ok().map(NonZeroUsize::get);
        let decision = resolve_default_threads(env.as_deref(), available);
        if let Some(v) = &decision.invalid_env {
            eprintln!("warning: ignoring invalid JETTY_THREADS={v:?} (want a positive integer)");
        }
        if decision.host_fallback {
            static FALLBACK_WARNING: std::sync::Once = std::sync::Once::new();
            FALLBACK_WARNING.call_once(|| {
                eprintln!(
                    "warning: could not determine available parallelism; \
                     defaulting to 1 worker thread (set JETTY_THREADS or \
                     --threads to override)"
                );
            });
        }
        decision.threads
    }

    /// The worker count this engine was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The suite cache (for inspection; normal use goes through
    /// [`Engine::run_suite`]).
    pub fn cache(&self) -> &SuiteCache {
        &self.cache
    }

    /// Drains the per-suite timings accumulated since the last call (the
    /// `jetty-repro --timings` surface). Executed suites only: a request
    /// served from the cache records no timing.
    pub fn take_timings(&self) -> Vec<SuiteTiming> {
        std::mem::take(&mut *self.timings.lock().expect("timing log poisoned"))
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            suites_executed: self.suites_executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
        }
    }

    /// Runs (or fetches from cache) one full ten-application suite.
    pub fn run_suite(&self, options: &RunOptions) -> Arc<Vec<AppRun>> {
        self.run_suites(std::slice::from_ref(options)).pop().expect("one request, one result")
    }

    /// Runs a batch of suites concurrently, returning them in request
    /// order.
    ///
    /// Requests already in the cache are served from it; duplicate
    /// requests within the batch are coalesced. Everything left is
    /// flattened into one `(profile, options)` job list and drained by the
    /// worker pool, so the 4-way, 8-way, non-subblocked and ablation
    /// suites of `jetty-repro all` share a single pool instead of running
    /// back to back.
    ///
    /// The single-execution guarantee is per caller: if *external* threads
    /// share one engine and race identical requests, both may simulate,
    /// but the cache keeps the first finished result canonical, so every
    /// caller still receives the same `Arc` (results are deterministic
    /// either way — only work is duplicated).
    pub fn run_suites(&self, requests: &[RunOptions]) -> Vec<Arc<Vec<AppRun>>> {
        let mut fresh: Vec<RunOptions> = Vec::new();
        for options in requests {
            if self.cache.get(options).is_some() || fresh.contains(options) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                fresh.push(options.clone());
            }
        }

        for (options, runs) in fresh.iter().zip(self.execute(&fresh)) {
            self.cache.insert(options.clone(), Arc::new(runs));
            self.suites_executed.fetch_add(1, Ordering::Relaxed);
        }

        // `get` after canonicalising `insert`: every caller of a key sees
        // one shared allocation, even if external threads raced us.
        requests
            .iter()
            .map(|options| self.cache.get(options).expect("suite simulated or cached above"))
            .collect()
    }

    /// Runs one suite through the worker pool without consulting or
    /// filling the cache (the engine-backed replacement for the historical
    /// sequential [`run_suite`](crate::runner::run_suite); benchmarks use
    /// it to measure real simulation work).
    pub fn run_suite_uncached(&self, options: &RunOptions) -> Vec<AppRun> {
        self.execute(std::slice::from_ref(options)).pop().expect("one suite, one result")
    }

    /// Executes the job graph for `suites`, returning each suite's runs in
    /// application order and logging one [`SuiteTiming`] per suite.
    fn execute(&self, suites: &[RunOptions]) -> Vec<Vec<AppRun>> {
        if suites.is_empty() {
            return Vec::new();
        }
        let profiles = apps::all();
        let jobs: Vec<Job> = (0..suites.len())
            .flat_map(|suite| (0..profiles.len()).map(move |app| Job { suite, app }))
            .collect();

        let results: Vec<(AppRun, Duration, AppTiming)> = if self.threads == 1 || jobs.len() == 1 {
            // The sequential path: same loop the pre-engine runner had,
            // on the caller's thread.
            jobs.iter()
                .map(|j| {
                    let started = Instant::now();
                    let (run, split) = run_app_timed(&profiles[j.app], &suites[j.suite]);
                    (run, started.elapsed(), split)
                })
                .collect()
        } else {
            self.execute_parallel(suites, &profiles, &jobs)
        };
        self.jobs_executed.fetch_add(jobs.len() as u64, Ordering::Relaxed);

        let mut out: Vec<Vec<AppRun>> = suites.iter().map(|_| Vec::new()).collect();
        let mut elapsed: Vec<Duration> = vec![Duration::ZERO; suites.len()];
        let mut splits: Vec<AppTiming> = vec![AppTiming::default(); suites.len()];
        for (job, (run, took, split)) in jobs.iter().zip(results) {
            out[job.suite].push(run);
            elapsed[job.suite] += took;
            splits[job.suite].gen += split.gen;
            splits[job.suite].sim += split.sim;
        }
        let kernel = jetty_core::kernels::active_level().name();
        let mut log = self.timings.lock().expect("timing log poisoned");
        for ((options, took), split) in suites.iter().zip(&elapsed).zip(&splits) {
            log.push(SuiteTiming {
                options: options.clone(),
                elapsed: *took,
                jobs: profiles.len(),
                gen: split.gen,
                sim: split.sim,
                kernel,
            });
        }
        out
    }

    /// Drains `jobs` with a pool of scoped threads. Workers claim jobs
    /// through a shared atomic cursor and deposit results (with per-job
    /// wall-clock) into the slot matching the job index, so assembly order
    /// is independent of completion order.
    fn execute_parallel(
        &self,
        suites: &[RunOptions],
        profiles: &[jetty_workloads::AppProfile],
        jobs: &[Job],
    ) -> Vec<(AppRun, Duration, AppTiming)> {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<(AppRun, Duration, AppTiming)>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for _ in 0..self.threads.min(jobs.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let started = Instant::now();
                    let (run, split) = run_app_timed(&profiles[job.app], &suites[job.suite]);
                    *slots[i].lock().expect("result slot poisoned") =
                        Some((run, started.elapsed(), split));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("result slot poisoned").expect("worker filled every slot")
            })
            .collect()
    }
}

/// Outcome of the default-thread-count resolution (pure; separated from
/// [`Engine::default_threads`] so the precedence rules are unit-testable
/// without mutating process environment or depending on the host).
#[derive(Clone, Debug, PartialEq, Eq)]
struct ThreadsDecision {
    /// The worker count to use.
    threads: usize,
    /// The `JETTY_THREADS` value, when present but not a positive integer
    /// (warned about, then ignored).
    invalid_env: Option<String>,
    /// `true` when available parallelism could not be determined and the
    /// count silently fell back to 1 (logged once per process).
    host_fallback: bool,
}

/// Precedence: a valid `JETTY_THREADS` wins; otherwise the host's
/// available parallelism; otherwise 1 (with `host_fallback` set).
fn resolve_default_threads(env: Option<&str>, available: Option<usize>) -> ThreadsDecision {
    let mut invalid_env = None;
    if let Some(v) = env {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => {
                return ThreadsDecision { threads: n, invalid_env: None, host_fallback: false }
            }
            _ => invalid_env = Some(v.to_string()),
        }
    }
    match available {
        Some(n) => ThreadsDecision { threads: n, invalid_env, host_fallback: false },
        None => ThreadsDecision { threads: 1, invalid_env, host_fallback: true },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetty_core::FilterSpec;

    /// Tiny bank + short traces so the whole module tests in seconds.
    fn quick(scale: f64) -> RunOptions {
        RunOptions::paper()
            .with_scale(scale)
            .with_specs(vec![FilterSpec::exclude(8, 2), FilterSpec::include(6, 5, 6)])
    }

    #[test]
    fn identical_options_run_the_suite_exactly_once() {
        let engine = Engine::new(2);
        let first = engine.run_suite(&quick(0.002));
        let second = engine.run_suite(&quick(0.002));
        assert!(Arc::ptr_eq(&first, &second), "second request must be served from cache");
        let stats = engine.stats();
        assert_eq!(stats.suites_executed, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.jobs_executed, 10);
        assert_eq!(engine.cache().len(), 1);
        assert_eq!(stats.hit_rate(), 0.5, "one hit out of two requests");
    }

    #[test]
    fn hit_rate_of_an_idle_engine_is_zero() {
        assert_eq!(EngineStats::default().hit_rate(), 0.0);
        let all_hits = EngineStats { suites_executed: 0, cache_hits: 3, jobs_executed: 0 };
        assert_eq!(all_hits.hit_rate(), 1.0);
    }

    #[test]
    fn batch_coalesces_duplicates_like_the_all_command() {
        // `all` asks for the base suite once per consumer; the batch must
        // still simulate it once.
        let engine = Engine::new(2);
        let options = quick(0.002);
        let results = engine.run_suites(&[options.clone(), options.clone(), options]);
        assert_eq!(results.len(), 3);
        assert!(Arc::ptr_eq(&results[0], &results[1]));
        assert!(Arc::ptr_eq(&results[1], &results[2]));
        assert_eq!(engine.stats().suites_executed, 1);
        assert_eq!(engine.stats().cache_hits, 2);
    }

    #[test]
    fn differing_cpus_and_l2_variant_miss_the_cache() {
        let engine = Engine::new(2);
        let base = quick(0.002);
        let eight_way = base.clone().with_cpus(8);
        let mut nsb = base.clone();
        nsb.non_subblocked = true;
        engine.run_suites(&[base, eight_way, nsb]);
        let stats = engine.stats();
        assert_eq!(stats.suites_executed, 3, "each variant is a distinct key");
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(engine.cache().len(), 3);
    }

    #[test]
    fn differing_protocols_miss_the_cache() {
        use jetty_sim::ProtocolKind;
        let engine = Engine::new(2);
        let suites: Vec<RunOptions> =
            ProtocolKind::ALL.iter().map(|&p| quick(0.002).with_protocol(p)).collect();
        engine.run_suites(&suites);
        assert_eq!(engine.stats().suites_executed, 3, "each protocol is a distinct key");
        assert_eq!(engine.cache().len(), 3);
        // MOESI is the default: an explicit MOESI request hits the same key.
        assert!(Arc::ptr_eq(&engine.run_suite(&quick(0.002)), &engine.run_suite(&suites[0])));
    }

    #[test]
    fn differing_scale_check_and_bank_miss_the_cache() {
        let engine = Engine::new(1);
        let base = quick(0.002);
        let mut checked = base.clone();
        checked.check = true;
        let rescaled = base.clone().with_scale(0.004);
        let rebanked = base.clone().with_specs(vec![FilterSpec::exclude(8, 2)]);
        engine.run_suites(&[base, checked, rescaled, rebanked]);
        assert_eq!(engine.stats().suites_executed, 4);
    }

    #[test]
    fn parallel_results_match_serial_in_order_and_content() {
        let options = quick(0.004);
        let serial = Engine::new(1).run_suite(&options);
        let parallel = Engine::new(4).run_suite(&options);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.profile.abbrev, p.profile.abbrev, "application order must be preserved");
            assert_eq!(s.refs, p.refs);
            assert_eq!(s.run, p.run);
            assert_eq!(s.reports.len(), p.reports.len());
            for (sr, pr) in s.reports.iter().zip(p.reports.iter()) {
                assert_eq!(sr.label, pr.label);
                assert_eq!(sr.filtered, pr.filtered);
                assert_eq!(sr.would_miss, pr.would_miss);
                assert_eq!(sr.activities, pr.activities);
            }
        }
    }

    #[test]
    fn uncached_runs_do_not_touch_the_cache() {
        let engine = Engine::new(2);
        let runs = engine.run_suite_uncached(&quick(0.002));
        assert_eq!(runs.len(), 10);
        assert!(engine.cache().is_empty());
        assert_eq!(engine.stats().suites_executed, 0);
        assert_eq!(engine.stats().jobs_executed, 10);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let engine = Engine::new(64);
        assert_eq!(engine.run_suite(&quick(0.002)).len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = Engine::new(0);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(Engine::default_threads() >= 1);
    }

    #[test]
    fn jetty_threads_override_takes_precedence() {
        // A valid override wins over any host parallelism.
        let d = resolve_default_threads(Some("6"), Some(64));
        assert_eq!(d, ThreadsDecision { threads: 6, invalid_env: None, host_fallback: false });
        // ...including when the host count is unknown (no fallback logged:
        // the override answered the question).
        let d = resolve_default_threads(Some(" 3 "), None);
        assert_eq!(d, ThreadsDecision { threads: 3, invalid_env: None, host_fallback: false });
    }

    #[test]
    fn invalid_override_falls_through_to_the_host() {
        for bad in ["0", "-2", "four", ""] {
            let d = resolve_default_threads(Some(bad), Some(8));
            assert_eq!(d.threads, 8, "JETTY_THREADS={bad:?}");
            assert_eq!(d.invalid_env.as_deref(), Some(bad));
            assert!(!d.host_fallback);
        }
    }

    #[test]
    fn unknown_parallelism_falls_back_to_one_and_says_so() {
        let d = resolve_default_threads(None, None);
        assert_eq!(d, ThreadsDecision { threads: 1, invalid_env: None, host_fallback: true });
        let d = resolve_default_threads(Some("nope"), None);
        assert_eq!(d.threads, 1);
        assert!(d.host_fallback);
        assert!(d.invalid_env.is_some());
    }

    #[test]
    fn no_override_uses_host_parallelism() {
        let d = resolve_default_threads(None, Some(12));
        assert_eq!(d, ThreadsDecision { threads: 12, invalid_env: None, host_fallback: false });
    }

    #[test]
    fn env_override_reaches_default_threads_end_to_end() {
        // Process-global env mutation: set, observe, restore. The only
        // other env-sensitive test in this binary tolerates any positive
        // count, so a transient override cannot break it.
        std::env::set_var("JETTY_THREADS", "5");
        let seen = Engine::default_threads();
        std::env::remove_var("JETTY_THREADS");
        assert_eq!(seen, 5);
    }
}
