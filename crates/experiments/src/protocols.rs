//! The coherence-protocol sweep (`jetty-repro protocols`): the paper's
//! bystander-filter methodology re-run under MOESI, MESI and MSI.
//!
//! The paper evaluates JETTY on one fixed platform — MOESI at subblock
//! grain (§4.1) — but snoop-filter coverage is a function of the protocol.
//! Without an `Owned` state, a dirty copy snooped by a read must downgrade
//! to a *clean* `Shared` and push its data to memory, and without an
//! `Exclusive` state every first store pays a bus upgrade; both change the
//! reference stream on the bus, hence the would-miss profile every filter
//! is scored against, hence coverage and energy.
//!
//! One suite per protocol runs the paper's best hybrid
//! (HJ(IJ-10x4x7, EJ-32x4)) as a bystander and the table reports, per
//! application and protocol: coverage, the would-miss share of snoops, the
//! Figure-6a-style snoop-side energy reduction, and the protocol-dependent
//! memory-writeback traffic energy
//! ([`SmpEnergyModel::memory_writeback_energy`]) that MOESI's `Owned`
//! state keeps off the bus.
//!
//! This suite is an *extension* of the reproduction, not one of the
//! paper's exhibits, so `jetty-repro all` does not include it (that output
//! stays byte-comparable across versions); request it explicitly.

use jetty_core::FilterSpec;
use jetty_energy::{AccessMode, ProtocolEnergy, SmpEnergyModel};
use jetty_sim::ProtocolKind;

use crate::engine::Engine;
use crate::error::JettyError;
use crate::results::{Cell, TableData};
use crate::runner::{average, AppRun, RunOptions};

/// The filter every protocol suite carries: the paper's best hybrid.
fn swept_spec() -> FilterSpec {
    FilterSpec::hybrid_scalar(10, 4, 7, 32, 4)
}

/// The suite options (and cache key) for one protocol of the sweep.
pub fn protocol_options(scale: f64, check: bool, protocol: ProtocolKind) -> RunOptions {
    let mut options = RunOptions::paper()
        .with_scale(scale)
        .with_specs(vec![swept_spec()])
        .with_protocol(protocol);
    options.check = check;
    options
}

/// All three suites of the sweep, in render order — `jetty-repro`
/// prefetches these so the protocols run concurrently with each other
/// (and with anything else the invocation needs).
pub fn protocols_prefetch(scale: f64, check: bool) -> Vec<RunOptions> {
    ProtocolKind::ALL.iter().map(|&p| protocol_options(scale, check, p)).collect()
}

/// Renders the per-application coverage + energy table across MOESI, MESI
/// and MSI.
pub fn protocols_table(engine: &Engine, scale: f64, check: bool) -> Result<TableData, JettyError> {
    let label = swept_spec().label();
    let model = SmpEnergyModel::paper_node();
    let mut suites = Vec::with_capacity(ProtocolKind::ALL.len());
    for &p in ProtocolKind::ALL.iter() {
        suites.push((p, engine.run_suite(&protocol_options(scale, check, p))?));
    }

    let mut t = TableData::new(
        "protocols",
        format!(
            "Protocol sweep: {label} coverage and energy under MOESI/MESI/MSI \
             (memWB = memory write traffic, uJ)"
        ),
    );
    let mut headers = vec!["App".to_string()];
    for (protocol, _) in &suites {
        headers.push(format!("{protocol} cov"));
        headers.push(format!("{protocol} miss"));
        headers.push(format!("{protocol} dE"));
        headers.push(format!("{protocol} memWB"));
    }
    t.headers(headers);

    // One typed record per run: the renderer decides how the fractions and
    // joules turn into percent and microjoules. The swept spec is the one
    // the suite's own options carry, so a missing report is a harness bug,
    // not a reachable failure.
    #[allow(clippy::expect_used)]
    let energy = |r: &AppRun| -> ProtocolEnergy {
        let report = r.report(&label).expect("swept spec missing from bank");
        model.protocol_energy(&r.run, report, AccessMode::Serial)
    };

    let apps = suites[0].1.len();
    for i in 0..apps {
        let mut row = vec![Cell::label(suites[0].1[i].profile.abbrev)];
        for (_, runs) in &suites {
            let r = &runs[i];
            let e = energy(r);
            row.push(Cell::Ratio(r.coverage(&label)));
            row.push(Cell::Ratio(r.run.snoop_miss_fraction_of_snoops()));
            row.push(Cell::Ratio(e.snoop_reduction));
            row.push(Cell::EnergyUj(e.memory_writeback_uj()));
        }
        t.row(row);
    }
    let mut avg = vec![Cell::label("AVG")];
    for (_, runs) in &suites {
        avg.push(Cell::Ratio(average(runs, |r| r.coverage(&label))));
        avg.push(Cell::Ratio(average(runs, |r| r.run.snoop_miss_fraction_of_snoops())));
        avg.push(Cell::Ratio(average(runs, |r| energy(r).snoop_reduction)));
        avg.push(Cell::EnergyUj(average(runs, |r| energy(r).memory_writeback_uj())));
    }
    t.row(avg);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_renders_all_protocol_columns() {
        let t = protocols_table(&Engine::new(2), 0.002, false).unwrap();
        assert_eq!(t.len(), 11); // 10 apps + AVG
        let s = t.render();
        for name in ["MOESI cov", "MESI cov", "MSI cov", "MSI memWB"] {
            assert!(s.contains(name), "missing column {name}: {s}");
        }
        assert!(s.contains("AVG"));
    }

    #[test]
    fn prefetch_keys_match_the_rendered_suites() {
        let engine = Engine::new(2);
        let keys = protocols_prefetch(0.002, false);
        assert_eq!(keys.len(), 3);
        engine.run_suites(&keys);
        let executed = engine.stats().suites_executed;
        assert_eq!(executed, 3, "three distinct protocol suites");
        // Rendering afterwards must be pure cache hits.
        let _ = protocols_table(&engine, 0.002, false).unwrap();
        assert_eq!(engine.stats().suites_executed, executed);
    }

    #[test]
    fn moesi_dominates_memory_traffic_avoidance() {
        // The Owned state keeps dirty supplies off the memory bus, so the
        // MOESI suite must never pay more memory writebacks than MESI on
        // the same workload.
        let engine = Engine::new(2);
        let moesi = engine.run_suite(&protocol_options(0.002, false, ProtocolKind::Moesi)).unwrap();
        let mesi = engine.run_suite(&protocol_options(0.002, false, ProtocolKind::Mesi)).unwrap();
        for (m, e) in moesi.iter().zip(mesi.iter()) {
            assert_eq!(m.run.nodes.snoop_memory_writebacks, 0, "{}", m.profile.abbrev);
            assert!(
                m.run.nodes.memory_writebacks() <= e.run.nodes.memory_writebacks(),
                "{}: MOESI {} > MESI {}",
                m.profile.abbrev,
                m.run.nodes.memory_writebacks(),
                e.run.nodes.memory_writebacks()
            );
        }
    }

    #[test]
    fn protocol_suites_are_distinct_cache_keys() {
        let a = protocol_options(0.01, false, ProtocolKind::Moesi);
        let b = protocol_options(0.01, false, ProtocolKind::Mesi);
        let c = protocol_options(0.01, false, ProtocolKind::Msi);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
