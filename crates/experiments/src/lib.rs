//! # jetty-experiments — the reproduction harness
//!
//! One function per table and figure of the paper, all driven from a single
//! simulation pass per application (the filter bank makes every
//! configuration a bystander of the same trace). The `jetty-repro` binary
//! exposes each as a subcommand:
//!
//! ```text
//! jetty-repro all            # everything below, in paper order
//! jetty-repro table1         # Xeon power breakdown
//! jetty-repro fig2           # analytic snoop-miss energy model
//! jetty-repro table2 table3  # workload characteristics + snoop distribution
//! jetty-repro fig4a fig4b    # EJ / VEJ coverage
//! jetty-repro fig5a fig5b    # IJ / HJ coverage
//! jetty-repro table4         # IJ storage
//! jetty-repro fig6           # energy reductions (4 panels)
//! jetty-repro smp8           # 8-way summary (§4.3.4)
//! jetty-repro nsb            # non-subblocked summary
//! jetty-repro calibrate      # measured-vs-paper deltas
//! jetty-repro ablation       # IJ index-overlap + HJ allocation-policy studies
//! jetty-repro protocols      # MOESI/MESI/MSI coverage + energy sweep
//! jetty-repro sweep          # declarative multi-axis scenario grid
//! jetty-repro runs           # list a run store's recorded invocations
//! jetty-repro diff A B       # cell-level comparison of two recorded runs
//! ```
//!
//! (`protocols` and `sweep` are extensions beyond the paper's exhibits and
//! are *not* part of `all`, keeping that output byte-comparable across
//! versions.)
//!
//! Pass `--scale 0.1` for a 10x shorter run, `--cpus 8` for the 8-way
//! configuration, `--threads N` to size the parallel experiment engine
//! (default: available parallelism, or the `JETTY_THREADS` environment
//! variable), and `--format {text,json,csv}` to pick an output renderer
//! (`--csv DIR` still dumps per-table CSV files).
//!
//! The crate is layered as *collect typed, render late*:
//!
//! * builders ([`tables`], [`figures`], [`protocols`], [`ablation`],
//!   [`sweep`]) populate [`results::TableData`] with typed
//!   [`results::Cell`]s — no formatting happens here;
//! * the [`results`] module renders a finished [`results::ResultSet`]
//!   through a pluggable [`results::render::Renderer`] (aligned text —
//!   byte-identical to the historical output — JSON, or CSV);
//! * suites are executed by the [`engine`]: a scoped-thread worker pool
//!   over `(profile, options)` simulation jobs with a cache keyed by
//!   [`RunOptions`], so independent suites run concurrently and no
//!   identical suite is simulated twice. The [`sweep`] module expands a
//!   declarative [`sweep::SweepGrid`] into those cache keys;
//! * the [`store`] module persists finished result sets — an append-only,
//!   checksummed, single-file run store keyed by git revision and
//!   [`RunOptions::id`] — and [`store::diff`] compares any two recorded
//!   runs cell-by-cell (`--store PATH` to record, `jetty-repro diff` /
//!   `runs` to compare and list), which is what the CI regression gate
//!   runs on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failure-model discipline: user-reachable code paths must carry typed
// [`error::JettyError`]s instead of panicking. The handful of survivors
// are allow-listed at the use site with a justification — each one is a
// genuine internal invariant, not a reachable failure.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ablation;
pub mod engine;
pub mod error;
pub mod fault;
pub mod figures;
pub mod protocols;
pub mod results;
pub mod runner;
pub mod store;
pub mod sweep;
pub mod tables;

pub use engine::{Engine, EngineStats, SuiteCache, SuiteResult};
pub use error::JettyError;
pub use results::render::{Format, Renderer};
pub use results::{Cell, ResultSet, TableData};
pub use runner::{
    average, run_app, run_app_gated, run_app_timed, run_suite, AppRun, AppTiming, RunOptions,
};
pub use store::diff::{diff_runs, DiffOptions, DiffReport};
pub use store::{RunInfo, RunRecord, RunRef, RunStore};
pub use sweep::{Axis, SweepGrid};
