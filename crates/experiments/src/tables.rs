//! Regenerators for the paper's tables, as typed [`TableData`] — values
//! stay values here; formatting is the renderer's job.

use jetty_core::IncludeConfig;
use jetty_energy::xeon;

use crate::results::{Cell, TableData};
use crate::runner::{average, AppRun};

/// Table 1: Xeon peak-power breakdown with the derived fraction columns.
pub fn table1() -> TableData {
    let mut t =
        TableData::new("table1", "Table 1: Xeon peak power breakdown (core vs external L2)");
    t.headers(["L2 size", "Core W", "L2 W", "L2 pads W", "L2 %", "L2 w/o pads %"]);
    for row in xeon::table1_rows() {
        t.row([
            Cell::label(format!("{}K", row.l2_kbytes)),
            Cell::Fixed { value: row.core_w, dp: 1 },
            Cell::Fixed { value: row.l2_w, dp: 1 },
            Cell::Fixed { value: row.l2_pads_w, dp: 1 },
            Cell::Ratio(row.l2_fraction()),
            Cell::Ratio(row.l2_fraction_without_pads()),
        ]);
    }
    t
}

/// Table 2: per-application characteristics of the simulated suite, with
/// the paper's values alongside for calibration transparency.
pub fn table2(runs: &[AppRun]) -> TableData {
    let mut t = TableData::new("table2", "Table 2: applications (measured | paper)");
    t.headers([
        "App",
        "Accesses",
        "MA",
        "L1 hit",
        "L1 paper",
        "L2 hit",
        "L2 paper",
        "L2 snoop acc",
        "snoop paper",
    ]);
    for r in runs {
        let n = &r.run.nodes;
        t.row([
            Cell::label(r.profile.abbrev),
            Cell::Millions(r.refs),
            Cell::MBytes(r.footprint),
            Cell::Ratio(n.l1_hit_rate()),
            Cell::Ratio(r.profile.paper.l1_hit),
            Cell::Ratio(n.l2_local_hit_rate()),
            Cell::Ratio(r.profile.paper.l2_hit),
            Cell::Millions(n.snoops_seen),
            Cell::MillionsValue(r.profile.paper.snoop_accesses_m),
        ]);
    }
    t
}

/// Table 3: remote-cache-hit distribution and snoop-miss fractions.
pub fn table3(runs: &[AppRun]) -> TableData {
    let mut t =
        TableData::new("table3", "Table 3: snoop hit distribution (measured, paper in parens)");
    t.headers(["App", "0 hits", "1 hit", "2 hits", "3 hits", "miss %snoops", "miss %all"]);
    for r in runs {
        let paper = &r.profile.paper;
        let pair = |m: f64, p: f64| Cell::RatioPair { measured: m, paper: p };
        t.row([
            Cell::label(r.profile.abbrev),
            pair(r.run.remote_hit_fraction(0), paper.remote_hits[0]),
            pair(r.run.remote_hit_fraction(1), paper.remote_hits[1]),
            pair(r.run.remote_hit_fraction(2), paper.remote_hits[2]),
            pair(r.run.remote_hit_fraction(3), paper.remote_hits[3]),
            pair(r.run.snoop_miss_fraction_of_snoops(), paper.snoop_miss_of_snoops),
            pair(r.run.snoop_miss_fraction_of_all(), paper.snoop_miss_of_all),
        ]);
    }
    let avg = |f: &dyn Fn(&AppRun) -> f64| Cell::Ratio(average(runs, f));
    t.row([
        Cell::label("AVG"),
        avg(&|r| r.run.remote_hit_fraction(0)),
        avg(&|r| r.run.remote_hit_fraction(1)),
        avg(&|r| r.run.remote_hit_fraction(2)),
        avg(&|r| r.run.remote_hit_fraction(3)),
        avg(&|r| r.run.snoop_miss_fraction_of_snoops()),
        avg(&|r| r.run.snoop_miss_fraction_of_all()),
    ]);
    t
}

/// Table 4: storage requirements of the IJ configurations.
pub fn table4() -> TableData {
    let mut t = TableData::new("table4", "Table 4: Include-Jetty storage (14-bit counters)");
    t.headers(["IJ", "p-bit bits", "p-bit org", "cnt bits", "total bytes"]);
    for (e, n, s) in [(10u32, 4u32, 7u32), (9, 4, 7), (8, 4, 7), (7, 5, 6), (6, 5, 6)] {
        let c = IncludeConfig::new(e, n, s);
        let (rows, cols) = c.pbit_org();
        t.row([
            Cell::label(c.label()),
            Cell::text_cell(format!("{} x {}", c.sub_arrays, c.entries_per_array())),
            Cell::text_cell(format!("{} x {}x{}", c.sub_arrays, rows, cols)),
            Cell::Count(c.cnt_storage_bits() as u64),
            Cell::Count(c.storage_bytes() as u64),
        ]);
    }
    t
}

/// Calibration report: every measured statistic against the paper's value,
/// with absolute deltas — the source for EXPERIMENTS.md.
pub fn calibration(runs: &[AppRun]) -> TableData {
    let mut t = TableData::new("calibration", "Calibration: measured vs paper (delta in points)");
    t.headers([
        "App",
        "L1 d",
        "L2 d",
        "rh0 d",
        "rh1 d",
        "rh2 d",
        "rh3 d",
        "miss%sn d",
        "miss%all d",
    ]);
    let delta = |m: f64, p: f64| Cell::DeltaPoints(m - p);
    for r in runs {
        let n = &r.run.nodes;
        let paper = &r.profile.paper;
        t.row([
            Cell::label(r.profile.abbrev),
            delta(n.l1_hit_rate(), paper.l1_hit),
            delta(n.l2_local_hit_rate(), paper.l2_hit),
            delta(r.run.remote_hit_fraction(0), paper.remote_hits[0]),
            delta(r.run.remote_hit_fraction(1), paper.remote_hits[1]),
            delta(r.run.remote_hit_fraction(2), paper.remote_hits[2]),
            delta(r.run.remote_hit_fraction(3), paper.remote_hits[3]),
            delta(r.run.snoop_miss_fraction_of_snoops(), paper.snoop_miss_of_snoops),
            delta(r.run.snoop_miss_fraction_of_all(), paper.snoop_miss_of_all),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_app, RunOptions};
    use jetty_core::FilterSpec;
    use jetty_workloads::apps;

    fn tiny_runs() -> Vec<AppRun> {
        let options =
            RunOptions::paper().with_scale(0.005).with_specs(vec![FilterSpec::exclude(8, 2)]);
        vec![run_app(&apps::fft(), &options), run_app(&apps::lu(), &options)]
    }

    #[test]
    fn table1_has_three_rows() {
        let t = table1();
        assert_eq!(t.len(), 3);
        assert_eq!(t.id, "table1");
        let s = t.render();
        assert!(s.contains("512K") && s.contains("2048K"));
    }

    #[test]
    fn table2_row_per_app() {
        let runs = tiny_runs();
        let t = table2(&runs);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("ff"));
        // The typed row keeps the raw count; the renderer scales it.
        assert_eq!(t.rows[0][1], Cell::Millions(runs[0].refs));
    }

    #[test]
    fn table3_has_average_row() {
        let runs = tiny_runs();
        let t = table3(&runs);
        assert_eq!(t.len(), 3); // 2 apps + AVG
        assert!(t.render().contains("AVG"));
        assert!(matches!(t.rows[0][1], Cell::RatioPair { .. }));
        assert!(matches!(t.rows[2][1], Cell::Ratio(_)));
    }

    #[test]
    fn table4_matches_paper_configs() {
        let t = table4();
        assert_eq!(t.len(), 5);
        let s = t.render();
        assert!(s.contains("IJ-10x4x7"));
        assert!(s.contains("4 x 32x32"));
    }

    #[test]
    fn calibration_prints_deltas() {
        let runs = tiny_runs();
        let t = calibration(&runs);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.lines().count() >= 3);
        assert!(matches!(t.rows[0][1], Cell::DeltaPoints(_)));
    }
}
