//! Regenerators for the paper's tables.

use jetty_core::IncludeConfig;
use jetty_energy::xeon;

use crate::report::{mbytes, millions, pct, Table};
use crate::runner::{average, AppRun};

/// Table 1: Xeon peak-power breakdown with the derived fraction columns.
pub fn table1() -> Table {
    let mut t = Table::new("Table 1: Xeon peak power breakdown (core vs external L2)");
    t.headers(["L2 size", "Core W", "L2 W", "L2 pads W", "L2 %", "L2 w/o pads %"]);
    for row in xeon::table1_rows() {
        t.row([
            format!("{}K", row.l2_kbytes),
            format!("{:.1}", row.core_w),
            format!("{:.1}", row.l2_w),
            format!("{:.1}", row.l2_pads_w),
            pct(row.l2_fraction()),
            pct(row.l2_fraction_without_pads()),
        ]);
    }
    t
}

/// Table 2: per-application characteristics of the simulated suite, with
/// the paper's values alongside for calibration transparency.
pub fn table2(runs: &[AppRun]) -> Table {
    let mut t = Table::new("Table 2: applications (measured | paper)");
    t.headers([
        "App",
        "Accesses",
        "MA",
        "L1 hit",
        "L1 paper",
        "L2 hit",
        "L2 paper",
        "L2 snoop acc",
        "snoop paper",
    ]);
    for r in runs {
        let n = &r.run.nodes;
        t.row([
            r.profile.abbrev.to_string(),
            millions(r.refs),
            mbytes(r.footprint),
            pct(n.l1_hit_rate()),
            pct(r.profile.paper.l1_hit),
            pct(n.l2_local_hit_rate()),
            pct(r.profile.paper.l2_hit),
            millions(n.snoops_seen),
            format!("{}M", r.profile.paper.snoop_accesses_m),
        ]);
    }
    t
}

/// Table 3: remote-cache-hit distribution and snoop-miss fractions.
pub fn table3(runs: &[AppRun]) -> Table {
    let mut t = Table::new("Table 3: snoop hit distribution (measured, paper in parens)");
    t.headers(["App", "0 hits", "1 hit", "2 hits", "3 hits", "miss %snoops", "miss %all"]);
    for r in runs {
        let fr = r.run.system.remote_hit_fractions();
        let paper = &r.profile.paper;
        let cell = |m: f64, p: f64| format!("{} ({})", pct(m), pct(p));
        t.row([
            r.profile.abbrev.to_string(),
            cell(fr.first().copied().unwrap_or(0.0), paper.remote_hits[0]),
            cell(fr.get(1).copied().unwrap_or(0.0), paper.remote_hits[1]),
            cell(fr.get(2).copied().unwrap_or(0.0), paper.remote_hits[2]),
            cell(fr.get(3).copied().unwrap_or(0.0), paper.remote_hits[3]),
            cell(r.run.snoop_miss_fraction_of_snoops(), paper.snoop_miss_of_snoops),
            cell(r.run.snoop_miss_fraction_of_all(), paper.snoop_miss_of_all),
        ]);
    }
    let avg = |f: &dyn Fn(&AppRun) -> f64| average(runs, f);
    t.row([
        "AVG".to_string(),
        pct(avg(&|r| r.run.system.remote_hit_fractions().first().copied().unwrap_or(0.0))),
        pct(avg(&|r| r.run.system.remote_hit_fractions().get(1).copied().unwrap_or(0.0))),
        pct(avg(&|r| r.run.system.remote_hit_fractions().get(2).copied().unwrap_or(0.0))),
        pct(avg(&|r| r.run.system.remote_hit_fractions().get(3).copied().unwrap_or(0.0))),
        pct(avg(&|r| r.run.snoop_miss_fraction_of_snoops())),
        pct(avg(&|r| r.run.snoop_miss_fraction_of_all())),
    ]);
    t
}

/// Table 4: storage requirements of the IJ configurations.
pub fn table4() -> Table {
    let mut t = Table::new("Table 4: Include-Jetty storage (14-bit counters)");
    t.headers(["IJ", "p-bit bits", "p-bit org", "cnt bits", "total bytes"]);
    for (e, n, s) in [(10u32, 4u32, 7u32), (9, 4, 7), (8, 4, 7), (7, 5, 6), (6, 5, 6)] {
        let c = IncludeConfig::new(e, n, s);
        let (rows, cols) = c.pbit_org();
        t.row([
            c.label(),
            format!("{} x {}", c.sub_arrays, c.entries_per_array()),
            format!("{} x {}x{}", c.sub_arrays, rows, cols),
            format!("{}", c.cnt_storage_bits()),
            format!("{}", c.storage_bytes()),
        ]);
    }
    t
}

/// Calibration report: every measured statistic against the paper's value,
/// with absolute deltas — the source for EXPERIMENTS.md.
pub fn calibration(runs: &[AppRun]) -> Table {
    let mut t = Table::new("Calibration: measured vs paper (delta in points)");
    t.headers([
        "App",
        "L1 d",
        "L2 d",
        "rh0 d",
        "rh1 d",
        "rh2 d",
        "rh3 d",
        "miss%sn d",
        "miss%all d",
    ]);
    let fmt = |m: f64, p: f64| format!("{:+.1}", 100.0 * (m - p));
    for r in runs {
        let n = &r.run.nodes;
        let fr = r.run.system.remote_hit_fractions();
        let paper = &r.profile.paper;
        t.row([
            r.profile.abbrev.to_string(),
            fmt(n.l1_hit_rate(), paper.l1_hit),
            fmt(n.l2_local_hit_rate(), paper.l2_hit),
            fmt(fr.first().copied().unwrap_or(0.0), paper.remote_hits[0]),
            fmt(fr.get(1).copied().unwrap_or(0.0), paper.remote_hits[1]),
            fmt(fr.get(2).copied().unwrap_or(0.0), paper.remote_hits[2]),
            fmt(fr.get(3).copied().unwrap_or(0.0), paper.remote_hits[3]),
            fmt(r.run.snoop_miss_fraction_of_snoops(), paper.snoop_miss_of_snoops),
            fmt(r.run.snoop_miss_fraction_of_all(), paper.snoop_miss_of_all),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_app, RunOptions};
    use jetty_core::FilterSpec;
    use jetty_workloads::apps;

    fn tiny_runs() -> Vec<AppRun> {
        let options =
            RunOptions::paper().with_scale(0.005).with_specs(vec![FilterSpec::exclude(8, 2)]);
        vec![run_app(&apps::fft(), &options), run_app(&apps::lu(), &options)]
    }

    #[test]
    fn table1_has_three_rows() {
        let t = table1();
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("512K") && s.contains("2048K"));
    }

    #[test]
    fn table2_row_per_app() {
        let runs = tiny_runs();
        let t = table2(&runs);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("ff"));
    }

    #[test]
    fn table3_has_average_row() {
        let runs = tiny_runs();
        let t = table3(&runs);
        assert_eq!(t.len(), 3); // 2 apps + AVG
        assert!(t.render().contains("AVG"));
    }

    #[test]
    fn table4_matches_paper_configs() {
        let t = table4();
        assert_eq!(t.len(), 5);
        let s = t.render();
        assert!(s.contains("IJ-10x4x7"));
        assert!(s.contains("4 x 32x32"));
    }

    #[test]
    fn calibration_prints_deltas() {
        let runs = tiny_runs();
        let t = calibration(&runs);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.lines().count() >= 3);
    }
}
