//! The declarative sweep engine (`jetty-repro sweep`): a [`SweepGrid`]
//! names values along five scenario axes — `cpus` × `protocol` × `filter`
//! geometry × trace `scale` × L2 subblocking — and expands their cross
//! product into [`RunOptions`] cache keys for the parallel [`Engine`].
//!
//! Two deliberate economies fall out of the expansion:
//!
//! * **The filter axis is free.** Filters are bystanders (the paper's own
//!   methodology), so every filter value of a platform point rides the
//!   *same* simulation as one bank entry: a grid of `P` platform points ×
//!   `F` filters costs `P` suites, not `P × F`.
//! * **Suites are cache keys.** The grid expands to exactly the
//!   [`RunOptions`] the [`SuiteCache`](crate::engine::SuiteCache) is keyed
//!   by, so a sweep sharing points with other commands in the same
//!   invocation (`jetty-repro protocols sweep`), or rendering after its
//!   prefetch batch, re-reads cached suites instead of re-simulating —
//!   observable via `--timings` and the `[sweep]` stderr summary.
//!
//! The result is one comparative [`ResultSet`]: the point-per-row grid
//! table plus a marginal summary per multi-valued axis, rendered in any
//! `--format`.

use jetty_core::FilterSpec;
use jetty_energy::{AccessMode, SmpEnergyModel};
use jetty_sim::ProtocolKind;

use crate::engine::Engine;
use crate::error::JettyError;
use crate::results::{Cell, ResultSet, TableData};
use crate::runner::{average, RunOptions};

/// One named axis of the sweep grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Processors on the bus (`cpus=4,8`).
    Cpus,
    /// Coherence protocol (`protocol=moesi,mesi,msi`).
    Protocol,
    /// Filter geometry, as stable [`FilterSpec`] ids
    /// (`filter=hj-ij10x4x7-ej32x4,ej-32x4,none`).
    Filter,
    /// Trace-length multiplier (`scale=0.02,0.1`).
    Scale,
    /// L2 subblocking (`nsb=sb,nsb`).
    Subblocking,
}

impl Axis {
    /// Every axis, in grid-expansion (and table-column) order.
    pub const ALL: [Axis; 5] =
        [Axis::Cpus, Axis::Protocol, Axis::Filter, Axis::Scale, Axis::Subblocking];

    /// The CLI name of this axis (the `NAME` in `--axis NAME=V1,V2`).
    pub fn name(self) -> &'static str {
        match self {
            Axis::Cpus => "cpus",
            Axis::Protocol => "protocol",
            Axis::Filter => "filter",
            Axis::Scale => "scale",
            Axis::Subblocking => "nsb",
        }
    }

    /// Parses an axis name (case-insensitive).
    pub fn parse(name: &str) -> Option<Axis> {
        Axis::ALL.into_iter().find(|a| a.name() == name.to_ascii_lowercase())
    }
}

/// One expanded point of the grid: a platform tuple plus the filter under
/// observation (the filter axis never multiplies simulations — see the
/// module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Processors on the bus.
    pub cpus: usize,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Trace-length multiplier.
    pub scale: f64,
    /// Non-subblocked L2 variant?
    pub non_subblocked: bool,
    /// The filter configuration this row scores.
    pub filter: FilterSpec,
    /// Index into [`SweepGrid::suites`] of the platform suite this point
    /// reads.
    pub suite: usize,
}

/// A declarative scenario grid: values per axis, expanded as a cross
/// product.
///
/// # Examples
///
/// ```
/// use jetty_experiments::sweep::{Axis, SweepGrid};
///
/// let mut grid = SweepGrid::single_point(0.02);
/// grid.set_axis(Axis::Cpus, "4,8").unwrap();
/// grid.set_axis(Axis::Protocol, "moesi,msi").unwrap();
/// assert_eq!(grid.points().len(), 4);
/// assert_eq!(grid.suites(false).len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SweepGrid {
    /// `cpus` axis values.
    pub cpus: Vec<usize>,
    /// `protocol` axis values.
    pub protocols: Vec<ProtocolKind>,
    /// `filter` axis values.
    pub filters: Vec<FilterSpec>,
    /// `scale` axis values.
    pub scales: Vec<f64>,
    /// `nsb` axis values (`false` = subblocked, the paper's platform).
    pub non_subblocked: Vec<bool>,
}

impl SweepGrid {
    /// The single paper point: 4-way MOESI, subblocked L2, the paper's
    /// best hybrid, at the given scale. Axes grow from here via
    /// [`SweepGrid::set_axis`].
    pub fn single_point(scale: f64) -> Self {
        Self {
            cpus: vec![4],
            protocols: vec![ProtocolKind::Moesi],
            filters: vec![FilterSpec::hybrid_scalar(10, 4, 7, 32, 4)],
            scales: vec![scale],
            non_subblocked: vec![false],
        }
    }

    /// The default `jetty-repro sweep` grid: protocol × cpus (3 × {4, 8})
    /// around the paper's best hybrid — a two-axis comparison out of the
    /// box.
    pub fn default_grid(scale: f64) -> Self {
        let mut grid = Self::single_point(scale);
        grid.cpus = vec![4, 8];
        grid.protocols = ProtocolKind::ALL.to_vec();
        grid
    }

    /// Replaces one axis's values from a comma-separated CLI string.
    /// Rejects empty lists, unparsable values, invalid geometries
    /// (`cpus<2`, `scale<=0`), and duplicates (a duplicated value would
    /// silently duplicate every row it touches).
    pub fn set_axis(&mut self, axis: Axis, values: &str) -> Result<(), String> {
        fn parse_list<T: PartialEq>(
            axis: Axis,
            values: &str,
            parse: impl Fn(&str) -> Result<T, String>,
        ) -> Result<Vec<T>, String> {
            let mut out = Vec::new();
            for raw in values.split(',') {
                let raw = raw.trim();
                if raw.is_empty() {
                    return Err(format!("axis {}: empty value in {values:?}", axis.name()));
                }
                let v = parse(raw)?;
                if out.contains(&v) {
                    return Err(format!("axis {}: duplicate value {raw:?}", axis.name()));
                }
                out.push(v);
            }
            if out.is_empty() {
                return Err(format!("axis {} needs at least one value", axis.name()));
            }
            Ok(out)
        }

        match axis {
            Axis::Cpus => {
                self.cpus = parse_list(axis, values, |raw| {
                    let n: usize =
                        raw.parse().map_err(|_| format!("axis cpus: bad value {raw:?}"))?;
                    if n < 2 {
                        return Err(format!(
                            "axis cpus: a snoopy SMP needs at least 2 processors, got {n}"
                        ));
                    }
                    Ok(n)
                })?;
            }
            Axis::Protocol => {
                self.protocols = parse_list(axis, values, |raw| {
                    ProtocolKind::parse(raw).ok_or(format!(
                        "axis protocol: unknown protocol {raw:?} (want moesi, mesi or msi)"
                    ))
                })?;
            }
            Axis::Filter => {
                self.filters = parse_list(axis, values, |raw| {
                    FilterSpec::from_id(raw).ok_or(format!(
                        "axis filter: unknown filter id {raw:?} \
                         (e.g. ej-32x4, vej-16x4-8, ij-10x4x7, hj-ij10x4x7-ej32x4, none)"
                    ))
                })?;
            }
            Axis::Scale => {
                self.scales = parse_list(axis, values, |raw| {
                    let x: f64 =
                        raw.parse().map_err(|_| format!("axis scale: bad value {raw:?}"))?;
                    if !(x > 0.0 && x.is_finite()) {
                        return Err(format!("axis scale: scale must be positive, got {raw}"));
                    }
                    Ok(x)
                })?;
            }
            Axis::Subblocking => {
                self.non_subblocked =
                    parse_list(axis, values, |raw| match raw.to_ascii_lowercase().as_str() {
                        "sb" => Ok(false),
                        "nsb" => Ok(true),
                        _ => Err(format!("axis nsb: want sb or nsb, got {raw:?}")),
                    })?;
            }
        }
        Ok(())
    }

    /// Number of values along one axis.
    pub fn axis_len(&self, axis: Axis) -> usize {
        match axis {
            Axis::Cpus => self.cpus.len(),
            Axis::Protocol => self.protocols.len(),
            Axis::Filter => self.filters.len(),
            Axis::Scale => self.scales.len(),
            Axis::Subblocking => self.non_subblocked.len(),
        }
    }

    /// The axes holding more than one value (what the sweep actually
    /// compares).
    pub fn swept_axes(&self) -> Vec<Axis> {
        Axis::ALL.into_iter().filter(|&a| self.axis_len(a) > 1).collect()
    }

    /// The platform suites the grid expands to, one [`RunOptions`] cache
    /// key per (cpus, protocol, scale, subblocking) tuple — the filter
    /// axis folds into each suite's bank.
    pub fn suites(&self, check: bool) -> Vec<RunOptions> {
        let mut suites = Vec::new();
        for &cpus in &self.cpus {
            for &protocol in &self.protocols {
                for &scale in &self.scales {
                    for &nsb in &self.non_subblocked {
                        let mut options = RunOptions::paper()
                            .with_scale(scale)
                            .with_cpus(cpus)
                            .with_specs(self.filters.clone())
                            .with_protocol(protocol)
                            .with_non_subblocked(nsb);
                        options.check = check;
                        suites.push(options);
                    }
                }
            }
        }
        suites
    }

    /// The expanded grid points, in platform-major order (matching
    /// [`SweepGrid::suites`]), filters innermost.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::new();
        let mut suite = 0;
        for &cpus in &self.cpus {
            for &protocol in &self.protocols {
                for &scale in &self.scales {
                    for &nsb in &self.non_subblocked {
                        for &filter in &self.filters {
                            points.push(SweepPoint {
                                cpus,
                                protocol,
                                scale,
                                non_subblocked: nsb,
                                filter,
                                suite,
                            });
                        }
                        suite += 1;
                    }
                }
            }
        }
        points
    }

    /// One-line description of the grid for stderr logs, e.g.
    /// `cpus=4,8 protocol=MOESI,MESI,MSI filter=hj-ij10x4x7-ej32x4 scale=0.02 nsb=sb`.
    pub fn describe(&self) -> String {
        let join = |items: Vec<String>| items.join(",");
        format!(
            "cpus={} protocol={} filter={} scale={} nsb={}",
            join(self.cpus.iter().map(ToString::to_string).collect()),
            join(self.protocols.iter().map(ToString::to_string).collect()),
            join(self.filters.iter().map(FilterSpec::id).collect()),
            join(self.scales.iter().map(ToString::to_string).collect()),
            join(
                self.non_subblocked
                    .iter()
                    .map(|&n| if n { "nsb".to_owned() } else { "sb".to_owned() })
                    .collect()
            ),
        )
    }
}

/// The per-point metrics the sweep tabulates (suite averages over the
/// ten-application workload; storage is a property of the filter
/// geometry, identical across apps).
struct PointMetrics {
    storage_bytes: u64,
    coverage: f64,
    filter_rate: f64,
    would_miss: f64,
    snoop_reduction: f64,
    mem_wb_uj: f64,
}

/// Materializes the comparative [`ResultSet`] for a grid: the point-per-row
/// grid table plus one marginal-average row per value of every multi-valued
/// axis.
///
/// Every point fetches its platform suite through the engine — after the
/// prefetch batch these are all suite-cache hits, which is what makes a
/// wide grid affordable and what the `[sweep]` stderr summary reports.
/// A failed platform suite fails the whole sweep (`Err` carries the first
/// suite error): the grid and marginal tables are cross-point comparisons,
/// meaningless with holes.
// A point's filter always sits in its own suite's bank (`grid.suites`
// builds each bank from `grid.filters` directly above), so a missing
// report is a harness bug, not a reachable failure.
#[allow(clippy::expect_used)]
pub fn sweep_results(
    engine: &Engine,
    grid: &SweepGrid,
    check: bool,
) -> Result<ResultSet, JettyError> {
    let suites = grid.suites(check);
    let points = grid.points();
    let model = SmpEnergyModel::paper_node();

    let mut metrics: Vec<PointMetrics> = Vec::with_capacity(points.len());
    for p in &points {
        let runs = engine.run_suite(&suites[p.suite])?;
        let label = p.filter.label();
        metrics.push(PointMetrics {
            storage_bytes: runs
                .first()
                .and_then(|r| r.report(&label))
                .map_or(0, |report| report.storage_bytes() as u64),
            coverage: average(&runs, |r| r.coverage(&label)),
            filter_rate: average(&runs, |r| {
                r.report(&label).expect("filter missing from bank").filter_rate()
            }),
            would_miss: average(&runs, |r| r.run.snoop_miss_fraction_of_snoops()),
            snoop_reduction: average(&runs, |r| {
                let report = r.report(&label).expect("filter missing from bank");
                model.protocol_energy(&r.run, report, AccessMode::Serial).snoop_reduction
            }),
            mem_wb_uj: average(&runs, |r| {
                let report = r.report(&label).expect("filter missing from bank");
                model.protocol_energy(&r.run, report, AccessMode::Serial).memory_writeback_uj()
            }),
        });
    }

    let swept: Vec<String> = grid.swept_axes().iter().map(|a| a.name().to_owned()).collect();
    let axes_desc = if swept.is_empty() { "single point".to_owned() } else { swept.join(" x ") };

    let mut grid_table = TableData::new(
        "sweep",
        format!(
            "Sweep: coverage and energy across {axes_desc} \
             ({} points over {} suites; suite averages)",
            points.len(),
            suites.len()
        ),
    );
    grid_table.headers([
        "cpus",
        "protocol",
        "scale",
        "L2",
        "filter",
        "bytes",
        "coverage",
        "filtered",
        "would-miss",
        "snoop dE",
        "memWB uJ",
    ]);
    for (p, m) in points.iter().zip(&metrics) {
        grid_table.row([
            Cell::Count(p.cpus as u64),
            Cell::label(p.protocol.to_string()),
            Cell::Float(p.scale),
            Cell::label(if p.non_subblocked { "nsb" } else { "sb" }),
            Cell::label(p.filter.id()),
            Cell::Count(m.storage_bytes),
            Cell::Ratio(m.coverage),
            Cell::Ratio(m.filter_rate),
            Cell::Ratio(m.would_miss),
            Cell::Ratio(m.snoop_reduction),
            Cell::EnergyUj(m.mem_wb_uj),
        ]);
    }

    let mut axis_table = TableData::new(
        "sweep_axes",
        "Sweep marginals: per-axis-value averages over the grid".to_owned(),
    );
    axis_table.headers(["axis", "value", "points", "coverage", "snoop dE", "memWB uJ"]);
    for axis in grid.swept_axes() {
        for value in 0..grid.axis_len(axis) {
            let selected: Vec<&PointMetrics> = points
                .iter()
                .zip(&metrics)
                .filter(|(p, _)| match axis {
                    Axis::Cpus => p.cpus == grid.cpus[value],
                    Axis::Protocol => p.protocol == grid.protocols[value],
                    Axis::Filter => p.filter == grid.filters[value],
                    Axis::Scale => p.scale.to_bits() == grid.scales[value].to_bits(),
                    Axis::Subblocking => p.non_subblocked == grid.non_subblocked[value],
                })
                .map(|(_, m)| m)
                .collect();
            let value_cell = match axis {
                Axis::Cpus => Cell::Count(grid.cpus[value] as u64),
                Axis::Protocol => Cell::label(grid.protocols[value].to_string()),
                Axis::Filter => Cell::label(grid.filters[value].id()),
                Axis::Scale => Cell::Float(grid.scales[value]),
                Axis::Subblocking => {
                    Cell::label(if grid.non_subblocked[value] { "nsb" } else { "sb" })
                }
            };
            let mean = |f: &dyn Fn(&PointMetrics) -> f64| {
                selected.iter().map(|m| f(m)).sum::<f64>() / selected.len() as f64
            };
            axis_table.row([
                Cell::label(axis.name()),
                value_cell,
                Cell::Count(selected.len() as u64),
                Cell::Ratio(mean(&|m| m.coverage)),
                Cell::Ratio(mean(&|m| m.snoop_reduction)),
                Cell::EnergyUj(mean(&|m| m.mem_wb_uj)),
            ]);
        }
    }

    let mut set = ResultSet::new();
    set.push(grid_table);
    set.push(axis_table);
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::render::Format;

    #[test]
    fn filter_axis_does_not_multiply_suites() {
        let mut grid = SweepGrid::single_point(0.002);
        grid.set_axis(Axis::Filter, "hj-ij10x4x7-ej32x4,ej-32x4,none").unwrap();
        grid.set_axis(Axis::Protocol, "moesi,msi").unwrap();
        assert_eq!(grid.suites(false).len(), 2, "two platforms");
        assert_eq!(grid.points().len(), 6, "three filters ride each platform");
        // Each suite's bank carries all three filters.
        assert_eq!(grid.suites(false)[0].specs.len(), 3);
    }

    #[test]
    fn default_grid_is_two_axis() {
        let grid = SweepGrid::default_grid(0.02);
        assert_eq!(grid.swept_axes(), vec![Axis::Cpus, Axis::Protocol]);
        assert_eq!(grid.suites(false).len(), 6);
        assert_eq!(grid.points().len(), 6);
    }

    #[test]
    fn set_axis_rejects_bad_values() {
        let mut grid = SweepGrid::single_point(0.02);
        for (axis, bad) in [
            (Axis::Cpus, "1"),
            (Axis::Cpus, "four"),
            (Axis::Cpus, "4,,8"),
            (Axis::Cpus, "4,4"),
            (Axis::Cpus, ""),
            (Axis::Protocol, "mosi"),
            (Axis::Filter, "ej-31x4"),
            (Axis::Filter, "what"),
            (Axis::Scale, "0"),
            (Axis::Scale, "-1"),
            (Axis::Scale, "inf"),
            (Axis::Subblocking, "maybe"),
        ] {
            let before = grid.clone();
            assert!(grid.set_axis(axis, bad).is_err(), "{axis:?}={bad:?} must fail");
            assert_eq!(grid, before, "a failed set_axis must not mutate the grid");
        }
    }

    #[test]
    fn axis_names_round_trip() {
        for axis in Axis::ALL {
            assert_eq!(Axis::parse(axis.name()), Some(axis));
            assert_eq!(Axis::parse(&axis.name().to_uppercase()), Some(axis));
        }
        assert_eq!(Axis::parse("bank"), None);
    }

    #[test]
    fn describe_names_every_axis() {
        let grid = SweepGrid::default_grid(0.02);
        let d = grid.describe();
        assert_eq!(
            d,
            "cpus=4,8 protocol=MOESI,MESI,MSI filter=hj-ij10x4x7-ej32x4 scale=0.02 nsb=sb"
        );
    }

    #[test]
    fn sweep_reads_every_point_from_the_cache_after_prefetch() {
        let engine = Engine::new(2);
        let mut grid = SweepGrid::single_point(0.002);
        grid.set_axis(Axis::Protocol, "moesi,mesi").unwrap();
        grid.set_axis(Axis::Filter, "hj-ij10x4x7-ej32x4,ej-32x4").unwrap();
        engine.run_suites(&grid.suites(false));
        let executed = engine.stats().suites_executed;
        assert_eq!(executed, 2);

        let set = sweep_results(&engine, &grid, false).unwrap();
        assert_eq!(engine.stats().suites_executed, executed, "rendering must not simulate");
        assert_eq!(engine.stats().cache_hits, 4, "one hit per point");
        assert_eq!(set.tables.len(), 2);
        let grid_table = &set.tables[0];
        assert_eq!(grid_table.id, "sweep");
        assert_eq!(grid_table.len(), 4);
        // Marginals: one row per value of each swept axis (protocol, filter).
        assert_eq!(set.tables[1].len(), 4);
    }

    #[test]
    fn sweep_renders_in_all_three_formats() {
        let engine = Engine::new(2);
        let mut grid = SweepGrid::single_point(0.002);
        grid.set_axis(Axis::Subblocking, "sb,nsb").unwrap();
        let set = sweep_results(&engine, &grid, false).unwrap();
        for format in Format::ALL {
            let out = format.renderer().render_set(&set);
            assert!(out.contains("hj-ij10x4x7-ej32x4"), "{format:?}: {out}");
        }
        let text = Format::Text.renderer().render_set(&set);
        assert!(text.contains("== Sweep:"));
        assert!(text.contains("nsb"));
        // The storage column carries the filter geometry's real footprint
        // (the paper's best hybrid is ~2 KB), not a placeholder.
        let grid_table = &set.tables[0];
        let bytes_col = grid_table.columns.iter().position(|c| c == "bytes").expect("bytes column");
        assert!(matches!(grid_table.rows[0][bytes_col], Cell::Count(n) if n > 0));
    }

    #[test]
    fn single_point_grid_has_empty_marginals() {
        let engine = Engine::new(1);
        let grid = SweepGrid::single_point(0.002);
        let set = sweep_results(&engine, &grid, false).unwrap();
        assert_eq!(set.tables[0].len(), 1);
        assert!(set.tables[1].is_empty());
        assert!(set.tables[0].title.contains("single point"));
    }
}
